//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! the tiny API surface the mesh generators use: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `RngExt::random_range` over `f64`
//! ranges. The generator is xoshiro256** seeded through SplitMix64 — the
//! same construction rand's own `StdRng` documentation recommends for
//! reproducible simulation use. Streams are deterministic per seed but are
//! **not** bit-identical to upstream `StdRng` (ChaCha12); every consumer in
//! this repository only relies on seeded determinism, never on a specific
//! stream.

/// Seeding behaviour (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Value-producing extension methods (subset of rand 0.10's `Rng`/`RngExt`).
pub trait RngExt {
    /// Next raw 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a half-open `f64` range.
    ///
    /// # Panics
    /// Panics when `range` is empty or unbounded.
    fn random_range(&mut self, range: std::ops::Range<f64>) -> f64 {
        assert!(
            range.start < range.end && range.start.is_finite() && range.end.is_finite(),
            "random_range needs a non-empty finite range"
        );
        // 53 explicit mantissa bits -> uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }
}

/// Concrete generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state, per
            // the xoshiro reference implementation's seeding advice.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** step.
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn range_samples_stay_in_range_and_spread() {
        let mut rng = StdRng::seed_from_u64(7);
        let (mut lo_half, mut hi_half) = (0u32, 0u32);
        for _ in 0..10_000 {
            let x = rng.random_range(-0.35..0.35);
            assert!((-0.35..0.35).contains(&x));
            if x < 0.0 {
                lo_half += 1;
            } else {
                hi_half += 1;
            }
        }
        // Crude uniformity check: both halves well populated.
        assert!(lo_half > 4_000 && hi_half > 4_000, "{lo_half}/{hi_half}");
    }

    #[test]
    #[should_panic(expected = "non-empty finite range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(1.0..1.0);
    }
}
