//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! the tiny API surface the mesh generators use: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `RngExt::random_range` over `f64`
//! ranges. The generator is xoshiro256** seeded through SplitMix64 — the
//! same construction rand's own `StdRng` documentation recommends for
//! reproducible simulation use. Streams are deterministic per seed but are
//! **not** bit-identical to upstream `StdRng` (ChaCha12); every consumer in
//! this repository only relies on seeded determinism, never on a specific
//! stream.

/// Seeding behaviour (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Value-producing extension methods (subset of rand 0.10's `Rng`/`RngExt`).
pub trait RngExt {
    /// Next raw 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a half-open `f64` range.
    ///
    /// # Panics
    /// Panics when `range` is empty or unbounded.
    fn random_range(&mut self, range: std::ops::Range<f64>) -> f64 {
        assert!(
            range.start < range.end && range.start.is_finite() && range.end.is_finite(),
            "random_range needs a non-empty finite range"
        );
        // 53 explicit mantissa bits -> uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }
}

/// Seedable distributions (subset of `rand_distr`).
pub mod distributions {
    use super::RngExt;

    /// ln 2, used by both deterministic transcendental kernels below.
    const LN_2: f64 = std::f64::consts::LN_2;

    /// Deterministic natural log for finite `x > 0`.
    ///
    /// `std`'s `f64::ln` routes through the platform libm, whose last-bit
    /// rounding differs across OS/arch — enough to flip a CDF binary search
    /// and desynchronize "identical" seeded traffic between CI and a dev
    /// laptop. This version uses only IEEE-exact operations (bit-level
    /// exponent split, then `+ - * /`, each correctly rounded by the
    /// standard), so every platform computes the same bits.
    fn det_ln(x: f64) -> f64 {
        debug_assert!(x.is_finite() && x > 0.0);
        // Split x = m · 2^e with m ∈ [1, 2). All inputs here are ≥ 1
        // (element ranks), so the biased exponent path is enough.
        let bits = x.to_bits();
        let e = ((bits >> 52) & 0x7ff) as i64 - 1023;
        let m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | (1023u64 << 52));
        // ln m = 2·atanh(t), t = (m-1)/(m+1) ∈ [0, 1/3): the series
        // 2t·(1 + t²/3 + t⁴/5 + …) converges fast and monotonically.
        let t = (m - 1.0) / (m + 1.0);
        let t2 = t * t;
        let mut term = t;
        let mut sum = 0.0;
        let mut k = 1.0;
        while sum + term / k != sum {
            sum += term / k;
            term *= t2;
            k += 2.0;
        }
        e as f64 * LN_2 + 2.0 * sum
    }

    /// Deterministic `e^x` for the modest negative exponents the zipf
    /// weights need (|x| ≲ 50). Same portability rationale as [`det_ln`]:
    /// range-reduce by exact powers of two, then a Taylor sum in
    /// correctly-rounded arithmetic.
    fn det_exp(x: f64) -> f64 {
        debug_assert!(x.is_finite() && x.abs() < 700.0);
        // x = k·ln2 + r, |r| ≤ ln2/2; e^x = 2^k · e^r.
        let k = (x / LN_2 + if x >= 0.0 { 0.5 } else { -0.5 }) as i64;
        let r = x - k as f64 * LN_2;
        let mut term = 1.0;
        let mut sum = 1.0;
        let mut n = 1.0;
        loop {
            term *= r / n;
            let next = sum + term;
            if next == sum {
                break;
            }
            sum = next;
            n += 1.0;
        }
        // 2^k as an exact bit pattern (k stays far inside normal range).
        sum * f64::from_bits(((1023 + k) as u64) << 52)
    }

    /// A zipf (discrete power-law) sampler over ranks `0..n`: rank `k`
    /// (0-based) is drawn with probability proportional to `(k+1)^-s`.
    /// Built for the serve-layer traffic generator, where a handful of hot
    /// meshes should dominate a long cold tail the way real multi-tenant
    /// catalogs do.
    ///
    /// Sampling inverts a precomputed CDF by binary search; one `next_u64`
    /// per draw. The CDF is computed with the deterministic ln/exp kernels
    /// above, so a given `(n, s, seed)` replays the same rank sequence on
    /// every platform.
    #[derive(Debug, Clone)]
    pub struct Zipf {
        cdf: Vec<f64>,
    }

    impl Zipf {
        /// A sampler over `n` ranks with exponent `s ≥ 0` (`s = 0` is
        /// uniform; larger `s` concentrates mass on low ranks).
        ///
        /// # Panics
        /// Panics when `n == 0` or `s` is negative/non-finite.
        pub fn new(n: usize, s: f64) -> Self {
            assert!(n > 0, "zipf needs at least one rank");
            assert!(
                s >= 0.0 && s.is_finite(),
                "zipf exponent must be finite and >= 0"
            );
            let mut cdf = Vec::with_capacity(n);
            let mut acc = 0.0;
            for k in 0..n {
                acc += det_exp(-s * det_ln((k + 1) as f64));
                cdf.push(acc);
            }
            let total = acc;
            for c in &mut cdf {
                *c /= total;
            }
            // Guard the binary search against the last partial sum rounding
            // below a unit draw.
            *cdf.last_mut().expect("n > 0") = 1.0;
            Self { cdf }
        }

        /// Number of ranks.
        pub fn n(&self) -> usize {
            self.cdf.len()
        }

        /// Draws a 0-based rank in `0..n`.
        pub fn sample<R: RngExt>(&self, rng: &mut R) -> usize {
            // Same 53-bit construction as `random_range`: uniform in [0, 1).
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.cdf.partition_point(|&c| c <= u)
        }
    }
}

/// Concrete generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state, per
            // the xoshiro reference implementation's seeding advice.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** step.
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::Zipf;
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn range_samples_stay_in_range_and_spread() {
        let mut rng = StdRng::seed_from_u64(7);
        let (mut lo_half, mut hi_half) = (0u32, 0u32);
        for _ in 0..10_000 {
            let x = rng.random_range(-0.35..0.35);
            assert!((-0.35..0.35).contains(&x));
            if x < 0.0 {
                lo_half += 1;
            } else {
                hi_half += 1;
            }
        }
        // Crude uniformity check: both halves well populated.
        assert!(lo_half > 4_000 && hi_half > 4_000, "{lo_half}/{hi_half}");
    }

    #[test]
    #[should_panic(expected = "non-empty finite range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(1.0..1.0);
    }

    #[test]
    fn zipf_pins_its_first_draws() {
        // The serve traffic generator's replayability rests on this exact
        // sequence: (n=8, s=1.1, seed=42) must draw these 32 ranks on every
        // platform. If this test breaks, seeded workloads stop being
        // comparable across machines — do not just re-pin without a reason.
        let zipf = Zipf::new(8, 1.1);
        let mut rng = StdRng::seed_from_u64(42);
        let draws: Vec<usize> = (0..32).map(|_| zipf.sample(&mut rng)).collect();
        assert_eq!(
            draws,
            vec![
                0, 0, 2, 6, 7, 3, 3, 4, 3, 1, 2, 0, 4, 0, 3, 5, 2, 4, 3, 3, 0, 0, 1, 2, 0, 1, 1, 3,
                2, 0, 1, 2
            ],
        );
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let zipf = Zipf::new(16, 1.1);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u32; 16];
        for _ in 0..20_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        // Rank 0 dominates, and the head outweighs the tail heavily.
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[4]);
        let head: u32 = counts[..4].iter().sum();
        let tail: u32 = counts[4..].iter().sum();
        // Analytically head/tail ≈ 1.88 at (n=16, s=1.1); assert well
        // above uniform's 1/3 without hugging the exact ratio.
        assert!(head > tail + tail / 2, "head {head} vs tail {tail}");
        // Every rank is reachable.
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let zipf = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_rejects_empty_catalog() {
        let _ = Zipf::new(0, 1.0);
    }
}
