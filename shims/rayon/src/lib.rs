//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a small API-compatible subset of rayon implemented on scoped OS threads
//! (`std::thread::scope`). It covers exactly what the engine uses:
//! `slice.par_iter()`, `.zip(...)`, `.map(...)`, `.collect()`.
//!
//! Work items are handed out dynamically from a shared queue, so uneven
//! patches load-balance the same way rayon's work stealing would at this
//! granularity (the engine only parallelizes over coarse blocks/patches,
//! never over inner-loop items). Results are returned in input order.

use std::num::NonZeroUsize;
use std::sync::Mutex;

/// Everything the engine imports.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// Upper bound on worker threads, overridable for tests via
/// `RAYON_NUM_THREADS` (same variable real rayon honours).
fn max_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Runs `f` over `items`, fanning out to OS threads, preserving input order.
fn par_map_vec<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = max_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Dynamic dispatch: each worker pulls the next unclaimed item. The lock
    // is taken once per coarse block, so contention is negligible.
    let queue = Mutex::new(items.into_iter().enumerate());
    let done = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let next = queue.lock().expect("queue poisoned").next();
                match next {
                    Some((i, item)) => {
                        let r = f(item);
                        done.lock().expect("results poisoned").push((i, r));
                    }
                    None => break,
                }
            });
        }
    });
    let mut out = done.into_inner().expect("results poisoned");
    out.sort_unstable_by_key(|&(i, _)| i);
    out.into_iter().map(|(_, r)| r).collect()
}

/// Entry point mirroring rayon's `par_iter` on slices (and, via deref, on
/// `Vec`).
pub trait IntoParallelRefIterator<'data> {
    /// Borrowed item type.
    type Item: Send + 'data;
    /// Starts a parallel pipeline over `&self`.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    fn par_iter(&'data self) -> ParIter<'data, &'data T> {
        ParIter::new(self.iter().collect())
    }
}

/// A materialized parallel iterator over borrowed items.
pub struct ParIter<'data, T: Send + 'data> {
    items: Vec<T>,
    _marker_lifetime: std::marker::PhantomData<&'data ()>,
}

// Rust cannot infer the phantom field in the struct literal above; provide
// the constructor explicitly instead of deriving.
impl<'data, T: Send + 'data> ParIter<'data, T> {
    fn new(items: Vec<T>) -> Self {
        Self {
            items,
            _marker_lifetime: std::marker::PhantomData,
        }
    }

    /// Pairs this iterator with any exactly-sized sequence.
    pub fn zip<U: Send>(self, other: impl IntoIterator<Item = U>) -> ParIter<'data, (T, U)> {
        let zipped: Vec<(T, U)> = self.items.into_iter().zip(other).collect();
        ParIter::new(zipped)
    }

    /// Maps each item through `f` (executed on the worker threads).
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<'data, T, F> {
        ParMap {
            items: self.items,
            f,
            _marker_lifetime: std::marker::PhantomData,
        }
    }
}

/// A mapped parallel pipeline, ready to collect.
pub struct ParMap<'data, T: Send + 'data, F> {
    items: Vec<T>,
    f: F,
    _marker_lifetime: std::marker::PhantomData<&'data ()>,
}

impl<'data, T: Send + 'data, F> ParMap<'data, T, F> {
    /// Executes the pipeline on worker threads and collects the results in
    /// input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromIterator<R>,
    {
        par_map_vec(self.items, self.f).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn zip_then_map() {
        let xs = [1u32, 2, 3];
        let ys = vec![10u32, 20, 30];
        let sums: Vec<u32> = xs.par_iter().zip(ys).map(|(&a, b)| a + b).collect();
        assert_eq!(sums, vec![11, 22, 33]);
    }

    #[test]
    fn zip_with_mutable_slices() {
        // The engine zips block bounds with disjoint &mut [f64] slices.
        let bounds = [(0usize, 2usize), (2, 4)];
        let mut buf = vec![0.0f64; 4];
        let (a, b) = buf.split_at_mut(2);
        let slices: Vec<&mut [f64]> = vec![a, b];
        let lens: Vec<usize> = bounds
            .par_iter()
            .zip(slices)
            .map(|(&(s, e), slice)| {
                for v in slice.iter_mut() {
                    *v = s as f64;
                }
                e - s
            })
            .collect();
        assert_eq!(lens, vec![2, 2]);
        assert_eq!(buf, vec![0.0, 0.0, 2.0, 2.0]);
    }

    #[test]
    fn empty_input() {
        let xs: Vec<u8> = Vec::new();
        let out: Vec<u8> = xs.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }
}
