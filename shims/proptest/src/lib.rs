//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a small property-testing harness with proptest's surface syntax: the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros,
//! `ProptestConfig::with_cases`, range and tuple strategies,
//! `prop_map` / `prop_filter`, and `bool::ANY`.
//!
//! Differences from upstream, by design:
//! * no shrinking — a failing case reports its inputs via the assertion
//!   message and the deterministic per-test seed reproduces it;
//! * case streams are seeded from the test name, so runs are reproducible
//!   without a persistence file.

pub mod strategy;
pub mod test_runner;

/// Strategies over `bool`.
pub mod bool {
    /// Uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    /// The `proptest::bool::ANY` strategy.
    pub const ANY: BoolAny = BoolAny;

    impl crate::strategy::Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut crate::test_runner::TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (with formatted context) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        match $cond {
            true => {}
            false => {
                return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                    format!("assertion failed: {}", stringify!($cond)),
                ));
            }
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        match $cond {
            true => {}
            false => {
                return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                    format!($($fmt)+),
                ));
            }
        }
    };
}

/// Asserts two values are equal inside a `proptest!` body, failing the
/// current case (showing both sides, plus optional formatted context)
/// instead of panicking directly.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    left,
                    right
                ),
            ));
        }
    }};
}

/// Declares property tests: each `fn name(binding in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property '{}' failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(
            x in -2.0f64..3.0,
            n in 5u64..10,
            m in 1usize..=2,
            flag in crate::bool::ANY,
        ) {
            prop_assert!((-2.0..3.0).contains(&x), "x out of range: {x}");
            prop_assert!((5..10).contains(&n));
            prop_assert!(m == 1 || m == 2);
            let _ = flag;
        }

        #[test]
        fn map_and_filter_compose(
            v in (0.0f64..1.0, 0.0f64..1.0)
                .prop_map(|(a, b)| a + b)
                .prop_filter("nonzero", |s| *s > 1e-12),
        ) {
            prop_assert!(v > 0.0 && v < 2.0);
        }
    }

    proptest! {
        #[test]
        #[should_panic(expected = "failed at case")]
        fn failures_report_case(x in 0.0f64..1.0) {
            prop_assert!(x < 0.0, "x was {x}");
        }
    }
}
