//! Value-generation strategies (subset of `proptest::strategy`).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value from this strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred`, retrying (bounded) until one passes.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        // Generous retry budget: filters in this repo reject a tiny
        // fraction of candidates (e.g. near-degenerate triangles).
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 10000 candidates", self.reason);
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.uniform_f64(self.start, self.end)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategies!(u64, usize, u32, i32);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn integer_ranges_cover_all_values() {
        let mut rng = TestRng::from_name("cover");
        let mut seen = [false; 3];
        for _ in 0..200 {
            let v = (0usize..3).generate(&mut rng);
            seen[v] = true;
        }
        assert_eq!(seen, [true; 3]);
        for _ in 0..50 {
            let v = (1usize..=2).generate(&mut rng);
            assert!(v == 1 || v == 2);
        }
    }

    #[test]
    fn filter_retries_until_accepted() {
        let mut rng = TestRng::from_name("filter");
        let s = (0.0f64..1.0).prop_filter("upper half", |x| *x > 0.5);
        for _ in 0..100 {
            assert!(s.generate(&mut rng) > 0.5);
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = TestRng::from_name("tuple");
        let (pair, n) = ((0.0f64..1.0, 2.0f64..3.0), 5u64..6).generate(&mut rng);
        assert!((0.0..1.0).contains(&pair.0) && (2.0..3.0).contains(&pair.1));
        assert_eq!(n, 5);
    }
}
