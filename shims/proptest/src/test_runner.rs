//! Case execution support (subset of `proptest::test_runner`).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// How many cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed property case (carried by `prop_assert!`).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// The generator driving strategies: seeded deterministically from the test
/// name so every run (and every CI machine) sees the same cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seeds from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            inner: StdRng::seed_from_u64(h),
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.inner.random_range(lo..hi)
    }
}
