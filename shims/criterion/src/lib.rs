//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a small wall-clock benchmarking harness with criterion's surface API:
//! `Criterion`, `bench_function`, `benchmark_group` (with `sample_size` and
//! `bench_with_input`), `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Methodology: each benchmark warms up, auto-scales its iteration count to
//! a target sample duration, then takes `sample_size` timed samples and
//! reports `[min  median  max]` nanoseconds per iteration. No plotting, no
//! statistical regression — comparisons between two builds should use the
//! medians.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (older call sites) while the
/// benches themselves may use `std::hint::black_box` directly.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Target wall time per measured sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(40);
/// Cap on warmup + calibration time per benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(120);

/// The benchmark driver handed to every `criterion_group!` target.
pub struct Criterion {
    default_sample_size: usize,
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 10,
            filter: None,
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Restricts runs to benchmarks whose id contains `filter`.
    pub fn with_filter(mut self, filter: Option<String>) -> Self {
        self.filter = filter;
        self
    }

    /// Enables run-once smoke mode (criterion's `--test` flag): every
    /// benchmark closure executes exactly once, with no calibration, warmup
    /// or timing — CI uses this to keep the harness from rotting without
    /// paying for measurements.
    pub fn with_test_mode(mut self, test_mode: bool) -> Self {
        self.test_mode = test_mode;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(
            id,
            self.default_sample_size,
            &self.filter,
            self.test_mode,
            f,
        );
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.default_sample_size,
            parent: self,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    parent: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of measured samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(
            &full,
            self.sample_size,
            &self.parent.filter,
            self.parent.test_mode,
            f,
        );
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.render());
        run_one(
            &full,
            self.sample_size,
            &self.parent.filter,
            self.parent.test_mode,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// A benchmark identifier of the form `function/parameter`.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and parameter value.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }

    fn render(&self) -> String {
        format!("{}/{}", self.function, self.parameter)
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    /// Iterations per measured sample (calibrated by the harness).
    iters: u64,
    /// Measured sample durations, filled by `iter`.
    samples: Vec<Duration>,
    sample_size: usize,
    mode: BencherMode,
}

enum BencherMode {
    Calibrate,
    Measure,
    /// Run-once smoke mode: execute the routine a single time, no timing.
    Once,
}

impl Bencher {
    /// Times `routine`, keeping its result alive through `black_box`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            BencherMode::Once => {
                std_black_box(routine());
                self.samples.push(Duration::ZERO);
            }
            BencherMode::Calibrate => {
                // One timed call decides how many iterations one ~40 ms
                // sample needs; long routines run once per sample.
                let start = Instant::now();
                std_black_box(routine());
                let once = start.elapsed().max(Duration::from_nanos(20));
                let per_sample =
                    (TARGET_SAMPLE.as_nanos() / once.as_nanos().max(1)).clamp(1, 1 << 24) as u64;
                self.iters = per_sample;
                // Warm caches/branch predictors within the budget.
                let warm_until = Instant::now() + WARMUP_BUDGET;
                while Instant::now() < warm_until && once < Duration::from_millis(30) {
                    std_black_box(routine());
                }
            }
            BencherMode::Measure => {
                for _ in 0..self.sample_size {
                    let start = Instant::now();
                    for _ in 0..self.iters {
                        std_black_box(routine());
                    }
                    self.samples.push(start.elapsed());
                }
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    filter: &Option<String>,
    test_mode: bool,
    mut f: F,
) {
    if let Some(pat) = filter {
        if !id.contains(pat.as_str()) {
            return;
        }
    }
    if test_mode {
        let mut b = Bencher {
            iters: 1,
            samples: Vec::new(),
            sample_size: 1,
            mode: BencherMode::Once,
        };
        f(&mut b);
        if b.samples.is_empty() {
            println!("{id:<48} (no samples: closure never called iter)");
        } else {
            println!("{id:<48} ok (run once, --test mode)");
        }
        return;
    }
    let mut b = Bencher {
        iters: 1,
        samples: Vec::new(),
        sample_size,
        mode: BencherMode::Calibrate,
    };
    f(&mut b);
    b.mode = BencherMode::Measure;
    b.samples.clear();
    f(&mut b);

    if b.samples.is_empty() {
        println!("{id:<48} (no samples: closure never called iter)");
        return;
    }
    let mut per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_nanos() as f64 / b.iters as f64)
        .collect();
    per_iter.sort_by(|a, c| a.total_cmp(c));
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];
    let median = per_iter[per_iter.len() / 2];
    println!(
        "{id:<48} time: [{} {} {}]  ({} samples x {} iters)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(max),
        per_iter.len(),
        b.iters
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(filter: ::std::option::Option<::std::string::String>, test_mode: bool) {
            let mut c = $crate::Criterion::default()
                .with_filter(filter)
                .with_test_mode(test_mode);
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench binary. Accepts and ignores
/// harness flags cargo passes (`--bench`); `--test` switches to run-once
/// smoke mode (each benchmark closure executes once, untimed — the CI bench
/// smoke step); a bare argument is treated as a substring filter on
/// benchmark ids.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let test_mode = ::std::env::args().skip(1).any(|a| a == "--test");
            let filter = ::std::env::args()
                .skip(1)
                .find(|a| !a.starts_with("--"));
            $( $group(filter.clone(), test_mode); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn targets(c: &mut Criterion) {
        c.bench_function("trivial_add", |b| b.iter(|| black_box(1u64) + 1));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("times_two", 21), &21u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }

    #[test]
    fn harness_runs_and_reports() {
        // Smoke: the full calibrate + measure path completes quickly on a
        // trivial closure and honours filters.
        let mut c = Criterion::default().with_filter(Some("trivial".into()));
        c.default_sample_size = 3;
        targets(&mut c);
    }
}
