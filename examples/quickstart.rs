//! Five-minute tour: generate an unstructured mesh, project a smooth field
//! onto a dG space, SIAC-filter it with the per-element scheme, and verify
//! the filter improved the solution.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ustencil::dg::{l2_error, project_l2};
use ustencil::engine::prelude::*;
use ustencil::mesh::{generate_mesh, MeshClass};

fn main() {
    let tau = std::f64::consts::TAU;
    let f = move |x: f64, y: f64| (tau * x).sin() * (tau * y).cos();

    // 1. An unstructured Delaunay mesh of the periodic unit square with
    //    roughly uniform elements (the paper's low-variance class).
    let mesh = generate_mesh(MeshClass::LowVariance, 4_000, 42);
    println!(
        "mesh: {} triangles, longest edge s = {:.4}",
        mesh.n_triangles(),
        mesh.max_edge_length()
    );

    // 2. A quadratic dG field: the L2 projection of a smooth function.
    let p = 2;
    let field = project_l2(&mesh, p, f, 4);

    // 3. Evaluation points: the quadrature points of every element.
    let grid = ComputationGrid::quadrature_points(&mesh, p);
    println!("computation grid: {} points", grid.len());

    // 4. Post-process with the per-element scheme (Algorithm 3 of the
    //    paper) on 16 overlapped patches.
    let solution = PostProcessor::new(Scheme::PerElement)
        .blocks(16)
        .run(&mesh, &field, &grid);
    println!(
        "post-processed {} points in {:.2?} ({} stencil/element intersection tests)",
        solution.values.len(),
        solution.wall,
        solution.metrics.intersection_tests
    );

    // 5. Compare pointwise errors before and after filtering, away from the
    //    domain boundary (the periodic wrap is exact, but the projected
    //    field is smoothest in the interior).
    let dg_err = l2_error(&mesh, &field, f, 4);
    let mut filtered_err: f64 = 0.0;
    let mut raw_err: f64 = 0.0;
    let mut n = 0usize;
    for (i, pt) in grid.points().iter().enumerate() {
        let exact = f(pt.x, pt.y);
        let e = grid.owners()[i] as usize;
        let tri = mesh.triangle(e);
        let (u, v) = tri.map_to_unit(*pt).unwrap();
        raw_err += (field.eval_ref(e, u, v) - exact).powi(2);
        filtered_err += (solution.values[i] - exact).powi(2);
        n += 1;
    }
    let raw = (raw_err / n as f64).sqrt();
    let filtered = (filtered_err / n as f64).sqrt();
    println!("dG L2 error          : {dg_err:.3e}");
    println!("raw RMS at grid pts  : {raw:.3e}");
    println!("SIAC RMS at grid pts : {filtered:.3e}");
    println!(
        "error reduction      : {:.1}x",
        raw / filtered.max(f64::MIN_POSITIVE)
    );
}
