//! The paper's mesh classes (Figures 9 and 10): generate low-variance and
//! high-variance unstructured meshes plus the structured pattern, and print
//! the statistics that define the classification.
//!
//! ```sh
//! cargo run --release --example mesh_zoo
//! ```

use ustencil::mesh::{generate_mesh, MeshClass, MeshStats};

fn main() {
    println!(
        "{:<22} {:>9} {:>10} {:>10} {:>9} {:>10}",
        "class", "triangles", "min edge", "max edge", "edge CV", "area"
    );
    for (class, name) in [
        (MeshClass::LowVariance, "low variance (Fig 9)"),
        (MeshClass::HighVariance, "high variance (Fig 10)"),
        (MeshClass::StructuredPattern, "structured pattern"),
    ] {
        for target in [4_000usize, 16_000] {
            let mesh = generate_mesh(class, target, 7);
            mesh.validate().expect("generated mesh is valid");
            let s = MeshStats::compute(&mesh);
            println!(
                "{:<22} {:>9} {:>10.5} {:>10.5} {:>9.3} {:>10.6}",
                name, s.n_triangles, s.min_edge, s.max_edge, s.edge_cv, s.total_area
            );
        }
    }
    println!();
    println!("The edge coefficient-of-variation (CV) separates the classes: the");
    println!("high-variance generator grades element sizes by a cubic warp, giving");
    println!("a much wider edge-length spread at the same element count — the mesh");
    println!("property that widens the per-element advantage in Figures 12/13.");
}
