//! Compile-once / apply-many: SIAC-filter a whole time series through an
//! evaluation plan.
//!
//! A time-dependent simulation produces a new coefficient vector every
//! frame while the mesh, evaluation grid, and kernel stay fixed — exactly
//! the shape of redundancy `ustencil::plan` removes. This example compiles
//! a plan, post-processes a rotating-field time series with it, checks one
//! frame against a direct run, and round-trips the plan through JSON the
//! way an offline build/serve split would.
//!
//! ```sh
//! cargo run --release --example timeseries_postprocess
//! ```

use std::time::Instant;
use ustencil::dg::project_l2;
use ustencil::engine::prelude::*;
use ustencil::mesh::{generate_mesh, MeshClass};
use ustencil::plan::PlanExt;
use ustencil::EvalPlan;

fn main() {
    let tau = std::f64::consts::TAU;
    // A translating wave: frame t is the profile advected by t * dt.
    let frame = move |t: usize| {
        let shift = 0.03 * t as f64;
        move |x: f64, y: f64| (tau * (x - shift)).sin() * (tau * y).cos()
    };

    // 1. Fixed geometry: mesh, dG space, and evaluation grid. Linear
    //    elements on a small mesh keep this demo quick; a degree-2 plan on
    //    the quickstart's 4k mesh stores ~21M entries (about 1 GiB) and
    //    compiles for over a minute, so size plans deliberately
    //    (PlanStats::bytes makes the footprint explicit).
    let mesh = generate_mesh(MeshClass::LowVariance, 1_000, 42);
    let p = 1;
    let grid = ComputationGrid::quadrature_points(&mesh, p);

    // 2. Compile the plan once, from a configured PostProcessor. This pays
    //    the full geometric discovery cost (clipping, fan triangulation,
    //    quadrature x kernel x basis) exactly one time.
    let processor = PostProcessor::new(Scheme::PerElement).blocks(16);
    let t0 = Instant::now();
    let plan = processor.compile_plan(&mesh, p, &grid);
    println!(
        "compiled plan: {} rows, {} entries, {:.1} MiB in {:.2?}",
        plan.rows(),
        plan.nnz(),
        plan.bytes() as f64 / (1024.0 * 1024.0),
        t0.elapsed()
    );

    // 3. Post-process the whole time series through the plan.
    let n_frames = 16;
    let t0 = Instant::now();
    let mut checksum = 0.0;
    for t in 0..n_frames {
        let field = project_l2(&mesh, p, frame(t), 4);
        let filtered = plan.apply(&field);
        checksum += filtered.values[0];
    }
    let series = t0.elapsed();
    println!(
        "filtered {n_frames} frames in {:.2?} ({:.2?}/frame incl. projection)",
        series,
        series / n_frames as u32
    );

    // 4. Spot-check: the plan is a drop-in for the direct pipeline.
    let field = project_l2(&mesh, p, frame(0), 4);
    let t0 = Instant::now();
    let direct = processor.run(&mesh, &field, &grid);
    let direct_wall = t0.elapsed();
    let diff = plan.apply(&field).max_abs_diff(&direct.values);
    println!("one direct run: {direct_wall:.2?}; plan vs direct max |diff| = {diff:.2e}");
    assert!(diff <= 1e-12, "plan must match the direct pipeline");

    // 5. The build/serve split: serialize the plan, load it back, and
    //    verify the loaded copy evaluates bit-identically.
    let json = plan.to_pretty_string();
    let loaded = EvalPlan::from_json(&json).expect("plan round trip");
    let a = plan.apply(&field);
    let b = loaded.apply(&field);
    assert!(a
        .values
        .iter()
        .zip(&b.values)
        .all(|(x, y)| x.to_bits() == y.to_bits()));
    println!(
        "serialized plan: {:.1} MiB of JSON, loaded copy is bit-identical",
        json.len() as f64 / (1024.0 * 1024.0)
    );
    let _ = checksum;
}
