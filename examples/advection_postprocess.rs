//! End-to-end dG workflow, as in the paper's motivating application: solve a
//! linear advection equation with a discontinuous Galerkin method, then
//! SIAC-filter the *simulated* solution and measure the accuracy gain.
//!
//! ```sh
//! cargo run --release --example advection_postprocess
//! ```

use ustencil::dg::{l2_error, project_l2, AdvectionConfig, AdvectionSolver};
use ustencil::engine::prelude::*;
use ustencil::mesh::{generate_mesh, MeshClass};

fn main() {
    let tau = std::f64::consts::TAU;
    let f0 = move |x: f64, y: f64| (tau * x).sin() * (tau * y).sin();

    // Periodic advection needs matching boundary traces: use the
    // structured-pattern mesh (each lattice square split along a diagonal).
    let n = 24;
    let mesh = generate_mesh(MeshClass::StructuredPattern, 2 * n * n, 0);
    let p = 2;
    let cfg = AdvectionConfig {
        velocity: (1.0, 0.5),
        cfl: 0.15,
    };

    // Solve u_t + c . grad(u) = 0 to t = 0.3.
    let solver = AdvectionSolver::new(mesh.clone(), p, cfg);
    let mut field = project_l2(&mesh, p, f0, 4);
    let t_end = 0.3;
    let steps = solver.advance(&mut field, t_end);
    let exact = move |x: f64, y: f64| f0(x - cfg.velocity.0 * t_end, y - cfg.velocity.1 * t_end);
    let dg_err = l2_error(&mesh, &field, exact, 4);
    println!(
        "advected {} elements (p = {p}) for {steps} RK3 steps; dG L2 error {dg_err:.3e}",
        mesh.n_triangles()
    );

    // Post-process the *simulation output* with both schemes and check they
    // agree (the paper's equivalence) and that filtering helps.
    let grid = ComputationGrid::quadrature_points(&mesh, p);
    let pe = PostProcessor::new(Scheme::PerElement).run(&mesh, &field, &grid);
    let pp = PostProcessor::new(Scheme::PerPoint).run(&mesh, &field, &grid);
    println!(
        "scheme agreement: max |per-point - per-element| = {:.2e}",
        pe.max_abs_diff(&pp)
    );

    let mut raw = 0.0f64;
    let mut filt = 0.0f64;
    for (i, pt) in grid.points().iter().enumerate() {
        let e = grid.owners()[i] as usize;
        let tri = mesh.triangle(e);
        let (u, v) = tri.map_to_unit(*pt).unwrap();
        let ex = exact(pt.x, pt.y);
        raw += (field.eval_ref(e, u, v) - ex).powi(2);
        filt += (pe.values[i] - ex).powi(2);
    }
    let n_pts = grid.len() as f64;
    println!(
        "RMS error at grid points: raw {:.3e} -> filtered {:.3e}",
        (raw / n_pts).sqrt(),
        (filt / n_pts).sqrt()
    );
    println!(
        "work: {} intersection tests, {} integration sub-regions, {:.1} Mflop",
        pe.metrics.intersection_tests,
        pe.metrics.subregions,
        pe.metrics.flops as f64 / 1e6
    );
}
