//! Multi-device scaling of the per-element scheme (the paper's Figure 14
//! setup): split the mesh into `N_GPU x N_SM` patches, distribute them
//! evenly across simulated devices, and report the simulated end-to-end
//! time including the two-stage reduction.
//!
//! ```sh
//! cargo run --release --example multi_device_scaling
//! ```

use ustencil::dg::project_l2;
use ustencil::engine::prelude::*;
use ustencil::mesh::{generate_mesh, MeshClass};

fn main() {
    let tau = std::f64::consts::TAU;
    let mesh = generate_mesh(MeshClass::LowVariance, 16_000, 3);
    let p = 1;
    let field = project_l2(&mesh, p, move |x, y| (tau * x).sin() * (tau * y).cos(), 4);
    let grid = ComputationGrid::quadrature_points(&mesh, p);
    println!(
        "mesh {} triangles, {} grid points, degree {p}",
        mesh.n_triangles(),
        grid.len()
    );
    println!(
        "{:>8} {:>10} {:>14} {:>14} {:>10}",
        "devices", "patches", "compute (ms)", "reduce (ms)", "speedup"
    );

    let mut base = None;
    for n_devices in [1usize, 2, 4, 8] {
        let sms = 16;
        let sol = PostProcessor::new(Scheme::PerElement)
            .blocks(n_devices * sms)
            .run(&mesh, &field, &grid);
        let cfg = DeviceConfig {
            n_devices,
            n_sms: sms,
            ..Default::default()
        };
        let rep = sol.simulate(&cfg);
        let compute = rep.total_ms - rep.reduction_ms;
        let base_ms = *base.get_or_insert(rep.total_ms);
        println!(
            "{:>8} {:>10} {:>14.2} {:>14.3} {:>9.2}x",
            n_devices,
            n_devices * sms,
            compute,
            rep.reduction_ms,
            base_ms / rep.total_ms
        );
    }
    println!();
    println!("Patch granularity tracks the device count, so the busiest SM's load");
    println!("shrinks almost linearly — the overlapped tiling needs no inter-patch");
    println!("synchronization, only the cheap final reduction (Section 4).");
}
