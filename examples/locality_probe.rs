//! Locality probe: per-layout plan locality stats plus an interleaved
//! min-of-N apply timing — the measurement behind the "Locality" section
//! of EXPERIMENTS.md.
//!
//! Usage: `cargo run --release --example locality_probe [n_tri] [reps]`
//! (defaults: 16000 triangles, 8 reps). Compiles one plan per [`Layout`]
//! over the same degree-1 workload, then times `apply_into` — the
//! serve-time fast path — with the layouts interleaved every rep so
//! machine drift hits all of them equally; the minimum over reps is the
//! least-noise estimate on a shared host. Prints each layout's best time
//! next to its [`locality_stats`](ustencil::EvalPlan::locality_stats):
//! mean/95p row span, estimated fresh lines per row, and tile shape.
use std::time::Instant;
use ustencil::dg::project_l2;
use ustencil::engine::{ComputationGrid, Layout};
use ustencil::mesh::{generate_mesh, MeshClass};
use ustencil::plan::{CompileOptions, EvalPlan};

fn main() {
    let n_tri: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16_000);
    let reps: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let mesh = generate_mesh(MeshClass::LowVariance, n_tri, 2013);
    let p = 1;
    let field = project_l2(
        &mesh,
        p,
        |x, y| {
            let tau = std::f64::consts::TAU;
            (tau * x).sin() * (tau * y).cos()
        },
        4,
    );
    let grid = ComputationGrid::quadrature_points(&mesh, p);
    let plans: Vec<EvalPlan> = Layout::ALL
        .iter()
        .map(|&layout| {
            let t = Instant::now();
            let plan = EvalPlan::compile(
                &mesh,
                &grid,
                p,
                &CompileOptions {
                    layout,
                    ..CompileOptions::default()
                },
            );
            eprintln!(
                "compiled {} in {:.1}s",
                layout.label(),
                t.elapsed().as_secs_f64()
            );
            plan
        })
        .collect();
    let mut best = [f64::INFINITY; 3];
    let mut out = vec![0.0; plans[0].rows()];
    // Interleave layouts each rep so machine drift hits all three equally.
    for _ in 0..reps {
        for (i, plan) in plans.iter().enumerate() {
            let t = Instant::now();
            plan.apply_into(&field, &mut out);
            best[i] = best[i].min(t.elapsed().as_secs_f64());
        }
    }
    for (i, plan) in plans.iter().enumerate() {
        let s = plan.locality_stats();
        println!(
            "{:16} best={:8.1}ms span={:8.1} p95={:8.1} reuse={:6.2} tiles={:5} rows/tile={:8.1}",
            s.layout,
            best[i] * 1e3,
            s.mean_span_lines,
            s.p95_span_lines,
            s.est_reuse_lines,
            s.n_tiles,
            s.mean_rows_per_tile
        );
    }
}
