//! One-sided SIAC kernels near non-periodic boundaries (the paper's cited
//! alternative to periodic wrap, Ryan–Shu style): shift the B-spline node
//! lattice so the stencil support stays inside the domain, re-solve the
//! moment conditions, and verify polynomial reproduction survives.
//!
//! ```sh
//! cargo run --release --example boundary_onesided
//! ```

use ustencil::quadrature::GaussLegendre;
use ustencil::siac::{Kernel1d, OneSidedKernel};

/// Convolves `u` against the kernel at evaluation point `x` with scale `h`
/// by exact per-cell Gauss integration: `u*(x) = ∫ K(s) u(x + h s) ds`.
fn convolve(kernel: &Kernel1d, u: impl Fn(f64) -> f64, x: f64, h: f64) -> f64 {
    let rule = GaussLegendre::with_strength(3 * kernel.smoothness() + 4);
    let (lo, _) = kernel.support();
    (0..kernel.n_cells())
        .map(|c| {
            let a = lo + c as f64;
            rule.integrate_on(a, a + 1.0, |s| kernel.eval(s) * u(x + h * s))
        })
        .sum()
}

fn main() {
    let k = 2; // quadratic smoothness: reproduces degree 4
    let h = 0.04;
    let factory = OneSidedKernel::new(k);
    let poly = |y: f64| 1.0 + 2.0 * y - y * y + 0.5 * y * y * y;

    println!("one-sided SIAC filtering, k = {k}, h = {h}");
    println!(
        "{:>8} {:>12} {:>14} {:>14} {:>12}",
        "x", "node shift", "u*(x)", "exact", "error"
    );
    for &x in &[0.001, 0.01, 0.05, 0.2, 0.5, 0.95, 0.999] {
        let kernel = factory
            .for_position(x, h)
            .expect("stencil fits inside the unit interval");
        let got = convolve(&kernel, poly, x, h);
        let want = poly(x);
        println!(
            "{:>8.3} {:>12.3} {:>14.8} {:>14.8} {:>12.2e}",
            x,
            kernel.node_offset(),
            got,
            want,
            (got - want).abs()
        );
        // The support must stay inside [0, 1].
        let (lo, hi) = kernel.support();
        assert!(x + h * lo >= -1e-9 && x + h * hi <= 1.0 + 1e-9);
    }
    println!();
    println!("Interior points use the symmetric kernel (shift 0); points within");
    println!("half a stencil width of the boundary get a shifted node lattice.");
    println!("Reproduction of polynomials up to degree 2k holds for every shift,");
    println!("so accuracy is conserved right up to the boundary.");
}
