#!/usr/bin/env python3
"""Compare two benchmark records written by `reproduce bench --record`.

Usage: bench_diff.py BASELINE.json CANDIDATE.json [--threshold 0.10]

Walks the fixtures both records share and fails (exit 1) when any
candidate wall exceeds the baseline by more than the threshold fraction.
Metrics whose names end in `_ms` or `_us` (e.g. a service fixture's
`p99_us`, or the overlap fixture's `exposed_ms`) are timings too and are
gated with the same threshold. `exposed_ms` — the exposed slice of the
halo exchange, the quantity the interior-first overlap exists to
shrink — is additionally reported in both directions even when it stays
inside the threshold, so an overlap win or an erosion of one is visible
in every diff.
Deterministic shape metrics (nnz, wire bytes, request counts) that differ
are reported as warnings: a metric drift means the workload itself
changed, so the wall comparison may not be apples to apples. The
`kernel.simd` fixtures pin the dispatched SIMD lane width (`lanes`) as
such a shape metric, so two records taken on hosts that resolve `auto`
to different vector ISAs — or a feature-detection regression that
silently drops to scalar — surface as a workload change instead of
being read as a timing swing.

CI runs this with a generous threshold (wall clocks on shared runners are
noisy); locally the 10% default is the intended gate.
"""

import argparse
import json
import sys

SCHEMA_VERSION = 1


def load(path):
    with open(path) as f:
        doc = json.load(f)
    schema = doc.get("schema")
    if schema != SCHEMA_VERSION:
        sys.exit(f"{path}: schema version {schema!r} is not supported "
                 f"(this tool reads version {SCHEMA_VERSION}); re-record it")
    entries = {e["name"]: e for e in doc.get("entries", [])}
    if not entries:
        sys.exit(f"{path}: record has no entries")
    return doc, entries


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="allowed fractional wall regression (default 0.10)")
    args = ap.parse_args()

    base_doc, base = load(args.baseline)
    cand_doc, cand = load(args.candidate)
    print(f"baseline  {args.baseline} (rev {base_doc.get('git_rev')}, "
          f"min of {base_doc.get('reps')} reps)")
    print(f"candidate {args.candidate} (rev {cand_doc.get('git_rev')}, "
          f"min of {cand_doc.get('reps')} reps)")

    shared = [n for n in base if n in cand]
    if not shared:
        sys.exit("no shared fixtures between the two records")
    for name in set(base) - set(cand):
        print(f"warning: fixture '{name}' is in the baseline only")
    for name in set(cand) - set(base):
        print(f"warning: fixture '{name}' is in the candidate only")

    print(f"\n{'fixture':>28} {'base ms':>10} {'cand ms':>10} {'ratio':>7}")
    regressions = []
    for name in shared:
        b, c = base[name]["wall_ms"], cand[name]["wall_ms"]
        ratio = c / b if b > 0 else float("inf")
        flag = ""
        if ratio > 1.0 + args.threshold:
            flag = "  REGRESSION"
            regressions.append((name, ratio))
        print(f"{name:>28} {b:>10.3f} {c:>10.3f} {ratio:>7.2f}{flag}")
        bm = base[name].get("metrics", {})
        cm = cand[name].get("metrics", {})
        for k in sorted(set(bm) | set(cm)):
            if k.endswith(("_ms", "_us")):
                # A timing metric: gate it like a wall instead of warning.
                kb, kc = bm.get(k), cm.get(k)
                if kb is None or kc is None:
                    print(f"warning: timing metric '{name}/{k}' is only in "
                          f"one record")
                    continue
                kratio = kc / kb if kb > 0 else float("inf")
                if kratio > 1.0 + args.threshold:
                    regressions.append((f"{name}/{k}", kratio))
                    print(f"{name + '/' + k:>28} {kb:>10.3f} {kc:>10.3f} "
                          f"{kratio:>7.2f}  REGRESSION")
                elif k == "exposed_ms":
                    # The overlap headline: report exposed-comms drift in
                    # both directions, threshold or not.
                    note = "exposed-comms improved" if kratio < 1.0 \
                        else "exposed-comms drift"
                    print(f"{name + '/' + k:>28} {kb:>10.3f} {kc:>10.3f} "
                          f"{kratio:>7.2f}  {note}")
            elif bm.get(k) != cm.get(k):
                if k == "lanes":
                    print(f"warning: '{name}' dispatched {cm.get(k)} SIMD "
                          f"lane(s) vs {bm.get(k)} in the baseline — a "
                          f"different vector ISA ran; treat this fixture's "
                          f"wall diff as a workload change, not a "
                          f"regression")
                else:
                    print(f"warning: '{name}' metric '{k}' drifted: "
                          f"{bm.get(k)} -> {cm.get(k)} (workload changed?)")

    if regressions:
        print(f"\nFAIL: {len(regressions)} fixture(s) regressed past "
              f"{args.threshold:.0%}:")
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x the baseline wall")
        sys.exit(1)
    print(f"\nok: {len(shared)} shared fixture(s) within {args.threshold:.0%}")


if __name__ == "__main__":
    main()
