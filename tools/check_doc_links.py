#!/usr/bin/env python3
"""Docs-link checker: every DESIGN.md section referenced from code comments
or the top-level markdown files must actually exist.

Checks three reference styles:

1. ``DESIGN.md §N`` (possibly a list: ``DESIGN.md §9, §12``) — section N
   must exist as a ``## N.`` heading in DESIGN.md.
2. ``DESIGN.md#anchor`` — the GitHub-style anchor must match a DESIGN.md
   heading.
3. Relative markdown links ``[text](FILE.md...)`` inside the top-level
   markdown files — the target file must exist (and its anchor, if one is
   given and the target is DESIGN.md).

Exits non-zero listing every broken reference. No dependencies.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
DESIGN = ROOT / "DESIGN.md"
TOP_MD = ["README.md", "DESIGN.md", "ARCHITECTURE.md", "EXPERIMENTS.md", "CHANGES.md"]


def design_sections():
    """Section numbers and GitHub-style anchors of DESIGN.md headings."""
    numbers = set()
    anchors = set()
    for line in DESIGN.read_text().splitlines():
        m = re.match(r"^(#{1,6})\s+(.*)$", line)
        if not m:
            continue
        title = m.group(2).strip()
        num = re.match(r"^(\d+)\.\s", title)
        if num:
            numbers.add(int(num.group(1)))
        anchor = re.sub(r"[^\w\s-]", "", title.lower())
        anchor = re.sub(r"\s+", "-", anchor.strip())
        anchors.add(anchor)
    return numbers, anchors


def iter_source_files():
    for pattern in ("crates/**/*.rs", "src/**/*.rs", "tests/**/*.rs", "examples/**/*.rs"):
        yield from ROOT.glob(pattern)
    for name in TOP_MD:
        p = ROOT / name
        if p.exists():
            yield p


def main():
    numbers, anchors = design_sections()
    errors = []

    for path in iter_source_files():
        text = path.read_text()
        rel = path.relative_to(ROOT)
        for lineno, line in enumerate(text.splitlines(), 1):
            # Style 1: DESIGN.md §9 / DESIGN.md §9, §12
            for m in re.finditer(r"DESIGN\.md\s*((?:§\d+(?:\s*,\s*)?)+)", line):
                for sec in re.findall(r"§(\d+)", m.group(1)):
                    if int(sec) not in numbers:
                        errors.append(f"{rel}:{lineno}: DESIGN.md §{sec} does not exist")
            # Style 2: DESIGN.md#anchor
            for m in re.finditer(r"DESIGN\.md#([A-Za-z0-9-]+)", line):
                if m.group(1) not in anchors:
                    errors.append(f"{rel}:{lineno}: DESIGN.md#{m.group(1)} anchor not found")
            # Style 3: markdown links to local .md files
            if path.suffix == ".md":
                for m in re.finditer(r"\]\((?!https?://)([^)#]+\.md)(#[A-Za-z0-9-]+)?\)", line):
                    target = ROOT / m.group(1)
                    if not target.exists():
                        errors.append(f"{rel}:{lineno}: broken link to {m.group(1)}")

    if errors:
        print("\n".join(errors))
        print(f"\n{len(errors)} broken documentation reference(s)")
        return 1
    print("doc links OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
