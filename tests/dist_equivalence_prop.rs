//! Property and fault-injection tests of the rank-sharded runtime:
//! sharded runs must agree with single-rank runs across rank counts and
//! kernel smoothness, candidate-pair work counters must partition exactly,
//! and injected transport faults (drops, reorders, a failed rank) must
//! never change the answer.

use proptest::prelude::*;
use std::time::Duration;
use ustencil::dg::project_l2;
use ustencil::dist::{
    run_dist, run_dist_on, run_plan_dist, ChannelFabric, Disposition, DistOptions, FaultPlan,
    FaultRule, LinkConfig, RecordingFabric, Tag,
};
use ustencil::engine::prelude::*;
use ustencil::mesh::{generate_mesh, MeshClass};

fn build(
    n: usize,
    p: usize,
    seed: u64,
) -> (
    ustencil::mesh::TriMesh,
    ustencil::dg::DgField,
    ComputationGrid,
) {
    let mesh = generate_mesh(MeshClass::LowVariance, n, seed);
    let field = project_l2(&mesh, p, |x, y| (x * 4.2).sin() + 0.6 * y - 0.3 * x * y, 2);
    let grid = ComputationGrid::quadrature_points(&mesh, p);
    (mesh, field, grid)
}

/// Largest `h_factor` keeping a smoothness-`k` stencil inside the domain,
/// with margin.
fn safe_h(mesh: &ustencil::mesh::TriMesh, k: usize) -> f64 {
    (0.9 / ((3 * k + 1) as f64 * mesh.max_edge_length())).min(1.0)
}

/// The work counters that partition exactly across ranks: every component
/// driven by (element, point) candidate pairs. Element-driven counters
/// (`cells_visited`, `elem_data_loads`, `partial_slots`) measure halo
/// replication and are intentionally excluded.
fn pair_counters(m: &Metrics) -> [u64; 8] {
    [
        m.intersection_tests,
        m.true_intersections,
        m.cell_clips,
        m.subregions,
        m.quad_evals,
        m.flops,
        m.point_data_loads,
        m.solution_writes,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Sharded direct evaluation agrees with a single rank for random
    /// meshes, smoothness, and rank counts, and the pair-driven counters
    /// sum bit-identically.
    #[test]
    fn sharded_per_element_matches_single_rank(
        seed in 0u64..1000,
        n in 120usize..300,
        k in 1usize..=3,
        ranks_ix in 0usize..3,
    ) {
        let ranks = [2usize, 4, 8][ranks_ix];
        let p = k.min(2);
        let (mesh, field, grid) = build(n, p, seed);
        let h = safe_h(&mesh, k);
        let single = run_dist(&mesh, &field, &grid,
            &DistOptions::new(1).smoothness(k).h_factor(h)).unwrap();
        let multi = run_dist(&mesh, &field, &grid,
            &DistOptions::new(ranks).smoothness(k).h_factor(h)).unwrap();
        let diff = multi.max_abs_diff(&single.values);
        prop_assert!(diff <= 1e-12, "{ranks} ranks, k={k}: diff {diff}");
        prop_assert!(
            pair_counters(&multi.metrics) == pair_counters(&single.metrics),
            "pair-driven counters must partition exactly: {:?} vs {:?}",
            pair_counters(&multi.metrics),
            pair_counters(&single.metrics)
        );
    }

    /// Sharded plan apply is bitwise the single-rank plan apply for random
    /// meshes and rank counts.
    #[test]
    fn sharded_plan_apply_matches_single_rank(
        seed in 0u64..1000,
        n in 120usize..300,
        k in 1usize..=2,
        ranks_ix in 0usize..3,
    ) {
        let ranks = [2usize, 4, 8][ranks_ix];
        let p = k.min(2);
        let (mesh, field, grid) = build(n, p, seed);
        let h = safe_h(&mesh, k);
        let single = run_plan_dist(&mesh, &field, &grid,
            &DistOptions::new(1).smoothness(k).h_factor(h)).unwrap();
        let multi = run_plan_dist(&mesh, &field, &grid,
            &DistOptions::new(ranks).smoothness(k).h_factor(h)).unwrap();
        prop_assert!(multi.values == single.values,
            "plan rows are point-local, so sharded apply must be bitwise");
        prop_assert!(multi.metrics.solution_writes == single.metrics.solution_writes);
        prop_assert!(multi.metrics.elem_data_loads == single.metrics.elem_data_loads);
        prop_assert!(multi.metrics.flops == single.metrics.flops);
    }
}

/// A dropped-then-retransmitted halo message must not change the result:
/// the reliability layer retries, the receiver deduplicates, and the
/// recorded wire history shows the drop followed by a delivery.
#[test]
fn dropped_halo_messages_are_retried_without_changing_results() {
    let (mesh, field, grid) = build(200, 1, 77);
    let h = safe_h(&mesh, 1);
    let clean = run_dist(&mesh, &field, &grid, &DistOptions::new(4).h_factor(h)).unwrap();

    let faults = FaultPlan::none()
        .with_rule(FaultRule::drop_first(1, Tag::HaloCoeffs, 1))
        .with_rule(FaultRule::drop_first(2, Tag::OwnedValues, 1));
    let (fabric, endpoints) = RecordingFabric::with_faults(4, faults);
    let opts = DistOptions::new(4).h_factor(h).link(LinkConfig {
        ack_timeout: Duration::from_millis(50),
        max_retries: 6,
        ..LinkConfig::default()
    });
    let faulty = run_dist_on(&mesh, &field, &grid, &opts, endpoints).unwrap();

    assert_eq!(
        faulty.values, clean.values,
        "retried messages must leave the values bit-identical"
    );
    assert_eq!(
        pair_counters(&faulty.metrics),
        pair_counters(&clean.metrics)
    );
    // The halo-phase retransmit is visible in the shipped counters; the
    // result-message retransmit happens after the stats snapshot (a rank's
    // result cannot count itself) and is asserted through the wire log
    // below instead.
    let total = faulty.total_comm();
    assert!(
        total.retransmits >= 1,
        "the halo drop must force a retransmit"
    );
    assert!(faulty.ranks.iter().all(|r| !r.reresolved));

    // The wire log shows each injected drop followed by a successful
    // retransmission of the same message.
    let log = fabric.log();
    for (from, tag) in [(1u32, Tag::HaloCoeffs), (2u32, Tag::OwnedValues)] {
        let dropped = log
            .iter()
            .find(|r| r.from == from && r.tag == tag && r.disposition == Disposition::Dropped)
            .expect("injected drop must be recorded");
        assert!(
            log.iter().any(|r| r.from == from
                && r.tag == tag
                && r.seq == dropped.seq
                && r.disposition == Disposition::Delivered),
            "the dropped message must eventually be delivered"
        );
    }
}

/// Held (reordered) messages must not change the result: receivers match
/// halo payloads by content, not arrival order.
#[test]
fn reordered_messages_leave_results_unchanged() {
    let (mesh, field, grid) = build(200, 1, 78);
    let h = safe_h(&mesh, 1);
    let clean = run_dist(&mesh, &field, &grid, &DistOptions::new(4).h_factor(h)).unwrap();

    let faults = FaultPlan::none().with_rule(FaultRule::hold_first(1, 0, 1));
    let endpoints = ChannelFabric::endpoints_with_faults(4, faults);
    let faulty = run_dist_on(
        &mesh,
        &field,
        &grid,
        &DistOptions::new(4).h_factor(h),
        endpoints,
    )
    .unwrap();

    assert_eq!(faulty.values, clean.values);
    assert_eq!(
        pair_counters(&faulty.metrics),
        pair_counters(&clean.metrics)
    );
}

/// A rank whose result message never arrives is re-resolved by the
/// coordinator: the run still returns, values are identical, and the
/// failed rank is flagged.
#[test]
fn failed_rank_is_reresolved_by_the_coordinator() {
    let (mesh, field, grid) = build(200, 1, 79);
    let h = safe_h(&mesh, 1);
    let clean = run_dist(&mesh, &field, &grid, &DistOptions::new(4).h_factor(h)).unwrap();

    // Rank 3 completes its exchange but its result message is swallowed
    // forever — from the coordinator's view the rank died after the halo
    // phase.
    let faults = FaultPlan::none().with_rule(FaultRule::drop_first(3, Tag::OwnedValues, u32::MAX));
    let endpoints = ChannelFabric::endpoints_with_faults(4, faults);
    let opts = DistOptions::new(4)
        .h_factor(h)
        .link(LinkConfig {
            ack_timeout: Duration::from_millis(20),
            max_retries: 2,
            ..LinkConfig::default()
        })
        .gather_timeout(Duration::from_millis(500));
    let recovered = run_dist_on(&mesh, &field, &grid, &opts, endpoints).unwrap();

    assert_eq!(
        recovered.values, clean.values,
        "re-resolved owned rows must be bitwise what the rank would have sent"
    );
    assert!(recovered.ranks[3].reresolved, "rank 3 must be flagged");
    assert!(
        recovered.ranks.iter().filter(|r| r.reresolved).count() == 1,
        "only the failed rank is re-resolved"
    );
}
