//! Property-based tests of the locality layer: Hilbert-reordered execution
//! is an internal storage choice that callers cannot observe numerically.
//! Direct schemes agree with natural order to 1e-12 with bit-identical
//! aggregate counters; a reordered plan apply is *bitwise* equal to the
//! natural apply after the inverse permutation. Case counts are small
//! because every case runs full post-processing passes under two layouts.

use proptest::prelude::*;
use ustencil::dg::project_l2;
use ustencil::engine::prelude::*;
use ustencil::engine::Layout;
use ustencil::mesh::{generate_mesh, MeshClass};
use ustencil::plan::CompileOptions;
use ustencil::EvalPlan;

fn build(
    class: MeshClass,
    n: usize,
    p: usize,
    k: usize,
    seed: u64,
) -> (
    ustencil::mesh::TriMesh,
    ustencil::dg::DgField,
    ComputationGrid,
    f64,
) {
    let mesh = generate_mesh(class, n, seed);
    let field = project_l2(&mesh, p, |x, y| (x * 4.7).sin() - y * y + 0.4 * x * y, 2);
    let grid = ComputationGrid::quadrature_points(&mesh, p);
    // Keep the (3k+1)h support inside the periodic unit square.
    let h_factor = (0.9 / ((3 * k + 1) as f64 * mesh.max_edge_length())).min(1.0);
    (mesh, field, grid, h_factor)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Hilbert-reordered direct runs agree with natural order to 1e-12
    /// under both schemes, and the aggregate work counters — sums over
    /// (element, point) pairs — are permutation-invariant, i.e.
    /// bit-identical.
    #[test]
    fn hilbert_direct_runs_match_natural(
        seed in 0u64..1000,
        n in 80usize..220,
        p in 1usize..=2,
        lv in proptest::bool::ANY,
    ) {
        let class = if lv { MeshClass::LowVariance } else { MeshClass::HighVariance };
        let (mesh, field, grid, h_factor) = build(class, n, p, p, seed);
        for scheme in Scheme::ALL {
            let natural = PostProcessor::new(scheme)
                .h_factor(h_factor)
                .parallel(false)
                .run(&mesh, &field, &grid);
            let hilbert = PostProcessor::new(scheme)
                .h_factor(h_factor)
                .parallel(false)
                .layout(Layout::Hilbert)
                .run(&mesh, &field, &grid);
            let diff = natural
                .values
                .iter()
                .zip(&hilbert.values)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            prop_assert!(diff <= 1e-12, "{scheme:?}: layouts diverge by {diff}");
            prop_assert_eq!(
                natural.metrics, hilbert.metrics,
                "aggregate counters must be permutation-invariant"
            );
        }
    }

    /// A Hilbert (and Hilbert-blocked) plan apply is bitwise equal to the
    /// natural plan apply after the inverse row permutation — the plan
    /// path's stronger-than-1e-12 contract.
    #[test]
    fn reordered_plan_apply_is_bitwise_after_unpermutation(
        seed in 0u64..1000,
        n in 80usize..200,
        p in 1usize..=2,
        lv in proptest::bool::ANY,
    ) {
        let class = if lv { MeshClass::LowVariance } else { MeshClass::HighVariance };
        let (mesh, field, grid, h_factor) = build(class, n, p, p, seed);
        let natural = EvalPlan::compile(&mesh, &grid, p, &CompileOptions {
            h_factor,
            parallel: false,
            ..CompileOptions::default()
        });
        let nat_values = natural.apply(&field).values;
        for layout in [Layout::Hilbert, Layout::HilbertBlocked] {
            let plan = EvalPlan::compile(&mesh, &grid, p, &CompileOptions {
                h_factor,
                parallel: false,
                layout,
                ..CompileOptions::default()
            });
            let values = plan.apply(&field).values;
            prop_assert_eq!(values.len(), nat_values.len());
            for (r, (a, b)) in values.iter().zip(&nat_values).enumerate() {
                prop_assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{:?} row {} not bitwise equal",
                    layout,
                    r
                );
            }
        }
    }
}
