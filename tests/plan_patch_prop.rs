//! Property-based tests of the incremental patch engine: for random meshes,
//! kernel smoothness k in {1, 2, 3}, and random mesh edits — refinement of a
//! random element subset (including the empty and the everything-eligible
//! subset) or vertex displacement — a patched plan is *bitwise* the plan a
//! fresh compile of the edited problem would build, and v2 layouts come out
//! of the splice with valid permutations and tiles. Case counts are small
//! because every case compiles at least two plans.

use proptest::prelude::*;
use ustencil::engine::prelude::*;
use ustencil::engine::Layout;
use ustencil::mesh::{displace_band, elements_on_longest_edge, generate_mesh, MeshClass, TriMesh};
use ustencil::plan::CompileOptions;
use ustencil::{DirtySet, EvalPlan};

fn build(n: usize, k: usize, seed: u64) -> (TriMesh, ComputationGrid, CompileOptions) {
    let mesh = generate_mesh(MeshClass::LowVariance, n, seed);
    let grid = ComputationGrid::quadrature_points(&mesh, 1);
    // Keep the (3k+1)h support inside the periodic unit square.
    let h_factor = (0.9 / ((3 * k + 1) as f64 * mesh.max_edge_length())).min(1.0);
    let options = CompileOptions {
        smoothness: Some(k),
        h_factor,
        parallel: false,
        ..CompileOptions::default()
    };
    (mesh, grid, options)
}

/// A random h-preserving edit: refine a pseudo-random subset of the eligible
/// elements (`frac` of them; 0 → no edit, 1 → all of them), or displace a
/// vertex band. Either way the longest edge — and with it the kernel scale —
/// survives bit-identically, which the patch path requires.
fn edit(mesh: &TriMesh, frac: f64, displace: bool, seed: u64) -> TriMesh {
    if displace {
        let lo = 0.5 - 0.4 * frac;
        return displace_band(mesh, lo, lo + 0.1, 0.2, seed);
    }
    let pinned = elements_on_longest_edge(mesh);
    let eligible: Vec<u32> = (0..mesh.n_triangles() as u32)
        .filter(|&e| !pinned[e as usize])
        .collect();
    // A seeded scatter filter keeps ~frac of the eligible elements without
    // an RNG dep; exact at both extremes (frac 0 → none, frac 1 → all).
    let pct = (frac * 100.0).round() as usize;
    let stride = (seed % 7 + 3) as usize;
    let picked: Vec<u32> = eligible
        .iter()
        .enumerate()
        .filter(|&(i, _)| i.wrapping_mul(stride).wrapping_add(seed as usize) % 100 < pct)
        .map(|(_, &e)| e)
        .collect();
    refine_sorted(mesh, &picked)
}

fn refine_sorted(mesh: &TriMesh, picked: &[u32]) -> TriMesh {
    if picked.is_empty() {
        mesh.clone()
    } else {
        ustencil::mesh::refine_elements(mesh, picked)
    }
}

/// Bitwise CSR equality: same structure, same weight bits.
fn assert_bitwise(a: &EvalPlan, b: &EvalPlan, ctx: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.rows(), b.rows(), "{}: row count", ctx);
    prop_assert_eq!(a.nnz(), b.nnz(), "{}: entry count", ctx);
    prop_assert_eq!(a.cols(), b.cols(), "{}: columns", ctx);
    prop_assert!(
        a.weights_bits().eq(b.weights_bits()),
        "{}: weight bits differ",
        ctx
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// `patch` + `splice` reproduces a fresh compile of the edited problem
    /// bit for bit — for empty edits (the identity patch), partial edits,
    /// and the all-eligible-elements edit where everything is dirty.
    #[test]
    fn patched_plan_is_bitwise_a_fresh_compile(
        seed in 0u64..1000,
        n in 80usize..200,
        k in 1usize..=3,
        frac_pct in 0u32..=100,
        displace in proptest::bool::ANY,
    ) {
        // Snap the tails so the identity patch and the everything-dirty
        // patch keep showing up (the deterministic tests below pin both).
        let frac_pct = if frac_pct < 15 { 0 } else if frac_pct > 85 { 100 } else { frac_pct };
        let (mesh, grid, options) = build(n, k, seed);
        let base = EvalPlan::compile(&mesh, &grid, 1, &options);

        let edited = edit(&mesh, frac_pct as f64 / 100.0, displace, seed.wrapping_add(11));
        prop_assert_eq!(
            edited.max_edge_length().to_bits(),
            mesh.max_edge_length().to_bits(),
            "edit must preserve h"
        );
        let new_grid = ComputationGrid::quadrature_points(&edited, 1);
        let dirty = DirtySet::diff(&mesh, &grid, &edited, &new_grid);
        let (patched, stats) = base
            .patched(&edited, &new_grid, &dirty, &options)
            .expect("same-kernel edit must patch");

        prop_assert!(stats.respliced_rows as usize <= patched.rows());
        if dirty.is_clean() {
            prop_assert_eq!(stats.respliced_rows, 0, "clean diff resplices nothing");
            assert_bitwise(&patched, &base, "identity patch")?;
        }
        let fresh = EvalPlan::compile(&edited, &new_grid, 1, &options);
        assert_bitwise(&patched, &fresh, "patched vs fresh")?;
    }

    /// Splicing a v2 layout (Hilbert / HilbertBlocked) leaves valid
    /// permutations and monotone tiles, and the patched apply is bitwise
    /// the fresh compile's apply.
    #[test]
    fn spliced_v2_layouts_stay_valid(
        seed in 0u64..1000,
        n in 80usize..160,
        k in 1usize..=2,
        blocked in proptest::bool::ANY,
    ) {
        let layout = if blocked { Layout::HilbertBlocked } else { Layout::Hilbert };
        let (mesh, grid, mut options) = build(n, k, seed);
        options.layout = layout;
        let base = EvalPlan::compile(&mesh, &grid, 1, &options);

        let edited = edit(&mesh, 0.3, seed % 2 == 0, seed.wrapping_add(29));
        let new_grid = ComputationGrid::quadrature_points(&edited, 1);
        let dirty = DirtySet::diff(&mesh, &grid, &edited, &new_grid);
        let (patched, _) = base
            .patched(&edited, &new_grid, &dirty, &options)
            .expect("same-kernel edit must patch");

        // Permutations must be permutations of the new shapes.
        for (perm, len, what) in [
            (patched.row_perm(), patched.rows(), "row_perm"),
            (patched.col_perm(), patched.cols().iter().map(|&c| c as usize + 1).max().unwrap_or(0), "col_perm"),
        ] {
            let mut seen = vec![false; perm.len()];
            prop_assert!(perm.len() >= len, "{} too short", what);
            for &p in perm {
                prop_assert!(!seen[p as usize], "{} repeats {}", what, p);
                seen[p as usize] = true;
            }
        }
        if layout.blocked() {
            let tiles = patched.tiles();
            prop_assert!(tiles.first() == Some(&0), "tiles start at row 0");
            prop_assert!(tiles.windows(2).all(|w| w[0] < w[1]), "tiles monotone");
            prop_assert_eq!(*tiles.last().unwrap() as usize, patched.rows());
        }

        // And the permuted storage still computes the right answer: bitwise
        // the fresh compile of the same layout.
        let fresh = EvalPlan::compile(&edited, &new_grid, 1, &options);
        let field = ustencil::dg::project_l2(&edited, 1, |x, y| (x * 3.3).sin() + y, 2);
        let a = patched.apply(&field);
        let b = fresh.apply(&field);
        prop_assert!(
            a.values.iter().zip(&b.values).all(|(x, y)| x.to_bits() == y.to_bits()),
            "patched v2 apply differs from fresh"
        );
    }
}

/// The empty dirty set: diffing a problem against itself patches to the
/// identity without touching a single row.
#[test]
fn empty_edit_patches_to_the_identity() {
    let (mesh, grid, options) = build(140, 2, 7);
    let base = EvalPlan::compile(&mesh, &grid, 1, &options);
    let dirty = DirtySet::diff(&mesh, &grid, &mesh, &grid);
    assert!(dirty.is_clean());
    let (patched, stats) = base.patched(&mesh, &grid, &dirty, &options).unwrap();
    assert_eq!(stats.respliced_rows, 0);
    assert_eq!(patched.cols(), base.cols());
    assert!(patched.weights_bits().eq(base.weights_bits()));
}

/// The all-dirty extreme: refining every eligible element leaves no kept
/// row, and the patch degenerates to (bitwise) a fresh compile.
#[test]
fn all_eligible_refined_patches_bitwise() {
    let (mesh, grid, options) = build(100, 1, 13);
    let base = EvalPlan::compile(&mesh, &grid, 1, &options);
    let edited = edit(&mesh, 1.0, false, 17);
    assert!(
        edited.n_triangles() > 2 * mesh.n_triangles(),
        "most of the mesh refined"
    );
    let new_grid = ComputationGrid::quadrature_points(&edited, 1);
    let dirty = DirtySet::diff(&mesh, &grid, &edited, &new_grid);
    let (patched, stats) = base.patched(&edited, &new_grid, &dirty, &options).unwrap();
    assert!(
        stats.respliced_rows as usize == patched.rows(),
        "everything respliced"
    );
    let fresh = EvalPlan::compile(&edited, &new_grid, 1, &options);
    assert_eq!(patched.cols(), fresh.cols());
    assert!(patched.weights_bits().eq(fresh.weights_bits()));
}
