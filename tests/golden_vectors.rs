//! Golden-vector fixture: per-point, per-element, and plan outputs of one
//! small fixed configuration, committed as hex-encoded f64 bit patterns.
//!
//! Any refactor that changes results *bit-wise* fails this test loudly —
//! the complement of the tolerance-based property tests, in the same
//! spirit as the plan serialization round-trip. To regenerate after an
//! intentional numerical change:
//!
//! ```text
//! cargo test --test golden_vectors -- --ignored regenerate --nocapture \
//!   > /dev/null  # prints the new fixture to stderr
//! ```
//!
//! and replace `tests/golden/golden_vectors.txt` with the printed block.

use ustencil::dg::{project_l2, DgField};
use ustencil::engine::prelude::*;
use ustencil::geometry::Point2;
use ustencil::mesh::{generate_mesh, MeshClass, TriMesh};
use ustencil::plan::{ApplyOptions, CompileOptions, EvalPlan};

const GOLDEN: &str = include_str!("golden/golden_vectors.txt");
const DEGREE: usize = 2;

/// The fixed configuration: a 48-triangle low-variance mesh, a degree-2
/// field with mixed trigonometric/polynomial content, and a 6×6 interior
/// lattice of evaluation points.
fn fixture() -> (TriMesh, DgField, ComputationGrid, f64) {
    let mesh = generate_mesh(MeshClass::LowVariance, 48, 42);
    let field = project_l2(
        &mesh,
        DEGREE,
        |x, y| (x * 5.1).sin() + y * y - 0.3 * x * y,
        2,
    );
    let pts: Vec<Point2> = (0..6)
        .flat_map(|j| {
            (0..6).map(move |i| Point2::new((i as f64 + 0.5) / 6.0, (j as f64 + 0.5) / 6.0))
        })
        .collect();
    let owners = vec![0u32; pts.len()];
    let grid = ComputationGrid::from_points(pts, owners);
    let h_factor = (0.9 / ((3 * DEGREE + 1) as f64 * mesh.max_edge_length())).min(1.0);
    (mesh, field, grid, h_factor)
}

/// Computes the three output vectors, fully sequentially (blocking and
/// parallelism are transparency-tested elsewhere) and under
/// [`SimdPolicy::Scalar`]: the fixture pins the portable reduction
/// order, and the scalar policy is contractually bit-identical to the
/// pre-SIMD kernels. Vector policies are held to the 1e-12 refactor
/// tolerance against these same bits below.
fn outputs() -> [(&'static str, Vec<f64>); 3] {
    let (mesh, field, grid, h_factor) = fixture();
    let per_point = PostProcessor::new(Scheme::PerPoint)
        .h_factor(h_factor)
        .blocks(1)
        .parallel(false)
        .simd(SimdPolicy::Scalar)
        .run(&mesh, &field, &grid)
        .values;
    let per_element = PostProcessor::new(Scheme::PerElement)
        .h_factor(h_factor)
        .blocks(1)
        .parallel(false)
        .simd(SimdPolicy::Scalar)
        .run(&mesh, &field, &grid)
        .values;
    let options = CompileOptions {
        h_factor,
        n_blocks: 1,
        parallel: false,
        simd: SimdPolicy::Scalar,
        ..CompileOptions::default()
    };
    let plan = EvalPlan::compile(&mesh, &grid, DEGREE, &options)
        .apply_with(
            &field,
            &ApplyOptions {
                n_blocks: 1,
                parallel: false,
                instrument: false,
                simd: SimdPolicy::Scalar,
            },
        )
        .values;
    [
        ("per_point", per_point),
        ("per_element", per_element),
        ("plan", plan),
    ]
}

fn encode(values: &[f64]) -> String {
    values
        .iter()
        .map(|v| format!("{:016x}", v.to_bits()))
        .collect::<Vec<_>>()
        .join(" ")
}

fn parse_golden() -> Vec<(String, Vec<u64>)> {
    GOLDEN
        .lines()
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
        .map(|l| {
            let mut it = l.split_whitespace();
            let name = it.next().expect("scheme label").to_string();
            let bits = it
                .map(|h| u64::from_str_radix(h, 16).expect("16-digit hex f64 bits"))
                .collect();
            (name, bits)
        })
        .collect()
}

#[test]
fn outputs_match_golden_bits() {
    let golden = parse_golden();
    assert_eq!(golden.len(), 3, "fixture must hold all three schemes");
    for ((name, values), (g_name, g_bits)) in outputs().iter().zip(&golden) {
        assert_eq!(name, g_name, "scheme order mismatch");
        assert_eq!(values.len(), g_bits.len(), "{name}: length changed");
        for (i, (v, &bits)) in values.iter().zip(g_bits).enumerate() {
            assert_eq!(
                v.to_bits(),
                bits,
                "{name}[{i}]: {v:e} != {:e} (bit-wise)",
                f64::from_bits(bits)
            );
        }
    }
}

/// The plan golden pins the `Layout::Natural` apply bit-for-bit; the
/// reordered layouts must reproduce those exact bits after their fused
/// inverse permutation — the locality layer's bitwise contract
/// (DESIGN.md §12), checked here against the committed fixture rather
/// than a same-process baseline.
#[test]
fn reordered_layouts_match_the_plan_golden() {
    use ustencil::engine::Layout;
    let golden = parse_golden();
    let (_, plan_bits) = &golden[2];
    assert_eq!(golden[2].0, "plan", "fixture row order changed");
    let (mesh, field, grid, h_factor) = fixture();
    for layout in [Layout::Hilbert, Layout::HilbertBlocked] {
        let options = CompileOptions {
            h_factor,
            n_blocks: 1,
            parallel: false,
            layout,
            simd: SimdPolicy::Scalar,
            ..CompileOptions::default()
        };
        let values = EvalPlan::compile(&mesh, &grid, DEGREE, &options)
            .apply_with(
                &field,
                &ApplyOptions {
                    n_blocks: 1,
                    parallel: false,
                    instrument: false,
                    simd: SimdPolicy::Scalar,
                },
            )
            .values;
        assert_eq!(values.len(), plan_bits.len(), "{layout:?}: length changed");
        for (i, (v, &bits)) in values.iter().zip(plan_bits).enumerate() {
            assert_eq!(
                v.to_bits(),
                bits,
                "{layout:?}[{i}]: {v:e} != {:e} (bit-wise)",
                f64::from_bits(bits)
            );
        }
    }
}

/// Vector policies against the committed fixture: each forced width is
/// run-to-run *deterministic* (two independent compile+apply passes give
/// the same bits — the lane kernels use fixed-order reductions, never a
/// data race or dispatch wobble), and every value stays within the 1e-12
/// refactor tolerance of the scalar golden bits. Widths the host lacks
/// fall back to scalar, where determinism and the tolerance hold
/// trivially — so this runs unconditionally on every CI host.
#[test]
fn vector_policies_are_deterministic_and_near_the_golden() {
    use ustencil::engine::{SimdPolicy, SimdWidth};
    let golden = parse_golden();
    let (_, plan_bits) = &golden[2];
    assert_eq!(golden[2].0, "plan", "fixture row order changed");
    let (mesh, field, grid, h_factor) = fixture();
    for width in [SimdWidth::F64x4, SimdWidth::F64x8] {
        let policy = SimdPolicy::Forced(width);
        let run = || {
            let options = CompileOptions {
                h_factor,
                n_blocks: 1,
                parallel: false,
                simd: policy,
                ..CompileOptions::default()
            };
            EvalPlan::compile(&mesh, &grid, DEGREE, &options)
                .apply_with(
                    &field,
                    &ApplyOptions {
                        n_blocks: 1,
                        parallel: false,
                        instrument: false,
                        simd: policy,
                    },
                )
                .values
        };
        let (first, second) = (run(), run());
        assert_eq!(first.len(), plan_bits.len(), "{policy:?}: length changed");
        for (i, ((a, b), &bits)) in first.iter().zip(&second).zip(plan_bits).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{policy:?}[{i}]: two identical runs disagree bit-wise"
            );
            let g = f64::from_bits(bits);
            assert!(
                (a - g).abs() <= 1e-12,
                "{policy:?}[{i}]: {a:e} drifts from the golden {g:e}"
            );
        }
    }
}

/// Sanity-check the fixture itself: the three schemes agree with each other
/// to the refactor tolerance, so the committed vectors describe one
/// consistent convolution rather than three independent accidents.
#[test]
fn golden_schemes_mutually_consistent() {
    let [(_, pp), (_, pe), (_, pl)] = outputs();
    for i in 0..pp.len() {
        assert!((pp[i] - pe[i]).abs() < 1e-12, "pp vs pe at {i}");
        assert!((pp[i] - pl[i]).abs() < 1e-12, "pp vs plan at {i}");
    }
}

#[test]
#[ignore = "regeneration helper: prints a new fixture file to stderr"]
fn regenerate() {
    eprintln!("# Golden vectors: hex f64 bits of each scheme's sequential output.");
    eprintln!("# Fixture: LowVariance n=48 seed=42, p=2, 6x6 lattice; see golden_vectors.rs.");
    for (name, values) in outputs() {
        eprintln!("{name} {}", encode(&values));
    }
}
