//! Comm-flow tracing end to end: flow ids on the wire, deterministic
//! send→recv matching over the recording fabric, and orphan flagging
//! under fault injection.

use std::time::Duration;
use ustencil_core::ComputationGrid;
use ustencil_dg::{project_l2, DgField};
use ustencil_dist::{
    match_wire_log, run_dist_on, Disposition, DistOptions, FaultPlan, FaultRule, Message,
    RecordingFabric, Tag, Transport,
};
use ustencil_mesh::{generate_mesh, MeshClass, TriMesh};

fn fixture(n_tri: usize) -> (TriMesh, DgField, ComputationGrid) {
    let mesh = generate_mesh(MeshClass::LowVariance, n_tri, 11);
    let field = project_l2(&mesh, 1, |x, y| 0.3 + x - 0.5 * y + 0.2 * x * y, 2);
    let grid = ComputationGrid::quadrature_points(&mesh, 1);
    (mesh, field, grid)
}

/// The matched flow set over the recording fabric is a pure function of
/// the workload: two identical runs deliver exactly the same `(from, to,
/// flow, tag)` keys, with nothing orphaned, and the in-band flow logs
/// agree with the wire's view.
#[test]
fn flow_matching_is_bit_deterministic_across_runs() {
    let (mesh, field, grid) = fixture(300);
    let opts = DistOptions::new(4).instrument(true);

    let mut summaries = Vec::new();
    let mut pair_keys: Vec<Vec<(u32, u32, u64, Tag)>> = Vec::new();
    for _ in 0..2 {
        let (fabric, endpoints) = RecordingFabric::new(4);
        let sol = run_dist_on(&mesh, &field, &grid, &opts, endpoints).unwrap();
        summaries.push(match_wire_log(&fabric.log()));
        // Timestamps vary run to run; the matched key set must not.
        pair_keys.push(
            sol.flow_match()
                .pairs
                .iter()
                .map(|p| (p.src, p.dst, p.flow, p.tag))
                .collect(),
        );
    }
    assert_eq!(summaries[0], summaries[1], "wire flow join must be stable");
    assert_eq!(pair_keys[0], pair_keys[1], "link flow join must be stable");
    assert!(!summaries[0].delivered.is_empty());
    assert!(
        summaries[0].orphaned.is_empty(),
        "clean run orphaned flows: {:?}",
        summaries[0].orphaned
    );
    // Every halo message the link-level logs matched is also delivered on
    // the wire (the wire additionally sees OwnedValues result flows).
    for key in &pair_keys[0] {
        assert!(
            summaries[0].delivered.contains(key),
            "pair {key:?} missing from the wire's delivered set"
        );
    }
}

/// A dropped-then-retransmitted message keeps one flow id, so the flow
/// still matches — fault recovery is invisible to the flow trace.
#[test]
fn dropped_then_retransmitted_flow_still_matches() {
    let (mesh, field, grid) = fixture(300);
    let faults = FaultPlan::none().with_rule(FaultRule::drop_first(1, Tag::HaloCoeffs, 1));
    let (fabric, endpoints) = RecordingFabric::with_faults(2, faults);
    let opts = DistOptions::new(2).instrument(true);
    let sol = run_dist_on(&mesh, &field, &grid, &opts, endpoints).unwrap();
    assert!(sol.ranks.iter().all(|r| !r.reresolved));

    let log = fabric.log();
    let dropped: Vec<_> = log
        .iter()
        .filter(|r| r.disposition == Disposition::Dropped)
        .collect();
    assert_eq!(dropped.len(), 1, "exactly the injected drop");
    let summary = match_wire_log(&log);
    assert!(
        summary.orphaned.is_empty(),
        "retransmit re-delivers the flow"
    );
    let key = (
        dropped[0].from,
        dropped[0].to,
        dropped[0].flow,
        dropped[0].tag,
    );
    assert!(
        summary.delivered.contains(&key),
        "dropped flow {key:?} must be delivered by its retransmit"
    );
}

/// A flow whose every copy is lost is flagged as an orphan — analysis of
/// a faulty run reports the loss instead of panicking.
#[test]
fn never_delivered_flow_is_flagged_not_fatal() {
    let faults = FaultPlan::none().with_rule(FaultRule::drop_first(0, Tag::HaloCoeffs, 1));
    let (fabric, mut endpoints) = RecordingFabric::with_faults(2, faults);
    let mut ep1 = endpoints.pop().unwrap();
    let mut ep0 = endpoints.pop().unwrap();
    let msg = |flow: u64, payload: Vec<u8>| Message {
        from: 0,
        to: 1,
        tag: Tag::HaloCoeffs,
        seq: flow,
        flow,
        payload,
    };
    // Flow 0 is swallowed by the drop rule; flow 1 arrives and is read.
    ep0.send(msg(0, vec![1, 2, 3])).unwrap();
    ep0.send(msg(1, vec![4, 5])).unwrap();
    let got = ep1.recv_timeout(Duration::from_secs(1)).unwrap();
    assert_eq!(got.flow, 1);

    let summary = match_wire_log(&fabric.log());
    assert_eq!(summary.delivered, vec![(0, 1, 1, Tag::HaloCoeffs)]);
    assert_eq!(summary.orphaned, vec![(0, 1, 0, Tag::HaloCoeffs)]);
}
