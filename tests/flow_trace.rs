//! Comm-flow tracing end to end: flow ids on the wire, deterministic
//! send→recv matching over the recording fabric, and orphan flagging
//! under fault injection.

use std::time::Duration;
use ustencil_core::ComputationGrid;
use ustencil_dg::{project_l2, DgField};
use ustencil_dist::{
    match_wire_log, run_dist_on, Disposition, DistOptions, FaultPlan, FaultRule, LinkConfig,
    Message, RecordingFabric, Tag, Transport,
};
use ustencil_mesh::{generate_mesh, MeshClass, TriMesh};

fn fixture(n_tri: usize) -> (TriMesh, DgField, ComputationGrid) {
    let mesh = generate_mesh(MeshClass::LowVariance, n_tri, 11);
    let field = project_l2(&mesh, 1, |x, y| 0.3 + x - 0.5 * y + 0.2 * x * y, 2);
    let grid = ComputationGrid::quadrature_points(&mesh, 1);
    (mesh, field, grid)
}

/// The matched flow set over the recording fabric is a pure function of
/// the workload: two identical runs deliver exactly the same `(from, to,
/// flow, tag)` keys, with nothing orphaned, and the in-band flow logs
/// agree with the wire's view.
#[test]
fn flow_matching_is_bit_deterministic_across_runs() {
    let (mesh, field, grid) = fixture(300);
    let opts = DistOptions::new(4).instrument(true);

    let mut summaries = Vec::new();
    let mut pair_keys: Vec<Vec<(u32, u32, u64, Tag)>> = Vec::new();
    for _ in 0..2 {
        let (fabric, endpoints) = RecordingFabric::new(4);
        let sol = run_dist_on(&mesh, &field, &grid, &opts, endpoints).unwrap();
        summaries.push(match_wire_log(&fabric.log()));
        // Timestamps vary run to run; the matched key set must not.
        pair_keys.push(
            sol.flow_match()
                .pairs
                .iter()
                .map(|p| (p.src, p.dst, p.flow, p.tag))
                .collect(),
        );
    }
    assert_eq!(summaries[0], summaries[1], "wire flow join must be stable");
    assert_eq!(pair_keys[0], pair_keys[1], "link flow join must be stable");
    assert!(!summaries[0].delivered.is_empty());
    assert!(
        summaries[0].orphaned.is_empty(),
        "clean run orphaned flows: {:?}",
        summaries[0].orphaned
    );
    // Every halo message the link-level logs matched is also delivered on
    // the wire (the wire additionally sees OwnedValues result flows).
    for key in &pair_keys[0] {
        assert!(
            summaries[0].delivered.contains(key),
            "pair {key:?} missing from the wire's delivered set"
        );
    }
}

/// A dropped-then-retransmitted message keeps one flow id, so the flow
/// still matches — fault recovery is invisible to the flow trace.
#[test]
fn dropped_then_retransmitted_flow_still_matches() {
    let (mesh, field, grid) = fixture(300);
    let faults = FaultPlan::none().with_rule(FaultRule::drop_first(1, Tag::HaloCoeffs, 1));
    let (fabric, endpoints) = RecordingFabric::with_faults(2, faults);
    let opts = DistOptions::new(2).instrument(true);
    let sol = run_dist_on(&mesh, &field, &grid, &opts, endpoints).unwrap();
    assert!(sol.ranks.iter().all(|r| !r.reresolved));

    let log = fabric.log();
    let dropped: Vec<_> = log
        .iter()
        .filter(|r| r.disposition == Disposition::Dropped)
        .collect();
    assert_eq!(dropped.len(), 1, "exactly the injected drop");
    let summary = match_wire_log(&log);
    assert!(
        summary.orphaned.is_empty(),
        "retransmit re-delivers the flow"
    );
    let key = (
        dropped[0].from,
        dropped[0].to,
        dropped[0].flow,
        dropped[0].tag,
    );
    assert!(
        summary.delivered.contains(&key),
        "dropped flow {key:?} must be delivered by its retransmit"
    );
}

/// The sliding-window fault matrix, end to end at a 2-frame window:
/// drops filling the whole window (recovery purely from the retransmit
/// timer), duplicates straddling the window edge (receiver dedup), and a
/// held frame (out-of-order arrival) — all at once. Results stay
/// bit-identical, every retransmit reuses its original flow id, and the
/// flow trace joins completely.
#[test]
fn window_edge_fault_matrix_preserves_results_and_flows() {
    let (mesh, field, grid) = fixture(300);
    // Small chunks force several frames per peer, so posts genuinely
    // straddle the 2-frame window.
    let opts = DistOptions::new(4)
        .instrument(true)
        .chunk_elems(8)
        .link(LinkConfig {
            ack_timeout: Duration::from_millis(40),
            max_retries: 8,
            window: 2,
        });
    let (_, clean_eps) = RecordingFabric::new(4);
    let clean = run_dist_on(&mesh, &field, &grid, &opts, clean_eps).unwrap();

    let faults = FaultPlan::none()
        // Rank 1 loses its first two halo frames — the entire window, so
        // no later send can open a slot; only the timer recovers.
        .with_rule(FaultRule::drop_first(1, Tag::HaloCoeffs, 2))
        // Rank 2's first three halo frames are duplicated: two inside the
        // window, the third as the window slides past its edge.
        .with_rule(FaultRule::dup_first(2, Tag::HaloCoeffs, 3))
        // Rank 3's first frame to rank 0 arrives out of order.
        .with_rule(FaultRule::hold_first(3, 0, 1));
    let (fabric, endpoints) = RecordingFabric::with_faults(4, faults);
    let sol = run_dist_on(&mesh, &field, &grid, &opts, endpoints).unwrap();

    assert_eq!(
        sol.values, clean.values,
        "drops, duplicates, and reorders must leave values bit-identical"
    );
    assert!(sol.ranks.iter().all(|r| !r.reresolved));
    let total = sol.total_comm();
    assert!(
        total.retransmits >= 2,
        "both dropped window frames must be retransmitted, got {}",
        total.retransmits
    );
    assert!(
        total.dup_payloads >= 3,
        "each duplicated frame must be discarded once by the dedup, got {}",
        total.dup_payloads
    );

    let log = fabric.log();
    let dropped: Vec<_> = log
        .iter()
        .filter(|r| r.disposition == Disposition::Dropped)
        .collect();
    assert_eq!(dropped.len(), 2, "exactly the two injected drops");
    for d in &dropped {
        assert!(
            log.iter().any(|r| r.disposition == Disposition::Delivered
                && r.from == d.from
                && r.to == d.to
                && r.flow == d.flow
                && r.tag == d.tag
                && r.seq == d.seq),
            "retransmit of {:?} must reuse flow {} and seq {}",
            d.tag,
            d.flow,
            d.seq
        );
    }
    let summary = match_wire_log(&log);
    assert!(
        summary.orphaned.is_empty(),
        "every faulted flow must still be delivered: {:?}",
        summary.orphaned
    );
}

/// Duplicate frames are invisible above the link: the deduplicated run's
/// matched flow key set is exactly the clean run's (the wire saw more
/// frames, the flow join did not).
#[test]
fn duplicated_frames_do_not_change_the_matched_flow_set() {
    let (mesh, field, grid) = fixture(300);
    let opts = DistOptions::new(2)
        .instrument(true)
        .chunk_elems(8)
        .link(LinkConfig {
            window: 2,
            ..LinkConfig::default()
        });
    let keys = |sol: &ustencil_dist::DistSolution| -> Vec<(u32, u32, u64, Tag)> {
        sol.flow_match()
            .pairs
            .iter()
            .map(|p| (p.src, p.dst, p.flow, p.tag))
            .collect()
    };
    let (_, clean_eps) = RecordingFabric::new(2);
    let clean = run_dist_on(&mesh, &field, &grid, &opts, clean_eps).unwrap();

    let faults = FaultPlan::none().with_rule(FaultRule::dup_first(1, Tag::HaloCoeffs, 2));
    let (_, endpoints) = RecordingFabric::with_faults(2, faults);
    let sol = run_dist_on(&mesh, &field, &grid, &opts, endpoints).unwrap();

    assert_eq!(sol.values, clean.values);
    assert_eq!(
        keys(&sol),
        keys(&clean),
        "dedup must keep duplicates out of the flow join"
    );
    assert!(sol.total_comm().dup_payloads >= 2);
}

/// A flow whose every copy is lost is flagged as an orphan — analysis of
/// a faulty run reports the loss instead of panicking.
#[test]
fn never_delivered_flow_is_flagged_not_fatal() {
    let faults = FaultPlan::none().with_rule(FaultRule::drop_first(0, Tag::HaloCoeffs, 1));
    let (fabric, mut endpoints) = RecordingFabric::with_faults(2, faults);
    let mut ep1 = endpoints.pop().unwrap();
    let mut ep0 = endpoints.pop().unwrap();
    let msg = |flow: u64, payload: Vec<u8>| Message {
        from: 0,
        to: 1,
        tag: Tag::HaloCoeffs,
        seq: flow,
        flow,
        payload,
    };
    // Flow 0 is swallowed by the drop rule; flow 1 arrives and is read.
    ep0.send(msg(0, vec![1, 2, 3])).unwrap();
    ep0.send(msg(1, vec![4, 5])).unwrap();
    let got = ep1.recv_timeout(Duration::from_secs(1)).unwrap();
    assert_eq!(got.flow, 1);

    let summary = match_wire_log(&fabric.log());
    assert_eq!(summary.delivered, vec![(0, 1, 1, Tag::HaloCoeffs)]);
    assert_eq!(summary.orphaned, vec![(0, 1, 0, Tag::HaloCoeffs)]);
}
