//! Accuracy-conservation and superconvergence tests on translation-
//! invariant meshes — the numerical property SIAC filtering exists for.

use ustencil::dg::project_l2;
use ustencil::engine::prelude::*;
use ustencil::mesh::{generate_mesh, MeshClass};

const TAU: f64 = std::f64::consts::TAU;

fn periodic_sine(x: f64, y: f64) -> f64 {
    (TAU * x).sin() * (TAU * y).sin()
}

/// RMS errors at the grid points before and after filtering.
///
/// The kernel scale is set to the lattice spacing `1/n` (`h_factor =
/// 1/sqrt(2)` of the longest edge, the square diagonal) — the natural `h`
/// for a translation-invariant mesh, keeping the stencil as local as the
/// theory assumes.
fn rms_pair(n_side: usize, p: usize) -> (f64, f64) {
    let mesh = generate_mesh(MeshClass::StructuredPattern, 2 * n_side * n_side, 0);
    let field = project_l2(&mesh, p, periodic_sine, 6);
    let grid = ComputationGrid::quadrature_points(&mesh, p);
    let sol = PostProcessor::new(Scheme::PerElement)
        .h_factor(1.0 / 2f64.sqrt())
        .run(&mesh, &field, &grid);
    let mut raw = 0.0;
    let mut filtered = 0.0;
    for (i, pt) in grid.points().iter().enumerate() {
        let e = grid.owners()[i] as usize;
        let (u, v) = mesh.triangle(e).map_to_unit(*pt).unwrap();
        let exact = periodic_sine(pt.x, pt.y);
        raw += (field.eval_ref(e, u, v) - exact).powi(2);
        filtered += (sol.values[i] - exact).powi(2);
    }
    let n = grid.len() as f64;
    ((raw / n).sqrt(), (filtered / n).sqrt())
}

/// On a translation-invariant mesh the filter must not lose accuracy
/// ("accuracy-conserving") and should in fact gain digits.
#[test]
fn filtering_gains_accuracy_on_structured_pattern() {
    for p in [1usize, 2] {
        // Quadratic superconvergence needs a finer mesh to enter its
        // asymptotic regime (the k=2 stencil spans 7 cells).
        let (raw, filtered) = rms_pair(if p == 1 { 12 } else { 20 }, p);
        assert!(
            filtered < raw,
            "p={p}: filtered {filtered:e} !< raw {raw:e}"
        );
    }
}

/// Superconvergence: the filtered solution converges faster than the
/// projection's p+1 rate under mesh refinement (the classic SIAC result is
/// 2p+1 on translation-invariant meshes; we assert a strictly better rate
/// than the unfiltered field with margin).
#[test]
fn filtered_convergence_rate_beats_projection() {
    let p = 1;
    let (raw_c, fil_c) = rms_pair(8, p);
    let (raw_f, fil_f) = rms_pair(16, p);
    let raw_rate = (raw_c / raw_f).log2();
    let fil_rate = (fil_c / fil_f).log2();
    assert!(
        raw_rate > 1.5 && raw_rate < 2.6,
        "projection rate should be ~p+1: {raw_rate}"
    );
    assert!(
        fil_rate > raw_rate + 0.5,
        "superconvergence missing: filtered rate {fil_rate} vs raw {raw_rate}"
    );
}

/// Polynomial exactness through the full engine: a degree-2p polynomial is
/// *not* generally reproduced, but degree <= p is (projection exact +
/// kernel reproduction), at interior points of an unstructured mesh.
#[test]
fn engine_reproduces_polynomials_through_all_layers() {
    let mesh = generate_mesh(MeshClass::HighVariance, 800, 13);
    let p = 1;
    let f = |x: f64, y: f64| 0.1 - 0.8 * x + 0.6 * y;
    let field = project_l2(&mesh, p, f, 0);
    let grid = ComputationGrid::quadrature_points(&mesh, p);
    // Keep the stencil narrow so most of the graded mesh is "interior";
    // reproduction is h-independent, so shrinking h costs nothing.
    let h_factor = (0.3 / (4.0 * mesh.max_edge_length())).min(1.0);
    let sol = PostProcessor::new(Scheme::PerPoint)
        .h_factor(h_factor)
        .run(&mesh, &field, &grid);
    let hw = sol.stencil_width / 2.0;
    let mut checked = 0;
    for (i, pt) in grid.points().iter().enumerate() {
        if pt.x > hw && pt.x < 1.0 - hw && pt.y > hw && pt.y < 1.0 - hw {
            let want = f(pt.x, pt.y);
            assert!(
                (sol.values[i] - want).abs() < 1e-8,
                "at {pt:?}: {} vs {want}",
                sol.values[i]
            );
            checked += 1;
        }
    }
    assert!(checked > 100, "only {checked} interior points");
}
