//! Property-based tests of the evaluation-plan compiler: a compiled plan
//! is a drop-in replacement for the direct pipeline, and serialization is
//! lossless to the bit. Case counts are kept small because every case
//! compiles a plan and runs full post-processing passes.

use proptest::prelude::*;
use ustencil::dg::project_l2;
use ustencil::engine::prelude::*;
use ustencil::mesh::{generate_mesh, MeshClass};
use ustencil::plan::CompileOptions;
use ustencil::EvalPlan;

fn build(
    class: MeshClass,
    n: usize,
    p: usize,
    k: usize,
    seed: u64,
) -> (
    ustencil::mesh::TriMesh,
    ustencil::dg::DgField,
    ComputationGrid,
    f64,
) {
    let mesh = generate_mesh(class, n, seed);
    let field = project_l2(&mesh, p, |x, y| (x * 5.1).sin() + y * y - 0.3 * x * y, 2);
    let grid = ComputationGrid::quadrature_points(&mesh, p);
    // Keep the (3k+1)h support inside the periodic unit square.
    let h_factor = (0.9 / ((3 * k + 1) as f64 * mesh.max_edge_length())).min(1.0);
    (mesh, field, grid, h_factor)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A plan's apply matches a direct `PostProcessor::run` — under either
    /// scheme — to 1e-12 for random meshes, degrees, and kernel
    /// smoothness k in {1, 2, 3}.
    #[test]
    fn plan_matches_both_direct_schemes(
        seed in 0u64..1000,
        n in 80usize..220,
        p in 1usize..=2,
        k in 1usize..=3,
        lv in proptest::bool::ANY,
    ) {
        let class = if lv { MeshClass::LowVariance } else { MeshClass::HighVariance };
        let (mesh, field, grid, h_factor) = build(class, n, p, k, seed);
        let plan = EvalPlan::compile(&mesh, &grid, p, &CompileOptions {
            smoothness: Some(k),
            h_factor,
            parallel: false,
            ..CompileOptions::default()
        });
        let applied = plan.apply(&field);
        for scheme in Scheme::ALL {
            let direct = PostProcessor::new(scheme)
                .smoothness(k)
                .h_factor(h_factor)
                .parallel(false)
                .run(&mesh, &field, &grid);
            let diff = applied.max_abs_diff(&direct.values);
            prop_assert!(
                diff <= 1e-12,
                "{} vs plan: diff {diff} (n={n} p={p} k={k})",
                scheme.label()
            );
        }
    }

    /// A plan survives a JSON round trip with byte-identical weights and
    /// identical CSR structure, so offline-built plans evaluate exactly
    /// like freshly compiled ones.
    #[test]
    fn serialized_plans_are_bit_exact(
        seed in 0u64..1000,
        n in 80usize..180,
        p in 1usize..=2,
        k in 1usize..=3,
    ) {
        let (mesh, field, grid, h_factor) = build(MeshClass::LowVariance, n, p, k, seed);
        let plan = EvalPlan::compile(&mesh, &grid, p, &CompileOptions {
            smoothness: Some(k),
            h_factor,
            parallel: false,
            ..CompileOptions::default()
        });
        let loaded = EvalPlan::from_json(&plan.to_pretty_string()).expect("round trip");
        prop_assert!(loaded.rows() == plan.rows(), "row count changed");
        prop_assert!(loaded.nnz() == plan.nnz(), "entry count changed");
        prop_assert!(
            loaded.h().to_bits() == plan.h().to_bits(),
            "kernel scale changed"
        );
        prop_assert!(
            loaded
                .weights_bits()
                .zip(plan.weights_bits())
                .all(|(a, b)| a == b),
            "weights differ after round trip"
        );
        // And therefore the evaluations agree bit for bit.
        let a = plan.apply(&field);
        let b = loaded.apply(&field);
        prop_assert!(
            a.values.iter().zip(&b.values).all(|(x, y)| x.to_bits() == y.to_bits()),
            "loaded plan evaluates differently"
        );
    }
}
