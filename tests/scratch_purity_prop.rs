//! Property test: the kernel layer's `Scratch` arena is observationally
//! pure — reusing one arena across queries (the production pattern) gives
//! bit-identical values and counters to a fresh arena per query, and a
//! warm arena's buffer capacities stop changing (the allocation-freedom
//! contract of the hot loop).

use proptest::prelude::*;
use ustencil::dg::project_l2;
use ustencil::engine::integrate::{ElementData, IntegrationCtx};
use ustencil::engine::kernel::StencilTraversal;
use ustencil::engine::kernel::{AccumulateSolution, Scratch};
use ustencil::engine::prelude::*;
use ustencil::mesh::{generate_mesh, MeshClass};
use ustencil::quadrature::TriangleRule;
use ustencil::siac::Stencil2d;
use ustencil::spatial::{Boundary, TriangleGrid};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn scratch_reuse_is_observationally_pure(
        seed in 0u64..1000,
        n in 80usize..200,
        p in 1usize..=2,
    ) {
        let mesh = generate_mesh(MeshClass::LowVariance, n, seed);
        let field = project_l2(&mesh, p, |x, y| (x * 4.2).cos() + y * y - 0.7 * x, 1);
        let basis = field.basis().clone();
        let grid = ComputationGrid::quadrature_points(&mesh, p);
        let h_factor = (0.9 / ((3 * p + 1) as f64 * mesh.max_edge_length())).min(1.0);
        let stencil = Stencil2d::symmetric(p, h_factor * mesh.max_edge_length());
        let rule = TriangleRule::with_strength(IntegrationCtx::required_strength(p, p));
        let tri_grid = TriangleGrid::build(&mesh, Boundary::Periodic);
        let trav = StencilTraversal::new(
            &stencil,
            &rule,
            basis.monomial_exponents(),
            basis.n_modes(),
        );
        let centers = &grid.points()[..grid.len().min(12)];

        let query = |scratch: &mut Scratch, center| {
            let mut sink = AccumulateSolution::new();
            let mut metrics = Metrics::default();
            let mut probe = Probe::new(false);
            trav.point_query(
                center,
                &tri_grid,
                |e| ElementData::gather(&mesh, &field, &basis, e),
                0,
                scratch,
                &mut sink,
                &mut metrics,
                &mut probe,
            );
            (sink.take(), metrics)
        };

        // Fresh arena per query vs one arena reused across all queries vs
        // the same arena on a second full pass: all three must agree
        // bit-for-bit, values and counters alike.
        let fresh: Vec<(f64, Metrics)> = centers
            .iter()
            .map(|&c| query(&mut Scratch::new(), c))
            .collect();
        let mut arena = Scratch::new();
        let reused: Vec<(f64, Metrics)> =
            centers.iter().map(|&c| query(&mut arena, c)).collect();
        let warm_cap = arena.capacity();
        let second: Vec<(f64, Metrics)> =
            centers.iter().map(|&c| query(&mut arena, c)).collect();

        for (i, ((f, r), s)) in fresh.iter().zip(&reused).zip(&second).enumerate() {
            prop_assert!(f.0.to_bits() == r.0.to_bits(), "fresh vs reused at {i}");
            prop_assert!(r.0.to_bits() == s.0.to_bits(), "first vs second pass at {i}");
            prop_assert!(f.1 == r.1, "metrics fresh vs reused at {i}");
            prop_assert!(r.1 == s.1, "metrics first vs second pass at {i}");
        }

        // Allocation-freedom: a warm arena's capacities never change again
        // under the same workload.
        prop_assert!(arena.capacity() == warm_cap);

        // Reuse against a *different* field is sound after invalidate().
        let field2 = project_l2(&mesh, p, |x, y| x - 2.0 * y, 0);
        let query2 = |scratch: &mut Scratch, center| {
            let mut sink = AccumulateSolution::new();
            let mut metrics = Metrics::default();
            let mut probe = Probe::new(false);
            trav.point_query(
                center,
                &tri_grid,
                |e| ElementData::gather(&mesh, &field2, &basis, e),
                0,
                scratch,
                &mut sink,
                &mut metrics,
                &mut probe,
            );
            sink.take()
        };
        arena.invalidate();
        for &c in centers {
            let stale = query2(&mut arena, c);
            let clean = query2(&mut Scratch::new(), c);
            prop_assert!(stale.to_bits() == clean.to_bits());
        }
    }
}
