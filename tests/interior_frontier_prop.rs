//! Property tests of the interior/frontier split the overlapped schedule
//! rests on: for random meshes, smoothness orders, and rank counts, the
//! two lists partition each rank's owned elements exactly, and no
//! interior element's stencil footprint can reach an element the rank
//! does not own — so evaluating the interior before the halo drain can
//! never read a coefficient that is still in flight.

use proptest::prelude::*;
use ustencil::dist::ShardPlan;
use ustencil::engine::prelude::*;
use ustencil::geometry::Point2;
use ustencil::mesh::{generate_mesh, MeshClass, PERIODIC_SHIFTS};
use ustencil::siac::Stencil2d;
use ustencil::spatial::{Boundary, PointGrid};

/// Largest `h_factor` keeping a smoothness-`k` stencil inside the domain,
/// with margin.
fn safe_h(mesh: &ustencil::mesh::TriMesh, k: usize) -> f64 {
    (0.9 / ((3 * k + 1) as f64 * mesh.max_edge_length())).min(1.0)
}

/// The ghost-ring distance the runtime builds shard plans with: half the
/// stencil width, one point-grid cell for the cell-rounded candidate
/// lookup, and a tie-breaking epsilon (mirrors `run_dist`).
fn runtime_halo_width(mesh: &ustencil::mesh::TriMesh, stencil: &Stencil2d) -> f64 {
    let s = mesh.max_edge_length();
    let cell = PointGrid::build(&[Point2::new(0.5, 0.5)], s / 2.0, Boundary::Clamped)
        .grid()
        .cell_size();
    stencil.width() / 2.0 + cell + 1e-9
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Interior ∪ frontier is exactly the owned element list of every
    /// rank (sorted, disjoint, nothing counted twice across ranks), and
    /// every interior element's stencil footprint — its bounding box
    /// inflated by half the stencil width, under every periodic shift —
    /// is disjoint from every element owned by another rank.
    #[test]
    fn interior_frontier_partition_owned_and_interior_reaches_no_foreign_element(
        seed in 0u64..1000,
        n in 120usize..350,
        k in 1usize..=3,
        ranks_ix in 0usize..3,
    ) {
        let ranks = [2usize, 4, 8][ranks_ix];
        let mesh = generate_mesh(MeshClass::LowVariance, n, seed);
        let grid = ComputationGrid::quadrature_points(&mesh, 1);
        let h = safe_h(&mesh, k) * mesh.max_edge_length();
        let stencil = Stencil2d::symmetric(k, h);
        let halo_width = runtime_halo_width(&mesh, &stencil);
        let plan = ShardPlan::build(&mesh, &grid, ranks, halo_width);

        let footprint = stencil.width() / 2.0;
        let mut total_split = 0usize;
        for r in 0..ranks {
            let shard = plan.shard(r);
            let (interior, frontier) = plan.split_interior(&mesh, r);
            total_split += interior.len() + frontier.len();

            // Exact partition: merging the two sorted lists reproduces
            // the owned list, so nothing is dropped, duplicated, or
            // shared between them.
            let mut merged = interior.clone();
            merged.extend_from_slice(&frontier);
            merged.sort_unstable();
            prop_assert_eq!(
                &merged, &shard.owned_elements,
                "rank {}: interior + frontier must be exactly the owned elements", r
            );
            prop_assert!(interior.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(frontier.windows(2).all(|w| w[0] < w[1]));

            // The semantic guarantee behind the overlap: an interior
            // element's stencil support cannot touch any element the rank
            // does not own, under any periodic image. (This also verifies
            // the halo ring was complete — a missing ring element would
            // let a reachable foreign element slip past the split.)
            let foreign: Vec<u32> = (0..mesh.n_triangles() as u32)
                .filter(|&e| plan.owner_of(e) != r as u32)
                .collect();
            for &e in &interior {
                let reach = mesh.triangle(e as usize).aabb().inflate(footprint);
                for &shift in PERIODIC_SHIFTS.iter() {
                    let shifted = reach.translate(shift);
                    for &f in &foreign {
                        prop_assert!(
                            !shifted.intersects(&mesh.triangle(f as usize).aabb()),
                            "rank {}: interior element {} reaches foreign element {}",
                            r, e, f
                        );
                    }
                }
            }
        }
        // Ranks partition the mesh, so the splits add up globally too.
        prop_assert_eq!(total_split, mesh.n_triangles());
    }

    /// One rank owns everything: the split puts every element in the
    /// interior and the frontier is empty, whatever the smoothness.
    #[test]
    fn single_rank_is_all_interior(
        seed in 0u64..1000,
        n in 120usize..300,
        k in 1usize..=3,
    ) {
        let mesh = generate_mesh(MeshClass::LowVariance, n, seed);
        let grid = ComputationGrid::quadrature_points(&mesh, 1);
        let h = safe_h(&mesh, k) * mesh.max_edge_length();
        let stencil = Stencil2d::symmetric(k, h);
        let plan = ShardPlan::build(&mesh, &grid, 1, runtime_halo_width(&mesh, &stencil));
        let (interior, frontier) = plan.split_interior(&mesh, 0);
        prop_assert_eq!(&interior, &plan.shard(0).owned_elements);
        prop_assert!(frontier.is_empty());
    }
}
