//! Workspace integration tests: the full pipeline from mesh generation
//! through dG projection to SIAC post-processing, crossing every crate.

use ustencil::dg::project_l2;
use ustencil::engine::prelude::*;
use ustencil::mesh::{generate_mesh, MeshClass};

const TAU: f64 = std::f64::consts::TAU;

fn smooth(x: f64, y: f64) -> f64 {
    (TAU * x).sin() * (TAU * y).cos() + 0.5
}

/// The paper's central numerical claim: per-point and per-element compute
/// the same convolution, on every mesh class and polynomial degree.
#[test]
fn schemes_agree_across_classes_and_degrees() {
    for (class, n, p) in [
        (MeshClass::LowVariance, 250, 1),
        (MeshClass::LowVariance, 200, 2),
        (MeshClass::HighVariance, 220, 1),
        (MeshClass::StructuredPattern, 256, 2),
    ] {
        let mesh = generate_mesh(class, n, 31);
        let field = project_l2(&mesh, p, smooth, 4);
        let grid = ComputationGrid::quadrature_points(&mesh, p);
        let h_factor = (0.9 / ((3 * p + 1) as f64 * mesh.max_edge_length())).min(1.0);
        let a = PostProcessor::new(Scheme::PerPoint)
            .h_factor(h_factor)
            .run(&mesh, &field, &grid);
        let b = PostProcessor::new(Scheme::PerElement)
            .h_factor(h_factor)
            .run(&mesh, &field, &grid);
        let diff = a.max_abs_diff(&b);
        assert!(
            diff < 1e-9,
            "{:?} n={n} p={p}: schemes disagree by {diff}",
            class
        );
    }
}

/// Filtering a smooth projected field reduces the RMS error at the grid
/// points on a fine-enough unstructured mesh.
#[test]
fn filtering_reduces_error_on_unstructured_mesh() {
    // Fine enough for the quadratic filter's asymptotic regime (on coarse
    // unstructured meshes the smoothing error of the wide k=2 stencil can
    // exceed the projection error).
    let mesh = generate_mesh(MeshClass::LowVariance, 2_500, 5);
    let p = 2;
    let field = project_l2(&mesh, p, smooth, 4);
    let grid = ComputationGrid::quadrature_points(&mesh, p);
    let sol = PostProcessor::new(Scheme::PerElement).run(&mesh, &field, &grid);

    let mut raw = 0.0;
    let mut filtered = 0.0;
    for (i, pt) in grid.points().iter().enumerate() {
        let e = grid.owners()[i] as usize;
        let (u, v) = mesh.triangle(e).map_to_unit(*pt).unwrap();
        let exact = smooth(pt.x, pt.y);
        raw += (field.eval_ref(e, u, v) - exact).powi(2);
        filtered += (sol.values[i] - exact).powi(2);
    }
    assert!(
        filtered < raw * 0.5,
        "filtering should at least halve the squared error: {} -> {}",
        raw,
        filtered
    );
}

/// Periodic wrap: post-processing a globally smooth periodic field is
/// accurate at boundary-adjacent points too (the stencil wraps).
#[test]
fn periodic_wrap_is_seamless() {
    let mesh = generate_mesh(MeshClass::LowVariance, 700, 9);
    let p = 1;
    let field = project_l2(&mesh, p, smooth, 4);
    let grid = ComputationGrid::quadrature_points(&mesh, p);
    let sol = PostProcessor::new(Scheme::PerElement).run(&mesh, &field, &grid);
    let hw = sol.stencil_width / 2.0;

    // Compare the error distribution near the boundary against the
    // interior; the wrap should keep them comparable.
    let (mut near, mut near_n) = (0.0, 0);
    let (mut far, mut far_n) = (0.0, 0);
    for (i, pt) in grid.points().iter().enumerate() {
        let err = (sol.values[i] - smooth(pt.x, pt.y)).powi(2);
        let interior = pt.x > hw && pt.x < 1.0 - hw && pt.y > hw && pt.y < 1.0 - hw;
        if interior {
            far += err;
            far_n += 1;
        } else {
            near += err;
            near_n += 1;
        }
    }
    let near_rms = (near / near_n as f64).sqrt();
    let far_rms = (far / far_n as f64).sqrt();
    assert!(
        near_rms < 10.0 * far_rms + 1e-12,
        "boundary error {near_rms:e} blows up vs interior {far_rms:e}"
    );
}

/// Tiling granularity does not change the answer (Figure 7's overlapped
/// partial solutions sum back exactly).
#[test]
fn patch_count_is_transparent() {
    let mesh = generate_mesh(MeshClass::HighVariance, 300, 2);
    let p = 1;
    let field = project_l2(&mesh, p, smooth, 4);
    let grid = ComputationGrid::quadrature_points(&mesh, p);
    let h_factor = (0.9 / (4.0 * mesh.max_edge_length())).min(1.0);
    let reference = PostProcessor::new(Scheme::PerElement)
        .blocks(1)
        .h_factor(h_factor)
        .run(&mesh, &field, &grid);
    for blocks in [2usize, 5, 16, 37, 128] {
        let sol = PostProcessor::new(Scheme::PerElement)
            .blocks(blocks)
            .h_factor(h_factor)
            .run(&mesh, &field, &grid);
        let diff = sol.max_abs_diff(&reference);
        assert!(diff < 1e-10, "blocks={blocks}: diff {diff}");
    }
}

/// Custom (non-quadrature) evaluation grids work through the whole engine:
/// a visualization-style lattice of points, each tagged with its owning
/// element.
#[test]
fn custom_evaluation_grid() {
    let mesh = generate_mesh(MeshClass::LowVariance, 300, 21);
    let p = 1;
    let f = |x: f64, y: f64| 0.5 + x - 2.0 * y;
    let field = project_l2(&mesh, p, f, 0);

    // A coarse lattice of sample points; find each point's element by scan
    // (fine at this size).
    let mut points = Vec::new();
    let mut owners = Vec::new();
    for j in 1..8 {
        for i in 1..8 {
            let pt = ustencil::geometry::Point2::new(i as f64 / 8.0, j as f64 / 8.0);
            if let Some(e) = (0..mesh.n_triangles()).find(|&e| mesh.triangle(e).contains(pt, 1e-12))
            {
                points.push(pt);
                owners.push(e as u32);
            }
        }
    }
    assert!(points.len() > 40);
    let grid = ComputationGrid::from_points(points, owners);
    let sol = PostProcessor::new(Scheme::PerPoint).run(&mesh, &field, &grid);
    let hw = sol.stencil_width / 2.0;
    for (i, pt) in grid.points().iter().enumerate() {
        if pt.x > hw && pt.x < 1.0 - hw && pt.y > hw && pt.y < 1.0 - hw {
            assert!(
                (sol.values[i] - f(pt.x, pt.y)).abs() < 1e-8,
                "at {pt:?}: {}",
                sol.values[i]
            );
        }
    }
}

/// The device model orders the schemes the way the paper measures them, on
/// both mesh classes.
#[test]
fn simulated_speedup_matches_paper_direction() {
    let cfg = DeviceConfig::default();
    for class in [MeshClass::LowVariance, MeshClass::HighVariance] {
        let mesh = generate_mesh(class, 400, 3);
        let p = 1;
        let field = project_l2(&mesh, p, smooth, 4);
        let grid = ComputationGrid::quadrature_points(&mesh, p);
        let h_factor = (0.9 / (4.0 * mesh.max_edge_length())).min(1.0);
        let pp = PostProcessor::new(Scheme::PerPoint)
            .h_factor(h_factor)
            .run(&mesh, &field, &grid);
        let pe = PostProcessor::new(Scheme::PerElement)
            .h_factor(h_factor)
            .run(&mesh, &field, &grid);
        let speedup = pp.simulate(&cfg).total_ms / pe.simulate(&cfg).total_ms;
        assert!(
            speedup > 1.2,
            "{class:?}: simulated per-element speedup only {speedup}"
        );
    }
}
