//! Property-based tests of the engine's core invariants, randomizing over
//! mesh seeds, sizes, degrees and tiling granularity. Case counts are kept
//! small because every case runs a full post-processing pass.

use proptest::prelude::*;
use ustencil::dg::project_l2;
use ustencil::engine::prelude::*;
use ustencil::mesh::{generate_mesh, MeshClass};

fn build(
    class: MeshClass,
    n: usize,
    p: usize,
    seed: u64,
) -> (
    ustencil::mesh::TriMesh,
    ustencil::dg::DgField,
    ComputationGrid,
    f64,
) {
    let mesh = generate_mesh(class, n, seed);
    let field = project_l2(&mesh, p, |x, y| (x * 5.1).sin() + y * y - 0.3 * x * y, 2);
    let grid = ComputationGrid::quadrature_points(&mesh, p);
    let h_factor = (0.9 / ((3 * p + 1) as f64 * mesh.max_edge_length())).min(1.0);
    (mesh, field, grid, h_factor)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Per-point and per-element agree for random meshes and degrees.
    #[test]
    fn schemes_equivalent(
        seed in 0u64..1000,
        n in 80usize..250,
        p in 1usize..=2,
        lv in proptest::bool::ANY,
    ) {
        let class = if lv { MeshClass::LowVariance } else { MeshClass::HighVariance };
        let (mesh, field, grid, h_factor) = build(class, n, p, seed);
        let a = PostProcessor::new(Scheme::PerPoint)
            .h_factor(h_factor)
            .parallel(false)
            .run(&mesh, &field, &grid);
        let b = PostProcessor::new(Scheme::PerElement)
            .h_factor(h_factor)
            .parallel(false)
            .run(&mesh, &field, &grid);
        let diff = a.max_abs_diff(&b);
        prop_assert!(diff < 1e-9, "diff {diff}");
    }

    /// Tiling granularity and parallelism are transparent for random
    /// configurations.
    #[test]
    fn tiling_and_parallelism_transparent(
        seed in 0u64..1000,
        n in 80usize..200,
        blocks in 1usize..40,
    ) {
        let (mesh, field, grid, h_factor) = build(MeshClass::LowVariance, n, 1, seed);
        let reference = PostProcessor::new(Scheme::PerElement)
            .blocks(1)
            .h_factor(h_factor)
            .parallel(false)
            .run(&mesh, &field, &grid);
        let tiled = PostProcessor::new(Scheme::PerElement)
            .blocks(blocks)
            .h_factor(h_factor)
            .parallel(true)
            .run(&mesh, &field, &grid);
        let diff = tiled.max_abs_diff(&reference);
        prop_assert!(diff < 1e-10, "blocks={blocks}: diff {diff}");
    }

    /// Both schemes perform identical *true* work — intersections found,
    /// clip sub-regions produced, quadrature points evaluated — for any
    /// mesh and degree. Only the candidate-test counts may differ (the two
    /// hash grids over-deliver differently). The stencil is kept narrow
    /// enough that `width + element diameter < 1`: with a wide stencil a
    /// (point, element) pair can intersect through two periodic images,
    /// which the per-element scheme counts once per image and the
    /// per-point scheme once per pair.
    #[test]
    fn schemes_count_identical_true_work(
        seed in 0u64..1000,
        n in 80usize..220,
        p in 1usize..=2,
        lv in proptest::bool::ANY,
    ) {
        let class = if lv { MeshClass::LowVariance } else { MeshClass::HighVariance };
        let (mesh, field, grid, _) = build(class, n, p, seed);
        let width_at_unit = (3 * p + 1) as f64 * mesh.max_edge_length();
        let h_factor = (0.45 / width_at_unit).min(1.0);
        let a = PostProcessor::new(Scheme::PerPoint)
            .h_factor(h_factor)
            .parallel(false)
            .run(&mesh, &field, &grid);
        let b = PostProcessor::new(Scheme::PerElement)
            .h_factor(h_factor)
            .parallel(false)
            .run(&mesh, &field, &grid);
        let (ma, mb) = (&a.metrics, &b.metrics);
        prop_assert!(
            ma.true_intersections == mb.true_intersections,
            "true_intersections: per-point {} vs per-element {}",
            ma.true_intersections,
            mb.true_intersections
        );
        prop_assert!(
            ma.cell_clips == mb.cell_clips,
            "cell_clips: {} vs {}", ma.cell_clips, mb.cell_clips
        );
        prop_assert!(
            ma.subregions == mb.subregions,
            "subregions: {} vs {}", ma.subregions, mb.subregions
        );
        prop_assert!(
            ma.quad_evals == mb.quad_evals,
            "quad_evals: {} vs {}", ma.quad_evals, mb.quad_evals
        );
        // The counts the schemes are *allowed* to differ on must still be
        // present on both sides.
        prop_assert!(ma.intersection_tests >= ma.true_intersections);
        prop_assert!(mb.intersection_tests >= mb.true_intersections);
    }

    /// Kernel mass means a constant field passes through the filter
    /// unchanged, for any mesh and degree.
    #[test]
    fn constants_are_fixed_points(
        seed in 0u64..1000,
        n in 80usize..200,
        p in 1usize..=2,
        value in -5.0f64..5.0,
    ) {
        let mesh = generate_mesh(MeshClass::LowVariance, n, seed);
        let field = project_l2(&mesh, p, |_, _| value, 0);
        let grid = ComputationGrid::quadrature_points(&mesh, p);
        let h_factor = (0.9 / ((3 * p + 1) as f64 * mesh.max_edge_length())).min(1.0);
        let sol = PostProcessor::new(Scheme::PerElement)
            .h_factor(h_factor)
            .run(&mesh, &field, &grid);
        for v in &sol.values {
            prop_assert!((v - value).abs() < 1e-8, "{v} vs {value}");
        }
    }
}
