//! # ustencil
//!
//! A scalable, efficient scheme for evaluating stencil computations over
//! unstructured meshes — a Rust implementation of King & Kirby (SC '13),
//! built around SIAC post-processing of discontinuous Galerkin solutions.
//!
//! This facade crate re-exports the whole workspace under one roof:
//!
//! * [`geometry`] — clipping, triangulation, geometric primitives,
//! * [`quadrature`] — Gauss and triangle rules,
//! * [`mesh`] — unstructured triangular meshes and generators,
//! * [`dg`] — modal discontinuous Galerkin fields,
//! * [`siac`] — B-spline convolution kernels,
//! * [`spatial`] — uniform hash grids,
//! * [`engine`] — the per-point / per-element stencil evaluators, overlapped
//!   tiling and the streaming-device model,
//! * [`plan`] — the evaluation-plan compiler: precompute the stencil
//!   geometry once, apply it to many fields as a sparse operator
//!   (see DESIGN.md §9), plus the incremental patch engine that
//!   revalidates a compiled plan after a mesh edit (see DESIGN.md §16),
//! * [`dist`] — the rank-sharded execution runtime: explicit halo
//!   exchange over serialized transports, deterministic fault injection,
//!   and per-rank comms accounting (see DESIGN.md §11),
//! * [`serve`] — the multi-tenant plan-cache service: sharded concurrent
//!   cache with single-flight compilation, a disk warm-start tier, and a
//!   coalescing request queue with per-tenant ledgers (see DESIGN.md §14),
//! * [`trace`] — phase spans, streaming histograms, imbalance summaries and
//!   the JSON run reports (see DESIGN.md, "Observability").
//!
//! See `examples/quickstart.rs` for the five-minute tour and
//! `examples/timeseries_postprocess.rs` for the compile-once/apply-many
//! plan workflow.

#![deny(missing_docs)]

pub use ustencil_core as engine;
pub use ustencil_dg as dg;
pub use ustencil_dist as dist;
pub use ustencil_geometry as geometry;
pub use ustencil_mesh as mesh;
pub use ustencil_plan as plan;
pub use ustencil_quadrature as quadrature;
pub use ustencil_serve as serve;
pub use ustencil_siac as siac;
pub use ustencil_spatial as spatial;
pub use ustencil_trace as trace;

pub use ustencil_core::prelude::*;
pub use ustencil_dist::{run_dist, run_plan_dist, DistOptions, DistPlanSolution, DistSolution};
pub use ustencil_plan::{CachedPlan, DirtySet, EvalPlan, PatchError, PlanDelta, PlanExt, PlanKey};
pub use ustencil_serve::{PlanCache, PlanServer};
