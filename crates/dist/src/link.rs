//! The reliability layer: sliding-window acknowledgement on top of any
//! [`Transport`].
//!
//! The transport may drop, delay, or reorder messages; this layer restores
//! at-least-once delivery with bounded retry, and deduplicates by
//! `(sender, seq)` so the application above sees each payload exactly
//! once. Unlike the stop-and-wait protocol it replaced, sends are
//! *posted*: up to [`LinkConfig::window`] frames per peer ride the wire
//! unacknowledged while the caller computes, acknowledgements are
//! cumulative (one [`Tag::Ack`] carries the receiver's next-expected
//! sequence number, covering every earlier frame), and messages that
//! overflow the window are coalesced into a single [`Tag::Bundle`] frame
//! when a slot frees — fewer round trips and fewer header bytes per
//! exchange. [`flush`](ReliableLink::flush) drains the pipeline when the
//! overlap phase ends.
//!
//! While an endpoint waits (in [`flush`](ReliableLink::flush) or
//! [`recv_payload`](ReliableLink::recv_payload)) it keeps servicing
//! incoming traffic — acknowledging and queueing payloads, firing its own
//! retransmit timers — so ranks sending to each other at the same time
//! cannot deadlock.

use crate::flow::{FlowLog, FlowPoint};
use crate::transport::{Message, Tag, Transport, TransportError, HEADER_BYTES};
use crate::wire;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::time::{Duration, Instant};
use ustencil_trace::CommStats;

/// Whether a tag belongs to the halo-exchange phase, whose messages get
/// flow-log instrumentation. `OwnedValues` is excluded deliberately: a
/// worker ships its flow log *inside* that message, so its own send point
/// could never appear in the snapshot and every run would report a bogus
/// unmatched recv at the coordinator.
fn is_flow_tag(tag: Tag) -> bool {
    matches!(tag, Tag::HaloCoeffs | Tag::HaloRequest)
}

/// Tunables for the reliability layer.
#[derive(Debug, Clone, Copy)]
pub struct LinkConfig {
    /// How long the oldest unacknowledged frame may wait before it is
    /// retransmitted. The default is generous: in-process fabrics don't
    /// lose messages unless a fault plan says so, and a busy peer (e.g.
    /// the coordinator evaluating its own shard) must not trigger
    /// spurious retransmits.
    pub ack_timeout: Duration,
    /// Retransmissions per frame after its first attempt before the peer
    /// is declared unreachable.
    pub max_retries: u32,
    /// Frames that may be in flight (sent, unacknowledged) per peer.
    /// Posts beyond the window queue on the sender and are coalesced
    /// into one bundle frame when a slot frees. Values below 1 behave
    /// as 1 (stop-and-wait).
    ///
    /// The default is sized so a typical halo push set is entirely in
    /// flight before the interior sweep begins: nobody pumps acks while
    /// evaluating, so queued frames would otherwise wait for the
    /// sender's post-eval flush and serialize the drain.
    pub window: usize,
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self {
            ack_timeout: Duration::from_secs(30),
            max_retries: 4,
            window: 64,
        }
    }
}

/// Failures surfaced by the distributed runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistError {
    /// A peer never acknowledged within the retry budget.
    Unreachable {
        /// The rank that did not answer.
        peer: u32,
    },
    /// A receive deadline passed with nothing arriving.
    Timeout,
    /// The fabric shut down underneath us.
    Closed,
    /// A peer sent bytes that do not decode as the expected payload.
    Protocol(String),
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Unreachable { peer } => write!(f, "rank {peer} unreachable"),
            DistError::Timeout => write!(f, "receive deadline passed"),
            DistError::Closed => write!(f, "transport closed"),
            DistError::Protocol(why) => write!(f, "protocol error: {why}"),
        }
    }
}

impl std::error::Error for DistError {}

/// One frame awaiting acknowledgement.
struct Pending {
    msg: Message,
    last_sent: Instant,
    retries: u32,
}

/// Sender-side state toward one peer.
#[derive(Default)]
struct PeerTx {
    /// Next frame sequence number toward this peer (per-peer, contiguous
    /// from 0 — the receiver's cumulative-ack watermark depends on it).
    next_seq: u64,
    /// Frames in flight, oldest first. Never longer than the window.
    unacked: VecDeque<Pending>,
    /// Posted messages waiting for a window slot: `(tag, flow, payload)`.
    queue: VecDeque<(Tag, u64, Vec<u8>)>,
}

/// Receiver-side state for one source.
#[derive(Default)]
struct PeerRx {
    /// All frames below this sequence number have been delivered.
    next_expected: u64,
    /// Frames at or above the watermark already delivered out of order.
    ooo: BTreeSet<u64>,
    /// Whether a payload arrived since the last cumulative ack we sent.
    dirty: bool,
}

/// A reliable endpoint: one per rank, wrapping that rank's transport.
pub struct ReliableLink<T: Transport> {
    transport: T,
    config: LinkConfig,
    /// Per-sender monotone flow id: one per logical payload message,
    /// shared by its retransmits (and preserved inside bundle frames).
    next_flow: u64,
    tx: HashMap<u32, PeerTx>,
    rx: HashMap<u32, PeerRx>,
    /// Payload messages deduplicated and unbundled, ready for the app.
    inbox: VecDeque<Message>,
    stats: CommStats,
    /// When set, halo-phase sends and first-seen recvs are logged as
    /// [`FlowPoint`]s with timestamps relative to this epoch.
    flow_epoch: Option<Instant>,
    flow_log: FlowLog,
}

impl<T: Transport> ReliableLink<T> {
    /// Wraps `transport` with reliability state.
    pub fn new(transport: T, config: LinkConfig) -> Self {
        Self {
            transport,
            config,
            next_flow: 0,
            tx: HashMap::new(),
            rx: HashMap::new(),
            inbox: VecDeque::new(),
            stats: CommStats::default(),
            flow_epoch: None,
            flow_log: FlowLog::default(),
        }
    }

    /// Enables flow-point logging for halo-phase messages, with timestamps
    /// measured from `epoch` (share one epoch across ranks to put every
    /// log on the same time axis). Flow *ids* are always assigned; this
    /// only turns on the recording, so the disabled path stays free.
    pub fn instrument_flows(&mut self, epoch: Instant) {
        self.flow_epoch = Some(epoch);
    }

    /// The flow log recorded so far (empty unless
    /// [`instrument_flows`](Self::instrument_flows) was called).
    pub fn flow_log(&self) -> &FlowLog {
        &self.flow_log
    }

    fn flow_ts(&self, epoch: Instant) -> u64 {
        epoch.elapsed().as_nanos() as u64
    }

    /// This endpoint's rank.
    pub fn rank(&self) -> u32 {
        self.transport.rank()
    }

    /// Total ranks in the fabric.
    pub fn n_ranks(&self) -> u32 {
        self.transport.n_ranks()
    }

    /// Counters so far (payloads and acknowledgements both count — they
    /// are all bytes on the wire).
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    /// Whether any frame is still queued or awaiting acknowledgement.
    pub fn has_pending(&self) -> bool {
        self.tx
            .values()
            .any(|st| !st.unacked.is_empty() || !st.queue.is_empty())
    }

    fn raw_send(&mut self, msg: Message) -> Result<(), DistError> {
        self.stats.record_send(msg.wire_bytes());
        self.transport.send(msg).map_err(|e| match e {
            TransportError::Closed => DistError::Closed,
            TransportError::Timeout => DistError::Timeout,
        })
    }

    /// Posts `payload` toward rank `to` without waiting: the message is
    /// framed and sent immediately when the window has room, queued (and
    /// later coalesced) otherwise. Delivery is guaranteed only after a
    /// successful [`flush`](Self::flush) — the overlap contract is
    /// post, compute, then drain.
    pub fn post(&mut self, to: u32, tag: Tag, payload: Vec<u8>) -> Result<(), DistError> {
        // The flow id is assigned once, at post: every wire copy of this
        // logical message — retransmits, bundle sub-frames — carries it.
        let flow = self.next_flow;
        self.next_flow += 1;
        if let Some(epoch) = self.flow_epoch {
            if is_flow_tag(tag) {
                self.flow_log.sends.push(FlowPoint {
                    flow,
                    peer: to,
                    tag,
                    ts_ns: self.flow_ts(epoch),
                    bytes: HEADER_BYTES + payload.len() as u64,
                });
            }
        }
        self.tx
            .entry(to)
            .or_default()
            .queue
            .push_back((tag, flow, payload));
        self.fill_window(to)
    }

    /// Moves queued messages toward `to` into the window. One queued
    /// message becomes its own frame; several become one bundle frame —
    /// the same-destination coalescing that keeps a busy exchange from
    /// paying per-message round trips.
    fn fill_window(&mut self, to: u32) -> Result<(), DistError> {
        let from = self.transport.rank();
        let window = self.config.window.max(1);
        loop {
            let mut coalesced = 0u64;
            let msg = {
                let st = self.tx.entry(to).or_default();
                if st.unacked.len() >= window || st.queue.is_empty() {
                    return Ok(());
                }
                let seq = st.next_seq;
                st.next_seq += 1;
                let msg = if st.queue.len() == 1 {
                    let (tag, flow, payload) = st.queue.pop_front().expect("queue non-empty");
                    Message {
                        from,
                        to,
                        tag,
                        seq,
                        flow,
                        payload,
                    }
                } else {
                    let parts: Vec<(Tag, u64, Vec<u8>)> = st.queue.drain(..).collect();
                    coalesced = parts.len() as u64;
                    // The frame header's flow names the first sub-message;
                    // each part keeps its own flow inside the payload.
                    let flow = parts[0].1;
                    Message {
                        from,
                        to,
                        tag: Tag::Bundle,
                        seq,
                        flow,
                        payload: wire::encode_bundle(&parts),
                    }
                };
                st.unacked.push_back(Pending {
                    msg: msg.clone(),
                    last_sent: Instant::now(),
                    retries: 0,
                });
                msg
            };
            self.stats.coalesced += coalesced;
            self.raw_send(msg)?;
        }
    }

    /// Applies a cumulative acknowledgement from `from`: every in-flight
    /// frame below `ack_seq` is confirmed, freeing window slots.
    fn handle_ack(&mut self, from: u32, ack_seq: u64) -> Result<(), DistError> {
        if let Some(st) = self.tx.get_mut(&from) {
            while st.unacked.front().is_some_and(|p| p.msg.seq < ack_seq) {
                st.unacked.pop_front();
            }
        }
        self.fill_window(from)
    }

    fn log_recv(&mut self, msg: &Message) {
        if let Some(epoch) = self.flow_epoch {
            if is_flow_tag(msg.tag) {
                self.flow_log.recvs.push(FlowPoint {
                    flow: msg.flow,
                    peer: msg.from,
                    tag: msg.tag,
                    ts_ns: self.flow_ts(epoch),
                    bytes: HEADER_BYTES + msg.payload.len() as u64,
                });
            }
        }
    }

    /// Handles one incoming message: acks advance the send window;
    /// payload frames are deduplicated against the receive watermark,
    /// unbundled, and queued for the application. Out-of-order frames are
    /// surfaced immediately (the runtime is order-agnostic); only the
    /// cumulative watermark is withheld until the gap fills.
    fn absorb(&mut self, msg: Message) -> Result<(), DistError> {
        self.stats.record_recv(msg.wire_bytes());
        if msg.tag == Tag::Ack {
            return self.handle_ack(msg.from, msg.seq);
        }
        let fresh = {
            let st = self.rx.entry(msg.from).or_default();
            st.dirty = true;
            if msg.seq < st.next_expected || st.ooo.contains(&msg.seq) {
                false
            } else {
                st.ooo.insert(msg.seq);
                while st.ooo.remove(&st.next_expected) {
                    st.next_expected += 1;
                }
                true
            }
        };
        if !fresh {
            // A retransmit whose original got through (or whose ack was
            // lost): count it and re-ack on the next pump, never re-queue.
            self.stats.dup_payloads += 1;
            return Ok(());
        }
        if msg.tag == Tag::Bundle {
            let parts = wire::decode_bundle(&msg.payload).map_err(DistError::Protocol)?;
            for (tag, flow, payload) in parts {
                let sub = Message {
                    from: msg.from,
                    to: msg.to,
                    tag,
                    seq: msg.seq,
                    flow,
                    payload,
                };
                self.log_recv(&sub);
                self.inbox.push_back(sub);
            }
        } else {
            self.log_recv(&msg);
            self.inbox.push_back(msg);
        }
        Ok(())
    }

    /// Sends one cumulative ack to every source with unacknowledged
    /// arrivals — a batch of payloads absorbed together costs one ack.
    fn send_acks(&mut self) -> Result<(), DistError> {
        let from = self.transport.rank();
        let dirty: Vec<(u32, u64)> = self
            .rx
            .iter_mut()
            .filter(|(_, st)| st.dirty)
            .map(|(&src, st)| {
                st.dirty = false;
                (src, st.next_expected)
            })
            .collect();
        for (src, next_expected) in dirty {
            self.raw_send(Message {
                from,
                to: src,
                tag: Tag::Ack,
                seq: next_expected,
                flow: 0,
                payload: Vec::new(),
            })?;
        }
        Ok(())
    }

    /// Retransmits the oldest unacknowledged frame of any peer whose ack
    /// timer expired; a frame out of retries fails the peer.
    fn fire_timers(&mut self) -> Result<(), DistError> {
        let now = Instant::now();
        let peers: Vec<u32> = self.tx.keys().copied().collect();
        for peer in peers {
            let resend = {
                let st = self.tx.get_mut(&peer).expect("peer state exists");
                match st.unacked.front_mut() {
                    Some(p) if now.duration_since(p.last_sent) >= self.config.ack_timeout => {
                        self.stats.timeouts += 1;
                        if p.retries >= self.config.max_retries {
                            return Err(DistError::Unreachable { peer });
                        }
                        p.retries += 1;
                        p.last_sent = now;
                        self.stats.retransmits += 1;
                        Some(p.msg.clone())
                    }
                    _ => None,
                }
            };
            if let Some(msg) = resend {
                self.raw_send(msg)?;
            }
        }
        Ok(())
    }

    /// The earliest instant at which a retransmit timer fires.
    fn next_timer(&self) -> Option<Instant> {
        self.tx
            .values()
            .filter_map(|st| st.unacked.front())
            .map(|p| p.last_sent + self.config.ack_timeout)
            .min()
    }

    /// Services the link without blocking: drains every immediately
    /// available incoming message, sends the cumulative acks they earned,
    /// and fires due retransmit timers. Call this between units of
    /// overlapped computation to keep the pipeline moving.
    pub fn poll(&mut self) -> Result<(), DistError> {
        loop {
            match self.transport.recv_timeout(Duration::ZERO) {
                Ok(m) => self.absorb(m)?,
                Err(TransportError::Timeout) => break,
                Err(TransportError::Closed) => return Err(DistError::Closed),
            }
        }
        self.send_acks()?;
        self.fire_timers()
    }

    /// Blocks until every posted frame (to every peer) is acknowledged,
    /// servicing incoming traffic the whole time. Fails with
    /// [`DistError::Unreachable`] when a frame exhausts its retries.
    pub fn flush(&mut self) -> Result<(), DistError> {
        loop {
            self.poll()?;
            if !self.has_pending() {
                return Ok(());
            }
            let now = Instant::now();
            let wait = self.next_timer().map_or(Duration::from_millis(1), |t| {
                t.saturating_duration_since(now)
            });
            match self.transport.recv_timeout(wait) {
                Ok(m) => self.absorb(m)?,
                Err(TransportError::Timeout) => {}
                Err(TransportError::Closed) => return Err(DistError::Closed),
            }
        }
    }

    /// Sends `payload` to rank `to` and blocks until it (and everything
    /// posted before it) is acknowledged: [`post`](Self::post) +
    /// [`flush`](Self::flush). The stop-and-wait surface, kept for
    /// messages with no computation to hide behind.
    pub fn send_reliable(&mut self, to: u32, tag: Tag, payload: Vec<u8>) -> Result<(), DistError> {
        self.post(to, tag, payload)?;
        self.flush()
    }

    /// Receives the next payload message (never an acknowledgement),
    /// waiting at most `timeout`. Each payload is returned exactly once
    /// even when the fabric duplicated it through retransmission, and the
    /// link's own posted frames keep retransmitting while waiting.
    pub fn recv_payload(&mut self, timeout: Duration) -> Result<Message, DistError> {
        let deadline = Instant::now() + timeout;
        loop {
            self.poll()?;
            if let Some(msg) = self.inbox.pop_front() {
                return Ok(msg);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(DistError::Timeout);
            }
            let until = self.next_timer().map_or(deadline, |t| t.min(deadline));
            match self
                .transport
                .recv_timeout(until.saturating_duration_since(now))
            {
                Ok(m) => self.absorb(m)?,
                Err(TransportError::Timeout) => {}
                Err(TransportError::Closed) => return Err(DistError::Closed),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultRule};
    use crate::record::{Disposition, RecordingFabric};

    fn links(
        n: usize,
        faults: FaultPlan,
        config: LinkConfig,
    ) -> (
        RecordingFabric,
        Vec<ReliableLink<crate::record::RecordingEndpoint>>,
    ) {
        let (fabric, eps) = RecordingFabric::with_faults(n, faults);
        let links = eps
            .into_iter()
            .map(|ep| ReliableLink::new(ep, config))
            .collect();
        (fabric, links)
    }

    #[test]
    fn dropped_message_is_retransmitted_and_arrives_once() {
        let faults = FaultPlan::none().with_rule(FaultRule::drop_first(0, Tag::HaloCoeffs, 1));
        let config = LinkConfig {
            ack_timeout: Duration::from_millis(20),
            max_retries: 4,
            ..LinkConfig::default()
        };
        let (fabric, mut ls) = links(2, faults, config);
        let mut l1 = ls.pop().unwrap();
        let mut l0 = ls.pop().unwrap();
        let receiver = std::thread::spawn(move || {
            let msg = l1.recv_payload(Duration::from_secs(5)).unwrap();
            (msg.payload.clone(), l1.stats())
        });
        l0.send_reliable(1, Tag::HaloCoeffs, vec![42, 7]).unwrap();
        let (payload, _) = receiver.join().unwrap();
        assert_eq!(payload, vec![42, 7]);
        assert!(l0.stats().retransmits >= 1, "drop must force a retransmit");
        let log = fabric.log();
        let halo: Vec<_> = log.iter().filter(|r| r.tag == Tag::HaloCoeffs).collect();
        assert_eq!(halo[0].disposition, Disposition::Dropped);
        assert!(halo[1..]
            .iter()
            .any(|r| r.disposition == Disposition::Delivered));
    }

    #[test]
    fn duplicate_delivery_is_deduplicated() {
        // Drop the *ack*: the payload arrives, the sender times out and
        // retransmits, and the receiver must surface the payload once.
        let faults = FaultPlan::none().with_rule(FaultRule::drop_first(1, Tag::Ack, 1));
        let config = LinkConfig {
            ack_timeout: Duration::from_millis(20),
            max_retries: 4,
            ..LinkConfig::default()
        };
        let (_fabric, mut ls) = links(2, faults, config);
        let mut l1 = ls.pop().unwrap();
        let mut l0 = ls.pop().unwrap();
        let receiver = std::thread::spawn(move || {
            let first = l1.recv_payload(Duration::from_secs(5)).unwrap();
            let second = l1.recv_payload(Duration::from_millis(100));
            (first.seq, second.err(), l1.stats())
        });
        l0.send_reliable(1, Tag::HaloCoeffs, vec![9]).unwrap();
        let (first_seq, second, stats) = receiver.join().unwrap();
        assert_eq!(first_seq, 0);
        assert_eq!(
            second,
            Some(DistError::Timeout),
            "duplicate must not surface"
        );
        assert!(stats.dup_payloads >= 1, "the duplicate frame is counted");
    }

    #[test]
    fn unreachable_peer_exhausts_retries() {
        let faults =
            FaultPlan::none().with_rule(FaultRule::drop_first(0, Tag::HaloCoeffs, u32::MAX));
        let config = LinkConfig {
            ack_timeout: Duration::from_millis(5),
            max_retries: 2,
            ..LinkConfig::default()
        };
        let (_fabric, mut ls) = links(2, faults, config);
        let _l1 = ls.pop().unwrap();
        let mut l0 = ls.pop().unwrap();
        let err = l0.send_reliable(1, Tag::HaloCoeffs, vec![1]).unwrap_err();
        assert_eq!(err, DistError::Unreachable { peer: 1 });
        assert_eq!(l0.stats().retransmits, 2);
    }

    #[test]
    fn instrumented_links_log_matching_flow_points() {
        use crate::flow::match_flow_logs;
        let config = LinkConfig {
            ack_timeout: Duration::from_millis(100),
            max_retries: 4,
            ..LinkConfig::default()
        };
        let (_fabric, mut ls) = links(2, FaultPlan::none(), config);
        let mut l1 = ls.pop().unwrap();
        let mut l0 = ls.pop().unwrap();
        let epoch = Instant::now();
        l0.instrument_flows(epoch);
        l1.instrument_flows(epoch);
        let receiver = std::thread::spawn(move || {
            l1.recv_payload(Duration::from_secs(5)).unwrap();
            l1
        });
        l0.send_reliable(1, Tag::HaloCoeffs, vec![1, 2, 3]).unwrap();
        let l1 = receiver.join().unwrap();
        let matched = match_flow_logs(&[(0, l0.flow_log()), (1, l1.flow_log())]);
        assert_eq!(matched.pairs.len(), 1);
        assert!(matched.unmatched_sends.is_empty());
        assert!(matched.unmatched_recvs.is_empty());
        let p = matched.pairs[0];
        assert_eq!((p.src, p.dst, p.flow, p.tag), (0, 1, 0, Tag::HaloCoeffs));
        assert!(p.send_ns <= p.recv_ns, "send must precede the receive");
    }

    #[test]
    fn retransmits_share_one_flow_id() {
        let faults = FaultPlan::none().with_rule(FaultRule::drop_first(0, Tag::HaloCoeffs, 1));
        let config = LinkConfig {
            ack_timeout: Duration::from_millis(20),
            max_retries: 4,
            ..LinkConfig::default()
        };
        let (fabric, mut ls) = links(2, faults, config);
        let mut l1 = ls.pop().unwrap();
        let mut l0 = ls.pop().unwrap();
        l0.instrument_flows(Instant::now());
        let receiver = std::thread::spawn(move || {
            l1.recv_payload(Duration::from_secs(5)).unwrap();
        });
        l0.send_reliable(1, Tag::HaloCoeffs, vec![5]).unwrap();
        receiver.join().unwrap();
        // Dropped original and delivered retransmit are one logical flow:
        // one send point in the log, every wire copy stamped flow 0.
        assert_eq!(l0.flow_log().sends.len(), 1);
        let halo: Vec<_> = fabric
            .log()
            .into_iter()
            .filter(|r| r.tag == Tag::HaloCoeffs)
            .collect();
        assert!(halo.len() >= 2, "drop must force a retransmit");
        assert!(halo.iter().all(|r| r.flow == 0));
    }

    #[test]
    fn simultaneous_senders_do_not_deadlock() {
        let config = LinkConfig {
            ack_timeout: Duration::from_millis(100),
            max_retries: 4,
            ..LinkConfig::default()
        };
        let (_fabric, mut ls) = links(2, FaultPlan::none(), config);
        let mut l1 = ls.pop().unwrap();
        let mut l0 = ls.pop().unwrap();
        let t1 = std::thread::spawn(move || {
            l1.send_reliable(0, Tag::HaloCoeffs, vec![1]).unwrap();
            l1.recv_payload(Duration::from_secs(5)).unwrap().payload
        });
        l0.send_reliable(1, Tag::HaloCoeffs, vec![2]).unwrap();
        let got0 = l0.recv_payload(Duration::from_secs(5)).unwrap().payload;
        let got1 = t1.join().unwrap();
        assert_eq!(got0, vec![1]);
        assert_eq!(got1, vec![2]);
    }

    #[test]
    fn window_overflow_coalesces_into_one_bundle() {
        // Deterministic, single-threaded: post five messages against a
        // window of two, ack the first two, and the remaining three must
        // travel as ONE bundle frame with their flow ids intact.
        let config = LinkConfig {
            ack_timeout: Duration::from_secs(5),
            max_retries: 2,
            window: 2,
        };
        let (fabric, mut ls) = links(2, FaultPlan::none(), config);
        let mut l1 = ls.pop().unwrap();
        let mut l0 = ls.pop().unwrap();
        for i in 0..5u8 {
            l0.post(1, Tag::HaloCoeffs, vec![i]).unwrap();
        }
        // Only the window's worth of frames is on the wire.
        let singles = fabric
            .log()
            .iter()
            .filter(|r| r.tag == Tag::HaloCoeffs && r.disposition == Disposition::Delivered)
            .count();
        assert_eq!(singles, 2, "window must cap frames in flight");

        let mut got: Vec<u8> = Vec::new();
        for _ in 0..2 {
            got.push(l1.recv_payload(Duration::from_millis(200)).unwrap().payload[0]);
        }
        // The receiver's cumulative ack frees both slots; the backlog
        // coalesces into a single bundle frame.
        l0.poll().unwrap();
        assert_eq!(l0.stats().coalesced, 3, "three messages share one frame");
        let bundles = fabric
            .log()
            .iter()
            .filter(|r| r.tag == Tag::Bundle && r.disposition == Disposition::Delivered)
            .count();
        assert_eq!(bundles, 1);
        for _ in 0..3 {
            got.push(l1.recv_payload(Duration::from_millis(200)).unwrap().payload[0]);
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4], "all five payloads, exactly once");
        l0.flush().unwrap();
        assert!(!l0.has_pending());
        assert_eq!(l0.stats().retransmits, 0, "no loss, no retransmits");
    }

    #[test]
    fn out_of_order_and_duplicate_frames_inside_the_window() {
        // Drive the receive side with raw frames: deliver seq 1 before
        // seq 0, with a duplicate of seq 1 in between. Both payloads must
        // surface exactly once and the cumulative watermark must jump to
        // 2 only after the gap fills.
        use crate::transport::Transport;
        let (_fabric, mut eps) = RecordingFabric::new(2);
        let e1 = eps.pop().unwrap();
        let mut e0 = eps.pop().unwrap();
        let mut l1 = ReliableLink::new(e1, LinkConfig::default());
        let frame = |seq: u64, byte: u8| Message {
            from: 0,
            to: 1,
            tag: Tag::HaloCoeffs,
            seq,
            flow: seq,
            payload: vec![byte],
        };
        e0.send(frame(1, 11)).unwrap();
        e0.send(frame(1, 11)).unwrap(); // duplicate inside the window
        e0.send(frame(0, 10)).unwrap();
        let a = l1.recv_payload(Duration::from_millis(100)).unwrap();
        let b = l1.recv_payload(Duration::from_millis(100)).unwrap();
        assert_eq!((a.payload[0], b.payload[0]), (11, 10));
        assert_eq!(l1.stats().dup_payloads, 1);
        assert!(l1
            .recv_payload(Duration::from_millis(50))
            .is_err_and(|e| e == DistError::Timeout));
        // The last cumulative ack covers both frames: seq = next expected.
        let acks: Vec<u64> = {
            let mut seqs = Vec::new();
            while let Ok(m) = e0.recv_timeout(Duration::from_millis(10)) {
                assert_eq!(m.tag, Tag::Ack);
                seqs.push(m.seq);
            }
            seqs
        };
        assert_eq!(acks.last(), Some(&2), "watermark advances past the gap");
    }

    #[test]
    fn reordered_frames_need_no_retransmit() {
        // A hold rule delivers frame 0 *after* frame 1. With both inside
        // the window, the cumulative ack recovers without any retransmit.
        let faults = FaultPlan::none().with_rule(FaultRule::hold_first(0, 1, 1));
        let config = LinkConfig {
            ack_timeout: Duration::from_secs(5),
            max_retries: 2,
            window: 4,
        };
        let (_fabric, mut ls) = links(2, faults, config);
        let mut l1 = ls.pop().unwrap();
        let mut l0 = ls.pop().unwrap();
        l0.post(1, Tag::HaloCoeffs, vec![1]).unwrap();
        l0.post(1, Tag::HaloCoeffs, vec![2]).unwrap();
        let a = l1.recv_payload(Duration::from_millis(200)).unwrap();
        let b = l1.recv_payload(Duration::from_millis(200)).unwrap();
        assert_eq!((a.payload[0], b.payload[0]), (2, 1), "reordered delivery");
        l0.flush().unwrap();
        assert_eq!(l0.stats().retransmits, 0);
        assert_eq!(l1.stats().dup_payloads, 0);
    }

    #[test]
    fn drop_at_the_window_edge_recovers_exactly_once() {
        // The FIRST frame of a full window is dropped; later frames arrive
        // out of order ahead of the watermark. The timer retransmits only
        // the lost frame, the cumulative ack then confirms the whole
        // window, and the queued backlog drains — every payload exactly
        // once, no duplicate ever surfacing.
        let faults = FaultPlan::none().with_rule(FaultRule::drop_first(0, Tag::HaloCoeffs, 1));
        let config = LinkConfig {
            ack_timeout: Duration::from_millis(20),
            max_retries: 4,
            window: 2,
        };
        let (_fabric, mut ls) = links(2, faults, config);
        let mut l1 = ls.pop().unwrap();
        let mut l0 = ls.pop().unwrap();
        let receiver = std::thread::spawn(move || {
            let mut got: Vec<u8> = (0..4)
                .map(|_| l1.recv_payload(Duration::from_secs(5)).unwrap().payload[0])
                .collect();
            let extra = l1.recv_payload(Duration::from_millis(100));
            got.sort_unstable();
            (got, extra.err(), l1.stats())
        });
        for i in 0..4u8 {
            l0.post(1, Tag::HaloCoeffs, vec![i]).unwrap();
        }
        l0.flush().unwrap();
        let (got, extra, _stats) = receiver.join().unwrap();
        assert_eq!(got, vec![0, 1, 2, 3], "all payloads, exactly once");
        assert_eq!(extra, Some(DistError::Timeout), "no duplicate surfaces");
        assert!(l0.stats().retransmits >= 1, "the drop forced a retransmit");
    }
}
