//! The reliability layer: stop-and-wait acknowledgement on top of any
//! [`Transport`].
//!
//! The transport may drop, delay, or reorder messages; this layer restores
//! at-least-once delivery with bounded retry, and deduplicates by
//! `(sender, seq)` so the application above sees each payload exactly
//! once. While a sender waits for its own acknowledgement it keeps
//! servicing incoming traffic (acknowledging and queueing payloads), so
//! two ranks sending to each other at the same time cannot deadlock.

use crate::flow::{FlowLog, FlowPoint};
use crate::transport::{Message, Tag, Transport, TransportError};
use std::collections::{HashSet, VecDeque};
use std::time::{Duration, Instant};
use ustencil_trace::CommStats;

/// Whether a tag belongs to the halo-exchange phase, whose messages get
/// flow-log instrumentation. `OwnedValues` is excluded deliberately: a
/// worker ships its flow log *inside* that message, so its own send point
/// could never appear in the snapshot and every run would report a bogus
/// unmatched recv at the coordinator.
fn is_flow_tag(tag: Tag) -> bool {
    matches!(tag, Tag::HaloCoeffs | Tag::HaloRequest)
}

/// Tunables for the reliability layer.
#[derive(Debug, Clone, Copy)]
pub struct LinkConfig {
    /// How long to wait for an acknowledgement before retransmitting.
    /// The default is generous: in-process fabrics don't lose messages
    /// unless a fault plan says so, and a busy peer (e.g. the coordinator
    /// evaluating its own shard) must not trigger spurious retransmits.
    pub ack_timeout: Duration,
    /// Retransmissions after the first attempt before the peer is declared
    /// unreachable.
    pub max_retries: u32,
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self {
            ack_timeout: Duration::from_secs(30),
            max_retries: 4,
        }
    }
}

/// Failures surfaced by the distributed runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistError {
    /// A peer never acknowledged within the retry budget.
    Unreachable {
        /// The rank that did not answer.
        peer: u32,
    },
    /// A receive deadline passed with nothing arriving.
    Timeout,
    /// The fabric shut down underneath us.
    Closed,
    /// A peer sent bytes that do not decode as the expected payload.
    Protocol(String),
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Unreachable { peer } => write!(f, "rank {peer} unreachable"),
            DistError::Timeout => write!(f, "receive deadline passed"),
            DistError::Closed => write!(f, "transport closed"),
            DistError::Protocol(why) => write!(f, "protocol error: {why}"),
        }
    }
}

impl std::error::Error for DistError {}

/// A reliable endpoint: one per rank, wrapping that rank's transport.
pub struct ReliableLink<T: Transport> {
    transport: T,
    config: LinkConfig,
    next_seq: u64,
    /// Per-sender monotone flow id: one per logical payload message,
    /// shared by its retransmits.
    next_flow: u64,
    /// `(sender, seq)` pairs already handed to the application.
    seen: HashSet<(u32, u64)>,
    /// Payload messages that arrived while awaiting an acknowledgement.
    inbox: VecDeque<Message>,
    stats: CommStats,
    /// When set, halo-phase sends and first-seen recvs are logged as
    /// [`FlowPoint`]s with timestamps relative to this epoch.
    flow_epoch: Option<Instant>,
    flow_log: FlowLog,
}

impl<T: Transport> ReliableLink<T> {
    /// Wraps `transport` with reliability state.
    pub fn new(transport: T, config: LinkConfig) -> Self {
        Self {
            transport,
            config,
            next_seq: 0,
            next_flow: 0,
            seen: HashSet::new(),
            inbox: VecDeque::new(),
            stats: CommStats::default(),
            flow_epoch: None,
            flow_log: FlowLog::default(),
        }
    }

    /// Enables flow-point logging for halo-phase messages, with timestamps
    /// measured from `epoch` (share one epoch across ranks to put every
    /// log on the same time axis). Flow *ids* are always assigned; this
    /// only turns on the recording, so the disabled path stays free.
    pub fn instrument_flows(&mut self, epoch: Instant) {
        self.flow_epoch = Some(epoch);
    }

    /// The flow log recorded so far (empty unless
    /// [`instrument_flows`](Self::instrument_flows) was called).
    pub fn flow_log(&self) -> &FlowLog {
        &self.flow_log
    }

    fn flow_ts(&self, epoch: Instant) -> u64 {
        epoch.elapsed().as_nanos() as u64
    }

    /// This endpoint's rank.
    pub fn rank(&self) -> u32 {
        self.transport.rank()
    }

    /// Total ranks in the fabric.
    pub fn n_ranks(&self) -> u32 {
        self.transport.n_ranks()
    }

    /// Counters so far (payloads and acknowledgements both count — they
    /// are all bytes on the wire).
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    fn raw_send(&mut self, msg: Message) -> Result<(), DistError> {
        self.stats.record_send(msg.wire_bytes());
        self.transport.send(msg).map_err(|e| match e {
            TransportError::Closed => DistError::Closed,
            TransportError::Timeout => DistError::Timeout,
        })
    }

    /// Handles one incoming message: acknowledges payloads and queues the
    /// ones not seen before. Acknowledgements are returned to the caller
    /// so `send_reliable` can match its own.
    fn absorb(&mut self, msg: Message) -> Result<Option<(u32, u64)>, DistError> {
        self.stats.record_recv(msg.wire_bytes());
        if msg.tag == Tag::Ack {
            return Ok(Some((msg.from, msg.seq)));
        }
        let key = (msg.from, msg.seq);
        let ack = Message {
            from: self.transport.rank(),
            to: msg.from,
            tag: Tag::Ack,
            seq: msg.seq,
            flow: msg.flow,
            payload: Vec::new(),
        };
        // Duplicates (a retransmit whose original got through, or whose
        // ack was lost) are re-acknowledged but not re-queued.
        if self.seen.insert(key) {
            if let Some(epoch) = self.flow_epoch {
                if is_flow_tag(msg.tag) {
                    self.flow_log.recvs.push(FlowPoint {
                        flow: msg.flow,
                        peer: msg.from,
                        tag: msg.tag,
                        ts_ns: self.flow_ts(epoch),
                        bytes: msg.wire_bytes(),
                    });
                }
            }
            self.inbox.push_back(msg);
        }
        self.raw_send(ack)?;
        Ok(None)
    }

    /// Sends `payload` to rank `to` and blocks until it is acknowledged,
    /// retransmitting on timeout up to the configured retry budget.
    pub fn send_reliable(&mut self, to: u32, tag: Tag, payload: Vec<u8>) -> Result<(), DistError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        // The flow id is assigned once, before the retry loop: every
        // retransmit of this payload carries the same flow.
        let flow = self.next_flow;
        self.next_flow += 1;
        let msg = Message {
            from: self.transport.rank(),
            to,
            tag,
            seq,
            flow,
            payload,
        };
        if let Some(epoch) = self.flow_epoch {
            if is_flow_tag(tag) {
                self.flow_log.sends.push(FlowPoint {
                    flow,
                    peer: to,
                    tag,
                    ts_ns: self.flow_ts(epoch),
                    bytes: msg.wire_bytes(),
                });
            }
        }
        for attempt in 0..=self.config.max_retries {
            if attempt > 0 {
                self.stats.retransmits += 1;
            }
            self.raw_send(msg.clone())?;
            let deadline = Instant::now() + self.config.ack_timeout;
            loop {
                let now = Instant::now();
                if now >= deadline {
                    self.stats.timeouts += 1;
                    break;
                }
                match self.transport.recv_timeout(deadline - now) {
                    Ok(incoming) => {
                        if let Some((from, acked)) = self.absorb(incoming)? {
                            if from == to && acked == seq {
                                return Ok(());
                            }
                            // A stale ack (for an earlier retransmitted
                            // seq) or another peer's ack: ignore.
                        }
                    }
                    Err(TransportError::Timeout) => {
                        self.stats.timeouts += 1;
                        break;
                    }
                    Err(TransportError::Closed) => return Err(DistError::Closed),
                }
            }
        }
        Err(DistError::Unreachable { peer: to })
    }

    /// Receives the next payload message (never an acknowledgement),
    /// waiting at most `timeout`. Each payload is returned exactly once
    /// even when the fabric duplicated it through retransmission.
    pub fn recv_payload(&mut self, timeout: Duration) -> Result<Message, DistError> {
        if let Some(msg) = self.inbox.pop_front() {
            return Ok(msg);
        }
        let deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(DistError::Timeout);
            }
            match self.transport.recv_timeout(deadline - now) {
                Ok(incoming) => {
                    self.absorb(incoming)?;
                    if let Some(msg) = self.inbox.pop_front() {
                        return Ok(msg);
                    }
                }
                Err(TransportError::Timeout) => return Err(DistError::Timeout),
                Err(TransportError::Closed) => return Err(DistError::Closed),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultRule};
    use crate::record::{Disposition, RecordingFabric};

    fn links(
        n: usize,
        faults: FaultPlan,
        config: LinkConfig,
    ) -> (
        RecordingFabric,
        Vec<ReliableLink<crate::record::RecordingEndpoint>>,
    ) {
        let (fabric, eps) = RecordingFabric::with_faults(n, faults);
        let links = eps
            .into_iter()
            .map(|ep| ReliableLink::new(ep, config))
            .collect();
        (fabric, links)
    }

    #[test]
    fn dropped_message_is_retransmitted_and_arrives_once() {
        let faults = FaultPlan::none().with_rule(FaultRule::drop_first(0, Tag::HaloCoeffs, 1));
        let config = LinkConfig {
            ack_timeout: Duration::from_millis(20),
            max_retries: 4,
        };
        let (fabric, mut ls) = links(2, faults, config);
        let mut l1 = ls.pop().unwrap();
        let mut l0 = ls.pop().unwrap();
        let receiver = std::thread::spawn(move || {
            let msg = l1.recv_payload(Duration::from_secs(5)).unwrap();
            (msg.payload.clone(), l1.stats())
        });
        l0.send_reliable(1, Tag::HaloCoeffs, vec![42, 7]).unwrap();
        let (payload, _) = receiver.join().unwrap();
        assert_eq!(payload, vec![42, 7]);
        assert!(l0.stats().retransmits >= 1, "drop must force a retransmit");
        let log = fabric.log();
        let halo: Vec<_> = log.iter().filter(|r| r.tag == Tag::HaloCoeffs).collect();
        assert_eq!(halo[0].disposition, Disposition::Dropped);
        assert!(halo[1..]
            .iter()
            .any(|r| r.disposition == Disposition::Delivered));
    }

    #[test]
    fn duplicate_delivery_is_deduplicated() {
        // Drop the *ack*: the payload arrives, the sender times out and
        // retransmits, and the receiver must surface the payload once.
        let faults = FaultPlan::none().with_rule(FaultRule::drop_first(1, Tag::Ack, 1));
        let config = LinkConfig {
            ack_timeout: Duration::from_millis(20),
            max_retries: 4,
        };
        let (_fabric, mut ls) = links(2, faults, config);
        let mut l1 = ls.pop().unwrap();
        let mut l0 = ls.pop().unwrap();
        let receiver = std::thread::spawn(move || {
            let first = l1.recv_payload(Duration::from_secs(5)).unwrap();
            let second = l1.recv_payload(Duration::from_millis(100));
            (first.seq, second.err())
        });
        l0.send_reliable(1, Tag::HaloCoeffs, vec![9]).unwrap();
        let (first_seq, second) = receiver.join().unwrap();
        assert_eq!(first_seq, 0);
        assert_eq!(
            second,
            Some(DistError::Timeout),
            "duplicate must not surface"
        );
    }

    #[test]
    fn unreachable_peer_exhausts_retries() {
        let faults =
            FaultPlan::none().with_rule(FaultRule::drop_first(0, Tag::HaloCoeffs, u32::MAX));
        let config = LinkConfig {
            ack_timeout: Duration::from_millis(5),
            max_retries: 2,
        };
        let (_fabric, mut ls) = links(2, faults, config);
        let _l1 = ls.pop().unwrap();
        let mut l0 = ls.pop().unwrap();
        let err = l0.send_reliable(1, Tag::HaloCoeffs, vec![1]).unwrap_err();
        assert_eq!(err, DistError::Unreachable { peer: 1 });
        assert_eq!(l0.stats().retransmits, 2);
    }

    #[test]
    fn instrumented_links_log_matching_flow_points() {
        use crate::flow::match_flow_logs;
        let config = LinkConfig {
            ack_timeout: Duration::from_millis(100),
            max_retries: 4,
        };
        let (_fabric, mut ls) = links(2, FaultPlan::none(), config);
        let mut l1 = ls.pop().unwrap();
        let mut l0 = ls.pop().unwrap();
        let epoch = Instant::now();
        l0.instrument_flows(epoch);
        l1.instrument_flows(epoch);
        let receiver = std::thread::spawn(move || {
            l1.recv_payload(Duration::from_secs(5)).unwrap();
            l1
        });
        l0.send_reliable(1, Tag::HaloCoeffs, vec![1, 2, 3]).unwrap();
        let l1 = receiver.join().unwrap();
        let matched = match_flow_logs(&[(0, l0.flow_log()), (1, l1.flow_log())]);
        assert_eq!(matched.pairs.len(), 1);
        assert!(matched.unmatched_sends.is_empty());
        assert!(matched.unmatched_recvs.is_empty());
        let p = matched.pairs[0];
        assert_eq!((p.src, p.dst, p.flow, p.tag), (0, 1, 0, Tag::HaloCoeffs));
        assert!(p.send_ns <= p.recv_ns, "send must precede the receive");
    }

    #[test]
    fn retransmits_share_one_flow_id() {
        let faults = FaultPlan::none().with_rule(FaultRule::drop_first(0, Tag::HaloCoeffs, 1));
        let config = LinkConfig {
            ack_timeout: Duration::from_millis(20),
            max_retries: 4,
        };
        let (fabric, mut ls) = links(2, faults, config);
        let mut l1 = ls.pop().unwrap();
        let mut l0 = ls.pop().unwrap();
        l0.instrument_flows(Instant::now());
        let receiver = std::thread::spawn(move || {
            l1.recv_payload(Duration::from_secs(5)).unwrap();
        });
        l0.send_reliable(1, Tag::HaloCoeffs, vec![5]).unwrap();
        receiver.join().unwrap();
        // Dropped original and delivered retransmit are one logical flow:
        // one send point in the log, every wire copy stamped flow 0.
        assert_eq!(l0.flow_log().sends.len(), 1);
        let halo: Vec<_> = fabric
            .log()
            .into_iter()
            .filter(|r| r.tag == Tag::HaloCoeffs)
            .collect();
        assert!(halo.len() >= 2, "drop must force a retransmit");
        assert!(halo.iter().all(|r| r.flow == 0));
    }

    #[test]
    fn simultaneous_senders_do_not_deadlock() {
        let config = LinkConfig {
            ack_timeout: Duration::from_millis(100),
            max_retries: 4,
        };
        let (_fabric, mut ls) = links(2, FaultPlan::none(), config);
        let mut l1 = ls.pop().unwrap();
        let mut l0 = ls.pop().unwrap();
        let t1 = std::thread::spawn(move || {
            l1.send_reliable(0, Tag::HaloCoeffs, vec![1]).unwrap();
            l1.recv_payload(Duration::from_secs(5)).unwrap().payload
        });
        l0.send_reliable(1, Tag::HaloCoeffs, vec![2]).unwrap();
        let got0 = l0.recv_payload(Duration::from_secs(5)).unwrap().payload;
        let got1 = t1.join().unwrap();
        assert_eq!(got0, vec![1]);
        assert_eq!(got1, vec![2]);
    }
}
