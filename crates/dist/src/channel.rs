//! The in-process channel fabric: ranks on real threads, messages over
//! `std::sync::mpsc`.
//!
//! Each rank owns a receiver; every endpoint holds senders to all ranks.
//! Fault rules (and the held-message pocket implementing reorder) live in
//! fabric-shared state guarded by a mutex: decisions happen at send time,
//! in the sender's context, keyed purely by message identity — see
//! [`FaultPlan`].

use crate::fault::{FaultAction, FaultPlan};
use crate::transport::{Message, Transport, TransportError};
use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

struct Shared {
    faults: FaultPlan,
    /// Messages parked by a Hold rule, keyed by destination; flushed after
    /// the next delivered message to that destination.
    held: HashMap<u32, Vec<Message>>,
}

/// One rank's endpoint of the channel fabric.
pub struct ChannelEndpoint {
    rank: u32,
    n_ranks: u32,
    rx: Receiver<Message>,
    txs: Vec<Sender<Message>>,
    shared: Arc<Mutex<Shared>>,
}

/// Builds connected endpoint sets for the channel fabric.
pub struct ChannelFabric;

impl ChannelFabric {
    /// `n` fully connected endpoints with no fault injection.
    pub fn endpoints(n: usize) -> Vec<ChannelEndpoint> {
        Self::endpoints_with_faults(n, FaultPlan::none())
    }

    /// `n` fully connected endpoints applying `faults` to payload sends.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn endpoints_with_faults(n: usize, faults: FaultPlan) -> Vec<ChannelEndpoint> {
        assert!(n > 0, "need at least one rank");
        let shared = Arc::new(Mutex::new(Shared {
            faults,
            held: HashMap::new(),
        }));
        let (txs, rxs): (Vec<Sender<Message>>, Vec<Receiver<Message>>) =
            (0..n).map(|_| channel()).unzip();
        rxs.into_iter()
            .enumerate()
            .map(|(rank, rx)| ChannelEndpoint {
                rank: rank as u32,
                n_ranks: n as u32,
                rx,
                txs: txs.clone(),
                shared: Arc::clone(&shared),
            })
            .collect()
    }
}

impl ChannelEndpoint {
    fn deliver(&self, msg: Message) -> Result<(), TransportError> {
        let to = msg.to as usize;
        if to >= self.txs.len() {
            return Err(TransportError::Closed);
        }
        self.txs[to].send(msg).map_err(|_| TransportError::Closed)
    }
}

impl Transport for ChannelEndpoint {
    fn rank(&self) -> u32 {
        self.rank
    }

    fn n_ranks(&self) -> u32 {
        self.n_ranks
    }

    fn send(&mut self, msg: Message) -> Result<(), TransportError> {
        // Acks bypass fault rules only if a rule doesn't name their tag
        // explicitly; a `tag: None` rule matches them too.
        let (action, flush) = {
            let mut shared = self.shared.lock().expect("fabric poisoned");
            let action = shared.faults.decide(&msg);
            match action {
                Some(FaultAction::Hold) => {
                    shared.held.entry(msg.to).or_default().push(msg);
                    return Ok(());
                }
                Some(FaultAction::Drop) => (action, Vec::new()),
                Some(FaultAction::Duplicate) | None => {
                    let flush = shared.held.remove(&msg.to).unwrap_or_default();
                    (action, flush)
                }
            }
        };
        match action {
            Some(FaultAction::Drop) => Ok(()),
            _ => {
                let to = msg.to;
                if action == Some(FaultAction::Duplicate) {
                    self.deliver(msg.clone())?;
                }
                self.deliver(msg)?;
                // Held messages ride out *behind* the newer message —
                // the reorder the Hold rule exists to produce. Dropped
                // receivers are fine here: the flush is best-effort.
                for held in flush {
                    debug_assert_eq!(held.to, to);
                    let _ = self.deliver(held);
                }
                Ok(())
            }
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Message, TransportError> {
        match self.rx.recv_timeout(timeout) {
            Ok(m) => Ok(m),
            Err(RecvTimeoutError::Timeout) => Err(TransportError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::Closed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultRule;
    use crate::transport::Tag;

    fn msg(from: u32, to: u32, seq: u64) -> Message {
        Message {
            from,
            to,
            tag: Tag::HaloCoeffs,
            seq,
            flow: seq,
            payload: vec![seq as u8],
        }
    }

    #[test]
    fn basic_delivery() {
        let mut eps = ChannelFabric::endpoints(2);
        let mut e1 = eps.pop().unwrap();
        let mut e0 = eps.pop().unwrap();
        e0.send(msg(0, 1, 1)).unwrap();
        let got = e1.recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(got.seq, 1);
        assert!(matches!(
            e0.recv_timeout(Duration::from_millis(10)),
            Err(TransportError::Timeout)
        ));
    }

    #[test]
    fn drop_rule_loses_the_message() {
        let plan = FaultPlan::none().with_rule(FaultRule::drop_first(0, Tag::HaloCoeffs, 1));
        let mut eps = ChannelFabric::endpoints_with_faults(2, plan);
        let mut e1 = eps.pop().unwrap();
        let mut e0 = eps.pop().unwrap();
        e0.send(msg(0, 1, 1)).unwrap();
        e0.send(msg(0, 1, 2)).unwrap();
        let got = e1.recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(got.seq, 2, "first send must be dropped, second delivered");
    }

    #[test]
    fn hold_rule_reorders() {
        let plan = FaultPlan::none().with_rule(FaultRule::hold_first(0, 1, 1));
        let mut eps = ChannelFabric::endpoints_with_faults(2, plan);
        let mut e1 = eps.pop().unwrap();
        let mut e0 = eps.pop().unwrap();
        e0.send(msg(0, 1, 1)).unwrap();
        e0.send(msg(0, 1, 2)).unwrap();
        let a = e1.recv_timeout(Duration::from_millis(100)).unwrap();
        let b = e1.recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!((a.seq, b.seq), (2, 1), "held message arrives second");
    }
}
