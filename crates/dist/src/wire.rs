//! Payload codecs: little-endian, length-prefixed, no external crates.
//!
//! Every payload layout the runtime puts on the wire is defined here, so
//! the message formats are auditable in one place:
//!
//! * **coeffs** — `u32 count`, then per element `u32 id` + `n_modes × f64`
//!   modal coefficients ([`Tag::HaloCoeffs`](crate::transport::Tag));
//! * **ids** — `u32 count` + `count × u32` element ids
//!   ([`Tag::HaloRequest`](crate::transport::Tag));
//! * **rank result** — owned-point values in shard order plus the rank's
//!   execution summary ([`Tag::OwnedValues`](crate::transport::Tag));
//! * **bundle** — `u32 count`, then per logical message `u8 tag` +
//!   `u64 flow` + length-prefixed payload bytes: several same-destination
//!   messages coalesced into one [`Tag::Bundle`](crate::transport::Tag)
//!   frame by the sliding-window link.

use crate::flow::FlowPoint;
use crate::transport::Tag;
use ustencil_core::{BlockStats, Metrics, Probe};
use ustencil_trace::{CommStats, SpanRecord};

/// A growable little-endian byte writer.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` (bit pattern, exact round-trip).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Finishes, returning the payload bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// A bounds-checked little-endian byte reader.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format!("payload truncated at byte {}", self.pos))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(u64::from_le_bytes(
            self.take(8)?.try_into().unwrap(),
        )))
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], String> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    /// True when every byte has been consumed.
    pub fn exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Encodes the modal coefficients of `ids` (each `n_modes` long, sliced
/// out of the element-major `coeffs` array).
pub fn encode_coeffs(ids: &[u32], coeffs: &[f64], n_modes: usize) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u32(ids.len() as u32);
    for &e in ids {
        w.u32(e);
        for m in 0..n_modes {
            w.f64(coeffs[e as usize * n_modes + m]);
        }
    }
    w.finish()
}

/// Decodes a coeffs payload directly into an element-major destination
/// array, returning the element ids that were filled.
pub fn decode_coeffs_into(
    payload: &[u8],
    n_modes: usize,
    dest: &mut [f64],
) -> Result<Vec<u32>, String> {
    let mut r = WireReader::new(payload);
    let count = r.u32()? as usize;
    let mut ids = Vec::with_capacity(count);
    for _ in 0..count {
        let e = r.u32()? as usize;
        if (e + 1) * n_modes > dest.len() {
            return Err(format!("element id {e} out of range"));
        }
        for m in 0..n_modes {
            dest[e * n_modes + m] = r.f64()?;
        }
        ids.push(e as u32);
    }
    if !r.exhausted() {
        return Err("trailing bytes in coeffs payload".into());
    }
    Ok(ids)
}

/// Encodes a list of element ids (a halo request).
pub fn encode_ids(ids: &[u32]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u32(ids.len() as u32);
    for &e in ids {
        w.u32(e);
    }
    w.finish()
}

/// Decodes a list of element ids.
pub fn decode_ids(payload: &[u8]) -> Result<Vec<u32>, String> {
    let mut r = WireReader::new(payload);
    let count = r.u32()? as usize;
    let mut ids = Vec::with_capacity(count);
    for _ in 0..count {
        ids.push(r.u32()?);
    }
    if !r.exhausted() {
        return Err("trailing bytes in ids payload".into());
    }
    Ok(ids)
}

/// Encodes several logical messages — `(tag, flow, payload)` each — into
/// one bundle-frame payload.
pub fn encode_bundle(parts: &[(Tag, u64, Vec<u8>)]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u32(parts.len() as u32);
    for (tag, flow, payload) in parts {
        w.buf.push(tag.to_byte());
        w.u64(*flow);
        w.bytes(payload);
    }
    w.finish()
}

/// Decodes a bundle-frame payload back into its logical messages.
pub fn decode_bundle(payload: &[u8]) -> Result<Vec<(Tag, u64, Vec<u8>)>, String> {
    let mut r = WireReader::new(payload);
    let count = r.u32()? as usize;
    let mut parts = Vec::with_capacity(count);
    for _ in 0..count {
        let tag_byte = r.take(1)?[0];
        let tag = Tag::from_byte(tag_byte)
            .ok_or_else(|| format!("unknown bundle tag byte {tag_byte}"))?;
        if tag == Tag::Ack || tag == Tag::Bundle {
            return Err(format!(
                "tag {} may not travel inside a bundle",
                tag.label()
            ));
        }
        let flow = r.u64()?;
        let bytes = r.bytes()?.to_vec();
        parts.push((tag, flow, bytes));
    }
    if !r.exhausted() {
        return Err("trailing bytes in bundle payload".into());
    }
    Ok(parts)
}

/// One rank's finished contribution: owned-point values (in the shard
/// plan's owned-point order, ids implicit) plus its execution summary.
#[derive(Debug, Clone, PartialEq)]
pub struct RankResult {
    /// Values of the rank's owned points, shard order.
    pub values: Vec<f64>,
    /// Transport counters snapshotted *before* this message was sent (the
    /// message carrying the snapshot is necessarily excluded from it).
    pub comm: CommStats,
    /// Nanoseconds of *exposed* communication: the post + drain spans
    /// where the rank had nothing to compute (overlapped wire time hides
    /// under `eval_ns` and is deliberately not charged here).
    pub exchange_ns: u64,
    /// Nanoseconds in the local evaluation phases (interior + frontier).
    pub eval_ns: u64,
    /// Nanoseconds in the local reduce phase.
    pub reduce_ns: u64,
    /// Owned work units whose stencil footprint stays inside owned
    /// territory, evaluated while halo messages were in flight (elements
    /// for the push runtime, plan rows for the sharded plan path).
    pub interior: u64,
    /// Owned work units whose footprint touches a halo ring, evaluated
    /// after the drain. `interior + frontier` partitions the owned work.
    pub frontier: u64,
    /// Per-patch stats of the rank's evaluation (probes are not shipped —
    /// they are rank-local diagnostics).
    pub patches: Vec<BlockStats>,
    /// The rank's tracer spans (empty when instrumentation is off). Start
    /// offsets are measured from the run's shared epoch, so shipped spans
    /// land on the coordinator's time axis directly.
    pub spans: Vec<SpanRecord>,
    /// Flow-log send points (halo-phase messages only; see
    /// [`FlowLog`](crate::flow::FlowLog)).
    pub flow_sends: Vec<FlowPoint>,
    /// Flow-log receive points.
    pub flow_recvs: Vec<FlowPoint>,
}

fn encode_spans(w: &mut WireWriter, spans: &[SpanRecord]) {
    w.u32(spans.len() as u32);
    for s in spans {
        w.bytes(s.name.as_bytes());
        w.u32(s.depth);
        w.u64(s.start_ns);
        w.u64(s.duration_ns);
    }
}

fn decode_spans(r: &mut WireReader) -> Result<Vec<SpanRecord>, String> {
    let n = r.u32()? as usize;
    let mut spans = Vec::with_capacity(n);
    for _ in 0..n {
        let name = std::str::from_utf8(r.bytes()?)
            .map_err(|_| "span name is not UTF-8".to_string())?
            .to_string();
        spans.push(SpanRecord {
            name,
            depth: r.u32()?,
            start_ns: r.u64()?,
            duration_ns: r.u64()?,
        });
    }
    Ok(spans)
}

fn encode_flow_points(w: &mut WireWriter, points: &[FlowPoint]) {
    w.u32(points.len() as u32);
    for p in points {
        w.u64(p.flow);
        w.u32(p.peer);
        w.u32(p.tag.to_byte() as u32);
        w.u64(p.ts_ns);
        w.u64(p.bytes);
    }
}

fn decode_flow_points(r: &mut WireReader) -> Result<Vec<FlowPoint>, String> {
    let n = r.u32()? as usize;
    let mut points = Vec::with_capacity(n);
    for _ in 0..n {
        let flow = r.u64()?;
        let peer = r.u32()?;
        let tag_byte = r.u32()?;
        let tag = Tag::from_byte(tag_byte as u8)
            .ok_or_else(|| format!("unknown flow-point tag byte {tag_byte}"))?;
        points.push(FlowPoint {
            flow,
            peer,
            tag,
            ts_ns: r.u64()?,
            bytes: r.u64()?,
        });
    }
    Ok(points)
}

fn encode_metrics(w: &mut WireWriter, m: &Metrics) {
    for v in [
        m.intersection_tests,
        m.true_intersections,
        m.cell_clips,
        m.subregions,
        m.quad_evals,
        m.flops,
        m.cells_visited,
        m.elem_data_loads,
        m.point_data_loads,
        m.solution_writes,
        m.partial_slots,
    ] {
        w.u64(v);
    }
}

fn decode_metrics(r: &mut WireReader) -> Result<Metrics, String> {
    Ok(Metrics {
        intersection_tests: r.u64()?,
        true_intersections: r.u64()?,
        cell_clips: r.u64()?,
        subregions: r.u64()?,
        quad_evals: r.u64()?,
        flops: r.u64()?,
        cells_visited: r.u64()?,
        elem_data_loads: r.u64()?,
        point_data_loads: r.u64()?,
        solution_writes: r.u64()?,
        partial_slots: r.u64()?,
    })
}

/// Encodes a [`RankResult`].
pub fn encode_rank_result(res: &RankResult) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u32(res.values.len() as u32);
    for &v in &res.values {
        w.f64(v);
    }
    for v in [
        res.comm.msgs_sent,
        res.comm.bytes_sent,
        res.comm.msgs_recv,
        res.comm.bytes_recv,
        res.comm.retransmits,
        res.comm.timeouts,
        res.comm.dup_payloads,
        res.comm.coalesced,
        res.exchange_ns,
        res.eval_ns,
        res.reduce_ns,
        res.interior,
        res.frontier,
    ] {
        w.u64(v);
    }
    w.u32(res.patches.len() as u32);
    for p in &res.patches {
        w.u64(p.wall_ns);
        w.u64(p.elements);
        w.u64(p.points);
        encode_metrics(&mut w, &p.metrics);
    }
    encode_spans(&mut w, &res.spans);
    encode_flow_points(&mut w, &res.flow_sends);
    encode_flow_points(&mut w, &res.flow_recvs);
    w.finish()
}

/// Decodes a [`RankResult`].
pub fn decode_rank_result(payload: &[u8]) -> Result<RankResult, String> {
    let mut r = WireReader::new(payload);
    let n = r.u32()? as usize;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(r.f64()?);
    }
    let comm = CommStats {
        msgs_sent: r.u64()?,
        bytes_sent: r.u64()?,
        msgs_recv: r.u64()?,
        bytes_recv: r.u64()?,
        retransmits: r.u64()?,
        timeouts: r.u64()?,
        dup_payloads: r.u64()?,
        coalesced: r.u64()?,
    };
    let exchange_ns = r.u64()?;
    let eval_ns = r.u64()?;
    let reduce_ns = r.u64()?;
    let interior = r.u64()?;
    let frontier = r.u64()?;
    let n_patches = r.u32()? as usize;
    let mut patches = Vec::with_capacity(n_patches);
    for _ in 0..n_patches {
        let wall_ns = r.u64()?;
        let elements = r.u64()?;
        let points = r.u64()?;
        let metrics = decode_metrics(&mut r)?;
        patches.push(BlockStats {
            metrics,
            wall_ns,
            elements,
            points,
            probe: Probe::disabled(),
        });
    }
    let spans = decode_spans(&mut r)?;
    let flow_sends = decode_flow_points(&mut r)?;
    let flow_recvs = decode_flow_points(&mut r)?;
    if !r.exhausted() {
        return Err("trailing bytes in rank-result payload".into());
    }
    Ok(RankResult {
        values,
        comm,
        exchange_ns,
        eval_ns,
        reduce_ns,
        interior,
        frontier,
        patches,
        spans,
        flow_sends,
        flow_recvs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coeffs_round_trip_bit_exact() {
        let n_modes = 3;
        let coeffs: Vec<f64> = (0..12).map(|i| (i as f64).sqrt() * 0.1 - 0.3).collect();
        let payload = encode_coeffs(&[1, 3], &coeffs, n_modes);
        let mut dest = vec![0.0; 12];
        let ids = decode_coeffs_into(&payload, n_modes, &mut dest).unwrap();
        assert_eq!(ids, vec![1, 3]);
        for e in [1usize, 3] {
            for m in 0..n_modes {
                assert_eq!(
                    dest[e * n_modes + m].to_bits(),
                    coeffs[e * n_modes + m].to_bits()
                );
            }
        }
        assert_eq!(dest[0], 0.0, "unnamed elements stay untouched");
    }

    #[test]
    fn ids_round_trip() {
        let payload = encode_ids(&[7, 0, 42]);
        assert_eq!(decode_ids(&payload).unwrap(), vec![7, 0, 42]);
        assert_eq!(decode_ids(&encode_ids(&[])).unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn rank_result_round_trip() {
        let res = RankResult {
            values: vec![1.5, -2.25, 0.0],
            comm: CommStats {
                msgs_sent: 4,
                bytes_sent: 900,
                msgs_recv: 3,
                bytes_recv: 700,
                retransmits: 1,
                timeouts: 1,
                dup_payloads: 1,
                coalesced: 2,
            },
            exchange_ns: 123,
            eval_ns: 456,
            reduce_ns: 789,
            interior: 40,
            frontier: 9,
            patches: vec![BlockStats {
                metrics: Metrics {
                    flops: 10,
                    intersection_tests: 3,
                    ..Default::default()
                },
                wall_ns: 99,
                elements: 5,
                points: 7,
                probe: Probe::disabled(),
            }],
            spans: vec![
                SpanRecord {
                    name: "exchange.halo".into(),
                    depth: 0,
                    start_ns: 100,
                    duration_ns: 50,
                },
                SpanRecord {
                    name: "eval.per_element".into(),
                    depth: 1,
                    start_ns: 160,
                    duration_ns: 40,
                },
            ],
            flow_sends: vec![FlowPoint {
                flow: 0,
                peer: 1,
                tag: Tag::HaloCoeffs,
                ts_ns: 105,
                bytes: 64,
            }],
            flow_recvs: vec![FlowPoint {
                flow: 3,
                peer: 2,
                tag: Tag::HaloRequest,
                ts_ns: 130,
                bytes: 33,
            }],
        };
        let decoded = decode_rank_result(&encode_rank_result(&res)).unwrap();
        assert_eq!(decoded.values, res.values);
        assert_eq!(decoded.comm, res.comm);
        assert_eq!((decoded.interior, decoded.frontier), (40, 9));
        assert_eq!(decoded.patches.len(), 1);
        assert_eq!(decoded.patches[0].metrics, res.patches[0].metrics);
        assert_eq!(decoded.patches[0].wall_ns, 99);
        assert_eq!(decoded.spans, res.spans);
        assert_eq!(decoded.flow_sends, res.flow_sends);
        assert_eq!(decoded.flow_recvs, res.flow_recvs);
    }

    #[test]
    fn bundle_round_trip_preserves_tags_and_flows() {
        let parts = vec![
            (Tag::HaloCoeffs, 7u64, vec![1, 2, 3]),
            (Tag::HaloRequest, 9u64, vec![]),
            (Tag::HaloCoeffs, 12u64, vec![255; 17]),
        ];
        let decoded = decode_bundle(&encode_bundle(&parts)).unwrap();
        assert_eq!(decoded, parts);
        assert_eq!(decode_bundle(&encode_bundle(&[])).unwrap(), vec![]);
    }

    #[test]
    fn bundle_rejects_nested_or_truncated_frames() {
        let nested = encode_bundle(&[(Tag::Bundle, 0, vec![])]);
        assert!(decode_bundle(&nested).is_err());
        let ack = encode_bundle(&[(Tag::Ack, 0, vec![])]);
        assert!(decode_bundle(&ack).is_err());
        let good = encode_bundle(&[(Tag::HaloCoeffs, 1, vec![4, 5])]);
        assert!(decode_bundle(&good[..good.len() - 1]).is_err());
        let mut extended = good.clone();
        extended.push(0);
        assert!(decode_bundle(&extended).is_err());
    }

    #[test]
    fn truncated_payloads_are_rejected() {
        let payload = encode_ids(&[7, 8, 9]);
        assert!(decode_ids(&payload[..payload.len() - 1]).is_err());
        let mut extended = payload.clone();
        extended.push(0);
        assert!(decode_ids(&extended).is_err());
        let coeffs = encode_coeffs(&[0], &[1.0, 2.0], 2);
        let mut small = vec![0.0; 2];
        assert!(decode_coeffs_into(&coeffs[..6], 2, &mut small).is_err());
        // Out-of-range element ids are rejected, not written.
        let bad = encode_coeffs(&[5], &[0.0; 12], 2);
        assert!(decode_coeffs_into(&bad, 2, &mut small).is_err());
    }
}
