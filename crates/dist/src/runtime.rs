//! The rank-sharded per-element runtime: real threads, explicit halo
//! exchange overlapped with interior evaluation, comms accounting.
//!
//! Each rank owns a contiguous shard of mesh elements (recursive
//! bisection) and resolves exactly the grid points that live on its owned
//! elements. The only data that crosses ranks after the initial static
//! scatter are serialized messages: boundary dG coefficients during the
//! halo exchange, and each rank's finished owned-point values during the
//! gather — both through the [`Transport`] boundary with sliding-window
//! reliability.
//!
//! ## Overlapped schedule
//!
//! A rank's schedule hides the exchange behind compute instead of
//! waiting out a phase barrier:
//!
//! 1. `exchange.post` — chunked halo pushes are *posted* (queued into the
//!    sliding window) without waiting for delivery;
//! 2. `eval.interior` — owned elements whose stencil footprint cannot
//!    reach the ghost ring (see
//!    [`ShardPlan::split_interior`](crate::shard::ShardPlan::split_interior))
//!    are evaluated while the messages ride the wire;
//! 3. `exchange.drain` — the rank receives the chunks its ring needs;
//! 4. `eval.frontier` — the remaining owned elements, whose footprints
//!    touch the ring, are evaluated against the completed coefficient set;
//! 5. `exchange.flush` — the rank's own window is settled (acks
//!    collected, lost frames retransmitted). Deferred past the frontier
//!    sweep because peers ack only when they drain — flushing inside the
//!    drain would stall the fastest rank on the slowest peer's interior.
//!
//! Phases 1, 3 and 5 are *exposed* communication; `exchange_ns` (and the
//! cost model's per-rank `exposed_fraction`) charge exactly those.
//!
//! ## Numerical contract
//!
//! A rank evaluates its owned ∪ halo elements against a point grid built
//! over its owned points only. The halo ring is sized so that every
//! element whose cell-rounded candidate search can reach an owned point is
//! present locally, and per-rank point grids share the global grid's cell
//! geometry (cell size depends only on `max_edge/2`). Each global
//! `(element, point)` candidate pair is therefore tested on exactly one
//! rank, which makes the summed pair-driven work counters
//! (`intersection_tests`, `true_intersections`, `cell_clips`,
//! `subregions`, `quad_evals`, `flops`, `point_data_loads`,
//! `solution_writes`) *bit-identical* to a single-rank run. Element-driven
//! counters (`cells_visited`, `elem_data_loads`) and `partial_slots` count
//! halo replication and per-rank patch shapes, so they grow with the rank
//! count — that duplicated work is the scheme's replication cost and is
//! reported as such.
//!
//! Values agree with a single-rank run to rounding (the per-rank patch
//! decomposition changes the floating-point summation order, nothing
//! else); with one rank the patch decomposition is identical and the
//! values are bitwise equal to the engine's per-element path.

use crate::channel::ChannelFabric;
use crate::flow::{match_flow_logs, FlowLog, FlowMatch};
use crate::link::{DistError, LinkConfig, ReliableLink};
use crate::shard::ShardPlan;
use crate::transport::{Message, Tag, Transport};
use crate::wire::{
    decode_coeffs_into, decode_rank_result, encode_coeffs, encode_rank_result, RankResult,
};
use std::time::{Duration, Instant};
use ustencil_core::integrate::IntegrationCtx;
use ustencil_core::per_element::PerElementRun;
use ustencil_core::tiling::add_partials;
use ustencil_core::{
    simulate_ranks, BlockStats, ComputationGrid, DeviceConfig, Layout, Metrics, RankCommRecord,
    RankTraffic, RunRecord, Scheme, SimReport, SimdIsa, SimdPolicy, SimdRecord,
};
use ustencil_dg::DgField;
use ustencil_geometry::Point2;
use ustencil_mesh::{partition_subset, TriMesh};
use ustencil_quadrature::TriangleRule;
use ustencil_siac::Stencil2d;
use ustencil_spatial::{hilbert_sort_elements, Boundary, PointGrid};
use ustencil_trace::{critical_path, exposed_comms_ns, CommStats, SpanRecord, Timeline, Tracer};

/// The `"scheme"` label rank-sharded runs carry in `RunReport` JSON.
pub const SCHEME_LABEL: &str = "dist";

/// Configuration of a rank-sharded run.
#[derive(Debug, Clone, Copy)]
pub struct DistOptions {
    /// Number of ranks (worker threads; rank 0 runs on the caller's
    /// thread and coordinates the gather).
    pub n_ranks: usize,
    /// Patches per rank — the SM-granularity tiling each rank applies to
    /// its local element set (default 16, matching the engine).
    pub sm_patches: usize,
    /// Explicit kernel smoothness `k` (default: the field degree).
    pub smoothness: Option<usize>,
    /// Kernel width factor, `h = h_factor * max_edge` (default 1.0).
    pub h_factor: f64,
    /// Reliability-layer tunables (ack timeout, retry budget).
    pub link: LinkConfig,
    /// How long phase receives wait before giving up: the halo exchange
    /// fails a run on expiry, while the gather falls back to re-resolving
    /// the missing ranks' points locally (rank-failure recovery).
    pub gather_timeout: Duration,
    /// Whether every rank records phase spans and halo-flow points.
    /// Workers measure against the run's shared epoch and ship their
    /// records home inside the result message, so the whole run lands on
    /// one time axis; off (the default) costs nothing on the hot path.
    pub instrument: bool,
    /// Traversal order of each rank's local element sweep (default
    /// [`Layout::Natural`]). Hilbert layouts sort the owned ∪ halo element
    /// list along the Hilbert curve before patch partitioning, so
    /// consecutive patches walk spatially adjacent elements. The shard
    /// plan's membership lists (halo discovery, push sets) always stay in
    /// sorted global order — only the evaluation sweep is reordered, which
    /// changes patch composition and therefore floating-point summation
    /// order, nothing else (values agree to rounding).
    pub layout: Layout,
    /// Elements per halo-push message (default 48). Smaller chunks start
    /// flowing sooner and interleave across peers; both sides compute the
    /// chunk count from the shared plan replica, so the drain knows
    /// exactly how many messages to expect without negotiation.
    pub chunk_elems: usize,
    /// SIMD policy of every rank's quadrature reduction (default
    /// [`SimdPolicy::Auto`]). Resolved once by the coordinator so all
    /// ranks — and the re-resolve recovery path — run the same ISA, which
    /// keeps recovered shards bitwise identical to what the failed rank
    /// would have produced.
    pub simd: SimdPolicy,
}

impl DistOptions {
    /// Defaults for `n_ranks` ranks: 16 patches per rank, paper kernel
    /// defaults, generous timeouts, no instrumentation.
    pub fn new(n_ranks: usize) -> Self {
        Self {
            n_ranks,
            sm_patches: 16,
            smoothness: None,
            h_factor: 1.0,
            link: LinkConfig::default(),
            gather_timeout: Duration::from_secs(120),
            instrument: false,
            layout: Layout::Natural,
            chunk_elems: 48,
            simd: SimdPolicy::Auto,
        }
    }

    /// Overrides the kernel smoothness `k`.
    pub fn smoothness(mut self, k: usize) -> Self {
        self.smoothness = Some(k);
        self
    }

    /// Scales the kernel width: `h = h_factor * max_edge`.
    pub fn h_factor(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "h factor must be positive");
        self.h_factor = factor;
        self
    }

    /// Sets the per-rank patch count.
    pub fn sm_patches(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one patch per rank");
        self.sm_patches = n;
        self
    }

    /// Sets the reliability-layer tunables.
    pub fn link(mut self, config: LinkConfig) -> Self {
        self.link = config;
        self
    }

    /// Sets the phase/gather deadline.
    pub fn gather_timeout(mut self, timeout: Duration) -> Self {
        self.gather_timeout = timeout;
        self
    }

    /// Enables phase spans on rank 0.
    pub fn instrument(mut self, on: bool) -> Self {
        self.instrument = on;
        self
    }

    /// Sets the per-rank element traversal order.
    pub fn layout(mut self, layout: Layout) -> Self {
        self.layout = layout;
        self
    }

    /// Sets the halo-push chunk size (elements per message).
    pub fn chunk_elems(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one element per chunk");
        self.chunk_elems = n;
        self
    }

    /// Sets the SIMD policy of every rank's quadrature reduction.
    pub fn simd(mut self, policy: SimdPolicy) -> Self {
        self.simd = policy;
        self
    }
}

/// One rank's ledger in a finished run.
#[derive(Debug, Clone)]
pub struct RankReport {
    /// The rank.
    pub rank: u32,
    /// Elements the rank owned.
    pub owned_elements: u64,
    /// Ghost-ring elements replicated onto the rank.
    pub halo_elements: u64,
    /// Grid points the rank resolved.
    pub owned_points: u64,
    /// Transport counters (zero when the rank failed and its points were
    /// re-resolved by the coordinator).
    pub comm: CommStats,
    /// Owned elements evaluated while halo messages were in flight
    /// (stencil footprint clear of the ghost ring).
    pub interior: u64,
    /// Owned elements that had to wait for the drain (footprint touches
    /// the ring). `interior + frontier == owned_elements`.
    pub frontier: u64,
    /// Nanoseconds of *exposed* communication: the post plus the drain,
    /// excluding the interior evaluation the wire time was hidden behind.
    pub exchange_ns: u64,
    /// Nanoseconds evaluating local patches.
    pub eval_ns: u64,
    /// Nanoseconds in the local reduce.
    pub reduce_ns: u64,
    /// Whether the coordinator re-resolved this rank's points after the
    /// gather deadline (rank-failure recovery).
    pub reresolved: bool,
    /// Per-patch stats of the rank's evaluation.
    pub patches: Vec<BlockStats>,
    /// The rank's phase spans, on the run's shared time axis (empty unless
    /// instrumented; rank 0's also carry `build.shard_plan` and
    /// `reduce.gather`).
    pub spans: Vec<SpanRecord>,
    /// The rank's halo-phase flow log (empty unless instrumented).
    pub flows: FlowLog,
}

/// Result of a rank-sharded run.
#[derive(Debug, Clone)]
pub struct DistSolution {
    /// Post-processed value at each grid point (global order).
    pub values: Vec<f64>,
    /// Work counters summed over every rank's patches (includes the halo
    /// replication cost — see the module docs for which components stay
    /// exactly equal to a single-rank run).
    pub metrics: Metrics,
    /// Per-rank ledgers.
    pub ranks: Vec<RankReport>,
    /// Phase spans of rank 0 (empty unless instrumented).
    pub spans: Vec<SpanRecord>,
    /// Wall-clock time of the whole run.
    pub wall: Duration,
    /// The stencil width `(3k+1) h` used.
    pub stencil_width: f64,
    /// SIMD dispatch record of the run (the ISA every rank resolved, with
    /// aggregate throughput over the run's wall time).
    pub simd: SimdRecord,
}

impl DistSolution {
    /// Maximum absolute difference against another value vector.
    pub fn max_abs_diff(&self, other: &[f64]) -> f64 {
        self.values
            .iter()
            .zip(other)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Transport counters summed over every rank.
    pub fn total_comm(&self) -> CommStats {
        let stats: Vec<CommStats> = self.ranks.iter().map(|r| r.comm).collect();
        CommStats::sum(&stats)
    }

    /// Counted per-rank wire traffic, in the cost model's shape. The
    /// exposed fraction is measured, not modeled: the share of the rank's
    /// busy time that was exchange (post + drain) rather than evaluation —
    /// the cost model charges only that slice of the wire time, because
    /// the rest was hidden behind the interior sweep.
    pub fn traffic(&self) -> Vec<RankTraffic> {
        self.ranks
            .iter()
            .map(|r| {
                let busy = r.exchange_ns + r.eval_ns;
                RankTraffic {
                    bytes_sent: r.comm.bytes_sent,
                    msgs_sent: r.comm.msgs_sent,
                    exposed_fraction: if busy == 0 {
                        1.0
                    } else {
                        r.exchange_ns as f64 / busy as f64
                    },
                }
            })
            .collect()
    }

    /// Per-rank patch metrics, the unit of the rank-aware cost model.
    pub fn rank_block_metrics(&self) -> Vec<Vec<Metrics>> {
        self.ranks
            .iter()
            .map(|r| r.patches.iter().map(|s| s.metrics).collect())
            .collect()
    }

    /// Simulated execution time on `n_ranks` devices, charging the counted
    /// wire traffic through the cost model's comms term.
    pub fn simulate(&self, config: &DeviceConfig) -> SimReport {
        simulate_ranks(
            Scheme::PerElement,
            &self.rank_block_metrics(),
            &self.traffic(),
            config,
        )
    }

    /// Per-rank span vectors in rank order — the input shape of
    /// [`critical_path`].
    pub fn rank_spans(&self) -> Vec<Vec<SpanRecord>> {
        self.ranks.iter().map(|r| r.spans.clone()).collect()
    }

    /// Joins the per-rank flow logs into send→recv pairs (empty unless the
    /// run was instrumented).
    pub fn flow_match(&self) -> FlowMatch {
        let logs: Vec<(u32, &FlowLog)> = self.ranks.iter().map(|r| (r.rank, &r.flows)).collect();
        match_flow_logs(&logs)
    }

    /// Adds this run to `timeline` as process `pid`: one track per rank
    /// carrying that rank's spans, plus one flow arrow per matched halo
    /// message. No-op tracks still appear so the rank count is visible
    /// even for uninstrumented runs.
    pub fn add_to_timeline(&self, timeline: &mut Timeline, pid: u64, label: &str) {
        timeline.add_process(pid, label);
        for r in &self.ranks {
            timeline.add_track(
                pid,
                r.rank as u64,
                &format!("rank {}", r.rank),
                r.spans.clone(),
            );
        }
        for p in self.flow_match().pairs {
            timeline.add_flow(
                &format!("{} {}→{}", p.tag.label(), p.src, p.dst),
                (pid, p.src as u64),
                (pid, p.dst as u64),
                p.send_ns,
                p.recv_ns,
            );
        }
    }

    /// Builds the `RunReport` record of this run: scheme `"dist"`, patches
    /// flattened across ranks, one comms ledger per rank (with its exposed
    /// communication time and flow counts), and — for instrumented runs —
    /// the cross-rank critical path. Histograms stay empty — distribution
    /// probes are rank-local diagnostics and are not shipped through the
    /// transport.
    pub fn to_run_record(
        &self,
        label: &str,
        n_triangles: usize,
        device_sim: Option<SimReport>,
    ) -> RunRecord {
        let critical_path_record = if self.ranks.iter().any(|r| !r.spans.is_empty()) {
            Some((&critical_path(&self.rank_spans())).into())
        } else {
            None
        };
        RunRecord {
            label: label.to_string(),
            scheme: SCHEME_LABEL.to_string(),
            n_triangles: n_triangles as u64,
            n_points: self.values.len() as u64,
            wall_ms: self.wall.as_secs_f64() * 1e3,
            metrics: self.metrics,
            spans: self.spans.clone(),
            patches: self
                .ranks
                .iter()
                .flat_map(|r| r.patches.iter())
                .map(|s| ustencil_core::report::PatchRecord {
                    wall_ns: s.wall_ns,
                    elements: s.elements,
                    points: s.points,
                    metrics: s.metrics,
                })
                .collect(),
            histograms: Vec::new(),
            device_sim,
            plan: None,
            locality: None,
            comms: self
                .ranks
                .iter()
                .map(|r| RankCommRecord {
                    rank: r.rank as u64,
                    owned_elements: r.owned_elements,
                    halo_elements: r.halo_elements,
                    owned_points: r.owned_points,
                    interior: r.interior,
                    frontier: r.frontier,
                    msgs_sent: r.comm.msgs_sent,
                    bytes_sent: r.comm.bytes_sent,
                    msgs_recv: r.comm.msgs_recv,
                    bytes_recv: r.comm.bytes_recv,
                    retransmits: r.comm.retransmits,
                    dup_payloads: r.comm.dup_payloads,
                    coalesced: r.comm.coalesced,
                    exchange_ns: r.exchange_ns,
                    eval_ns: r.eval_ns,
                    reduce_ns: r.reduce_ns,
                    exposed_comms_ms: exposed_comms_ns(&r.spans) as f64 / 1e6,
                    flow_sends: r.flows.sends.len() as u64,
                    flow_recvs: r.flows.recvs.len() as u64,
                })
                .collect(),
            critical_path: critical_path_record,
            serve: None,
            simd: Some(self.simd.clone()),
        }
    }
}

/// What the coordinator's gather loop yields: one result slot per rank
/// (None until that rank's result arrives), rank 0's own comm ledger,
/// rank 0's span records, and rank 0's flow log.
pub(crate) type GatherOutcome = (Vec<Option<RankResult>>, CommStats, Vec<SpanRecord>, FlowLog);

/// Everything a rank needs, scattered at spawn. The mesh and shard plan
/// are read-only problem geometry and are *replicated* per rank; owned
/// coefficients and owned point positions are that rank's static scatter.
/// No dynamic field or solution data is shared — it moves only as
/// serialized messages.
struct RankCtx {
    mesh: TriMesh,
    plan: ShardPlan,
    degree: usize,
    smoothness: usize,
    h: f64,
    n_modes: usize,
    sm_patches: usize,
    /// Packed coefficients of the rank's owned elements, in
    /// `owned_elements` order.
    owned_coeffs: Vec<f64>,
    /// Positions of the rank's owned grid points, in `owned_points` order.
    points: Vec<Point2>,
    /// Owning element of each owned grid point.
    owners: Vec<u32>,
    link: LinkConfig,
    phase_timeout: Duration,
    layout: Layout,
    chunk_elems: usize,
    /// The coordinator-resolved SIMD ISA of the quadrature reduction.
    simd: SimdIsa,
    /// Whether this rank records spans and flow points.
    instrument: bool,
    /// The run's shared time origin: every rank's tracer and flow log
    /// measures offsets from this one instant, so shipped records land on
    /// the coordinator's time axis directly.
    epoch: Instant,
}

/// Phase outputs of one rank's evaluation.
struct RankWork {
    exchange_ns: u64,
    eval_ns: u64,
    reduce_ns: u64,
    patches: Vec<BlockStats>,
    interior: u64,
    frontier: u64,
}

/// One evaluation pass (interior or frontier) over a subset of elements.
struct EvalOut {
    values: Vec<f64>,
    eval_ns: u64,
    reduce_ns: u64,
    patches: Vec<BlockStats>,
}

/// Messages a push set of `len` elements splits into: always at least one
/// (an empty set still sends one empty message so the receive count stays
/// a pure function of the plan).
fn chunks_for(len: usize, chunk: usize) -> usize {
    if len == 0 {
        1
    } else {
        len.div_ceil(chunk)
    }
}

/// Folds one evaluation pass's values into the rank accumulator. The
/// first pass *moves* its vector in — a single-pass rank (one rank, or an
/// empty frontier) keeps its values bit-for-bit untouched.
fn accumulate(acc: &mut Option<Vec<f64>>, vals: Vec<f64>) {
    match acc {
        None => *acc = Some(vals),
        Some(a) => {
            for (x, v) in a.iter_mut().zip(&vals) {
                *x += v;
            }
        }
    }
}

fn merge_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Evaluates one shard: owned ∪ halo elements against the local owned-
/// point grid, patch by patch, then the local (stage-1) reduce with the
/// same [`add_partials`] accumulation as the in-process tiling scheme.
/// Shared by ranks and by the coordinator's re-resolve path, so a
/// recovered shard is bitwise identical to what the failed rank would
/// have produced.
#[allow(clippy::too_many_arguments)]
fn eval_shard(
    mesh: &TriMesh,
    field: &DgField,
    local_elems: &[u32],
    grid: &ComputationGrid,
    stencil: &Stencil2d,
    rule: &TriangleRule,
    sm_patches: usize,
    layout: Layout,
    simd: SimdIsa,
) -> EvalOut {
    let eval_start = Instant::now();
    // Hilbert layouts sweep the local elements in curve order so each
    // patch walks a spatially compact run; the reorder is sweep-local and
    // never reaches the shard plan's sorted membership lists.
    let mut hilbert_ids;
    let local_elems = if layout.reorders() {
        hilbert_ids = local_elems.to_vec();
        hilbert_sort_elements(mesh, &mut hilbert_ids);
        &hilbert_ids[..]
    } else {
        local_elems
    };
    let point_grid =
        PointGrid::build_half_edge(grid.points(), mesh.max_edge_length(), Boundary::Clamped);
    let partition = partition_subset(mesh, local_elems, sm_patches);
    let run = PerElementRun {
        mesh,
        field,
        grid,
        stencil,
        point_grid: &point_grid,
        rule,
        simd,
    };
    let mut results = Vec::with_capacity(partition.n_patches());
    let mut patches = Vec::with_capacity(partition.n_patches());
    for patch in partition.patches() {
        let (result, stats) = run.run_patch_instrumented(patch, false);
        results.push(result);
        patches.push(stats);
    }
    let eval_ns = eval_start.elapsed().as_nanos() as u64;

    let reduce_start = Instant::now();
    let mut values = vec![0.0; grid.len()];
    for result in &results {
        add_partials(&result.partials, &mut values);
    }
    let reduce_ns = reduce_start.elapsed().as_nanos() as u64;

    EvalOut {
        values,
        eval_ns,
        reduce_ns,
        patches,
    }
}

/// The two-phase (interior, then frontier ∪ halo) evaluation of one
/// shard against `field`, accumulated into one owned-point value vector.
/// Used by the coordinator's re-resolve path: the interior sweep reads
/// only the swept elements' coefficients, so evaluating it from the full
/// field is bitwise what the failed rank computed from its
/// halo-incomplete coefficient vector.
#[allow(clippy::too_many_arguments)]
fn eval_split(
    mesh: &TriMesh,
    field: &DgField,
    interior: &[u32],
    frontier_halo: &[u32],
    grid: &ComputationGrid,
    stencil: &Stencil2d,
    rule: &TriangleRule,
    sm_patches: usize,
    layout: Layout,
    simd: SimdIsa,
) -> (Vec<f64>, u64, u64, Vec<BlockStats>) {
    let mut acc: Option<Vec<f64>> = None;
    let (mut eval_ns, mut reduce_ns) = (0u64, 0u64);
    let mut patches = Vec::new();
    for subset in [interior, frontier_halo] {
        if subset.is_empty() {
            continue;
        }
        let out = eval_shard(
            mesh, field, subset, grid, stencil, rule, sm_patches, layout, simd,
        );
        eval_ns += out.eval_ns;
        reduce_ns += out.reduce_ns;
        patches.extend(out.patches);
        accumulate(&mut acc, out.values);
    }
    let values = acc.unwrap_or_else(|| vec![0.0; grid.len()]);
    (values, eval_ns, reduce_ns, patches)
}

/// One rank's overlapped run: post the halo pushes, evaluate the interior
/// while they ride the wire, drain the ring, evaluate the frontier.
/// Messages with tags the current phase does not expect (a fast peer's
/// result reaching the coordinator mid-exchange) are stashed in `pending`.
fn rank_body<T: Transport>(
    ctx: RankCtx,
    link: &mut ReliableLink<T>,
    pending: &mut Vec<Message>,
    tracer: &Tracer,
) -> Result<(Vec<f64>, RankWork), DistError> {
    let rank = link.rank() as usize;
    let n = link.n_ranks() as usize;
    let shard = ctx.plan.shard(rank).clone();
    let nm = ctx.n_modes;

    let mut coeffs = vec![0.0; ctx.mesh.n_triangles() * nm];
    for (i, &e) in shard.owned_elements.iter().enumerate() {
        coeffs[e as usize * nm..(e as usize + 1) * nm]
            .copy_from_slice(&ctx.owned_coeffs[i * nm..(i + 1) * nm]);
    }

    // --- exchange.post: queue chunked halo pushes to every peer without
    // waiting for delivery. Both sides compute the push sets and chunk
    // counts from their plan replica, so the fixed message count makes
    // the drain terminate without a negotiation round. An empty push set
    // still sends one empty chunk.
    let post_start = Instant::now();
    {
        let _span = tracer.span("exchange.post");
        for peer in (0..n).filter(|&q| q != rank) {
            let ids = ctx.plan.push_set(rank, peer);
            if ids.is_empty() {
                link.post(
                    peer as u32,
                    Tag::HaloCoeffs,
                    encode_coeffs(&[], &coeffs, nm),
                )?;
            } else {
                for chunk in ids.chunks(ctx.chunk_elems) {
                    link.post(
                        peer as u32,
                        Tag::HaloCoeffs,
                        encode_coeffs(chunk, &coeffs, nm),
                    )?;
                }
            }
        }
    }
    let post_ns = post_start.elapsed().as_nanos() as u64;

    // --- eval.interior: owned elements whose stencil footprint cannot
    // reach the ghost ring are evaluated from a coefficient vector whose
    // halo slots are still zero — the per-element sweep reads only the
    // swept elements' own coefficients, so the zeros are never touched.
    let (interior, frontier) = ctx.plan.split_interior(&ctx.mesh, rank);
    let stencil = Stencil2d::symmetric(ctx.smoothness, ctx.h);
    let rule = TriangleRule::with_strength(IntegrationCtx::required_strength(
        ctx.smoothness,
        ctx.degree,
    ));
    let grid = ComputationGrid::from_points(ctx.points, ctx.owners);
    let mut acc: Option<Vec<f64>> = None;
    let (mut eval_ns, mut reduce_ns) = (0u64, 0u64);
    let mut patches = Vec::new();
    {
        let _span = tracer.span("eval.interior");
        if !interior.is_empty() {
            let field =
                DgField::from_coefficients(ctx.degree, ctx.mesh.n_triangles(), coeffs.clone());
            let out = eval_shard(
                &ctx.mesh,
                &field,
                &interior,
                &grid,
                &stencil,
                &rule,
                ctx.sm_patches,
                ctx.layout,
                ctx.simd,
            );
            eval_ns += out.eval_ns;
            reduce_ns += out.reduce_ns;
            patches.extend(out.patches);
            accumulate(&mut acc, out.values);
        }
    }

    // --- exchange.drain: receive exactly the chunk count the plan says
    // peers owe this rank's ring. Receiving also pumps the retransmit
    // timers, so lost frames from this rank's own window recover here.
    // The ack-flush of this rank's outgoing frames is NOT here: peers
    // only ack when they reach their own drains, so flushing now would
    // make the fastest rank wait out the slowest peer's interior sweep.
    let drain_start = Instant::now();
    {
        let _span = tracer.span("exchange.drain");
        let expected: usize = (0..n)
            .filter(|&q| q != rank)
            .map(|peer| chunks_for(ctx.plan.push_set(peer, rank).len(), ctx.chunk_elems))
            .sum();
        let mut received = 0;
        let deadline = Instant::now() + ctx.phase_timeout;
        while received < expected {
            let now = Instant::now();
            if now >= deadline {
                return Err(DistError::Timeout);
            }
            let msg = link.recv_payload(deadline - now)?;
            if msg.tag == Tag::HaloCoeffs {
                decode_coeffs_into(&msg.payload, nm, &mut coeffs).map_err(DistError::Protocol)?;
                received += 1;
            } else {
                pending.push(msg);
            }
        }
    }
    let drain_ns = drain_start.elapsed().as_nanos() as u64;

    // --- eval.frontier: the owned elements that had to wait for the
    // ring, plus the ring itself, against the completed coefficients.
    {
        let _span = tracer.span("eval.frontier");
        let frontier_halo = merge_sorted(&frontier, &shard.halo_elements);
        if !frontier_halo.is_empty() {
            let field = DgField::from_coefficients(ctx.degree, ctx.mesh.n_triangles(), coeffs);
            let out = eval_shard(
                &ctx.mesh,
                &field,
                &frontier_halo,
                &grid,
                &stencil,
                &rule,
                ctx.sm_patches,
                ctx.layout,
                ctx.simd,
            );
            eval_ns += out.eval_ns;
            reduce_ns += out.reduce_ns;
            patches.extend(out.patches);
            accumulate(&mut acc, out.values);
        }
    }

    // --- exchange.flush: settle this rank's own window. By now every
    // peer has drained and acked, so this normally returns immediately;
    // it only waits (and retransmits) when frames were actually lost.
    let flush_start = Instant::now();
    {
        let _span = tracer.span("exchange.flush");
        link.flush()?;
    }
    let flush_ns = flush_start.elapsed().as_nanos() as u64;

    let values = acc.unwrap_or_else(|| vec![0.0; grid.len()]);
    Ok((
        values,
        RankWork {
            exchange_ns: post_ns + drain_ns + flush_ns,
            eval_ns,
            reduce_ns,
            patches,
            interior: interior.len() as u64,
            frontier: frontier.len() as u64,
        },
    ))
}

/// Runs the rank-sharded per-element scheme over the in-process channel
/// fabric (one OS thread per rank).
///
/// # Panics
/// Panics when the field does not match the mesh, the stencil exceeds the
/// periodic domain, or `options.n_ranks == 0`.
pub fn run_dist(
    mesh: &TriMesh,
    field: &DgField,
    grid: &ComputationGrid,
    options: &DistOptions,
) -> Result<DistSolution, DistError> {
    let transports = ChannelFabric::endpoints(options.n_ranks);
    run_dist_on(mesh, field, grid, options, transports)
}

/// [`run_dist`] over caller-provided transport endpoints (one per rank, in
/// rank order) — the seam the deterministic/fault-injecting fabrics plug
/// into.
///
/// # Panics
/// Panics on the same conditions as [`run_dist`], or when the endpoint
/// count disagrees with `options.n_ranks`.
pub fn run_dist_on<T: Transport>(
    mesh: &TriMesh,
    field: &DgField,
    grid: &ComputationGrid,
    options: &DistOptions,
    transports: Vec<T>,
) -> Result<DistSolution, DistError> {
    assert!(options.n_ranks > 0, "need at least one rank");
    assert_eq!(
        transports.len(),
        options.n_ranks,
        "one transport endpoint per rank"
    );
    assert_eq!(
        field.n_elements(),
        mesh.n_triangles(),
        "field does not match mesh"
    );

    let start = Instant::now();
    let tracer = Tracer::new(options.instrument);
    let epoch = tracer.epoch();
    let n = options.n_ranks;
    let degree = field.degree();
    let k = options.smoothness.unwrap_or(degree);
    let s = mesh.max_edge_length();
    let h = options.h_factor * s;
    let stencil = Stencil2d::symmetric(k, h);
    assert!(
        stencil.width() <= 1.0 + 1e-12,
        "stencil width {} exceeds the periodic unit domain; \
         use a larger mesh or a smaller h_factor",
        stencil.width()
    );
    let rule = TriangleRule::with_strength(IntegrationCtx::required_strength(k, degree));
    let nm = field.basis().n_modes();
    // One resolution for the whole run: every rank (and the coordinator's
    // re-resolve recovery) evaluates under the same ISA.
    let simd_isa = options.simd.resolve();

    // Ghost-ring distance: half the stencil width, plus one point-grid
    // cell because candidate lookups round query boxes out to cell
    // boundaries, plus an epsilon against boundary ties. The cell size is
    // probed from a throwaway grid so this can never drift from the
    // spatial crate's actual geometry.
    let cell = PointGrid::build(&[Point2::new(0.5, 0.5)], s / 2.0, Boundary::Clamped)
        .grid()
        .cell_size();
    let halo_width = stencil.width() / 2.0 + cell + 1e-9;

    let plan = {
        let _span = tracer.span("build.shard_plan");
        ShardPlan::build(mesh, grid, n, halo_width)
    };

    // Static scatter: each rank gets the mesh + plan replicas and its own
    // slice of coefficients and grid points.
    let mut ctxs: Vec<RankCtx> = (0..n)
        .map(|r| {
            let shard = plan.shard(r);
            let mut owned_coeffs = Vec::with_capacity(shard.owned_elements.len() * nm);
            for &e in &shard.owned_elements {
                owned_coeffs.extend_from_slice(
                    &field.coefficients()[e as usize * nm..(e as usize + 1) * nm],
                );
            }
            RankCtx {
                mesh: mesh.clone(),
                plan: plan.clone(),
                degree,
                smoothness: k,
                h,
                n_modes: nm,
                sm_patches: options.sm_patches,
                owned_coeffs,
                points: shard
                    .owned_points
                    .iter()
                    .map(|&i| grid.points()[i as usize])
                    .collect(),
                owners: shard
                    .owned_points
                    .iter()
                    .map(|&i| grid.owners()[i as usize])
                    .collect(),
                link: options.link,
                phase_timeout: options.gather_timeout,
                layout: options.layout,
                chunk_elems: options.chunk_elems,
                simd: simd_isa,
                instrument: options.instrument,
                epoch,
            }
        })
        .collect();

    let mut transports = transports;
    let transport0 = transports.remove(0);
    let ctx0 = ctxs.remove(0);
    let worker_inputs: Vec<(RankCtx, T)> = ctxs.into_iter().zip(transports).collect();

    let (rank_results, own_comm, spans, own_flows) =
        std::thread::scope(|scope| -> Result<GatherOutcome, DistError> {
            for (ctx, transport) in worker_inputs {
                scope.spawn(move || {
                    let mut link = ReliableLink::new(transport, ctx.link);
                    let worker_tracer = Tracer::with_epoch(ctx.instrument, ctx.epoch);
                    if ctx.instrument {
                        link.instrument_flows(ctx.epoch);
                    }
                    let mut pending = Vec::new();
                    let body = rank_body(ctx, &mut link, &mut pending, &worker_tracer);
                    match body {
                        Ok((values, work)) => {
                            // Snapshot the counters *before* encoding: the
                            // result message cannot count itself. Likewise
                            // the flow log — which is why the result tag is
                            // not flow-instrumented (see `link`).
                            let flows = link.flow_log().clone();
                            let result = RankResult {
                                values,
                                comm: link.stats(),
                                interior: work.interior,
                                frontier: work.frontier,
                                exchange_ns: work.exchange_ns,
                                eval_ns: work.eval_ns,
                                reduce_ns: work.reduce_ns,
                                patches: work.patches,
                                spans: worker_tracer.into_records(),
                                flow_sends: flows.sends,
                                flow_recvs: flows.recvs,
                            };
                            let payload = encode_rank_result(&result);
                            // A dead coordinator is unrecoverable from a
                            // worker; exit and let the scope join.
                            let _ = link.send_reliable(0, Tag::OwnedValues, payload);
                        }
                        Err(_) => {
                            // Exchange failure: this rank contributes
                            // nothing; the coordinator's gather deadline
                            // re-resolves its points.
                        }
                    }
                });
            }

            let mut link = ReliableLink::new(transport0, options.link);
            if options.instrument {
                link.instrument_flows(epoch);
            }
            let mut pending = Vec::new();
            let (own_values, own_work) = rank_body(ctx0, &mut link, &mut pending, &tracer)?;

            let mut rank_results: Vec<Option<RankResult>> = (0..n).map(|_| None).collect();
            rank_results[0] = Some(RankResult {
                values: own_values,
                // Comm, spans, and flows are patched after the gather
                // completes — they keep accruing until the run ends.
                comm: CommStats::default(),
                interior: own_work.interior,
                frontier: own_work.frontier,
                exchange_ns: own_work.exchange_ns,
                eval_ns: own_work.eval_ns,
                reduce_ns: own_work.reduce_ns,
                patches: own_work.patches,
                spans: Vec::new(),
                flow_sends: Vec::new(),
                flow_recvs: Vec::new(),
            });
            let mut missing = n - 1;
            let absorb = |msg: Message,
                          rank_results: &mut Vec<Option<RankResult>>,
                          missing: &mut usize|
             -> Result<(), DistError> {
                if msg.tag != Tag::OwnedValues {
                    return Ok(());
                }
                let result = decode_rank_result(&msg.payload).map_err(DistError::Protocol)?;
                let r = msg.from as usize;
                if r < n && rank_results[r].is_none() {
                    rank_results[r] = Some(result);
                    *missing -= 1;
                }
                Ok(())
            };
            {
                let _span = tracer.span("reduce.gather");
                for msg in std::mem::take(&mut pending) {
                    absorb(msg, &mut rank_results, &mut missing)?;
                }
                let deadline = Instant::now() + options.gather_timeout;
                while missing > 0 {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    match link.recv_payload(deadline - now) {
                        Ok(msg) => absorb(msg, &mut rank_results, &mut missing)?,
                        Err(DistError::Timeout) => break,
                        Err(e) => return Err(e),
                    }
                }
            }
            Ok((
                rank_results,
                link.stats(),
                tracer.into_records(),
                link.flow_log().clone(),
            ))
        })?;

    // Assemble: owned-point shards are disjoint, so the cross-rank stage
    // is pure placement. Failed ranks are re-resolved locally from the
    // caller's field — bitwise what the rank would have computed, since
    // the evaluation reads only owned ∪ halo coefficients.
    let mut values = vec![0.0; grid.len()];
    let mut ranks = Vec::with_capacity(n);
    let mut all_metrics: Vec<Metrics> = Vec::new();
    for (r, slot) in rank_results.into_iter().enumerate() {
        let shard = plan.shard(r);
        let (result, reresolved) = match slot {
            Some(mut result) => {
                if r == 0 {
                    result.comm = own_comm;
                    result.spans = spans.clone();
                    result.flow_sends = own_flows.sends.clone();
                    result.flow_recvs = own_flows.recvs.clone();
                }
                (result, false)
            }
            None => {
                let pts: Vec<Point2> = shard
                    .owned_points
                    .iter()
                    .map(|&i| grid.points()[i as usize])
                    .collect();
                let owners: Vec<u32> = shard
                    .owned_points
                    .iter()
                    .map(|&i| grid.owners()[i as usize])
                    .collect();
                let lgrid = ComputationGrid::from_points(pts, owners);
                // Mirror the rank's interior/frontier schedule so the
                // recovered values and patch shapes are bitwise what the
                // failed rank would have produced.
                let (interior, frontier) = plan.split_interior(mesh, r);
                let frontier_halo = merge_sorted(&frontier, &shard.halo_elements);
                let (vals, eval_ns, reduce_ns, patches) = eval_split(
                    mesh,
                    field,
                    &interior,
                    &frontier_halo,
                    &lgrid,
                    &stencil,
                    &rule,
                    options.sm_patches,
                    options.layout,
                    simd_isa,
                );
                (
                    RankResult {
                        values: vals,
                        comm: CommStats::default(),
                        interior: interior.len() as u64,
                        frontier: frontier.len() as u64,
                        exchange_ns: 0,
                        eval_ns,
                        reduce_ns,
                        patches,
                        spans: Vec::new(),
                        flow_sends: Vec::new(),
                        flow_recvs: Vec::new(),
                    },
                    true,
                )
            }
        };
        if result.values.len() != shard.owned_points.len() {
            return Err(DistError::Protocol(format!(
                "rank {r} returned {} values for {} owned points",
                result.values.len(),
                shard.owned_points.len()
            )));
        }
        for (&global, &v) in shard.owned_points.iter().zip(&result.values) {
            values[global as usize] = v;
        }
        all_metrics.extend(result.patches.iter().map(|s| s.metrics));
        ranks.push(RankReport {
            rank: r as u32,
            owned_elements: shard.owned_elements.len() as u64,
            halo_elements: shard.halo_elements.len() as u64,
            owned_points: shard.owned_points.len() as u64,
            comm: result.comm,
            interior: result.interior,
            frontier: result.frontier,
            exchange_ns: result.exchange_ns,
            eval_ns: result.eval_ns,
            reduce_ns: result.reduce_ns,
            reresolved,
            patches: result.patches,
            spans: result.spans,
            flows: FlowLog {
                sends: result.flow_sends,
                recvs: result.flow_recvs,
            },
        });
    }

    let wall = start.elapsed();
    let metrics = Metrics::sum(&all_metrics);
    let simd = SimdRecord::measured(options.simd, simd_isa, metrics.flops, wall.as_secs_f64());
    Ok(DistSolution {
        values,
        metrics,
        ranks,
        spans,
        wall,
        stencil_width: stencil.width(),
        simd,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ustencil_core::{PostProcessor, Scheme};
    use ustencil_dg::project_l2;
    use ustencil_mesh::{generate_mesh, MeshClass};

    fn fixture(n_tri: usize, p: usize, seed: u64) -> (TriMesh, DgField, ComputationGrid) {
        let mesh = generate_mesh(MeshClass::LowVariance, n_tri, seed);
        let field = project_l2(&mesh, p, |x, y| 0.3 + x - 0.4 * y + 0.8 * x * y, 2);
        let grid = ComputationGrid::quadrature_points(&mesh, p);
        (mesh, field, grid)
    }

    #[test]
    fn sharded_run_matches_single_rank() {
        let (mesh, field, grid) = fixture(300, 1, 21);
        let single = run_dist(&mesh, &field, &grid, &DistOptions::new(1)).unwrap();
        for ranks in [2usize, 4] {
            let multi = run_dist(&mesh, &field, &grid, &DistOptions::new(ranks)).unwrap();
            let diff = multi.max_abs_diff(&single.values);
            assert!(diff <= 1e-12, "{ranks} ranks diverge by {diff}");
            // Candidate-pair counters are partitioned exactly.
            for (name, f) in [
                (
                    "intersection_tests",
                    (|m: &Metrics| m.intersection_tests) as fn(&Metrics) -> u64,
                ),
                ("true_intersections", |m| m.true_intersections),
                ("quad_evals", |m| m.quad_evals),
                ("flops", |m| m.flops),
                ("solution_writes", |m| m.solution_writes),
            ] {
                assert_eq!(
                    f(&multi.metrics),
                    f(&single.metrics),
                    "{name} must partition exactly across {ranks} ranks"
                );
            }
            // Halo replication shows up in the element-driven counters.
            assert!(multi.metrics.elem_data_loads > single.metrics.elem_data_loads);
            // Traffic was actually counted.
            let comm = multi.total_comm();
            assert!(comm.bytes_sent > 0 && comm.msgs_sent >= (ranks * (ranks - 1)) as u64);
            assert_eq!(comm.retransmits, 0, "clean fabric must not retransmit");
        }
    }

    #[test]
    fn single_rank_is_bitwise_the_engine_per_element_path() {
        let (mesh, field, grid) = fixture(250, 1, 5);
        let dist = run_dist(&mesh, &field, &grid, &DistOptions::new(1)).unwrap();
        let engine = PostProcessor::new(Scheme::PerElement)
            .parallel(false)
            .run(&mesh, &field, &grid);
        assert_eq!(dist.values, engine.values, "one rank must be bitwise equal");
        assert_eq!(dist.metrics, engine.metrics);
    }

    #[test]
    fn hilbert_layout_matches_natural_dist_run() {
        let (mesh, field, grid) = fixture(300, 1, 33);
        let natural = run_dist(&mesh, &field, &grid, &DistOptions::new(2)).unwrap();
        let hilbert = run_dist(
            &mesh,
            &field,
            &grid,
            &DistOptions::new(2).layout(Layout::Hilbert),
        )
        .unwrap();
        let diff = hilbert.max_abs_diff(&natural.values);
        assert!(diff <= 1e-12, "hilbert dist diverges by {diff}");
        // The reorder only regroups patches; the candidate-pair counters
        // still partition exactly.
        assert_eq!(
            hilbert.metrics.true_intersections,
            natural.metrics.true_intersections
        );
        assert_eq!(hilbert.metrics.quad_evals, natural.metrics.quad_evals);
        assert_eq!(hilbert.metrics.flops, natural.metrics.flops);
        assert_eq!(
            hilbert.metrics.solution_writes,
            natural.metrics.solution_writes
        );
    }

    #[test]
    fn instrumented_run_records_phases_and_comms() {
        let (mesh, field, grid) = fixture(200, 1, 9);
        let sol = run_dist(&mesh, &field, &grid, &DistOptions::new(2).instrument(true)).unwrap();
        let names: Vec<&str> = sol.spans.iter().map(|s| s.name.as_str()).collect();
        for phase in [
            "build.shard_plan",
            "exchange.post",
            "eval.interior",
            "exchange.drain",
            "eval.frontier",
            "exchange.flush",
            "reduce.gather",
        ] {
            assert!(names.contains(&phase), "missing span {phase}: {names:?}");
        }
        assert_eq!(sol.ranks.len(), 2);
        for r in &sol.ranks {
            assert!(!r.reresolved);
            assert!(r.comm.bytes_sent > 0);
            assert!(r.eval_ns > 0);
            // Interior + frontier partition the rank's owned work.
            assert_eq!(r.interior + r.frontier, r.owned_elements, "rank {}", r.rank);
            assert!(r.frontier > 0, "multi-rank shard must have a frontier");
            // Every rank shipped spans home on the shared axis.
            let rank_names: Vec<&str> = r.spans.iter().map(|s| s.name.as_str()).collect();
            for phase in [
                "exchange.post",
                "eval.interior",
                "exchange.drain",
                "eval.frontier",
                "exchange.flush",
            ] {
                assert!(rank_names.contains(&phase), "rank {} lacks {phase}", r.rank);
            }
            assert!(!r.flows.sends.is_empty(), "rank {} logged no sends", r.rank);
        }
        // Flow logs join completely: every halo send matched to a recv.
        let matched = sol.flow_match();
        assert!(!matched.pairs.is_empty());
        assert!(matched.unmatched_sends.is_empty());
        assert!(matched.unmatched_recvs.is_empty());
        for p in &matched.pairs {
            assert!(p.send_ns <= p.recv_ns, "flow {} runs backwards", p.flow);
        }
        let record = sol.to_run_record("test/dist@2ranks", mesh.n_triangles(), None);
        assert_eq!(record.scheme, SCHEME_LABEL);
        assert_eq!(record.comms.len(), 2);
        for c in &record.comms {
            assert!(c.exposed_comms_ms >= 0.0);
            assert!(c.flow_sends > 0 && c.flow_recvs > 0);
        }
        let cp = record.critical_path.as_ref().expect("critical path");
        assert!(cp.total_ms > 0.0);
        assert_eq!(cp.utilization.len(), 2);
        // The run renders as a timeline: one track per rank, one arrow per
        // matched flow.
        let mut timeline = Timeline::new();
        sol.add_to_timeline(&mut timeline, 1, "dist@2ranks");
        assert_eq!(timeline.tracks().len(), 2);
        assert_eq!(timeline.flows().len(), matched.pairs.len());
        let sim = sol.simulate(&DeviceConfig::default());
        assert!(sim.comms_ms > 0.0, "counted traffic must be charged");
    }

    #[test]
    fn uninstrumented_run_ships_no_observability_payload() {
        let (mesh, field, grid) = fixture(200, 1, 9);
        let sol = run_dist(&mesh, &field, &grid, &DistOptions::new(2)).unwrap();
        for r in &sol.ranks {
            assert!(r.spans.is_empty());
            assert!(r.flows.sends.is_empty() && r.flows.recvs.is_empty());
        }
        let record = sol.to_run_record("test/dist@2ranks", mesh.n_triangles(), None);
        assert!(record.critical_path.is_none());
    }
}
