//! The recording fabric: a deterministic in-memory transport that logs the
//! fate of every send.
//!
//! Mailboxes are FIFO queues behind one mutex, so the delivery order is a
//! pure function of the send order — no OS scheduling leaks into message
//! ordering the way it can with `mpsc` channels. Every send appends a
//! [`MessageRecord`]; a message parked by a Hold rule gets a second record
//! when it is finally released, so a test can assert the exact
//! dropped-then-retransmitted or reordered history it injected.

use crate::fault::{FaultAction, FaultPlan};
use crate::transport::{Message, Tag, Transport, TransportError};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// What the fabric did with one send (or, for [`Disposition::Received`],
/// one receive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Placed in the destination mailbox.
    Delivered,
    /// Silently discarded by a Drop rule.
    Dropped,
    /// Parked by a Hold rule (a later `Delivered` record for the same
    /// `(from, seq, tag)` marks its release).
    Held,
    /// Popped from the mailbox by the destination rank — the receive side
    /// of the wire history, letting flow matching
    /// ([`match_wire_log`](crate::flow::match_wire_log)) pair every send
    /// with the receive that consumed it.
    Received,
}

/// One line of the fabric's message log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageRecord {
    /// Sending rank.
    pub from: u32,
    /// Destination rank.
    pub to: u32,
    /// Message tag.
    pub tag: Tag,
    /// Sender sequence number.
    pub seq: u64,
    /// Sender flow id (shared by retransmits of one logical message).
    pub flow: u64,
    /// Header + payload bytes.
    pub wire_bytes: u64,
    /// What happened to the send.
    pub disposition: Disposition,
}

struct FabricState {
    mailboxes: Vec<VecDeque<Message>>,
    faults: FaultPlan,
    held: HashMap<u32, Vec<Message>>,
    log: Vec<MessageRecord>,
}

struct FabricShared {
    state: Mutex<FabricState>,
    arrived: Condvar,
}

fn record_of(msg: &Message, disposition: Disposition) -> MessageRecord {
    MessageRecord {
        from: msg.from,
        to: msg.to,
        tag: msg.tag,
        seq: msg.seq,
        flow: msg.flow,
        wire_bytes: msg.wire_bytes(),
        disposition,
    }
}

/// Handle to a recording fabric: inspect the log after (or during) a run.
#[derive(Clone)]
pub struct RecordingFabric {
    shared: Arc<FabricShared>,
}

/// One rank's endpoint of the recording fabric.
pub struct RecordingEndpoint {
    rank: u32,
    n_ranks: u32,
    shared: Arc<FabricShared>,
}

impl RecordingFabric {
    /// A fabric of `n` ranks with no fault injection, plus its endpoints.
    pub fn new(n: usize) -> (RecordingFabric, Vec<RecordingEndpoint>) {
        Self::with_faults(n, FaultPlan::none())
    }

    /// A fabric of `n` ranks applying `faults` to sends.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn with_faults(n: usize, faults: FaultPlan) -> (RecordingFabric, Vec<RecordingEndpoint>) {
        assert!(n > 0, "need at least one rank");
        let shared = Arc::new(FabricShared {
            state: Mutex::new(FabricState {
                mailboxes: (0..n).map(|_| VecDeque::new()).collect(),
                faults,
                held: HashMap::new(),
                log: Vec::new(),
            }),
            arrived: Condvar::new(),
        });
        let endpoints = (0..n)
            .map(|rank| RecordingEndpoint {
                rank: rank as u32,
                n_ranks: n as u32,
                shared: Arc::clone(&shared),
            })
            .collect();
        (RecordingFabric { shared }, endpoints)
    }

    /// A snapshot of the message log so far.
    pub fn log(&self) -> Vec<MessageRecord> {
        self.shared
            .state
            .lock()
            .expect("fabric poisoned")
            .log
            .clone()
    }
}

impl Transport for RecordingEndpoint {
    fn rank(&self) -> u32 {
        self.rank
    }

    fn n_ranks(&self) -> u32 {
        self.n_ranks
    }

    fn send(&mut self, msg: Message) -> Result<(), TransportError> {
        let mut state = self.shared.state.lock().expect("fabric poisoned");
        if msg.to as usize >= state.mailboxes.len() {
            return Err(TransportError::Closed);
        }
        match state.faults.decide(&msg) {
            Some(FaultAction::Drop) => {
                let rec = record_of(&msg, Disposition::Dropped);
                state.log.push(rec);
            }
            Some(FaultAction::Hold) => {
                let rec = record_of(&msg, Disposition::Held);
                state.log.push(rec);
                state.held.entry(msg.to).or_default().push(msg);
            }
            dup @ (Some(FaultAction::Duplicate) | None) => {
                let to = msg.to;
                // A Duplicate rule enqueues the frame twice back to back;
                // each copy gets its own Delivered log line.
                let copies = if dup.is_some() { 2 } else { 1 };
                for _ in 0..copies {
                    let rec = record_of(&msg, Disposition::Delivered);
                    state.log.push(rec);
                    state.mailboxes[to as usize].push_back(msg.clone());
                }
                // Release anything held for this destination behind the
                // newer message — the reorder the Hold rule encodes.
                for held in state.held.remove(&to).unwrap_or_default() {
                    let rec = record_of(&held, Disposition::Delivered);
                    state.log.push(rec);
                    state.mailboxes[to as usize].push_back(held);
                }
                self.shared.arrived.notify_all();
            }
        }
        Ok(())
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Message, TransportError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock().expect("fabric poisoned");
        loop {
            if let Some(msg) = state.mailboxes[self.rank as usize].pop_front() {
                let rec = record_of(&msg, Disposition::Received);
                state.log.push(rec);
                return Ok(msg);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(TransportError::Timeout);
            }
            let (next, res) = self
                .shared
                .arrived
                .wait_timeout(state, deadline - now)
                .expect("fabric poisoned");
            state = next;
            if res.timed_out() && state.mailboxes[self.rank as usize].is_empty() {
                return Err(TransportError::Timeout);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultRule;

    fn msg(from: u32, to: u32, tag: Tag, seq: u64) -> Message {
        Message {
            from,
            to,
            tag,
            seq,
            flow: seq,
            payload: vec![0u8; 8],
        }
    }

    #[test]
    fn log_captures_drop_then_delivery_then_receive() {
        let plan = FaultPlan::none().with_rule(FaultRule::drop_first(0, Tag::HaloCoeffs, 1));
        let (fabric, mut eps) = RecordingFabric::with_faults(2, plan);
        let mut e1 = eps.pop().unwrap();
        let mut e0 = eps.pop().unwrap();
        e0.send(msg(0, 1, Tag::HaloCoeffs, 1)).unwrap();
        // Retransmit of the same sequence number after the (simulated)
        // timeout.
        e0.send(msg(0, 1, Tag::HaloCoeffs, 1)).unwrap();
        let got = e1.recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(got.seq, 1);
        let log = fabric.log();
        assert_eq!(log.len(), 3);
        assert_eq!(log[0].disposition, Disposition::Dropped);
        assert_eq!(log[1].disposition, Disposition::Delivered);
        assert_eq!(log[2].disposition, Disposition::Received);
        assert!(log.iter().all(|r| r.seq == 1 && r.flow == 1));
    }

    #[test]
    fn held_messages_release_in_reorder_position() {
        let plan = FaultPlan::none().with_rule(FaultRule::hold_first(0, 1, 1));
        let (fabric, mut eps) = RecordingFabric::with_faults(2, plan);
        let mut e1 = eps.pop().unwrap();
        let mut e0 = eps.pop().unwrap();
        e0.send(msg(0, 1, Tag::HaloCoeffs, 1)).unwrap();
        e0.send(msg(0, 1, Tag::HaloCoeffs, 2)).unwrap();
        let a = e1.recv_timeout(Duration::from_millis(100)).unwrap();
        let b = e1.recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!((a.seq, b.seq), (2, 1));
        let log = fabric.log();
        let dispositions: Vec<_> = log.iter().map(|r| (r.seq, r.disposition)).collect();
        assert_eq!(
            dispositions,
            vec![
                (1, Disposition::Held),
                (2, Disposition::Delivered),
                (1, Disposition::Delivered),
                (2, Disposition::Received),
                (1, Disposition::Received),
            ]
        );
    }

    #[test]
    fn empty_mailbox_times_out() {
        let (_fabric, mut eps) = RecordingFabric::new(1);
        let mut e0 = eps.pop().unwrap();
        assert_eq!(
            e0.recv_timeout(Duration::from_millis(5)),
            Err(TransportError::Timeout)
        );
    }
}
