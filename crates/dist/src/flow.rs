//! Comm-flow tracing: per-endpoint send/recv event logs and the matching
//! pass that turns them into send→recv pairs.
//!
//! Every payload message carries a per-sender monotone flow id (see
//! [`Message::flow`](crate::transport::Message::flow)), so `(sender,
//! flow)` names one logical message independently of retransmission. An
//! instrumented [`ReliableLink`](crate::link::ReliableLink) records a
//! [`FlowPoint`] when a halo-phase message is first sent and when its
//! payload is first surfaced to the application; [`match_flow_logs`]
//! joins the per-rank logs into [`FlowPair`]s — the rank-to-rank arcs a
//! trace timeline draws.
//!
//! [`match_wire_log`] performs the same join on a
//! [`RecordingFabric`](crate::record::RecordingFabric) message log, where
//! delivery order is a pure function of send order: the matched set is
//! bit-deterministic across repeated runs, which is what the flow tests
//! pin down. A flow that was sent but never received (a permanent drop)
//! is *flagged* as an orphan, never a panic — fault-injected runs must
//! stay analyzable.

use crate::record::{Disposition, MessageRecord};
use crate::transport::Tag;
use std::collections::BTreeMap;

/// One endpoint-local flow event: a message sent to (or received from)
/// `peer`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowPoint {
    /// The sender's flow id of the message.
    pub flow: u64,
    /// The other rank (destination for sends, source for recvs).
    pub peer: u32,
    /// Message tag.
    pub tag: Tag,
    /// Nanoseconds from the run epoch at which the event was recorded.
    pub ts_ns: u64,
    /// Wire bytes of the message.
    pub bytes: u64,
}

/// One endpoint's flow events, in recording order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlowLog {
    /// First-attempt sends of instrumented payload messages.
    pub sends: Vec<FlowPoint>,
    /// First surfacing of each received payload (duplicates excluded).
    pub recvs: Vec<FlowPoint>,
}

/// A matched send→recv pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowPair {
    /// Sending rank.
    pub src: u32,
    /// Receiving rank.
    pub dst: u32,
    /// The sender's flow id.
    pub flow: u64,
    /// Message tag.
    pub tag: Tag,
    /// Send instant, nanoseconds from the run epoch.
    pub send_ns: u64,
    /// Receive instant, nanoseconds from the run epoch.
    pub recv_ns: u64,
    /// Wire bytes of the message.
    pub bytes: u64,
}

/// Result of joining per-rank flow logs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlowMatch {
    /// Matched pairs, sorted by `(src, flow)`.
    pub pairs: Vec<FlowPair>,
    /// Sends with no matching recv (lost messages), as `(src, point)`,
    /// sorted by `(src, flow)`.
    pub unmatched_sends: Vec<(u32, FlowPoint)>,
    /// Recvs with no matching send (sender not instrumented, or its log
    /// snapshot predates the send), as `(dst, point)`, sorted by
    /// `(peer, flow)`.
    pub unmatched_recvs: Vec<(u32, FlowPoint)>,
}

/// Joins per-rank [`FlowLog`]s on `(sender, flow)`. Input is
/// `(rank, log)` pairs; output ordering is canonical regardless of input
/// order.
pub fn match_flow_logs(logs: &[(u32, &FlowLog)]) -> FlowMatch {
    let mut sends: BTreeMap<(u32, u64), FlowPoint> = BTreeMap::new();
    for (rank, log) in logs {
        for &p in &log.sends {
            sends.insert((*rank, p.flow), p);
        }
    }
    let mut pairs = Vec::new();
    let mut unmatched_recvs = Vec::new();
    for (rank, log) in logs {
        for &p in &log.recvs {
            match sends.remove(&(p.peer, p.flow)) {
                Some(send) => pairs.push(FlowPair {
                    src: p.peer,
                    dst: *rank,
                    flow: p.flow,
                    tag: p.tag,
                    send_ns: send.ts_ns,
                    recv_ns: p.ts_ns,
                    bytes: p.bytes,
                }),
                None => unmatched_recvs.push((*rank, p)),
            }
        }
    }
    pairs.sort_by_key(|p| (p.src, p.flow));
    let mut unmatched_sends: Vec<(u32, FlowPoint)> =
        sends.into_iter().map(|((rank, _), p)| (rank, p)).collect();
    unmatched_sends.sort_by_key(|(rank, p)| (*rank, p.flow));
    unmatched_recvs.sort_by_key(|(_, p)| (p.peer, p.flow));
    FlowMatch {
        pairs,
        unmatched_sends,
        unmatched_recvs,
    }
}

/// The flow-level summary of a recording-fabric wire log: which logical
/// payload messages made it into a receiver's hands, and which never did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireFlowSummary {
    /// Flows with at least one `Received` record, as
    /// `(from, to, flow, tag)`, sorted.
    pub delivered: Vec<(u32, u32, u64, Tag)>,
    /// Flows that were sent (possibly repeatedly) but never received —
    /// flagged, not fatal. Sorted like `delivered`.
    pub orphaned: Vec<(u32, u32, u64, Tag)>,
}

/// Joins a [`RecordingFabric`](crate::record::RecordingFabric) log on
/// `(from, flow)`, ignoring acknowledgements and bundle frames (a bundle's
/// sub-messages are endpoint-level events, invisible at the wire layer; the
/// link-side [`FlowLog`] is the right place to account for them). A flow
/// counts as delivered when any of its copies was popped by the receiver
/// ([`Disposition::Received`]); a flow whose every copy was dropped, held
/// forever, or left unread is an orphan.
pub fn match_wire_log(log: &[MessageRecord]) -> WireFlowSummary {
    let mut flows: BTreeMap<(u32, u32, u64, Tag), bool> = BTreeMap::new();
    for r in log {
        if r.tag == Tag::Ack || r.tag == Tag::Bundle {
            continue;
        }
        let received = flows.entry((r.from, r.to, r.flow, r.tag)).or_insert(false);
        *received |= r.disposition == Disposition::Received;
    }
    let mut summary = WireFlowSummary::default();
    for (key, received) in flows {
        if received {
            summary.delivered.push(key);
        } else {
            summary.orphaned.push(key);
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(flow: u64, peer: u32, ts_ns: u64) -> FlowPoint {
        FlowPoint {
            flow,
            peer,
            tag: Tag::HaloCoeffs,
            ts_ns,
            bytes: 64,
        }
    }

    #[test]
    fn logs_join_into_pairs() {
        let log0 = FlowLog {
            sends: vec![point(0, 1, 10)],
            recvs: vec![point(0, 1, 40)],
        };
        let log1 = FlowLog {
            sends: vec![point(0, 0, 20)],
            recvs: vec![point(0, 0, 30)],
        };
        let matched = match_flow_logs(&[(0, &log0), (1, &log1)]);
        assert_eq!(matched.pairs.len(), 2);
        assert!(matched.unmatched_sends.is_empty());
        assert!(matched.unmatched_recvs.is_empty());
        let arcs: Vec<(u32, u32, u64, u64)> = matched
            .pairs
            .iter()
            .map(|p| (p.src, p.dst, p.send_ns, p.recv_ns))
            .collect();
        assert_eq!(arcs, vec![(0, 1, 10, 30), (1, 0, 20, 40)]);
    }

    #[test]
    fn lost_and_unknown_flows_are_flagged_not_dropped() {
        let log0 = FlowLog {
            sends: vec![point(0, 1, 10), point(1, 1, 20)],
            recvs: vec![point(7, 1, 50)],
        };
        let log1 = FlowLog {
            sends: vec![],
            recvs: vec![point(0, 0, 30)],
        };
        let matched = match_flow_logs(&[(0, &log0), (1, &log1)]);
        assert_eq!(matched.pairs.len(), 1);
        // Flow (0, 1) was sent but never received.
        assert_eq!(matched.unmatched_sends, vec![(0u32, point(1, 1, 20))]);
        // Rank 0 received flow 7 from rank 1, but rank 1 never logged it.
        assert_eq!(matched.unmatched_recvs, vec![(0u32, point(7, 1, 50))]);
    }

    #[test]
    fn join_order_is_canonical() {
        let log0 = FlowLog {
            sends: vec![point(1, 1, 15), point(0, 1, 10)],
            recvs: vec![],
        };
        let log1 = FlowLog {
            sends: vec![],
            recvs: vec![point(1, 0, 40), point(0, 0, 30)],
        };
        let a = match_flow_logs(&[(0, &log0), (1, &log1)]);
        let b = match_flow_logs(&[(1, &log1), (0, &log0)]);
        assert_eq!(a, b, "input order must not leak into the join");
        assert_eq!(a.pairs[0].flow, 0);
        assert_eq!(a.pairs[1].flow, 1);
    }
}
