//! Sharding geometry: who owns which elements and points, and which ghost
//! rings must move between ranks.
//!
//! The shard plan is built once, deterministically, from the mesh and the
//! rank count — every rank reconstructs the identical plan from its mesh
//! replica, so both sides of a halo exchange agree on exactly which
//! elements cross the wire without negotiating. The halo ring is sized
//! from the stencil extent: the SIAC kernel's support is `(3k+1)h` wide,
//! so any element within half that (plus one spatial-grid cell for the
//! cell-rounded candidate lookup) of an owned element can contribute to an
//! owned grid point.

use ustencil_core::ComputationGrid;
use ustencil_geometry::Aabb;
use ustencil_mesh::{halo_elements, partition_recursive_bisection, TriMesh, PERIODIC_SHIFTS};

/// One rank's slice of the problem.
#[derive(Debug, Clone)]
pub struct RankShard {
    /// Elements this rank owns (sorted ascending).
    pub owned_elements: Vec<u32>,
    /// Ghost-ring elements whose coefficients this rank needs but does not
    /// own (sorted ascending).
    pub halo_elements: Vec<u32>,
    /// Global grid-point indices whose owning element is owned by this
    /// rank (sorted ascending). The rank computes exactly these values.
    pub owned_points: Vec<u32>,
}

/// The full sharding of a mesh across `n_ranks` ranks.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    shards: Vec<RankShard>,
    element_rank: Vec<u32>,
    halo_width: f64,
}

impl ShardPlan {
    /// Shards `mesh` (and the grid points riding on it) across `n_ranks`
    /// by recursive bisection, with ghost rings of `halo_width`.
    ///
    /// # Panics
    /// Panics when `n_ranks == 0`.
    pub fn build(mesh: &TriMesh, grid: &ComputationGrid, n_ranks: usize, halo_width: f64) -> Self {
        assert!(n_ranks > 0, "need at least one rank");
        let part = partition_recursive_bisection(mesh, n_ranks);
        let mut element_rank = vec![0u32; mesh.n_triangles()];
        for (rank, patch) in part.patches().enumerate() {
            for &e in patch {
                element_rank[e as usize] = rank as u32;
            }
        }
        let shards = (0..n_ranks)
            .map(|rank| {
                let mut owned: Vec<u32> = part.patch(rank).to_vec();
                owned.sort_unstable();
                let halo = if n_ranks == 1 || owned.is_empty() {
                    Vec::new()
                } else {
                    halo_elements(mesh, &owned, halo_width)
                };
                let owned_points: Vec<u32> = grid
                    .owners()
                    .iter()
                    .enumerate()
                    .filter(|&(_, &e)| element_rank[e as usize] == rank as u32)
                    .map(|(i, _)| i as u32)
                    .collect();
                RankShard {
                    owned_elements: owned,
                    halo_elements: halo,
                    owned_points,
                }
            })
            .collect();
        Self {
            shards,
            element_rank,
            halo_width,
        }
    }

    /// Number of ranks.
    #[inline]
    pub fn n_ranks(&self) -> usize {
        self.shards.len()
    }

    /// Rank `r`'s shard.
    #[inline]
    pub fn shard(&self, r: usize) -> &RankShard {
        &self.shards[r]
    }

    /// The rank that owns element `e`.
    #[inline]
    pub fn owner_of(&self, e: u32) -> u32 {
        self.element_rank[e as usize]
    }

    /// The ghost-ring distance the plan was built with.
    #[inline]
    pub fn halo_width(&self) -> f64 {
        self.halo_width
    }

    /// Splits rank `r`'s owned elements into *interior* — elements whose
    /// stencil footprint (their bounding box inflated by the plan's
    /// halo width, the same `(3k+1)h/2`-derived reach the rings were
    /// built from) is disjoint from every halo-ring element under every
    /// periodic shift — and *frontier*, the rest. Interior elements can
    /// be evaluated while halo coefficients are still in flight; frontier
    /// elements wait for the drain. Both lists stay sorted ascending and
    /// together partition `owned_elements` exactly. With no halo ring
    /// (one rank, or an empty shard) everything is interior.
    pub fn split_interior(&self, mesh: &TriMesh, r: usize) -> (Vec<u32>, Vec<u32>) {
        let shard = &self.shards[r];
        if shard.halo_elements.is_empty() {
            return (shard.owned_elements.clone(), Vec::new());
        }
        let halo_bbs: Vec<Aabb> = shard
            .halo_elements
            .iter()
            .map(|&e| mesh.triangle(e as usize).aabb())
            .collect();
        let mut ring = Aabb::EMPTY;
        for bb in &halo_bbs {
            ring = ring.union(bb);
        }
        let mut interior = Vec::new();
        let mut frontier = Vec::new();
        for &e in &shard.owned_elements {
            let reach = mesh.triangle(e as usize).aabb().inflate(self.halo_width);
            // The ring union is a cheap first reject; the per-element pass
            // is what the interior guarantee actually rests on.
            let near = PERIODIC_SHIFTS.iter().any(|&s| {
                let shifted = reach.translate(s);
                shifted.intersects(&ring) && halo_bbs.iter().any(|bb| shifted.intersects(bb))
            });
            if near {
                frontier.push(e);
            } else {
                interior.push(e);
            }
        }
        (interior, frontier)
    }

    /// The elements rank `from` must push to rank `to` in a halo exchange:
    /// `owned(from) ∩ halo(to)`, sorted ascending. Both sides compute the
    /// same set from their plan replica, so the exchange needs no
    /// negotiation round.
    pub fn push_set(&self, from: usize, to: usize) -> Vec<u32> {
        let owned = &self.shards[from].owned_elements;
        let halo = &self.shards[to].halo_elements;
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < owned.len() && j < halo.len() {
            match owned[i].cmp(&halo[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(owned[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ustencil_mesh::{generate_mesh, MeshClass};

    fn plan(n_elems: usize, n_ranks: usize) -> (TriMesh, ComputationGrid, ShardPlan) {
        let mesh = generate_mesh(MeshClass::LowVariance, n_elems, 13);
        let grid = ComputationGrid::quadrature_points(&mesh, 1);
        let width = 2.0 * mesh.max_edge_length();
        let plan = ShardPlan::build(&mesh, &grid, n_ranks, width);
        (mesh, grid, plan)
    }

    #[test]
    fn every_element_and_point_owned_exactly_once() {
        let (mesh, grid, plan) = plan(600, 4);
        let mut elem_seen = vec![0u32; mesh.n_triangles()];
        let mut point_seen = vec![0u32; grid.len()];
        for r in 0..plan.n_ranks() {
            let shard = plan.shard(r);
            for &e in &shard.owned_elements {
                elem_seen[e as usize] += 1;
                assert_eq!(plan.owner_of(e), r as u32);
            }
            for &p in &shard.owned_points {
                point_seen[p as usize] += 1;
                assert_eq!(
                    plan.owner_of(grid.owners()[p as usize]),
                    r as u32,
                    "point must live on its element's rank"
                );
            }
        }
        assert!(elem_seen.iter().all(|&c| c == 1));
        assert!(point_seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn push_sets_tile_the_halo() {
        let (_, _, plan) = plan(600, 4);
        for to in 0..plan.n_ranks() {
            let mut pushed: Vec<u32> = (0..plan.n_ranks())
                .filter(|&from| from != to)
                .flat_map(|from| plan.push_set(from, to))
                .collect();
            pushed.sort_unstable();
            assert_eq!(
                pushed,
                plan.shard(to).halo_elements,
                "peers' push sets must exactly cover rank {to}'s halo"
            );
        }
    }

    #[test]
    fn interior_frontier_partition_owned_and_interior_stays_clear() {
        use ustencil_geometry::Aabb;
        use ustencil_mesh::PERIODIC_SHIFTS;
        let (mesh, _, plan) = plan(600, 4);
        for r in 0..plan.n_ranks() {
            let shard = plan.shard(r);
            let (interior, frontier) = plan.split_interior(&mesh, r);
            let mut merged: Vec<u32> = interior.iter().chain(&frontier).copied().collect();
            merged.sort_unstable();
            assert_eq!(merged, shard.owned_elements, "split must partition owned");
            assert!(interior.windows(2).all(|w| w[0] < w[1]));
            assert!(frontier.windows(2).all(|w| w[0] < w[1]));
            let halo_bbs: Vec<Aabb> = shard
                .halo_elements
                .iter()
                .map(|&e| mesh.triangle(e as usize).aabb())
                .collect();
            for &e in &interior {
                let reach = mesh.triangle(e as usize).aabb().inflate(plan.halo_width());
                for s in PERIODIC_SHIFTS {
                    for bb in &halo_bbs {
                        assert!(
                            !reach.translate(s).intersects(bb),
                            "interior element {e} reaches the halo ring"
                        );
                    }
                }
            }
            // A multi-rank shard of a periodic mesh always has a frontier.
            assert!(!frontier.is_empty(), "rank {r} has no frontier");
        }
    }

    #[test]
    fn single_rank_is_all_interior() {
        let (mesh, _, plan) = plan(200, 1);
        let (interior, frontier) = plan.split_interior(&mesh, 0);
        assert_eq!(interior, plan.shard(0).owned_elements);
        assert!(frontier.is_empty());
    }

    #[test]
    fn single_rank_has_no_halo() {
        let (_, grid, plan) = plan(200, 1);
        assert!(plan.shard(0).halo_elements.is_empty());
        assert_eq!(plan.shard(0).owned_points.len(), grid.len());
    }

    #[test]
    fn owned_lists_are_sorted() {
        let (_, _, plan) = plan(600, 8);
        for r in 0..plan.n_ranks() {
            let s = plan.shard(r);
            assert!(s.owned_elements.windows(2).all(|w| w[0] < w[1]));
            assert!(s.halo_elements.windows(2).all(|w| w[0] < w[1]));
            assert!(s.owned_points.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
