//! Rank-sharded execution runtime: explicit halo exchange, deterministic
//! transport, and comms accounting.
//!
//! The paper's scheme tiles an unstructured mesh into overlapped patches
//! whose evaluation needs no communication until an ordered reduction; this
//! crate pushes that structure across *address spaces*. The mesh is
//! sharded over ranks by the same recursive bisection the in-process
//! tiler uses, each rank gets a ghost ring sized from the stencil extent
//! `(3k + 1) h`, and every byte of dynamic data that crosses a rank
//! boundary moves as a serialized message through the [`Transport`] trait
//! — no shared references to field or solution data exist between ranks.
//!
//! The stack, bottom to top:
//!
//! * [`transport`] — the message and the five-method transport contract;
//! * [`channel`] / [`record`] — an in-process fabric over `mpsc` channels
//!   with ranks on real threads, and a deterministic recording fabric
//!   whose delivery order is a pure function of send order and whose log
//!   lets tests assert exactly which messages were dropped, held, or
//!   delivered;
//! * [`fault`] — deterministic drop/delay(reorder) injection, keyed by
//!   message identity, never timing;
//! * [`flow`] — comm-flow tracing: every payload message carries a
//!   per-sender monotone flow id; instrumented links log send/recv points
//!   and a deterministic join pairs them into the arcs a trace timeline
//!   draws (lost flows are flagged, never fatal);
//! * [`link`] — sliding-window acknowledgement with bounded retry on top
//!   of any transport: posted sends ride the wire while the rank computes,
//!   cumulative acks cover whole sequence ranges, same-destination
//!   overflow coalesces into bundle frames — at-least-once on the wire,
//!   exactly-once to the application, every payload and ack byte counted;
//! * [`shard`] — who owns which elements and points, the push sets a halo
//!   exchange must move, and the interior/frontier split of each rank's
//!   owned work by stencil footprint;
//! * [`runtime`] — the sharded direct per-element scheme: posted push
//!   exchange, interior evaluation overlapped with the wire, frontier
//!   evaluation after the drain, two-stage reduction, and rank-failure
//!   recovery by coordinator re-resolve;
//! * [`plan_dist`] — the sharded plan path: per-rank CSR compile of owned
//!   rows, pull-based exchange of exactly the columns the plan stored
//!   overlapped with interior-row SpMV, bitwise equal to a global plan
//!   apply.
//!
//! Work counters partition exactly (see the module docs of [`runtime`] and
//! [`plan_dist`] for which components are bit-identical to a single-rank
//! run), wire traffic is counted per rank, and both surface through
//! [`RunRecord`](ustencil_core::RunRecord) JSON and the device cost
//! model's communication term.

#![deny(missing_docs)]

pub mod channel;
pub mod fault;
pub mod flow;
pub mod link;
pub mod plan_dist;
pub mod record;
pub mod runtime;
pub mod shard;
pub mod transport;
pub mod wire;

pub use channel::{ChannelEndpoint, ChannelFabric};
pub use fault::{FaultAction, FaultPlan, FaultRule};
pub use flow::{
    match_flow_logs, match_wire_log, FlowLog, FlowMatch, FlowPair, FlowPoint, WireFlowSummary,
};
pub use link::{DistError, LinkConfig, ReliableLink};
pub use plan_dist::{run_plan_dist, run_plan_dist_on, DistPlanSolution};
pub use record::{Disposition, MessageRecord, RecordingEndpoint, RecordingFabric};
pub use runtime::{run_dist, run_dist_on, DistOptions, DistSolution, RankReport, SCHEME_LABEL};
pub use shard::{RankShard, ShardPlan};
pub use transport::{Message, Tag, Transport, TransportError, HEADER_BYTES};
pub use wire::RankResult;
