//! Rank-sharded plan compile and apply: each rank compiles the CSR rows of
//! its owned grid points, then applies them as a local SpMV over owned +
//! pulled halo coefficients, with the pull overlapped behind the rows
//! that never needed it.
//!
//! The exchange here is *pull*-based, unlike the push-based coefficient
//! scatter of the direct runtime: a compiled plan knows exactly which
//! element columns its rows reference, so each rank requests precisely
//! those columns from their owners ([`Tag::HaloRequest`]) and gets back
//! chunked [`Tag::HaloCoeffs`] replies. No geometric halo estimate is
//! involved on the wire — the requested set is the support the plan
//! actually stored.
//!
//! ## Overlapped schedule
//!
//! Requests are *posted* (`exchange.post`), then the rank applies its
//! *interior rows* — rows whose every stored column is locally owned —
//! while the requests and replies ride the wire (`eval.interior`). The
//! drain (`exchange.drain`) serves peers' requests and receives this
//! rank's replies; the remaining *frontier rows*, which reference pulled
//! columns, run last (`eval.frontier`), and the rank's own window is
//! settled afterwards (`exchange.flush`). The post, the drain, and the
//! flush are the exposed communication.
//!
//! ## Numerical contract
//!
//! Plan rows depend only on the grid point they belong to (compilation
//! walks the full mesh replica through the same `TriangleGrid`), so the
//! per-rank rows are *bit-identical* to the corresponding rows of a
//! single-rank plan, and each output value is produced by the same
//! entry-order dot product — the interior/frontier split changes which
//! pass writes a row, never the dot product behind it. Sharded plan
//! application is therefore bitwise equal to a global
//! [`EvalPlan::apply`], for any rank count, and the row-partitioned apply
//! counters sum exactly.

use crate::channel::ChannelFabric;
use crate::flow::{match_flow_logs, FlowLog, FlowMatch};
use crate::link::{DistError, LinkConfig, ReliableLink};
use crate::runtime::{DistOptions, GatherOutcome, RankReport, SCHEME_LABEL};
use crate::shard::ShardPlan;
use crate::transport::{Message, Tag, Transport};
use crate::wire::{
    decode_coeffs_into, decode_ids, decode_rank_result, encode_coeffs, encode_ids,
    encode_rank_result, RankResult,
};
use std::time::Instant;
use ustencil_core::{
    simulate_ranks, ComputationGrid, DeviceConfig, Metrics, PlanStats, RankCommRecord, RankTraffic,
    RunRecord, Scheme, SimReport, SimdPolicy, SimdRecord,
};
use ustencil_dg::DgField;
use ustencil_geometry::Point2;
use ustencil_mesh::TriMesh;
use ustencil_plan::{ApplyOptions, CompileOptions, EvalPlan};
use ustencil_trace::{critical_path, exposed_comms_ns, CommStats, SpanRecord, Timeline, Tracer};

/// Result of a rank-sharded plan compile + apply.
#[derive(Debug, Clone)]
pub struct DistPlanSolution {
    /// Post-processed value at each grid point (global order). Bitwise
    /// equal to a single-address-space plan apply.
    pub values: Vec<f64>,
    /// Apply counters summed over every rank (row-partitioned, so the sum
    /// is exactly a single-rank apply's counters).
    pub metrics: Metrics,
    /// Aggregate shape of the sharded plan, derived from the apply
    /// counters: `rows`/`nnz` sum the per-rank CSR pieces, `build_ms` and
    /// `apply_ms` are critical-path (max over ranks) times.
    pub plan_stats: PlanStats,
    /// Per-rank ledgers. For the plan path, `eval_ns` is the local SpMV
    /// and `reduce_ns` carries the local plan *compile* time (there is no
    /// per-rank reduce: owned rows assemble by placement).
    pub ranks: Vec<RankReport>,
    /// Phase spans of rank 0 (empty unless instrumented).
    pub spans: Vec<SpanRecord>,
    /// Wall-clock time of the whole run.
    pub wall: std::time::Duration,
    /// The stencil width `(3k+1) h` used.
    pub stencil_width: f64,
    /// SIMD dispatch record of the run (the ISA every rank resolved, with
    /// aggregate SpMV throughput over the run's wall time).
    pub simd: SimdRecord,
}

impl DistPlanSolution {
    /// Maximum absolute difference against another value vector.
    pub fn max_abs_diff(&self, other: &[f64]) -> f64 {
        self.values
            .iter()
            .zip(other)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Transport counters summed over every rank.
    pub fn total_comm(&self) -> CommStats {
        let stats: Vec<CommStats> = self.ranks.iter().map(|r| r.comm).collect();
        CommStats::sum(&stats)
    }

    /// Counted per-rank wire traffic, in the cost model's shape. The
    /// exposed fraction charges only the post + drain share of each
    /// rank's busy time (see
    /// [`DistSolution::traffic`](crate::runtime::DistSolution::traffic)).
    pub fn traffic(&self) -> Vec<RankTraffic> {
        self.ranks
            .iter()
            .map(|r| {
                let busy = r.exchange_ns + r.eval_ns;
                RankTraffic {
                    bytes_sent: r.comm.bytes_sent,
                    msgs_sent: r.comm.msgs_sent,
                    exposed_fraction: if busy == 0 {
                        1.0
                    } else {
                        r.exchange_ns as f64 / busy as f64
                    },
                }
            })
            .collect()
    }

    /// Simulated execution time on `n_ranks` devices, charging the counted
    /// wire traffic through the cost model's comms term.
    pub fn simulate(&self, config: &DeviceConfig) -> SimReport {
        let blocks: Vec<Vec<Metrics>> = self
            .ranks
            .iter()
            .map(|r| r.patches.iter().map(|s| s.metrics).collect())
            .collect();
        simulate_ranks(Scheme::PerPoint, &blocks, &self.traffic(), config)
    }

    /// Per-rank span vectors in rank order — the input shape of
    /// [`critical_path`].
    pub fn rank_spans(&self) -> Vec<Vec<SpanRecord>> {
        self.ranks.iter().map(|r| r.spans.clone()).collect()
    }

    /// Joins the per-rank flow logs into send→recv pairs (empty unless the
    /// run was instrumented).
    pub fn flow_match(&self) -> FlowMatch {
        let logs: Vec<(u32, &FlowLog)> = self.ranks.iter().map(|r| (r.rank, &r.flows)).collect();
        match_flow_logs(&logs)
    }

    /// Adds this run to `timeline` as process `pid`: one track per rank
    /// carrying that rank's spans, plus one flow arrow per matched halo
    /// message (both requests and coefficient replies on the pull path).
    pub fn add_to_timeline(&self, timeline: &mut Timeline, pid: u64, label: &str) {
        timeline.add_process(pid, label);
        for r in &self.ranks {
            timeline.add_track(
                pid,
                r.rank as u64,
                &format!("rank {}", r.rank),
                r.spans.clone(),
            );
        }
        for p in self.flow_match().pairs {
            timeline.add_flow(
                &format!("{} {}→{}", p.tag.label(), p.src, p.dst),
                (pid, p.src as u64),
                (pid, p.dst as u64),
                p.send_ns,
                p.recv_ns,
            );
        }
    }

    /// Builds the `RunReport` record of this run: scheme `"dist"` with the
    /// aggregate plan shape attached and one comms ledger per rank.
    pub fn to_run_record(
        &self,
        label: &str,
        n_triangles: usize,
        device_sim: Option<SimReport>,
    ) -> RunRecord {
        let critical_path_record = if self.ranks.iter().any(|r| !r.spans.is_empty()) {
            Some((&critical_path(&self.rank_spans())).into())
        } else {
            None
        };
        RunRecord {
            label: label.to_string(),
            scheme: SCHEME_LABEL.to_string(),
            n_triangles: n_triangles as u64,
            n_points: self.values.len() as u64,
            wall_ms: self.wall.as_secs_f64() * 1e3,
            metrics: self.metrics,
            spans: self.spans.clone(),
            patches: self
                .ranks
                .iter()
                .flat_map(|r| r.patches.iter())
                .map(|s| ustencil_core::report::PatchRecord {
                    wall_ns: s.wall_ns,
                    elements: s.elements,
                    points: s.points,
                    metrics: s.metrics,
                })
                .collect(),
            histograms: Vec::new(),
            device_sim,
            plan: Some(self.plan_stats.clone()),
            locality: None,
            comms: self
                .ranks
                .iter()
                .map(|r| RankCommRecord {
                    rank: r.rank as u64,
                    owned_elements: r.owned_elements,
                    halo_elements: r.halo_elements,
                    owned_points: r.owned_points,
                    interior: r.interior,
                    frontier: r.frontier,
                    msgs_sent: r.comm.msgs_sent,
                    bytes_sent: r.comm.bytes_sent,
                    msgs_recv: r.comm.msgs_recv,
                    bytes_recv: r.comm.bytes_recv,
                    retransmits: r.comm.retransmits,
                    dup_payloads: r.comm.dup_payloads,
                    coalesced: r.comm.coalesced,
                    exchange_ns: r.exchange_ns,
                    eval_ns: r.eval_ns,
                    reduce_ns: r.reduce_ns,
                    exposed_comms_ms: exposed_comms_ns(&r.spans) as f64 / 1e6,
                    flow_sends: r.flows.sends.len() as u64,
                    flow_recvs: r.flows.recvs.len() as u64,
                })
                .collect(),
            critical_path: critical_path_record,
            serve: None,
            simd: Some(self.simd.clone()),
        }
    }
}

/// A rank's static scatter for the plan path (the mesh and shard plan are
/// replicated; dynamic coefficients move only as messages).
struct PlanRankCtx {
    mesh: TriMesh,
    plan: ShardPlan,
    degree: usize,
    smoothness: usize,
    h_factor: f64,
    n_modes: usize,
    sm_patches: usize,
    owned_coeffs: Vec<f64>,
    points: Vec<Point2>,
    owners: Vec<u32>,
    link: LinkConfig,
    phase_timeout: std::time::Duration,
    chunk_elems: usize,
    /// SIMD policy of the local compile and SpMV. Resolution is
    /// deterministic per process (CPU features + env), so every rank lands
    /// on the same ISA.
    simd: SimdPolicy,
    instrument: bool,
    /// The run's shared time origin (see `runtime::RankCtx::epoch`).
    epoch: Instant,
}

/// Compiles a rank's local plan: rows for its owned points, over the full
/// mesh replica (compilation is pure geometry — no cross-rank data).
#[allow(clippy::too_many_arguments)]
fn compile_local(
    ctx_mesh: &TriMesh,
    points: Vec<Point2>,
    owners: Vec<u32>,
    degree: usize,
    smoothness: usize,
    h_factor: f64,
    sm_patches: usize,
    simd: SimdPolicy,
) -> (EvalPlan, ComputationGrid) {
    let grid = ComputationGrid::from_points(points, owners);
    let plan = EvalPlan::compile(
        ctx_mesh,
        &grid,
        degree,
        &CompileOptions {
            smoothness: Some(smoothness),
            h_factor,
            n_blocks: sm_patches,
            parallel: false,
            instrument: false,
            // Per-rank plans stay in natural order: their cols() are
            // scanned as *global element ids* for halo discovery, which a
            // permuted column space would break.
            layout: ustencil_core::Layout::Natural,
            simd,
        },
    );
    (plan, grid)
}

/// The columns rank `rank` must pull from each peer: the deduplicated,
/// non-owned element columns its local plan references, grouped by owner.
fn pull_sets(plan: &ShardPlan, local: &EvalPlan, rank: usize) -> Vec<Vec<u32>> {
    let mut needed: Vec<u32> = local.cols().to_vec();
    needed.sort_unstable();
    needed.dedup();
    let mut per_peer = vec![Vec::new(); plan.n_ranks()];
    for e in needed {
        let owner = plan.owner_of(e) as usize;
        if owner != rank {
            per_peer[owner].push(e);
        }
    }
    per_peer
}

/// Messages a reply for `len` requested columns splits into (always at
/// least one, so an empty pull still sends one empty chunk and the drain
/// count stays a pure function of the request).
fn chunks_for(len: usize, chunk: usize) -> usize {
    if len == 0 {
        1
    } else {
        len.div_ceil(chunk)
    }
}

/// One rank's overlapped run: local compile, posted pull requests,
/// interior rows while the wire works, drain, frontier rows.
fn plan_rank_body<T: Transport>(
    ctx: PlanRankCtx,
    link: &mut ReliableLink<T>,
    pending: &mut Vec<Message>,
    tracer: &Tracer,
) -> Result<(Vec<f64>, RankResult), DistError> {
    let rank = link.rank() as usize;
    let n = link.n_ranks() as usize;
    let shard = ctx.plan.shard(rank).clone();
    let nm = ctx.n_modes;

    let compile_start = Instant::now();
    let (local_plan, _grid) = {
        let _span = tracer.span("compile.plan");
        compile_local(
            &ctx.mesh,
            ctx.points,
            ctx.owners,
            ctx.degree,
            ctx.smoothness,
            ctx.h_factor,
            ctx.sm_patches,
            ctx.simd,
        )
    };
    let compile_ns = compile_start.elapsed().as_nanos() as u64;

    // Scatter this rank's owned coefficients into a full-width vector;
    // pulled halo columns land in the same vector, untouched columns stay
    // zero (the plan never reads them).
    let mut coeffs = vec![0.0; ctx.mesh.n_triangles() * nm];
    for (i, &e) in shard.owned_elements.iter().enumerate() {
        coeffs[e as usize * nm..(e as usize + 1) * nm]
            .copy_from_slice(&ctx.owned_coeffs[i * nm..(i + 1) * nm]);
    }

    // --- exchange.post: queue one pull request per peer without waiting.
    let wanted = pull_sets(&ctx.plan, &local_plan, rank);
    let post_start = Instant::now();
    {
        let _span = tracer.span("exchange.post");
        for peer in (0..n).filter(|&q| q != rank) {
            link.post(peer as u32, Tag::HaloRequest, encode_ids(&wanted[peer]))?;
        }
    }
    let post_ns = post_start.elapsed().as_nanos() as u64;

    // Interior rows reference only locally-owned columns, so they can run
    // against the halo-incomplete coefficient vector; frontier rows wait
    // for the drain. The split is exact: every row lands in one list.
    let (rows_interior, rows_frontier): (Vec<u32>, Vec<u32>) = (0..local_plan.rows() as u32)
        .partition(|&r| {
            local_plan
                .row_cols(r as usize)
                .iter()
                .all(|&c| ctx.plan.owner_of(c) == rank as u32)
        });

    let mut out = vec![0.0; local_plan.rows()];
    let mut patches = Vec::new();
    let mut eval_ns = 0u64;

    // --- eval.interior: rows whose support is fully owned.
    {
        let _span = tracer.span("eval.interior");
        if !rows_interior.is_empty() {
            let eval_start = Instant::now();
            let field =
                DgField::from_coefficients(ctx.degree, ctx.mesh.n_triangles(), coeffs.clone());
            patches.extend(local_plan.apply_rows_into(
                &rows_interior,
                &field,
                &mut out,
                ctx.sm_patches,
                ctx.simd,
            ));
            eval_ns += eval_start.elapsed().as_nanos() as u64;
        }
    }

    // --- exchange.drain: serve peers' requests (chunked replies, posted
    // not awaited) and receive exactly the reply chunks this rank's own
    // requests produce. The ack-flush is deferred past the frontier rows
    // (peers ack only when they drain; see the push runtime).
    let drain_start = Instant::now();
    {
        let _span = tracer.span("exchange.drain");
        let expected: usize = (0..n)
            .filter(|&q| q != rank)
            .map(|peer| chunks_for(wanted[peer].len(), ctx.chunk_elems))
            .sum();
        let mut served = 0;
        let mut received = 0;
        let deadline = Instant::now() + ctx.phase_timeout;
        while served < n - 1 || received < expected {
            let now = Instant::now();
            if now >= deadline {
                return Err(DistError::Timeout);
            }
            let msg = link.recv_payload(deadline - now)?;
            match msg.tag {
                Tag::HaloRequest => {
                    let ids = decode_ids(&msg.payload).map_err(DistError::Protocol)?;
                    if ids.is_empty() {
                        link.post(msg.from, Tag::HaloCoeffs, encode_coeffs(&[], &coeffs, nm))?;
                    } else {
                        for chunk in ids.chunks(ctx.chunk_elems) {
                            link.post(
                                msg.from,
                                Tag::HaloCoeffs,
                                encode_coeffs(chunk, &coeffs, nm),
                            )?;
                        }
                    }
                    served += 1;
                }
                Tag::HaloCoeffs => {
                    decode_coeffs_into(&msg.payload, nm, &mut coeffs)
                        .map_err(DistError::Protocol)?;
                    received += 1;
                }
                _ => pending.push(msg),
            }
        }
    }
    let drain_ns = drain_start.elapsed().as_nanos() as u64;

    // --- eval.frontier: rows that reference pulled columns.
    {
        let _span = tracer.span("eval.frontier");
        if !rows_frontier.is_empty() {
            let eval_start = Instant::now();
            let field = DgField::from_coefficients(ctx.degree, ctx.mesh.n_triangles(), coeffs);
            patches.extend(local_plan.apply_rows_into(
                &rows_frontier,
                &field,
                &mut out,
                ctx.sm_patches,
                ctx.simd,
            ));
            eval_ns += eval_start.elapsed().as_nanos() as u64;
        }
    }

    // --- exchange.flush: settle this rank's window (normally instant —
    // every peer has drained and acked by now).
    let flush_start = Instant::now();
    {
        let _span = tracer.span("exchange.flush");
        link.flush()?;
    }
    let flush_ns = flush_start.elapsed().as_nanos() as u64;

    let result = RankResult {
        values: out.clone(),
        comm: link.stats(),
        interior: rows_interior.len() as u64,
        frontier: rows_frontier.len() as u64,
        exchange_ns: post_ns + drain_ns + flush_ns,
        eval_ns,
        reduce_ns: compile_ns,
        patches,
        // Spans and flow points are snapshotted by the caller, which owns
        // the tracer and the link.
        spans: Vec::new(),
        flow_sends: Vec::new(),
        flow_recvs: Vec::new(),
    };
    Ok((out, result))
}

/// Runs the rank-sharded plan compile + apply over the in-process channel
/// fabric.
///
/// # Panics
/// Panics when the field does not match the mesh, the stencil exceeds the
/// periodic domain, or `options.n_ranks == 0`.
pub fn run_plan_dist(
    mesh: &TriMesh,
    field: &DgField,
    grid: &ComputationGrid,
    options: &DistOptions,
) -> Result<DistPlanSolution, DistError> {
    let transports = ChannelFabric::endpoints(options.n_ranks);
    run_plan_dist_on(mesh, field, grid, options, transports)
}

/// [`run_plan_dist`] over caller-provided transport endpoints — the seam
/// the deterministic/fault-injecting fabrics plug into.
///
/// # Panics
/// Panics on the same conditions as [`run_plan_dist`], or when the
/// endpoint count disagrees with `options.n_ranks`.
pub fn run_plan_dist_on<T: Transport>(
    mesh: &TriMesh,
    field: &DgField,
    grid: &ComputationGrid,
    options: &DistOptions,
    transports: Vec<T>,
) -> Result<DistPlanSolution, DistError> {
    assert!(options.n_ranks > 0, "need at least one rank");
    assert_eq!(
        transports.len(),
        options.n_ranks,
        "one transport endpoint per rank"
    );
    assert_eq!(
        field.n_elements(),
        mesh.n_triangles(),
        "field does not match mesh"
    );

    let start = Instant::now();
    let tracer = Tracer::new(options.instrument);
    let epoch = tracer.epoch();
    let n = options.n_ranks;
    let degree = field.degree();
    let k = options.smoothness.unwrap_or(degree);
    let h = options.h_factor * mesh.max_edge_length();
    let stencil_width = (3 * k + 1) as f64 * h;
    let nm = field.basis().n_modes();

    // The exchange needs only ownership, not a geometric halo estimate —
    // the plan's stored columns are the exact pull set. Passing zero keeps
    // the shard build from computing rings nobody reads.
    let plan = {
        let _span = tracer.span("build.shard_plan");
        ShardPlan::build(mesh, grid, n, 0.0)
    };

    let mut ctxs: Vec<PlanRankCtx> = (0..n)
        .map(|r| {
            let shard = plan.shard(r);
            let mut owned_coeffs = Vec::with_capacity(shard.owned_elements.len() * nm);
            for &e in &shard.owned_elements {
                owned_coeffs.extend_from_slice(
                    &field.coefficients()[e as usize * nm..(e as usize + 1) * nm],
                );
            }
            PlanRankCtx {
                mesh: mesh.clone(),
                plan: plan.clone(),
                degree,
                smoothness: k,
                h_factor: options.h_factor,
                n_modes: nm,
                sm_patches: options.sm_patches,
                owned_coeffs,
                points: shard
                    .owned_points
                    .iter()
                    .map(|&i| grid.points()[i as usize])
                    .collect(),
                owners: shard
                    .owned_points
                    .iter()
                    .map(|&i| grid.owners()[i as usize])
                    .collect(),
                link: options.link,
                phase_timeout: options.gather_timeout,
                chunk_elems: options.chunk_elems,
                simd: options.simd,
                instrument: options.instrument,
                epoch,
            }
        })
        .collect();

    let mut transports = transports;
    let transport0 = transports.remove(0);
    let ctx0 = ctxs.remove(0);
    let worker_inputs: Vec<(PlanRankCtx, T)> = ctxs.into_iter().zip(transports).collect();

    let (rank_results, own_comm, spans, own_flows) =
        std::thread::scope(|scope| -> Result<GatherOutcome, DistError> {
            for (ctx, transport) in worker_inputs {
                scope.spawn(move || {
                    let mut link = ReliableLink::new(transport, ctx.link);
                    let worker_tracer = Tracer::with_epoch(ctx.instrument, ctx.epoch);
                    if ctx.instrument {
                        link.instrument_flows(ctx.epoch);
                    }
                    let mut pending = Vec::new();
                    match plan_rank_body(ctx, &mut link, &mut pending, &worker_tracer) {
                        Ok((_, mut result)) => {
                            // Snapshot the counters *before* encoding: the
                            // result message cannot count itself. Likewise
                            // the flow log — which is why the result tag is
                            // not flow-instrumented (see `link`).
                            result.comm = link.stats();
                            let flows = link.flow_log().clone();
                            result.spans = worker_tracer.into_records();
                            result.flow_sends = flows.sends;
                            result.flow_recvs = flows.recvs;
                            let payload = encode_rank_result(&result);
                            let _ = link.send_reliable(0, Tag::OwnedValues, payload);
                        }
                        Err(_) => {
                            // The coordinator's gather deadline re-resolves
                            // this rank's rows.
                        }
                    }
                });
            }

            let mut link = ReliableLink::new(transport0, options.link);
            if options.instrument {
                link.instrument_flows(epoch);
            }
            let mut pending = Vec::new();
            let (_, own_result) = plan_rank_body(ctx0, &mut link, &mut pending, &tracer)?;

            let mut rank_results: Vec<Option<RankResult>> = (0..n).map(|_| None).collect();
            rank_results[0] = Some(own_result);
            let mut missing = n - 1;
            let absorb = |msg: Message,
                          rank_results: &mut Vec<Option<RankResult>>,
                          missing: &mut usize|
             -> Result<(), DistError> {
                if msg.tag != Tag::OwnedValues {
                    return Ok(());
                }
                let result = decode_rank_result(&msg.payload).map_err(DistError::Protocol)?;
                let r = msg.from as usize;
                if r < n && rank_results[r].is_none() {
                    rank_results[r] = Some(result);
                    *missing -= 1;
                }
                Ok(())
            };
            {
                let _span = tracer.span("reduce.gather");
                for msg in std::mem::take(&mut pending) {
                    absorb(msg, &mut rank_results, &mut missing)?;
                }
                let deadline = Instant::now() + options.gather_timeout;
                while missing > 0 {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    match link.recv_payload(deadline - now) {
                        Ok(msg) => absorb(msg, &mut rank_results, &mut missing)?,
                        Err(DistError::Timeout) => break,
                        Err(e) => return Err(e),
                    }
                }
            }
            Ok((
                rank_results,
                link.stats(),
                tracer.into_records(),
                link.flow_log().clone(),
            ))
        })?;

    let mut values = vec![0.0; grid.len()];
    let mut ranks = Vec::with_capacity(n);
    let mut all_metrics: Vec<Metrics> = Vec::new();
    let mut max_compile_ns = 0u64;
    let mut max_apply_ns = 0u64;
    for (r, slot) in rank_results.into_iter().enumerate() {
        let shard = plan.shard(r);
        let (result, reresolved) = match slot {
            Some(mut result) => {
                if r == 0 {
                    // Rank 0's ledgers keep accruing through the gather, so
                    // its placeholder is patched here from the scope's
                    // final snapshot.
                    result.comm = own_comm;
                    result.spans = spans.clone();
                    result.flow_sends = own_flows.sends.clone();
                    result.flow_recvs = own_flows.recvs.clone();
                }
                (result, false)
            }
            None => {
                // Rank failure: recompile and apply this shard's rows
                // locally with the caller's field. Rows depend only on
                // their point, so this is bitwise what the rank would
                // have returned.
                let pts: Vec<Point2> = shard
                    .owned_points
                    .iter()
                    .map(|&i| grid.points()[i as usize])
                    .collect();
                let owners: Vec<u32> = shard
                    .owned_points
                    .iter()
                    .map(|&i| grid.owners()[i as usize])
                    .collect();
                let compile_start = Instant::now();
                let (local_plan, _g) = compile_local(
                    mesh,
                    pts,
                    owners,
                    degree,
                    k,
                    options.h_factor,
                    options.sm_patches,
                    options.simd,
                );
                let compile_ns = compile_start.elapsed().as_nanos() as u64;
                // The same interior/frontier row partition the rank would
                // have reported (the values are computed in one pass —
                // rows are independent dot products, so the counts are
                // bookkeeping, not a numerical choice).
                let interior_rows = (0..local_plan.rows())
                    .filter(|&row| {
                        local_plan
                            .row_cols(row)
                            .iter()
                            .all(|&c| plan.owner_of(c) == r as u32)
                    })
                    .count() as u64;
                let frontier_rows = local_plan.rows() as u64 - interior_rows;
                let solution = local_plan.apply_with(
                    field,
                    &ApplyOptions {
                        n_blocks: options.sm_patches,
                        parallel: false,
                        instrument: false,
                        simd: options.simd,
                    },
                );
                (
                    RankResult {
                        values: solution.values,
                        comm: CommStats::default(),
                        interior: interior_rows,
                        frontier: frontier_rows,
                        exchange_ns: 0,
                        eval_ns: solution.wall.as_nanos() as u64,
                        reduce_ns: compile_ns,
                        patches: solution.block_stats,
                        spans: Vec::new(),
                        flow_sends: Vec::new(),
                        flow_recvs: Vec::new(),
                    },
                    true,
                )
            }
        };
        if result.values.len() != shard.owned_points.len() {
            return Err(DistError::Protocol(format!(
                "rank {r} returned {} values for {} owned points",
                result.values.len(),
                shard.owned_points.len()
            )));
        }
        for (&global, &v) in shard.owned_points.iter().zip(&result.values) {
            values[global as usize] = v;
        }
        all_metrics.extend(result.patches.iter().map(|s| s.metrics));
        max_compile_ns = max_compile_ns.max(result.reduce_ns);
        max_apply_ns = max_apply_ns.max(result.eval_ns);
        ranks.push(RankReport {
            rank: r as u32,
            owned_elements: shard.owned_elements.len() as u64,
            halo_elements: shard.halo_elements.len() as u64,
            owned_points: shard.owned_points.len() as u64,
            comm: result.comm,
            interior: result.interior,
            frontier: result.frontier,
            exchange_ns: result.exchange_ns,
            eval_ns: result.eval_ns,
            reduce_ns: result.reduce_ns,
            reresolved,
            patches: result.patches,
            spans: result.spans,
            flows: FlowLog {
                sends: result.flow_sends,
                recvs: result.flow_recvs,
            },
        });
    }

    let metrics = Metrics::sum(&all_metrics);
    // The apply counters encode the sharded plan's shape exactly: one
    // solution write per row, `nnz * n_modes` coefficient loads.
    let nnz = metrics.elem_data_loads / nm as u64;
    let rows = metrics.solution_writes;
    let plan_stats = PlanStats {
        rows,
        nnz,
        n_modes: nm as u64,
        bytes: nnz * (4 + 8 * nm as u64) + (rows + 1) * 8,
        build_ms: max_compile_ns as f64 / 1e6,
        apply_ms: max_apply_ns as f64 / 1e6,
        delta: None,
    };

    let wall = start.elapsed();
    let simd = SimdRecord::measured(
        options.simd,
        options.simd.resolve(),
        metrics.flops,
        wall.as_secs_f64(),
    );
    Ok(DistPlanSolution {
        values,
        metrics,
        plan_stats,
        ranks,
        spans,
        wall,
        stencil_width,
        simd,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ustencil_dg::project_l2;
    use ustencil_mesh::{generate_mesh, MeshClass};

    fn fixture(n_tri: usize, p: usize, seed: u64) -> (TriMesh, DgField, ComputationGrid) {
        let mesh = generate_mesh(MeshClass::LowVariance, n_tri, seed);
        let field = project_l2(&mesh, p, |x, y| 0.2 + 0.7 * x + 0.3 * y - x * y, 2);
        let grid = ComputationGrid::quadrature_points(&mesh, p);
        (mesh, field, grid)
    }

    #[test]
    fn sharded_apply_is_bitwise_the_global_plan_apply() {
        let (mesh, field, grid) = fixture(300, 1, 17);
        let global = EvalPlan::compile(&mesh, &grid, 1, &CompileOptions::default());
        let reference = global.apply(&field);
        for ranks in [1usize, 2, 4] {
            let dist = run_plan_dist(&mesh, &field, &grid, &DistOptions::new(ranks)).unwrap();
            assert_eq!(
                dist.values, reference.values,
                "{ranks}-rank plan apply must be bitwise equal"
            );
            assert_eq!(
                dist.metrics.solution_writes,
                reference.metrics.solution_writes
            );
            assert_eq!(
                dist.metrics.elem_data_loads,
                reference.metrics.elem_data_loads
            );
            assert_eq!(dist.metrics.flops, reference.metrics.flops);
            assert_eq!(dist.plan_stats.rows, global.stats().rows);
            assert_eq!(dist.plan_stats.nnz, global.stats().nnz);
            if ranks > 1 {
                let comm = dist.total_comm();
                assert!(comm.bytes_sent > 0, "halo pull must move bytes");
            }
        }
    }

    #[test]
    fn record_carries_plan_shape_and_comms() {
        let (mesh, field, grid) = fixture(200, 1, 3);
        let dist =
            run_plan_dist(&mesh, &field, &grid, &DistOptions::new(2).instrument(true)).unwrap();
        let record = dist.to_run_record("test/plan@2ranks", mesh.n_triangles(), None);
        assert_eq!(record.scheme, SCHEME_LABEL);
        assert_eq!(record.comms.len(), 2);
        assert!(record.plan.is_some());
        let names: Vec<&str> = dist.spans.iter().map(|s| s.name.as_str()).collect();
        for phase in [
            "compile.plan",
            "exchange.post",
            "eval.interior",
            "exchange.drain",
            "eval.frontier",
            "exchange.flush",
            "reduce.gather",
        ] {
            assert!(names.contains(&phase), "missing span {phase}: {names:?}");
        }
        // Every rank ships spans and flow points; the join is complete.
        for r in &dist.ranks {
            let rank_names: Vec<&str> = r.spans.iter().map(|s| s.name.as_str()).collect();
            for phase in [
                "exchange.post",
                "eval.interior",
                "exchange.drain",
                "exchange.flush",
            ] {
                assert!(rank_names.contains(&phase), "rank {} lacks {phase}", r.rank);
            }
            assert!(!r.flows.sends.is_empty(), "rank {} logged no sends", r.rank);
            // Interior + frontier rows partition the rank's owned points
            // (one plan row per owned grid point).
            assert_eq!(r.interior + r.frontier, r.owned_points, "rank {}", r.rank);
        }
        let matched = dist.flow_match();
        assert!(!matched.pairs.is_empty());
        assert!(matched.unmatched_sends.is_empty());
        assert!(matched.unmatched_recvs.is_empty());
        let cp = record.critical_path.as_ref().expect("critical path");
        assert!(cp.total_ms > 0.0);
        assert_eq!(cp.utilization.len(), 2);
        for c in &record.comms {
            assert!(c.exposed_comms_ms >= 0.0);
            assert!(c.flow_sends > 0 && c.flow_recvs > 0, "rank {}", c.rank);
        }
        let mut timeline = Timeline::new();
        dist.add_to_timeline(&mut timeline, 1, "plan@2ranks");
        assert_eq!(timeline.tracks().len(), 2);
        assert_eq!(timeline.flows().len(), matched.pairs.len());
    }
}
