//! The message boundary: every byte that crosses a rank goes through here.
//!
//! A [`Transport`] endpoint can send a serialized [`Message`] to any rank
//! and receive messages addressed to itself. The trait is deliberately
//! minimal — unreliable, unordered delivery of opaque byte payloads — so
//! that reliability (acknowledgements, retries, deduplication) lives in one
//! place ([`ReliableLink`](crate::link::ReliableLink)) and transports stay
//! swappable: an in-process channel fabric for real-thread execution
//! ([`channel`](crate::channel)), a deterministic recording fabric for
//! tests and fault injection ([`record`](crate::record)).

use std::time::Duration;

/// What a message carries. The tag is part of the wire header; payload
/// layouts per tag are defined in [`wire`](crate::wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tag {
    /// Modal coefficients of a set of elements (halo push, or the response
    /// to a [`Tag::HaloRequest`]).
    HaloCoeffs,
    /// A request for the coefficients of named elements (sharded plan
    /// apply pulls exactly the columns its rows reference).
    HaloRequest,
    /// A rank's finished owned-point values plus its execution summary,
    /// sent to the coordinator.
    OwnedValues,
    /// Reliability-layer cumulative acknowledgement; `seq` names the next
    /// sequence number the receiver expects from this direction (every
    /// earlier seq is acknowledged).
    Ack,
    /// A coalesced frame carrying several logical messages for the same
    /// destination, each keeping its own tag and flow id (layout in
    /// [`wire`](crate::wire)). One window slot, one ack.
    Bundle,
}

impl Tag {
    /// Wire encoding of the tag.
    pub fn to_byte(self) -> u8 {
        match self {
            Tag::HaloCoeffs => 0,
            Tag::HaloRequest => 1,
            Tag::OwnedValues => 2,
            Tag::Ack => 3,
            Tag::Bundle => 4,
        }
    }

    /// Human-readable label (timeline flow names, diagnostics).
    pub fn label(self) -> &'static str {
        match self {
            Tag::HaloCoeffs => "halo.coeffs",
            Tag::HaloRequest => "halo.request",
            Tag::OwnedValues => "owned.values",
            Tag::Ack => "ack",
            Tag::Bundle => "bundle",
        }
    }

    /// Decodes a tag byte.
    pub fn from_byte(b: u8) -> Option<Tag> {
        match b {
            0 => Some(Tag::HaloCoeffs),
            1 => Some(Tag::HaloRequest),
            2 => Some(Tag::OwnedValues),
            3 => Some(Tag::Ack),
            4 => Some(Tag::Bundle),
            _ => None,
        }
    }
}

/// Bytes of the fixed message header (`from` + `to` + tag + `seq` +
/// `flow`): the per-message overhead charged to the wire alongside the
/// payload.
pub const HEADER_BYTES: u64 = 4 + 4 + 1 + 8 + 8;

/// One serialized message between ranks. Cross-rank data exists *only* in
/// this form — no shared references to field or solution data ever cross a
/// rank boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// Sending rank.
    pub from: u32,
    /// Destination rank.
    pub to: u32,
    /// Payload discriminator.
    pub tag: Tag,
    /// Per-sender sequence number (the reliability layer's identity for
    /// deduplication and acknowledgement).
    pub seq: u64,
    /// Per-sender monotone flow id, tagged once per *logical* payload
    /// message: retransmits share their original's flow id, and sub-
    /// messages inside a [`Tag::Bundle`] frame keep their own (the frame
    /// header carries the first part's). Cumulative [`Tag::Ack`] frames
    /// acknowledge sequence ranges, not messages, and carry flow 0.
    /// `(from, flow)` therefore names one send→recv arc in a trace
    /// timeline. Purely observational — reliability keys on `seq`.
    pub flow: u64,
    /// Serialized payload (see [`wire`](crate::wire)).
    pub payload: Vec<u8>,
}

impl Message {
    /// Total bytes this message occupies on the wire.
    pub fn wire_bytes(&self) -> u64 {
        HEADER_BYTES + self.payload.len() as u64
    }
}

/// Transport-level failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportError {
    /// The fabric (or the peer's endpoint) has shut down.
    Closed,
    /// No message arrived before the deadline.
    Timeout,
}

/// An unreliable, unordered point-to-point message fabric endpoint.
///
/// Implementations may drop, delay, or reorder messages (the fault-
/// injecting fabrics do so deliberately); they must never duplicate a
/// message on their own or corrupt a payload. One endpoint belongs to
/// exactly one rank and is used from that rank's thread only.
pub trait Transport: Send {
    /// This endpoint's rank.
    fn rank(&self) -> u32;

    /// Total ranks in the fabric.
    fn n_ranks(&self) -> u32;

    /// Enqueues a message for delivery. `Ok` means accepted by the fabric,
    /// not that the peer received it.
    fn send(&mut self, msg: Message) -> Result<(), TransportError>;

    /// Receives the next message addressed to this rank, waiting at most
    /// `timeout`.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Message, TransportError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_bytes_round_trip() {
        for tag in [
            Tag::HaloCoeffs,
            Tag::HaloRequest,
            Tag::OwnedValues,
            Tag::Ack,
            Tag::Bundle,
        ] {
            assert_eq!(Tag::from_byte(tag.to_byte()), Some(tag));
        }
        assert_eq!(Tag::from_byte(200), None);
    }

    #[test]
    fn wire_bytes_include_header() {
        let m = Message {
            from: 0,
            to: 1,
            tag: Tag::HaloCoeffs,
            seq: 9,
            flow: 9,
            payload: vec![0u8; 40],
        };
        assert_eq!(m.wire_bytes(), HEADER_BYTES + 40);
        // from + to + tag + seq + flow.
        assert_eq!(HEADER_BYTES, 4 + 4 + 1 + 8 + 8);
    }
}
