//! Deterministic fault injection for transport testing.
//!
//! A [`FaultPlan`] is a list of rules applied at send time. Decisions
//! depend only on message identity (sender, destination, tag) and how many
//! matching sends the rule has already seen — never on wall-clock timing —
//! so a test that injects faults observes the same drops and reorders on
//! every run.

use crate::transport::{Message, Tag};

/// What to do with a matching send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Silently discard the message (the sender's reliability layer will
    /// time out and retransmit).
    Drop,
    /// Park the message; it is delivered after the *next* message to the
    /// same destination goes through — an out-of-order delivery.
    Hold,
    /// Deliver the message twice, back to back — the wire-level duplicate
    /// a crossed retransmit produces (the receiver's sequence dedup must
    /// discard the copy).
    Duplicate,
}

/// One fault rule. `None` fields match anything; `first_n` bounds how many
/// matching sends the rule fires on (so a dropped flow eventually gets
/// through, exercising the retry path instead of livelocking it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRule {
    /// Match only messages from this rank.
    pub from: Option<u32>,
    /// Match only messages to this rank.
    pub to: Option<u32>,
    /// Match only messages with this tag.
    pub tag: Option<Tag>,
    /// Fire on the first `n` matching sends, then become inert. Use
    /// `u32::MAX` for a permanent fault (e.g. a failed rank).
    pub first_n: u32,
    /// The injected behaviour.
    pub action: FaultAction,
}

impl FaultRule {
    /// Drops the first `n` payload sends from `from` with `tag`.
    pub fn drop_first(from: u32, tag: Tag, n: u32) -> Self {
        Self {
            from: Some(from),
            to: None,
            tag: Some(tag),
            first_n: n,
            action: FaultAction::Drop,
        }
    }

    /// Holds (reorders) the first `n` sends from `from` to `to`.
    pub fn hold_first(from: u32, to: u32, n: u32) -> Self {
        Self {
            from: Some(from),
            to: Some(to),
            tag: None,
            first_n: n,
            action: FaultAction::Hold,
        }
    }

    /// Duplicates the first `n` payload sends from `from` with `tag`.
    pub fn dup_first(from: u32, tag: Tag, n: u32) -> Self {
        Self {
            from: Some(from),
            to: None,
            tag: Some(tag),
            first_n: n,
            action: FaultAction::Duplicate,
        }
    }

    fn matches(&self, msg: &Message) -> bool {
        self.from.is_none_or(|f| f == msg.from)
            && self.to.is_none_or(|t| t == msg.to)
            && self.tag.is_none_or(|t| t == msg.tag)
    }
}

/// An ordered set of fault rules with per-rule match counters.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    fired: Vec<u32>,
}

impl FaultPlan {
    /// A plan injecting no faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Appends a rule (builder style; rules are tried in insertion order,
    /// first match wins).
    pub fn with_rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self.fired.push(0);
        self
    }

    /// True when the plan has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Decides the fate of one send. `None` means deliver normally. Rules
    /// are tried in insertion order; the first matching rule with budget
    /// left fires, and a spent rule is inert (later rules get the send).
    pub fn decide(&mut self, msg: &Message) -> Option<FaultAction> {
        for (rule, fired) in self.rules.iter().zip(self.fired.iter_mut()) {
            if rule.matches(msg) && *fired < rule.first_n {
                *fired += 1;
                return Some(rule.action);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(from: u32, to: u32, tag: Tag) -> Message {
        Message {
            from,
            to,
            tag,
            seq: 0,
            flow: 0,
            payload: vec![],
        }
    }

    #[test]
    fn bounded_rule_expires() {
        let mut plan = FaultPlan::none().with_rule(FaultRule::drop_first(1, Tag::HaloCoeffs, 2));
        let m = msg(1, 0, Tag::HaloCoeffs);
        assert_eq!(plan.decide(&m), Some(FaultAction::Drop));
        assert_eq!(plan.decide(&m), Some(FaultAction::Drop));
        assert_eq!(plan.decide(&m), None, "rule must expire after first_n");
        // Non-matching traffic is never touched.
        assert_eq!(plan.decide(&msg(2, 0, Tag::HaloCoeffs)), None);
        assert_eq!(plan.decide(&msg(1, 0, Tag::Ack)), None);
    }

    #[test]
    fn first_matching_rule_wins() {
        let mut plan = FaultPlan::none()
            .with_rule(FaultRule::hold_first(0, 1, 1))
            .with_rule(FaultRule::drop_first(0, Tag::HaloCoeffs, u32::MAX));
        assert_eq!(
            plan.decide(&msg(0, 1, Tag::HaloCoeffs)),
            Some(FaultAction::Hold)
        );
        // Hold rule spent; the drop rule takes over.
        assert_eq!(
            plan.decide(&msg(0, 1, Tag::HaloCoeffs)),
            Some(FaultAction::Drop)
        );
    }
}
