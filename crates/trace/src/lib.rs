//! Observability primitives for the stencil evaluation pipeline.
//!
//! Everything here is dependency-free and designed to stay out of the hot
//! loop's way:
//!
//! * [`span`] — nested, scoped phase timers ([`Tracer`] / [`SpanGuard`])
//!   that compile down to nothing but a branch when disabled;
//! * [`hist`] — fixed-size, allocation-free log2-bucketed histograms
//!   ([`Hist64`]) for streaming distributions (candidates per query,
//!   sub-regions per element, quadrature points per integration);
//! * [`imbalance`] — per-patch load-balance summaries
//!   ([`ImbalanceSummary`]: max/mean, coefficient of variation, Gini);
//! * [`json`] — a hand-rolled JSON value type ([`Json`]) with writer *and*
//!   parser, so run reports round-trip without external crates;
//! * [`comm`] — per-endpoint communication counters ([`CommStats`]) for
//!   the rank-sharded runtime's serialized transports;
//! * [`timeline`] — multi-track Chrome trace-event timelines ([`Timeline`])
//!   with send→recv flow arrows, loadable in Perfetto;
//! * [`critical`] — timeline analysis: exposed communication time, the
//!   cross-rank critical path, and per-rank utilization.
//!
//! The evaluation engine (`ustencil-core`) threads these through its
//! per-patch runs and surfaces them as a `RunReport`; the `reproduce`
//! harness serializes that to the `BENCH_*.json` artifacts CI tracks.

#![deny(missing_docs)]

pub mod comm;
pub mod critical;
pub mod hist;
pub mod imbalance;
pub mod json;
pub mod span;
pub mod timeline;

pub use comm::CommStats;
pub use critical::{critical_path, exposed_comms_ns, CriticalPath, PhaseCost};
pub use hist::Hist64;
pub use imbalance::ImbalanceSummary;
pub use json::Json;
pub use span::{sort_records, SpanGuard, SpanRecord, Tracer};
pub use timeline::{FlowArrow, Timeline, Track};
