//! Timeline analysis: exposed communication time, the cross-rank critical
//! path, and per-rank utilization.
//!
//! Works on the per-rank [`SpanRecord`] streams a shared-epoch run records
//! (see [`Tracer::with_epoch`](crate::Tracer::with_epoch)). Span names
//! classify by prefix, matching the runtime's phase vocabulary:
//!
//! * **communication** — `exchange.*` (halo push/pull and the waits inside);
//! * **computation** — `eval.*`, `apply.*`, `compile.*` (local work that
//!   could hide communication);
//! * everything else (`build.*`, `reduce.*`) is coordination and counts
//!   toward neither.
//!
//! **Exposed** communication is the part of a rank's communication
//! intervals not covered by any of its computation intervals — the wait
//! the run actually paid, as opposed to traffic hidden behind local work.
//! The dist runtime's interior-first schedule (post → interior eval →
//! drain → frontier eval → flush) exists to shrink exactly this number:
//! this module is the instrument that shows how much of the exchange the
//! overlap actually hid.

use crate::span::SpanRecord;

/// True for span names that count as communication.
pub fn is_comm_span(name: &str) -> bool {
    name.starts_with("exchange.")
}

/// True for span names that count as computation.
pub fn is_compute_span(name: &str) -> bool {
    name.starts_with("eval.") || name.starts_with("apply.") || name.starts_with("compile.")
}

/// Merges possibly-overlapping `(start, end)` intervals into a disjoint,
/// sorted union.
fn union(mut intervals: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    intervals.retain(|&(s, e)| e > s);
    intervals.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(intervals.len());
    for (s, e) in intervals {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

fn total_len(intervals: &[(u64, u64)]) -> u64 {
    intervals.iter().map(|&(s, e)| e - s).sum()
}

/// Total overlap between two disjoint sorted interval sets.
fn intersection_len(a: &[(u64, u64)], b: &[(u64, u64)]) -> u64 {
    let (mut i, mut j, mut len) = (0, 0, 0u64);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if hi > lo {
            len += hi - lo;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    len
}

fn spans_of(spans: &[SpanRecord], pred: fn(&str) -> bool) -> Vec<(u64, u64)> {
    union(
        spans
            .iter()
            .filter(|s| pred(&s.name))
            .map(|s| (s.start_ns, s.start_ns.saturating_add(s.duration_ns)))
            .collect(),
    )
}

/// Nanoseconds of one rank's communication intervals not covered by any of
/// its computation intervals — the communication the run actually waited
/// on. Zero when the rank recorded no communication spans.
pub fn exposed_comms_ns(spans: &[SpanRecord]) -> u64 {
    let comm = spans_of(spans, is_comm_span);
    let compute = spans_of(spans, is_compute_span);
    total_len(&comm) - intersection_len(&comm, &compute)
}

/// One phase of the critical path: the bottleneck rank and how long it
/// held the phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseCost {
    /// Canonical phase name (`"build"`, `"exchange"`, `"eval"`,
    /// `"reduce"`).
    pub name: String,
    /// The rank whose phase time was the longest.
    pub rank: u64,
    /// That rank's time in the phase, nanoseconds.
    pub duration_ns: u64,
}

/// The cross-rank critical path of a phased run, plus per-rank
/// utilization.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Sum of the bottleneck phase durations: a lower bound on the wall
    /// time of any schedule that keeps the phase barriers.
    pub total_ns: u64,
    /// The phases in canonical order (phases nobody recorded are
    /// omitted).
    pub phases: Vec<PhaseCost>,
    /// Per-rank utilization: computation time divided by the rank's
    /// active window (first span start to last span end); 0 for ranks
    /// with no spans.
    pub utilization: Vec<f64>,
}

/// A predicate over span names selecting one phase group's spans.
type SpanPred = fn(&str) -> bool;

/// The canonical phase groups, in barrier order. `build.*` and `reduce.*`
/// live on the coordinator; `exchange.*` and the compute prefixes on every
/// rank.
const PHASE_GROUPS: [(&str, SpanPred); 4] = [
    ("build", |n| n.starts_with("build.")),
    ("exchange", is_comm_span),
    ("eval", is_compute_span),
    ("reduce", |n| n.starts_with("reduce.")),
];

/// Computes the critical path through
/// `build → exchange → eval → reduce` over per-rank span streams sharing
/// one epoch (`rank_spans[r]` is rank `r`'s records). Each phase is
/// charged to the rank that spent the most time in it; the total is the
/// sum of those bottlenecks.
pub fn critical_path(rank_spans: &[Vec<SpanRecord>]) -> CriticalPath {
    let mut phases = Vec::new();
    let mut total_ns = 0u64;
    for (phase, pred) in PHASE_GROUPS {
        let mut bottleneck: Option<(u64, u64)> = None; // (rank, ns)
        for (rank, spans) in rank_spans.iter().enumerate() {
            let ns = total_len(&spans_of(spans, pred));
            if ns > 0 && bottleneck.is_none_or(|(_, best)| ns > best) {
                bottleneck = Some((rank as u64, ns));
            }
        }
        if let Some((rank, duration_ns)) = bottleneck {
            total_ns += duration_ns;
            phases.push(PhaseCost {
                name: phase.to_string(),
                rank,
                duration_ns,
            });
        }
    }
    let utilization = rank_spans
        .iter()
        .map(|spans| {
            let lo = spans.iter().map(|s| s.start_ns).min();
            let hi = spans
                .iter()
                .map(|s| s.start_ns.saturating_add(s.duration_ns))
                .max();
            match (lo, hi) {
                (Some(lo), Some(hi)) if hi > lo => {
                    total_len(&spans_of(spans, is_compute_span)) as f64 / (hi - lo) as f64
                }
                _ => 0.0,
            }
        })
        .collect();
    CriticalPath {
        total_ns,
        phases,
        utilization,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, start_ns: u64, duration_ns: u64) -> SpanRecord {
        SpanRecord {
            name: name.into(),
            depth: 0,
            start_ns,
            duration_ns,
        }
    }

    #[test]
    fn fully_serial_exchange_is_fully_exposed() {
        let spans = vec![
            span("exchange.halo", 100, 400),
            span("eval.per_element", 500, 1_000),
        ];
        assert_eq!(exposed_comms_ns(&spans), 400);
    }

    #[test]
    fn overlapped_communication_is_not_exposed() {
        // Exchange 100..900, compute covers 300..700: 400 ns hidden.
        let spans = vec![
            span("exchange.halo", 100, 800),
            span("eval.per_element", 300, 400),
        ];
        assert_eq!(exposed_comms_ns(&spans), 400);
        // Full cover → nothing exposed.
        let covered = vec![span("exchange.halo", 100, 200), span("apply.spmv", 50, 500)];
        assert_eq!(exposed_comms_ns(&covered), 0);
        // No comm spans → zero.
        assert_eq!(exposed_comms_ns(&[span("eval.x", 0, 10)]), 0);
    }

    #[test]
    fn overlapping_comm_spans_are_counted_once() {
        let spans = vec![
            span("exchange.halo", 100, 400),
            span("exchange.halo", 300, 400),
        ];
        // Union is 100..700 = 600 ns, not 800.
        assert_eq!(exposed_comms_ns(&spans), 600);
    }

    #[test]
    fn critical_path_picks_the_bottleneck_rank_per_phase() {
        let rank0 = vec![
            span("build.shard_plan", 0, 1_000),
            span("exchange.halo", 1_000, 300),
            span("eval.per_element", 1_300, 2_000),
            span("reduce.gather", 3_300, 500),
        ];
        let rank1 = vec![
            span("exchange.halo", 1_000, 700),
            span("eval.per_element", 1_700, 1_500),
        ];
        let cp = critical_path(&[rank0, rank1]);
        let view: Vec<(&str, u64, u64)> = cp
            .phases
            .iter()
            .map(|p| (p.name.as_str(), p.rank, p.duration_ns))
            .collect();
        assert_eq!(
            view,
            vec![
                ("build", 0, 1_000),
                ("exchange", 1, 700),
                ("eval", 0, 2_000),
                ("reduce", 0, 500),
            ]
        );
        assert_eq!(cp.total_ns, 4_200);
        assert_eq!(cp.utilization.len(), 2);
        // Rank 0: 2_000 compute over a 3_800 window.
        assert!((cp.utilization[0] - 2_000.0 / 3_800.0).abs() < 1e-12);
        // Rank 1: 1_500 compute over a 2_200 window.
        assert!((cp.utilization[1] - 1_500.0 / 2_200.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_unknown_phases_are_omitted() {
        let cp = critical_path(&[vec![span("eval.per_element", 0, 100)], vec![]]);
        assert_eq!(cp.phases.len(), 1);
        assert_eq!(cp.phases[0].name, "eval");
        assert_eq!(cp.total_ns, 100);
        assert_eq!(cp.utilization[1], 0.0);
        let none = critical_path(&[]);
        assert_eq!(none.total_ns, 0);
        assert!(none.phases.is_empty());
    }
}
