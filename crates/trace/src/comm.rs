//! Communication counters for rank-sharded execution.
//!
//! The distributed runtime (`ustencil-dist`) moves every cross-rank byte
//! through a serialized transport; [`CommStats`] is the ledger each
//! endpoint keeps while doing so. The counters are plain saturating sums —
//! cheap enough to maintain unconditionally — and merge across ranks the
//! same way the engine's `Metrics` work counters do, so run reports can
//! show both total traffic and per-rank breakdowns.

/// Per-endpoint communication counters.
///
/// `bytes_*` count *wire* bytes (header + payload) of data messages and
/// acknowledgements alike; `retransmits` counts payload messages sent more
/// than once by the reliability layer; `timeouts` counts receive deadlines
/// that expired without a matching acknowledgement.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Messages handed to the transport (including retransmissions and
    /// acknowledgements).
    pub msgs_sent: u64,
    /// Wire bytes handed to the transport.
    pub bytes_sent: u64,
    /// Messages received from the transport (including duplicates later
    /// discarded by the reliability layer).
    pub msgs_recv: u64,
    /// Wire bytes received from the transport.
    pub bytes_recv: u64,
    /// Payload messages sent more than once (retry after a lost or late
    /// acknowledgement).
    pub retransmits: u64,
    /// Acknowledgement waits that expired and triggered a retry.
    pub timeouts: u64,
    /// Payload messages received more than once and discarded by the
    /// reliability layer's dedup (the receive side of a retransmit).
    pub dup_payloads: u64,
    /// Logical messages that travelled inside a coalesced bundle frame
    /// instead of their own wire message.
    pub coalesced: u64,
}

impl CommStats {
    /// Adds another endpoint's counters into this one (saturating).
    pub fn merge(&mut self, other: &CommStats) {
        self.msgs_sent = self.msgs_sent.saturating_add(other.msgs_sent);
        self.bytes_sent = self.bytes_sent.saturating_add(other.bytes_sent);
        self.msgs_recv = self.msgs_recv.saturating_add(other.msgs_recv);
        self.bytes_recv = self.bytes_recv.saturating_add(other.bytes_recv);
        self.retransmits = self.retransmits.saturating_add(other.retransmits);
        self.timeouts = self.timeouts.saturating_add(other.timeouts);
        self.dup_payloads = self.dup_payloads.saturating_add(other.dup_payloads);
        self.coalesced = self.coalesced.saturating_add(other.coalesced);
    }

    /// Sums an iterator of counters.
    pub fn sum<'a, I: IntoIterator<Item = &'a CommStats>>(stats: I) -> CommStats {
        let mut out = CommStats::default();
        for s in stats {
            out.merge(s);
        }
        out
    }

    /// Records one sent message of `bytes` wire bytes.
    #[inline]
    pub fn record_send(&mut self, bytes: u64) {
        self.msgs_sent = self.msgs_sent.saturating_add(1);
        self.bytes_sent = self.bytes_sent.saturating_add(bytes);
    }

    /// Records one received message of `bytes` wire bytes.
    #[inline]
    pub fn record_recv(&mut self, bytes: u64) {
        self.msgs_recv = self.msgs_recv.saturating_add(1);
        self.bytes_recv = self.bytes_recv.saturating_add(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_merge_add_up() {
        let mut a = CommStats::default();
        a.record_send(100);
        a.record_send(50);
        a.record_recv(25);
        assert_eq!(a.msgs_sent, 2);
        assert_eq!(a.bytes_sent, 150);
        assert_eq!(a.msgs_recv, 1);
        assert_eq!(a.bytes_recv, 25);

        let mut b = CommStats {
            retransmits: 3,
            timeouts: 1,
            dup_payloads: 2,
            coalesced: 4,
            ..Default::default()
        };
        b.merge(&a);
        assert_eq!(b.msgs_sent, 2);
        assert_eq!(b.bytes_sent, 150);
        assert_eq!(b.retransmits, 3);
        assert_eq!(b.dup_payloads, 2);
        assert_eq!(b.coalesced, 4);

        let total = CommStats::sum([&a, &b]);
        assert_eq!(total.msgs_sent, 4);
        assert_eq!(total.bytes_sent, 300);
        assert_eq!(total.timeouts, 1);
    }

    #[test]
    fn merge_saturates() {
        let mut a = CommStats {
            bytes_sent: u64::MAX - 1,
            ..Default::default()
        };
        a.merge(&CommStats {
            bytes_sent: 10,
            ..Default::default()
        });
        assert_eq!(a.bytes_sent, u64::MAX);
    }
}
