//! Load-imbalance summaries over per-patch costs.
//!
//! Overlapped tiling (paper, Section 4) only scales when patch costs are
//! even; these statistics quantify how even they are. The headline numbers
//! are `max/mean` (the idealized parallel-efficiency loss: a device is as
//! slow as its busiest patch chain), the coefficient of variation, and the
//! Gini coefficient Luporini-style tiling analyses report.

/// Distribution summary of one per-patch cost vector (times, elements, ...).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImbalanceSummary {
    /// Number of patches summarized.
    pub n: usize,
    /// Smallest patch cost.
    pub min: f64,
    /// Largest patch cost.
    pub max: f64,
    /// Mean patch cost.
    pub mean: f64,
    /// `max / mean` — 1.0 is perfectly balanced.
    pub max_over_mean: f64,
    /// Coefficient of variation (population stddev / mean).
    pub cov: f64,
    /// Gini coefficient in `[0, 1)` — 0 is perfectly balanced.
    pub gini: f64,
}

impl ImbalanceSummary {
    /// Summarizes a cost vector. Empty or all-zero inputs yield the
    /// degenerate balanced summary (ratios 1/0 where division is
    /// undefined).
    pub fn from_values(values: &[f64]) -> Self {
        let n = values.len();
        if n == 0 {
            return Self {
                n: 0,
                min: 0.0,
                max: 0.0,
                mean: 0.0,
                max_over_mean: 1.0,
                cov: 0.0,
                gini: 0.0,
            };
        }
        let sum: f64 = values.iter().sum();
        let mean = sum / n as f64;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        let (max_over_mean, cov, gini) = if mean > 0.0 {
            let mut sorted = values.to_vec();
            sorted.sort_by(|a, b| a.total_cmp(b));
            // Gini via the sorted form:
            // G = (2 * sum_i (i+1) x_(i)) / (n * sum) - (n + 1) / n.
            let weighted: f64 = sorted
                .iter()
                .enumerate()
                .map(|(i, &x)| (i + 1) as f64 * x)
                .sum();
            let g = (2.0 * weighted) / (n as f64 * sum) - (n as f64 + 1.0) / n as f64;
            (max / mean, var.sqrt() / mean, g.max(0.0))
        } else {
            (1.0, 0.0, 0.0)
        };
        Self {
            n,
            min,
            max,
            mean,
            max_over_mean,
            cov,
            gini,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_costs_score_perfect() {
        let s = ImbalanceSummary::from_values(&[2.0; 8]);
        assert_eq!(s.n, 8);
        assert_eq!(s.max_over_mean, 1.0);
        assert_eq!(s.cov, 0.0);
        assert!(s.gini.abs() < 1e-12);
    }

    #[test]
    fn one_hot_costs_score_maximal() {
        // One patch does all the work: max/mean = n, Gini -> (n-1)/n.
        let mut v = vec![0.0; 10];
        v[3] = 5.0;
        let s = ImbalanceSummary::from_values(&v);
        assert!((s.max_over_mean - 10.0).abs() < 1e-12);
        assert!((s.gini - 0.9).abs() < 1e-12);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn known_gini_value() {
        // {1, 3}: mean 2, |1-3| pairs -> G = 2 / (2 * 2^2 * ... ) = 0.25.
        let s = ImbalanceSummary::from_values(&[1.0, 3.0]);
        assert!((s.gini - 0.25).abs() < 1e-12);
        assert!((s.max_over_mean - 1.5).abs() < 1e-12);
        assert!((s.cov - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        let empty = ImbalanceSummary::from_values(&[]);
        assert_eq!(empty.n, 0);
        assert_eq!(empty.max_over_mean, 1.0);
        let zeros = ImbalanceSummary::from_values(&[0.0, 0.0]);
        assert_eq!(zeros.max_over_mean, 1.0);
        assert_eq!(zeros.gini, 0.0);
    }
}
