//! Chrome trace-event timelines: span records on named tracks, with
//! send→recv flow arrows, serialized as Perfetto-loadable JSON.
//!
//! A [`Timeline`] is a deliberately small model of the trace-event format
//! (<https://ui.perfetto.dev> loads it directly): *processes* group
//! *tracks* (one per rank or worker), tracks carry [`SpanRecord`]s as
//! complete (`"ph": "X"`) events, and [`FlowArrow`]s render as `"s"`/`"f"`
//! flow-event pairs — the rank-to-rank arcs a halo exchange draws.
//!
//! Emission is deterministic: processes sort by pid, tracks by
//! `(pid, tid)`, spans by `(start_ns, name)` within their track, and flow
//! arrows by id (ids are assigned in insertion order). Two runs that
//! record the same spans and flows produce byte-identical JSON.
//!
//! Timestamps are emitted in microseconds (the trace-event unit) as exact
//! `ns / 1000` fractions; [`Timeline::from_trace_events`] recovers the
//! original nanosecond integers, so a timeline round-trips losslessly.

use crate::json::Json;
use crate::span::{sort_records, SpanRecord};

/// One track of a timeline: a `(pid, tid)` lane holding span events.
#[derive(Debug, Clone, PartialEq)]
pub struct Track {
    /// Process the track belongs to.
    pub pid: u64,
    /// Track id within the process (e.g. the rank).
    pub tid: u64,
    /// Display name (e.g. `"rank 2"`).
    pub name: String,
    /// The track's spans, sorted by `(start_ns, name)` on emission.
    pub spans: Vec<SpanRecord>,
}

/// One send→recv arc between two tracks.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowArrow {
    /// Trace-wide arrow id (assigned by [`Timeline::add_flow`]).
    pub id: u64,
    /// Display name (e.g. `"halo 1→3"`).
    pub name: String,
    /// Source `(pid, tid)`.
    pub from: (u64, u64),
    /// Destination `(pid, tid)`.
    pub to: (u64, u64),
    /// Send instant, nanoseconds from the timeline epoch.
    pub send_ns: u64,
    /// Receive instant, nanoseconds from the timeline epoch.
    pub recv_ns: u64,
}

/// A multi-track timeline, convertible to (and from) Chrome trace-event
/// JSON.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    processes: Vec<(u64, String)>,
    tracks: Vec<Track>,
    flows: Vec<FlowArrow>,
}

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Names a process (one per run/configuration). Re-naming an existing
    /// pid replaces the name.
    pub fn add_process(&mut self, pid: u64, name: &str) {
        if let Some(p) = self.processes.iter_mut().find(|(id, _)| *id == pid) {
            p.1 = name.to_string();
        } else {
            self.processes.push((pid, name.to_string()));
        }
    }

    /// Adds a track of spans under `(pid, tid)`.
    pub fn add_track(&mut self, pid: u64, tid: u64, name: &str, spans: Vec<SpanRecord>) {
        self.tracks.push(Track {
            pid,
            tid,
            name: name.to_string(),
            spans,
        });
    }

    /// Adds a flow arrow, assigning the next id in insertion order.
    /// Returns the assigned id.
    pub fn add_flow(
        &mut self,
        name: &str,
        from: (u64, u64),
        to: (u64, u64),
        send_ns: u64,
        recv_ns: u64,
    ) -> u64 {
        let id = self.flows.len() as u64;
        self.flows.push(FlowArrow {
            id,
            name: name.to_string(),
            from,
            to,
            send_ns,
            recv_ns,
        });
        id
    }

    /// The tracks added so far.
    pub fn tracks(&self) -> &[Track] {
        &self.tracks
    }

    /// The flow arrows added so far.
    pub fn flows(&self) -> &[FlowArrow] {
        &self.flows
    }

    /// The named processes added so far.
    pub fn processes(&self) -> &[(u64, String)] {
        &self.processes
    }

    /// Serializes to a trace-event JSON document:
    /// `{"displayTimeUnit": "ms", "traceEvents": [...]}` with metadata
    /// events first, then complete events, then flow pairs — each group in
    /// its canonical sort order.
    pub fn to_trace_events(&self) -> Json {
        let mut events: Vec<Json> = Vec::new();

        let mut processes = self.processes.clone();
        processes.sort_by_key(|p| p.0);
        for (pid, name) in &processes {
            events.push(
                Json::object()
                    .set("name", "process_name")
                    .set("ph", "M")
                    .set("pid", *pid)
                    .set("args", Json::object().set("name", name.as_str())),
            );
        }

        let mut tracks = self.tracks.clone();
        tracks.sort_by_key(|t| (t.pid, t.tid));
        for track in &tracks {
            events.push(
                Json::object()
                    .set("name", "thread_name")
                    .set("ph", "M")
                    .set("pid", track.pid)
                    .set("tid", track.tid)
                    .set("args", Json::object().set("name", track.name.as_str())),
            );
        }
        for track in &mut tracks {
            sort_records(&mut track.spans);
            for span in &track.spans {
                events.push(
                    Json::object()
                        .set("name", span.name.as_str())
                        .set("cat", "phase")
                        .set("ph", "X")
                        .set("ts", span.start_ns as f64 / 1000.0)
                        .set("dur", span.duration_ns as f64 / 1000.0)
                        .set("pid", track.pid)
                        .set("tid", track.tid)
                        .set("args", Json::object().set("depth", span.depth)),
                );
            }
        }

        let mut flows = self.flows.clone();
        flows.sort_by_key(|f| f.id);
        for flow in &flows {
            events.push(
                Json::object()
                    .set("name", flow.name.as_str())
                    .set("cat", "comm")
                    .set("ph", "s")
                    .set("id", flow.id)
                    .set("ts", flow.send_ns as f64 / 1000.0)
                    .set("pid", flow.from.0)
                    .set("tid", flow.from.1),
            );
            events.push(
                Json::object()
                    .set("name", flow.name.as_str())
                    .set("cat", "comm")
                    .set("ph", "f")
                    .set("bp", "e")
                    .set("id", flow.id)
                    .set("ts", flow.recv_ns as f64 / 1000.0)
                    .set("pid", flow.to.0)
                    .set("tid", flow.to.1),
            );
        }

        Json::object()
            .set("displayTimeUnit", "ms")
            .set("traceEvents", events)
    }

    /// Serializes to pretty-printed trace-event JSON text.
    pub fn to_pretty_string(&self) -> String {
        self.to_trace_events().to_pretty_string()
    }

    /// Parses a trace-event document produced by
    /// [`to_trace_events`](Self::to_trace_events) back into a timeline.
    /// Exact inverse for timelines in canonical order (the unit-tested
    /// round trip).
    pub fn from_trace_events(doc: &Json) -> Result<Timeline, String> {
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .ok_or("missing 'traceEvents' array")?;
        let mut timeline = Timeline::new();
        let mut open_flows: Vec<(u64, FlowArrow)> = Vec::new();
        for ev in events {
            let name = ev
                .get("name")
                .and_then(Json::as_str)
                .ok_or("event without 'name'")?
                .to_string();
            let ph = ev
                .get("ph")
                .and_then(Json::as_str)
                .ok_or("event without 'ph'")?;
            let pid = |ev: &Json| {
                ev.get("pid")
                    .and_then(Json::as_u64)
                    .ok_or("event without 'pid'")
            };
            let tid = |ev: &Json| {
                ev.get("tid")
                    .and_then(Json::as_u64)
                    .ok_or("event without 'tid'")
            };
            let ts_ns = |ev: &Json| -> Result<u64, &'static str> {
                let ts = ev.get("ts").and_then(Json::as_f64).ok_or("bad 'ts'")?;
                Ok((ts * 1000.0).round() as u64)
            };
            match ph {
                "M" => {
                    let display = ev
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Json::as_str)
                        .ok_or("metadata event without args.name")?;
                    match name.as_str() {
                        "process_name" => timeline.add_process(pid(ev)?, display),
                        "thread_name" => {
                            timeline.add_track(pid(ev)?, tid(ev)?, display, Vec::new())
                        }
                        other => return Err(format!("unknown metadata event '{other}'")),
                    }
                }
                "X" => {
                    let (p, t) = (pid(ev)?, tid(ev)?);
                    let span = SpanRecord {
                        name,
                        depth: ev
                            .get("args")
                            .and_then(|a| a.get("depth"))
                            .and_then(Json::as_u64)
                            .ok_or("complete event without args.depth")?
                            as u32,
                        start_ns: ts_ns(ev)?,
                        duration_ns: (ev
                            .get("dur")
                            .and_then(Json::as_f64)
                            .ok_or("complete event without 'dur'")?
                            * 1000.0)
                            .round() as u64,
                    };
                    let track = timeline
                        .tracks
                        .iter_mut()
                        .find(|tr| tr.pid == p && tr.tid == t)
                        .ok_or_else(|| format!("span on undeclared track ({p}, {t})"))?;
                    track.spans.push(span);
                }
                "s" => {
                    let id = ev
                        .get("id")
                        .and_then(Json::as_u64)
                        .ok_or("flow without id")?;
                    open_flows.push((
                        id,
                        FlowArrow {
                            id,
                            name,
                            from: (pid(ev)?, tid(ev)?),
                            to: (0, 0),
                            send_ns: ts_ns(ev)?,
                            recv_ns: 0,
                        },
                    ));
                }
                "f" => {
                    let id = ev
                        .get("id")
                        .and_then(Json::as_u64)
                        .ok_or("flow without id")?;
                    let slot = open_flows
                        .iter_mut()
                        .find(|(open_id, _)| *open_id == id)
                        .ok_or_else(|| format!("flow end {id} without a start"))?;
                    slot.1.to = (pid(ev)?, tid(ev)?);
                    slot.1.recv_ns = ts_ns(ev)?;
                    timeline.flows.push(slot.1.clone());
                    let keep = id;
                    open_flows.retain(|(open_id, _)| *open_id != keep);
                }
                other => return Err(format!("unknown event phase '{other}'")),
            }
        }
        if let Some((id, _)) = open_flows.first() {
            return Err(format!("flow start {id} without an end"));
        }
        Ok(timeline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, start_ns: u64, duration_ns: u64) -> SpanRecord {
        SpanRecord {
            name: name.into(),
            depth: 0,
            start_ns,
            duration_ns,
        }
    }

    fn sample() -> Timeline {
        let mut t = Timeline::new();
        t.add_process(1, "fig14 dist@2ranks");
        t.add_track(
            1,
            0,
            "rank 0",
            vec![
                span("exchange.halo", 1_000, 4_500),
                span("eval.per_element", 5_500, 20_000),
            ],
        );
        t.add_track(
            1,
            1,
            "rank 1",
            vec![
                span("exchange.halo", 1_200, 4_100),
                span("eval.per_element", 5_400, 19_000),
            ],
        );
        t.add_flow("halo 0→1", (1, 0), (1, 1), 1_100, 1_900);
        t.add_flow("halo 1→0", (1, 1), (1, 0), 1_300, 2_100);
        t
    }

    #[test]
    fn trace_event_json_round_trips() {
        let timeline = sample();
        let doc = timeline.to_trace_events();
        let text = doc.to_pretty_string();
        let reparsed = Json::parse(&text).expect("emitted JSON parses");
        let restored = Timeline::from_trace_events(&reparsed).expect("restores");
        assert_eq!(restored, timeline);
        // Re-emission is byte-identical: canonical order is stable.
        assert_eq!(restored.to_pretty_string(), text);
    }

    #[test]
    fn emission_is_deterministic_regardless_of_insertion_order() {
        let a = sample();
        // Same content, tracks and processes added in reverse.
        let mut b = Timeline::new();
        b.add_track(
            1,
            1,
            "rank 1",
            vec![
                span("eval.per_element", 5_400, 19_000),
                span("exchange.halo", 1_200, 4_100),
            ],
        );
        b.add_track(
            1,
            0,
            "rank 0",
            vec![
                span("eval.per_element", 5_500, 20_000),
                span("exchange.halo", 1_000, 4_500),
            ],
        );
        b.add_process(1, "fig14 dist@2ranks");
        b.add_flow("halo 0→1", (1, 0), (1, 1), 1_100, 1_900);
        b.add_flow("halo 1→0", (1, 1), (1, 0), 1_300, 2_100);
        assert_eq!(a.to_pretty_string(), b.to_pretty_string());
    }

    #[test]
    fn events_carry_the_trace_event_shape() {
        let doc = sample().to_trace_events();
        assert_eq!(
            doc.get("displayTimeUnit").and_then(Json::as_str),
            Some("ms")
        );
        let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        // 1 process + 2 thread metadata + 4 spans + 2 flows × 2 halves.
        assert_eq!(events.len(), 1 + 2 + 4 + 4);
        let phases: Vec<&str> = events
            .iter()
            .map(|e| e.get("ph").and_then(Json::as_str).unwrap())
            .collect();
        assert_eq!(
            phases,
            vec!["M", "M", "M", "X", "X", "X", "X", "s", "f", "s", "f"]
        );
        // Timestamps are microseconds: 1_000 ns = 1 µs.
        let first_span = &events[3];
        assert_eq!(first_span.get("ts").and_then(Json::as_f64), Some(1.0));
        assert_eq!(first_span.get("dur").and_then(Json::as_f64), Some(4.5));
        // The flow end carries the binding point marker Perfetto expects.
        assert_eq!(events[8].get("bp").and_then(Json::as_str), Some("e"));
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(Timeline::from_trace_events(&Json::object()).is_err());
        let orphan_flow = Json::object().set(
            "traceEvents",
            vec![Json::object()
                .set("name", "x")
                .set("cat", "comm")
                .set("ph", "s")
                .set("id", 0u64)
                .set("ts", 1.0)
                .set("pid", 0u64)
                .set("tid", 0u64)],
        );
        assert!(Timeline::from_trace_events(&orphan_flow).is_err());
    }
}
