//! Fixed-size streaming histograms with logarithmic (base-2) buckets.
//!
//! [`Hist64`] is `Copy`, lives on the stack, and records in a handful of
//! integer instructions — no allocation, no floating point — so per-patch
//! workers can own one privately and merge at join points, exactly like the
//! work counters in `ustencil-core::Metrics`.

/// Number of buckets: one for zero plus one per power of two.
pub const N_BUCKETS: usize = 64;

/// A log2-bucketed histogram of `u64` samples.
///
/// Bucket 0 holds exact zeros; bucket `b >= 1` holds values in
/// `[2^(b-1), 2^b - 1]` (the last bucket absorbs everything above).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hist64 {
    buckets: [u64; N_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Hist64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Hist64 {
    /// An empty histogram.
    pub const fn new() -> Self {
        Self {
            buckets: [0; N_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// The bucket index a value falls into.
    #[inline]
    pub const fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            let b = 64 - v.leading_zeros() as usize;
            if b > N_BUCKETS - 1 {
                N_BUCKETS - 1
            } else {
                b
            }
        }
    }

    /// Inclusive value range covered by bucket `b`.
    pub const fn bucket_bounds(b: usize) -> (u64, u64) {
        if b == 0 {
            (0, 0)
        } else if b >= N_BUCKETS - 1 {
            (1u64 << (N_BUCKETS - 2), u64::MAX)
        } else {
            (1u64 << (b - 1), (1u64 << b) - 1)
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        if v > self.max {
            self.max = v;
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Hist64) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Raw count in bucket `b`.
    pub fn bucket_count(&self, b: usize) -> u64 {
        self.buckets[b]
    }

    /// Iterates `(bucket index, count)` over non-empty buckets.
    pub fn iter_nonempty(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (b, c))
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`q` in `[0, 1]`); 0 when empty. Exact to bucket resolution.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Never report beyond the observed maximum.
                return Self::bucket_bounds(b).1.min(self.max);
            }
        }
        self.max
    }

    /// Restores a histogram from its serialized parts. Bucket indices out
    /// of range are rejected.
    pub fn from_parts(sparse_buckets: &[(usize, u64)], sum: u64, max: u64) -> Result<Self, String> {
        let mut h = Self::new();
        for &(b, c) in sparse_buckets {
            if b >= N_BUCKETS {
                return Err(format!("histogram bucket index {b} out of range"));
            }
            h.buckets[b] = c;
            h.count += c;
        }
        h.sum = sum;
        h.max = max;
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        // Zero gets its own bucket; powers of two open new buckets.
        assert_eq!(Hist64::bucket_of(0), 0);
        assert_eq!(Hist64::bucket_of(1), 1);
        assert_eq!(Hist64::bucket_of(2), 2);
        assert_eq!(Hist64::bucket_of(3), 2);
        assert_eq!(Hist64::bucket_of(4), 3);
        assert_eq!(Hist64::bucket_of(7), 3);
        assert_eq!(Hist64::bucket_of(8), 4);
        assert_eq!(Hist64::bucket_of((1 << 20) - 1), 20);
        assert_eq!(Hist64::bucket_of(1 << 20), 21);
        assert_eq!(Hist64::bucket_of(u64::MAX), N_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_partition_the_domain() {
        assert_eq!(Hist64::bucket_bounds(0), (0, 0));
        assert_eq!(Hist64::bucket_bounds(1), (1, 1));
        assert_eq!(Hist64::bucket_bounds(2), (2, 3));
        assert_eq!(Hist64::bucket_bounds(5), (16, 31));
        // Consecutive buckets tile the integers with no gaps or overlaps.
        for b in 0..N_BUCKETS - 1 {
            let (_, hi) = Hist64::bucket_bounds(b);
            let (lo_next, _) = Hist64::bucket_bounds(b + 1);
            assert_eq!(hi + 1, lo_next, "gap between buckets {b} and {}", b + 1);
        }
        assert_eq!(Hist64::bucket_bounds(N_BUCKETS - 1).1, u64::MAX);
        // Every value lands in the bucket whose bounds contain it.
        for v in [0u64, 1, 2, 3, 4, 5, 63, 64, 65, 1023, 1024, u64::MAX] {
            let (lo, hi) = Hist64::bucket_bounds(Hist64::bucket_of(v));
            assert!(lo <= v && v <= hi, "value {v} escapes its bucket");
        }
    }

    #[test]
    fn record_and_stats() {
        let mut h = Hist64::new();
        for v in [0u64, 1, 1, 2, 5, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 109);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 109.0 / 6.0).abs() < 1e-12);
        assert_eq!(h.bucket_count(0), 1); // the zero
        assert_eq!(h.bucket_count(1), 2); // the ones
        assert_eq!(h.bucket_count(2), 1); // the two
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = Hist64::new();
        let mut b = Hist64::new();
        let mut combined = Hist64::new();
        for v in 0..50u64 {
            a.record(v * 3);
            combined.record(v * 3);
        }
        for v in 0..30u64 {
            b.record(v * 7 + 1);
            combined.record(v * 7 + 1);
        }
        a.merge(&b);
        assert_eq!(a, combined);
    }

    #[test]
    fn quantiles_bracket_the_distribution() {
        let mut h = Hist64::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.quantile_upper_bound(1.0), 1000);
        let p50 = h.quantile_upper_bound(0.5);
        // Bucket resolution: p50 must be within the bucket containing 500.
        assert!((500..=1023).contains(&p50), "p50 = {p50}");
        assert_eq!(Hist64::new().quantile_upper_bound(0.5), 0);
    }

    #[test]
    fn quantile_edge_cases() {
        // Empty histogram: every quantile is 0.
        let empty = Hist64::new();
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(empty.quantile_upper_bound(q), 0);
        }
        // q = 0.0 targets the first sample (rank at least 1, never 0).
        let mut h = Hist64::new();
        for v in [1u64, 100, 10_000] {
            h.record(v);
        }
        assert_eq!(h.quantile_upper_bound(0.0), 1);
        // q = 1.0 reports exactly the observed maximum, clamped below the
        // bucket's upper bound.
        assert_eq!(h.quantile_upper_bound(1.0), 10_000);
        // Out-of-range q values clamp instead of panicking.
        assert_eq!(h.quantile_upper_bound(-0.5), h.quantile_upper_bound(0.0));
        assert_eq!(h.quantile_upper_bound(1.5), h.quantile_upper_bound(1.0));
    }

    #[test]
    fn single_bucket_quantiles_report_the_max() {
        // All samples in one bucket (5, 6, 7 share bucket 3 = [4, 7]):
        // every quantile must report the observed max, not the bucket
        // bound.
        let mut h = Hist64::new();
        for v in [5u64, 6, 7, 5] {
            h.record(v);
        }
        for q in [0.0, 0.25, 0.5, 1.0] {
            assert_eq!(h.quantile_upper_bound(q), 7, "q = {q}");
        }
        // A single zero sample lives in the zero bucket.
        let mut z = Hist64::new();
        z.record(0);
        assert_eq!(z.quantile_upper_bound(0.5), 0);
        assert_eq!(z.quantile_upper_bound(1.0), 0);
        assert_eq!(z.count(), 1);
    }

    #[test]
    fn merge_then_quantile_matches_combined_recording() {
        let mut a = Hist64::new();
        let mut b = Hist64::new();
        let mut combined = Hist64::new();
        for v in 0..200u64 {
            a.record(v * 5);
            combined.record(v * 5);
        }
        for v in 0..77u64 {
            b.record(v * v + 3);
            combined.record(v * v + 3);
        }
        a.merge(&b);
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(
                a.quantile_upper_bound(q),
                combined.quantile_upper_bound(q),
                "q = {q}"
            );
        }
        // Merging an empty histogram changes nothing.
        let before = a;
        a.merge(&Hist64::new());
        assert_eq!(a, before);
    }

    #[test]
    fn from_parts_round_trips() {
        let mut h = Hist64::new();
        for v in [3u64, 9, 9, 200, 0] {
            h.record(v);
        }
        let sparse: Vec<(usize, u64)> = h.iter_nonempty().collect();
        let restored = Hist64::from_parts(&sparse, h.sum(), h.max()).unwrap();
        assert_eq!(restored, h);
        assert!(Hist64::from_parts(&[(N_BUCKETS, 1)], 0, 0).is_err());
    }
}
