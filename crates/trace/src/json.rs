//! A dependency-free JSON value: builder, pretty writer, and parser.
//!
//! Run reports must round-trip (emit, re-parse, compare) without external
//! crates, so this module implements the small subset of JSON the reports
//! need: objects preserve insertion order, numbers are `f64` (written as
//! integers when they are exact integers), and parsing is strict recursive
//! descent with byte offsets in error messages.

use std::fmt::Write as _;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers written without a fractional part).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on write.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, for chained [`Json::set`] building.
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// Inserts/updates a key (builder style).
    ///
    /// # Panics
    /// Panics when `self` is not an object.
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(pairs) => {
                let value = value.into();
                if let Some(slot) = pairs.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    pairs.push((key.to_string(), value));
                }
                self
            }
            _ => panic!("Json::set on a non-object"),
        }
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The number as `u64`, if it is a non-negative exact integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => Some(*x as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation and a trailing newline.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_number(out, *x),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (rejects trailing garbage).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}
impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Num(x as f64)
    }
}
impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Num(x as f64)
    }
}
impl From<u32> for Json {
    fn from(x: u32) -> Json {
        Json::Num(x as f64)
    }
}
impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no Inf/NaN; clamp to null (never produced by reports).
        out.push_str("null");
    } else if x.fract() == 0.0 && x.abs() < 2f64.powi(53) {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogate pairs are not needed by report content;
                        // map unpaired surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume the whole run up to the next quote or escape in
                // one slice. The delimiters are ASCII, so they can never
                // split a multi-byte UTF-8 scalar, and validating the run
                // once keeps parsing linear even for megabyte strings
                // (per-character re-validation of the tail made loading
                // serialized evaluation plans quadratic).
                let start = *pos;
                while *pos < bytes.len() && bytes[*pos] != b'"' && bytes[*pos] != b'\\' {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors() {
        let doc = Json::object()
            .set("name", "per-element")
            .set("count", 42u64)
            .set("ratio", 1.5)
            .set("ok", true)
            .set("items", vec![Json::Num(1.0), Json::Null]);
        assert_eq!(doc.get("name").unwrap().as_str(), Some("per-element"));
        assert_eq!(doc.get("count").unwrap().as_u64(), Some(42));
        assert_eq!(doc.get("ratio").unwrap().as_f64(), Some(1.5));
        assert_eq!(doc.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("items").unwrap().as_array().unwrap().len(), 2);
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn round_trip_nested_document() {
        let doc = Json::object()
            .set("exhibit", "table1")
            .set(
                "runs",
                vec![Json::object()
                    .set("scheme", "per-point")
                    .set("metrics", Json::object().set("quad_evals", 123_456_789u64))
                    .set("times_ms", vec![Json::Num(0.5), Json::Num(1.25)])],
            )
            .set("empty_arr", Vec::<Json>::new())
            .set("empty_obj", Json::object())
            .set("escaped", "line\nbreak \"quoted\" back\\slash\ttab");
        let text = doc.to_pretty_string();
        let reparsed = Json::parse(&text).expect("round trip parse");
        assert_eq!(reparsed, doc);
    }

    #[test]
    fn integers_written_exactly() {
        let text = Json::Num(9_007_199_254_740_992.0).to_pretty_string();
        // 2^53 exceeds the exact-integer window; falls back to float form.
        assert!(Json::parse(&text).is_ok());
        let small = Json::Num(1_000_000.0).to_pretty_string();
        assert_eq!(small.trim(), "1000000");
        let neg = Json::Num(-42.0).to_pretty_string();
        assert_eq!(neg.trim(), "-42");
    }

    #[test]
    fn parses_standard_forms() {
        let doc = Json::parse(
            r#"{"a": [1, 2.5, -3e2, true, false, null], "b": {"nested": "x"}, "c": "A"}"#,
        )
        .unwrap();
        let arr = doc.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[2].as_f64(), Some(-300.0));
        assert_eq!(
            doc.get("b").unwrap().get("nested").unwrap().as_str(),
            Some("x")
        );
        assert_eq!(doc.get("c").unwrap().as_str(), Some("A"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1, 2",
            "{\"a\" 1}",
            "tru",
            "{\"a\": 1} extra",
            "\"unterminated",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed: {bad:?}");
        }
    }

    #[test]
    fn set_replaces_existing_keys() {
        let doc = Json::object().set("k", 1u64).set("k", 2u64);
        assert_eq!(doc.get("k").unwrap().as_u64(), Some(2));
        match &doc {
            Json::Obj(pairs) => assert_eq!(pairs.len(), 1),
            _ => unreachable!(),
        }
    }
}
