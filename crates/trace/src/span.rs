//! Nested, scoped phase timers.
//!
//! A [`Tracer`] hands out [`SpanGuard`]s; dropping a guard closes its span.
//! Records keep their opening order (parents precede children) and carry a
//! nesting depth, so a renderer can print the phase tree without
//! reconstructing it. A disabled tracer costs one branch per span and
//! allocates nothing.
//!
//! Tracers are single-threaded by design: the engine opens phase spans on
//! the coordinating thread only, while per-patch timings travel through the
//! per-patch stats merged at join points (`BlockStats` in `ustencil-core`).

use std::cell::RefCell;
use std::time::Instant;

/// One closed (or still-open) span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Phase name, dot-separated by convention (e.g. `"build.hash_grid"`).
    pub name: String,
    /// Nesting depth: 0 for top-level phases.
    pub depth: u32,
    /// Start offset from the tracer's epoch, in nanoseconds.
    pub start_ns: u64,
    /// Span duration in nanoseconds (0 while still open).
    pub duration_ns: u64,
}

struct TracerState {
    records: Vec<SpanRecord>,
    depth: u32,
}

/// Collects nested spans relative to one epoch.
pub struct Tracer {
    enabled: bool,
    epoch: Instant,
    state: RefCell<TracerState>,
}

impl Tracer {
    /// A tracer that records (`enabled = true`) or ignores everything.
    pub fn new(enabled: bool) -> Self {
        Self::with_epoch(enabled, Instant::now())
    }

    /// A tracer whose span offsets are measured from a caller-supplied
    /// epoch. Several tracers sharing one epoch (e.g. one per rank thread
    /// in the distributed runtime) produce records on a common time axis,
    /// so their spans can be merged into one multi-track timeline.
    pub fn with_epoch(enabled: bool, epoch: Instant) -> Self {
        Self {
            enabled,
            epoch,
            state: RefCell::new(TracerState {
                records: Vec::new(),
                depth: 0,
            }),
        }
    }

    /// A tracer that records nothing at (almost) no cost.
    pub fn disabled() -> Self {
        Self::new(false)
    }

    /// The instant span offsets are measured from.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Whether spans are being recorded.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a span; it closes when the returned guard drops.
    #[must_use = "the span closes when the guard drops"]
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        if !self.enabled {
            return SpanGuard {
                tracer: None,
                index: 0,
            };
        }
        let start_ns = self.epoch.elapsed().as_nanos() as u64;
        let mut st = self.state.borrow_mut();
        let index = st.records.len();
        let depth = st.depth;
        st.records.push(SpanRecord {
            name: name.to_string(),
            depth,
            start_ns,
            duration_ns: 0,
        });
        st.depth += 1;
        SpanGuard {
            tracer: Some(self),
            index,
        }
    }

    /// Snapshot of the recorded spans, sorted by `(start_ns, name)`.
    ///
    /// The sort makes the record stream deterministic for serialization:
    /// opening order and start order coincide on a single thread, but spans
    /// merged from several tracers (or drained in worker-completion order)
    /// would otherwise leak scheduling into report bytes. The sort is
    /// stable, so full ties keep opening order.
    pub fn records(&self) -> Vec<SpanRecord> {
        let mut records = self.state.borrow().records.clone();
        sort_records(&mut records);
        records
    }

    /// Consumes the tracer, returning the recorded spans sorted by
    /// `(start_ns, name)` (see [`records`](Self::records)).
    pub fn into_records(self) -> Vec<SpanRecord> {
        let mut records = self.state.into_inner().records;
        sort_records(&mut records);
        records
    }
}

/// Sorts span records into the canonical `(start_ns, name)` emission order.
pub fn sort_records(records: &mut [SpanRecord]) {
    records.sort_by(|a, b| {
        a.start_ns
            .cmp(&b.start_ns)
            .then_with(|| a.name.cmp(&b.name))
    });
}

/// Closes its span on drop.
pub struct SpanGuard<'a> {
    tracer: Option<&'a Tracer>,
    index: usize,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(t) = self.tracer {
            let end_ns = t.epoch.elapsed().as_nanos() as u64;
            let mut st = t.state.borrow_mut();
            let rec = &mut st.records[self.index];
            rec.duration_ns = end_ns.saturating_sub(rec.start_ns);
            st.depth = st.depth.saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_depths_and_order() {
        let t = Tracer::new(true);
        {
            let _outer = t.span("outer");
            {
                let _inner = t.span("inner");
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            let _sibling = t.span("sibling");
        }
        let records = t.into_records();
        let view: Vec<(&str, u32)> = records.iter().map(|r| (r.name.as_str(), r.depth)).collect();
        assert_eq!(view, vec![("outer", 0), ("inner", 1), ("sibling", 1)]);
        assert!(records.iter().all(|r| r.duration_ns > 0));
        // The outer span covers the inner one.
        assert!(records[0].duration_ns >= records[1].duration_ns);
        assert!(records[0].start_ns <= records[1].start_ns);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        {
            let _a = t.span("a");
            let _b = t.span("b");
        }
        assert!(!t.enabled());
        assert!(t.into_records().is_empty());
    }

    #[test]
    fn records_are_sorted_by_start_then_name() {
        let mut records = vec![
            SpanRecord {
                name: "b".into(),
                depth: 0,
                start_ns: 50,
                duration_ns: 1,
            },
            SpanRecord {
                name: "a".into(),
                depth: 0,
                start_ns: 50,
                duration_ns: 2,
            },
            SpanRecord {
                name: "z".into(),
                depth: 0,
                start_ns: 10,
                duration_ns: 3,
            },
        ];
        sort_records(&mut records);
        let names: Vec<&str> = records.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["z", "a", "b"]);
    }

    #[test]
    fn shared_epoch_puts_tracers_on_one_axis() {
        let epoch = Instant::now();
        let a = Tracer::with_epoch(true, epoch);
        let b = Tracer::with_epoch(true, epoch);
        drop(a.span("first"));
        std::thread::sleep(std::time::Duration::from_micros(200));
        drop(b.span("second"));
        let ra = a.into_records();
        let rb = b.into_records();
        assert!(
            rb[0].start_ns > ra[0].start_ns,
            "a later span on a sibling tracer must have a later offset"
        );
    }

    #[test]
    fn sequential_spans_do_not_nest() {
        let t = Tracer::new(true);
        drop(t.span("first"));
        drop(t.span("second"));
        let records = t.into_records();
        assert_eq!(records[0].depth, 0);
        assert_eq!(records[1].depth, 0);
    }
}
