//! Nested, scoped phase timers.
//!
//! A [`Tracer`] hands out [`SpanGuard`]s; dropping a guard closes its span.
//! Records keep their opening order (parents precede children) and carry a
//! nesting depth, so a renderer can print the phase tree without
//! reconstructing it. A disabled tracer costs one branch per span and
//! allocates nothing.
//!
//! Tracers are single-threaded by design: the engine opens phase spans on
//! the coordinating thread only, while per-patch timings travel through the
//! per-patch stats merged at join points (`BlockStats` in `ustencil-core`).

use std::cell::RefCell;
use std::time::Instant;

/// One closed (or still-open) span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Phase name, dot-separated by convention (e.g. `"build.hash_grid"`).
    pub name: String,
    /// Nesting depth: 0 for top-level phases.
    pub depth: u32,
    /// Start offset from the tracer's epoch, in nanoseconds.
    pub start_ns: u64,
    /// Span duration in nanoseconds (0 while still open).
    pub duration_ns: u64,
}

struct TracerState {
    records: Vec<SpanRecord>,
    depth: u32,
}

/// Collects nested spans relative to one epoch.
pub struct Tracer {
    enabled: bool,
    epoch: Instant,
    state: RefCell<TracerState>,
}

impl Tracer {
    /// A tracer that records (`enabled = true`) or ignores everything.
    pub fn new(enabled: bool) -> Self {
        Self {
            enabled,
            epoch: Instant::now(),
            state: RefCell::new(TracerState {
                records: Vec::new(),
                depth: 0,
            }),
        }
    }

    /// A tracer that records nothing at (almost) no cost.
    pub fn disabled() -> Self {
        Self::new(false)
    }

    /// Whether spans are being recorded.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a span; it closes when the returned guard drops.
    #[must_use = "the span closes when the guard drops"]
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        if !self.enabled {
            return SpanGuard {
                tracer: None,
                index: 0,
            };
        }
        let start_ns = self.epoch.elapsed().as_nanos() as u64;
        let mut st = self.state.borrow_mut();
        let index = st.records.len();
        let depth = st.depth;
        st.records.push(SpanRecord {
            name: name.to_string(),
            depth,
            start_ns,
            duration_ns: 0,
        });
        st.depth += 1;
        SpanGuard {
            tracer: Some(self),
            index,
        }
    }

    /// Snapshot of the recorded spans, in opening order.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.state.borrow().records.clone()
    }

    /// Consumes the tracer, returning the recorded spans.
    pub fn into_records(self) -> Vec<SpanRecord> {
        self.state.into_inner().records
    }
}

/// Closes its span on drop.
pub struct SpanGuard<'a> {
    tracer: Option<&'a Tracer>,
    index: usize,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(t) = self.tracer {
            let end_ns = t.epoch.elapsed().as_nanos() as u64;
            let mut st = t.state.borrow_mut();
            let rec = &mut st.records[self.index];
            rec.duration_ns = end_ns.saturating_sub(rec.start_ns);
            st.depth = st.depth.saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_depths_and_order() {
        let t = Tracer::new(true);
        {
            let _outer = t.span("outer");
            {
                let _inner = t.span("inner");
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            let _sibling = t.span("sibling");
        }
        let records = t.into_records();
        let view: Vec<(&str, u32)> = records.iter().map(|r| (r.name.as_str(), r.depth)).collect();
        assert_eq!(view, vec![("outer", 0), ("inner", 1), ("sibling", 1)]);
        assert!(records.iter().all(|r| r.duration_ns > 0));
        // The outer span covers the inner one.
        assert!(records[0].duration_ns >= records[1].duration_ns);
        assert!(records[0].start_ns <= records[1].start_ns);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        {
            let _a = t.span("a");
            let _b = t.span("b");
        }
        assert!(!t.enabled());
        assert!(t.into_records().is_empty());
    }

    #[test]
    fn sequential_spans_do_not_nest() {
        let t = Tracer::new(true);
        drop(t.span("first"));
        drop(t.span("second"));
        let records = t.into_records();
        assert_eq!(records[0].depth, 0);
        assert_eq!(records[1].depth, 0);
    }
}
