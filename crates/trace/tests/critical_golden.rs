//! Golden test of the critical-path analysis: a recorded 4-rank run (the
//! fixture JSON) must analyze to exactly the hand-computed bottlenecks,
//! exposed-comms totals, and utilization ratios.

use ustencil_trace::{critical_path, exposed_comms_ns, Json, SpanRecord};

const FIXTURE: &str = include_str!("fixtures/critical_4rank.json");

fn spans_from(json: &Json) -> Vec<SpanRecord> {
    json.as_array()
        .expect("rank spans are an array")
        .iter()
        .map(|s| SpanRecord {
            name: s.get("name").and_then(Json::as_str).unwrap().to_string(),
            depth: s.get("depth").and_then(Json::as_u64).unwrap() as u32,
            start_ns: s.get("start_ns").and_then(Json::as_u64).unwrap(),
            duration_ns: s.get("duration_ns").and_then(Json::as_u64).unwrap(),
        })
        .collect()
}

fn u64s_from(json: &Json) -> Vec<u64> {
    json.as_array()
        .expect("array of integers")
        .iter()
        .map(|v| v.as_u64().unwrap())
        .collect()
}

#[test]
fn recorded_four_rank_run_matches_the_golden_analysis() {
    let doc = Json::parse(FIXTURE).expect("fixture parses");
    let rank_spans: Vec<Vec<SpanRecord>> = doc
        .get("ranks")
        .and_then(Json::as_array)
        .expect("ranks array")
        .iter()
        .map(spans_from)
        .collect();
    assert_eq!(rank_spans.len(), 4);
    let expected = doc.get("expected").expect("expected block");

    let cp = critical_path(&rank_spans);
    assert_eq!(
        cp.total_ns,
        expected.get("total_ns").and_then(Json::as_u64).unwrap()
    );

    let want_phases: Vec<(String, u64, u64)> = expected
        .get("phases")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|p| {
            (
                p.get("name").and_then(Json::as_str).unwrap().to_string(),
                p.get("rank").and_then(Json::as_u64).unwrap(),
                p.get("duration_ns").and_then(Json::as_u64).unwrap(),
            )
        })
        .collect();
    let got_phases: Vec<(String, u64, u64)> = cp
        .phases
        .iter()
        .map(|p| (p.name.clone(), p.rank, p.duration_ns))
        .collect();
    assert_eq!(got_phases, want_phases);

    let exposed = u64s_from(expected.get("exposed_ns").unwrap());
    for (r, want) in exposed.iter().enumerate() {
        assert_eq!(
            exposed_comms_ns(&rank_spans[r]),
            *want,
            "rank {r} exposed comms"
        );
    }

    // Utilization is compute over the rank's active window; the fixture
    // pins both operands so the expected ratio is exact.
    let compute = u64s_from(expected.get("compute_ns").unwrap());
    let window = u64s_from(expected.get("window_ns").unwrap());
    assert_eq!(cp.utilization.len(), 4);
    for r in 0..4 {
        let want = compute[r] as f64 / window[r] as f64;
        assert!(
            (cp.utilization[r] - want).abs() < 1e-12,
            "rank {r}: utilization {} != {want}",
            cp.utilization[r]
        );
    }
}
