//! The [`PostProcessor`] front door: one configuration surface for every
//! scheme / tiling / parallelism combination the paper evaluates.

use crate::device::{simulate, DeviceConfig, SimReport};
use crate::grid_points::ComputationGrid;
use crate::integrate::IntegrationCtx;
use crate::layout::Layout;
use crate::metrics::Metrics;
use crate::per_element::{reduce_patches, PerElementRun};
use crate::per_point::PerPointRun;
use crate::probe::BlockStats;
use crate::report::SimdRecord;
use crate::simd::SimdPolicy;
use std::time::{Duration, Instant};
use ustencil_dg::DgField;
use ustencil_mesh::{partition_recursive_bisection, TriMesh};
use ustencil_quadrature::TriangleRule;
use ustencil_siac::Stencil2d;
use ustencil_spatial::{
    hilbert_order_elements, hilbert_order_points, Boundary, PointGrid, TriangleGrid,
};
use ustencil_trace::{SpanRecord, Tracer};

/// Which evaluation strategy to run (Section 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Gather: iterate grid points, search elements (Algorithm 2).
    PerPoint,
    /// Scatter: iterate elements, search grid points, tile into patches
    /// with private partial solutions (Algorithm 3 + Section 4).
    PerElement,
}

impl Scheme {
    /// Every scheme, in declaration order. New variants must be added here;
    /// [`from_label`](Self::from_label) is derived from this list, so the
    /// label round-trip can never drift variant by variant.
    pub const ALL: [Scheme; 2] = [Scheme::PerPoint, Scheme::PerElement];

    /// Canonical label for this scheme — used both for display by the
    /// benchmark harness and as the `"scheme"` value in `RunReport` JSON,
    /// so the two never drift apart.
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::PerPoint => "per-point",
            Scheme::PerElement => "per-element",
        }
    }

    /// The scheme a [`label`](Self::label) string names. Implemented as a
    /// search over [`Scheme::ALL`] so it is the exact inverse of
    /// [`label`](Self::label) by construction.
    pub fn from_label(label: &str) -> Option<Scheme> {
        Self::ALL.into_iter().find(|s| s.label() == label)
    }
}

/// Snapshot of a [`PostProcessor`]'s configuration, resolved enough for
/// other crates (e.g. the evaluation-plan compiler in `ustencil-plan`) to
/// reproduce the exact kernel/quadrature setup `run` would use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessorSettings {
    /// The configured scheme.
    pub scheme: Scheme,
    /// Explicit kernel smoothness override, when one was set.
    pub smoothness: Option<usize>,
    /// Kernel width factor (`h = h_factor * s`).
    pub h_factor: f64,
    /// Concurrent blocks.
    pub n_blocks: usize,
    /// Whether thread parallelism is on.
    pub parallel: bool,
    /// Whether observability is on.
    pub instrument: bool,
    /// Traversal/storage order for points and elements.
    pub layout: Layout,
    /// SIMD dispatch policy of the evaluation kernels.
    pub simd: SimdPolicy,
}

/// Configured SIAC post-processor.
///
/// ```
/// use ustencil_core::prelude::*;
/// use ustencil_dg::project_l2;
/// use ustencil_mesh::{generate_mesh, MeshClass};
///
/// let mesh = generate_mesh(MeshClass::LowVariance, 150, 42);
/// let field = project_l2(&mesh, 1, |x, y| 1.0 + x - y, 0);
/// let grid = ComputationGrid::quadrature_points(&mesh, 1);
/// let solution = PostProcessor::new(Scheme::PerElement)
///     .blocks(4)
///     .h_factor(0.25) // small demo mesh: keep the stencil inside the domain
///     .run(&mesh, &field, &grid);
/// assert_eq!(solution.values.len(), grid.len());
/// // The kernel reproduces linears: interior values equal the input field.
/// let hw = solution.stencil_width / 2.0;
/// for (i, p) in grid.points().iter().enumerate() {
///     if p.x > hw && p.x < 1.0 - hw && p.y > hw && p.y < 1.0 - hw {
///         assert!((solution.values[i] - (1.0 + p.x - p.y)).abs() < 1e-8);
///     }
/// }
/// ```
#[derive(Debug, Clone)]
pub struct PostProcessor {
    scheme: Scheme,
    smoothness: Option<usize>,
    h_factor: f64,
    n_blocks: usize,
    parallel: bool,
    instrument: bool,
    layout: Layout,
    simd: SimdPolicy,
}

impl PostProcessor {
    /// A post-processor with the paper's defaults: kernel smoothness equal
    /// to the field degree, `h` equal to the longest mesh edge, 16 blocks
    /// (one per M2090 SM), parallel execution on, instrumentation off.
    pub fn new(scheme: Scheme) -> Self {
        Self {
            scheme,
            smoothness: None,
            h_factor: 1.0,
            n_blocks: 16,
            parallel: true,
            instrument: false,
            layout: Layout::Natural,
            simd: SimdPolicy::Auto,
        }
    }

    /// Overrides the kernel smoothness `k` (default: the field degree `p`).
    pub fn smoothness(mut self, k: usize) -> Self {
        self.smoothness = Some(k);
        self
    }

    /// Scales the kernel width: `h = h_factor * s` (default 1.0).
    ///
    /// # Panics
    /// Panics for non-positive factors.
    pub fn h_factor(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "h factor must be positive");
        self.h_factor = factor;
        self
    }

    /// Sets the number of concurrent blocks: point blocks for per-point,
    /// mesh patches for per-element (`N_GPU x N_SM` in the paper's
    /// multi-device runs).
    ///
    /// # Panics
    /// Panics for zero blocks.
    pub fn blocks(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one block");
        self.n_blocks = n;
        self
    }

    /// Enables or disables thread parallelism (rayon).
    pub fn parallel(mut self, on: bool) -> Self {
        self.parallel = on;
        self
    }

    /// Enables observability: phase spans on the coordinating thread and
    /// per-block distribution probes in the workers (default off). Off,
    /// the hot loops pay nothing beyond their plain counter increments.
    pub fn instrument(mut self, on: bool) -> Self {
        self.instrument = on;
        self
    }

    /// Sets the traversal/storage order (default [`Layout::Natural`]).
    ///
    /// Hilbert layouts renumber points and elements internally for memory
    /// locality; results are still returned in the caller's original point
    /// order and agree with natural order to ≤1e-12 (floating-point
    /// summation order changes; nothing else does).
    pub fn layout(mut self, layout: Layout) -> Self {
        self.layout = layout;
        self
    }

    /// Sets the SIMD dispatch policy of the evaluation kernels (default
    /// [`SimdPolicy::Auto`]: the widest ISA this host supports).
    ///
    /// [`SimdPolicy::Scalar`] runs the bit-exact pre-SIMD loops; vector
    /// ISAs agree with scalar to ≤1e-12 (the reductions are reassociated
    /// and FMA-contracted). For a fixed policy on a fixed CPU, results are
    /// deterministic.
    pub fn simd(mut self, policy: SimdPolicy) -> Self {
        self.simd = policy;
        self
    }

    /// The configured scheme.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The full configuration snapshot (used by plan compilers and other
    /// front ends that must mirror `run`'s kernel/quadrature choices).
    pub fn settings(&self) -> ProcessorSettings {
        ProcessorSettings {
            scheme: self.scheme,
            smoothness: self.smoothness,
            h_factor: self.h_factor,
            n_blocks: self.n_blocks,
            parallel: self.parallel,
            instrument: self.instrument,
            layout: self.layout,
            simd: self.simd,
        }
    }

    /// Runs the post-processor over `grid`'s evaluation points.
    ///
    /// # Panics
    /// Panics when the stencil is wider than the periodic domain (the
    /// `(3k+1) h <= 1` requirement) or the field does not match the mesh.
    pub fn run(&self, mesh: &TriMesh, field: &DgField, grid: &ComputationGrid) -> Solution {
        assert_eq!(
            field.n_elements(),
            mesh.n_triangles(),
            "field does not match mesh"
        );
        let tracer = Tracer::new(self.instrument);
        if !self.layout.reorders() {
            return self.run_with(mesh, field, grid, &tracer, None);
        }
        // Hilbert layouts: renumber elements and points along the curve,
        // evaluate in the permuted frame, and scatter the values back so
        // callers still see their original point order. The permuted run
        // computes the same convolution pair-for-pair; only floating-point
        // accumulation order moves, so results agree with natural order to
        // ≤1e-12.
        let (pmesh, pfield, pgrid, point_perm) = {
            let _span = tracer.span("build.hilbert_order");
            let elem_perm = hilbert_order_elements(mesh);
            let point_perm = hilbert_order_points(grid.points());
            let pmesh = mesh.reordered_elements(elem_perm.forward());
            let pfield = field.reordered_elements(elem_perm.forward());
            let pgrid = grid.reordered(point_perm.forward(), elem_perm.inverse());
            (pmesh, pfield, pgrid, point_perm)
        };
        self.run_with(&pmesh, &pfield, &pgrid, &tracer, Some(&point_perm))
    }

    fn run_with(
        &self,
        mesh: &TriMesh,
        field: &DgField,
        grid: &ComputationGrid,
        tracer: &Tracer,
        unpermute: Option<&ustencil_spatial::Permutation>,
    ) -> Solution {
        let p = field.degree();
        let k = self.smoothness.unwrap_or(p);
        let s = mesh.max_edge_length();
        let h = self.h_factor * s;
        let (stencil, rule) = {
            let _span = tracer.span("setup.kernel");
            let stencil = Stencil2d::symmetric(k, h);
            assert!(
                stencil.width() <= 1.0 + 1e-12,
                "stencil width {} exceeds the periodic unit domain; \
                 use a larger mesh or a smaller h_factor",
                stencil.width()
            );
            let rule = TriangleRule::with_strength(IntegrationCtx::required_strength(k, p));
            (stencil, rule)
        };

        let simd_isa = self.simd.resolve();
        let start = Instant::now();
        let (values, block_stats) = match self.scheme {
            Scheme::PerPoint => {
                let tri_grid = {
                    let _span = tracer.span("build.tri_grid");
                    TriangleGrid::build(mesh, Boundary::Periodic)
                };
                let run = PerPointRun {
                    mesh,
                    field,
                    grid,
                    stencil: &stencil,
                    tri_grid: &tri_grid,
                    rule: &rule,
                    simd: simd_isa,
                };
                let _span = tracer.span("eval.per_point");
                run.run_instrumented(self.n_blocks, self.parallel, self.instrument)
            }
            Scheme::PerElement => {
                let point_grid = {
                    let _span = tracer.span("build.point_grid");
                    PointGrid::build_half_edge(grid.points(), s, Boundary::Clamped)
                };
                let partition = {
                    let _span = tracer.span("build.partition");
                    partition_recursive_bisection(mesh, self.n_blocks)
                };
                let run = PerElementRun {
                    mesh,
                    field,
                    grid,
                    stencil: &stencil,
                    point_grid: &point_grid,
                    rule: &rule,
                    simd: simd_isa,
                };
                let (results, stats) = {
                    let _span = tracer.span("eval.per_element");
                    run.run_patches(&partition, self.parallel, self.instrument)
                };
                let values = {
                    let _span = tracer.span("reduce.patches");
                    reduce_patches(&results, grid.len())
                };
                (values, stats)
            }
        };
        let values = match unpermute {
            None => values,
            Some(perm) => {
                let _span = tracer.span("reduce.unpermute");
                perm.scatter(&values)
            }
        };
        let wall = start.elapsed();
        let block_metrics = BlockStats::metrics_of(&block_stats);
        let metrics = Metrics::sum(&block_metrics);
        let simd = SimdRecord::measured(self.simd, simd_isa, metrics.flops, wall.as_secs_f64());

        Solution {
            values,
            metrics,
            block_metrics,
            block_stats,
            spans: tracer.records(),
            wall,
            stencil_width: stencil.width(),
            scheme: self.scheme,
            simd,
        }
    }
}

/// Result of a post-processing run.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Post-processed value at each grid point.
    pub values: Vec<f64>,
    /// Aggregated work counters.
    pub metrics: Metrics,
    /// Per-block (per-patch) work counters, the unit of device scheduling.
    pub block_metrics: Vec<Metrics>,
    /// Full per-block stats: counters plus wall time, element/point
    /// ownership, and distribution probes (probes are empty unless the run
    /// was [instrumented](PostProcessor::instrument)).
    pub block_stats: Vec<BlockStats>,
    /// Phase spans of the run (empty unless instrumented).
    pub spans: Vec<SpanRecord>,
    /// Wall-clock time of the run on the host.
    pub wall: Duration,
    /// The stencil width `(3k+1) h` used.
    pub stencil_width: f64,
    /// The scheme that produced this solution.
    pub scheme: Scheme,
    /// SIMD dispatch summary: requested policy, resolved ISA, and achieved
    /// fraction of nominal peak.
    pub simd: SimdRecord,
}

impl Solution {
    /// Simulated execution time of this run's blocks on the configured
    /// streaming devices.
    pub fn simulate(&self, config: &DeviceConfig) -> SimReport {
        simulate(self.scheme, &self.block_metrics, config)
    }

    /// Maximum absolute difference against another solution (for scheme
    /// equivalence checks).
    pub fn max_abs_diff(&self, other: &Solution) -> f64 {
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Root-mean-square error of the post-processed values against an
    /// analytic reference sampled at the grid points.
    ///
    /// # Panics
    /// Panics when `grid` does not match this solution's length.
    pub fn rms_error<F: Fn(f64, f64) -> f64>(&self, grid: &ComputationGrid, exact: F) -> f64 {
        assert_eq!(grid.len(), self.values.len(), "grid/solution mismatch");
        let sum: f64 = grid
            .points()
            .iter()
            .zip(&self.values)
            .map(|(p, v)| (v - exact(p.x, p.y)).powi(2))
            .sum();
        (sum / self.values.len().max(1) as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ustencil_dg::project_l2;
    use ustencil_mesh::{generate_mesh, MeshClass};

    const TAU: f64 = std::f64::consts::TAU;

    #[test]
    fn schemes_agree_on_low_variance_mesh() {
        let mesh = generate_mesh(MeshClass::LowVariance, 200, 11);
        let field = project_l2(&mesh, 1, |x, y| (TAU * x).sin() * (TAU * y).cos(), 4);
        let grid = ComputationGrid::quadrature_points(&mesh, 1);
        let a = PostProcessor::new(Scheme::PerPoint)
            .parallel(false)
            .run(&mesh, &field, &grid);
        let b = PostProcessor::new(Scheme::PerElement)
            .parallel(false)
            .run(&mesh, &field, &grid);
        let diff = a.max_abs_diff(&b);
        assert!(diff < 1e-9, "schemes disagree by {diff}");
    }

    #[test]
    fn schemes_agree_on_high_variance_mesh_quadratic() {
        let mesh = generate_mesh(MeshClass::HighVariance, 150, 19);
        let field = project_l2(&mesh, 2, |x, y| x * x - y + 0.3 * x * y, 2);
        let grid = ComputationGrid::quadrature_points(&mesh, 2);
        // The coarse high-variance test mesh has a long max edge; shrink h
        // to keep the stencil inside the periodic domain.
        let a = PostProcessor::new(Scheme::PerPoint)
            .h_factor(0.25)
            .parallel(false)
            .run(&mesh, &field, &grid);
        let b = PostProcessor::new(Scheme::PerElement)
            .h_factor(0.25)
            .blocks(8)
            .parallel(false)
            .run(&mesh, &field, &grid);
        assert!(a.max_abs_diff(&b) < 1e-9);
    }

    #[test]
    fn polynomial_reproduction_at_interior_points() {
        // dG projection of a degree-p polynomial is exact, and the kernel
        // reproduces degree 2p >= p, so interior post-processed values must
        // equal the polynomial to rounding.
        let mesh = generate_mesh(MeshClass::LowVariance, 250, 5);
        let f = |x: f64, y: f64| 0.4 + 1.3 * x - 0.7 * y + 0.2 * x * y;
        let field = project_l2(&mesh, 2, f, 0);
        let grid = ComputationGrid::quadrature_points(&mesh, 2);
        let sol = PostProcessor::new(Scheme::PerElement)
            .h_factor(0.5)
            .run(&mesh, &field, &grid);
        let hw = sol.stencil_width / 2.0;
        let mut checked = 0;
        for (i, pt) in grid.points().iter().enumerate() {
            let interior = pt.x - hw > 0.0 && pt.x + hw < 1.0 && pt.y - hw > 0.0 && pt.y + hw < 1.0;
            if interior {
                let want = f(pt.x, pt.y);
                assert!(
                    (sol.values[i] - want).abs() < 1e-8,
                    "point {pt:?}: {} vs {want}",
                    sol.values[i]
                );
                checked += 1;
            }
        }
        assert!(checked > 50, "too few interior points checked: {checked}");
    }

    #[test]
    fn per_element_does_fewer_intersection_tests() {
        let mesh = generate_mesh(MeshClass::LowVariance, 400, 13);
        let field = project_l2(&mesh, 1, |x, _| x, 0);
        let grid = ComputationGrid::quadrature_points(&mesh, 1);
        let pp = PostProcessor::new(Scheme::PerPoint).run(&mesh, &field, &grid);
        let pe = PostProcessor::new(Scheme::PerElement).run(&mesh, &field, &grid);
        assert!(
            pe.metrics.intersection_tests < pp.metrics.intersection_tests,
            "per-element {} !< per-point {}",
            pe.metrics.intersection_tests,
            pp.metrics.intersection_tests
        );
    }

    #[test]
    fn simulated_per_element_is_faster() {
        let mesh = generate_mesh(MeshClass::LowVariance, 300, 3);
        let field = project_l2(&mesh, 1, |x, y| x + y, 0);
        let grid = ComputationGrid::quadrature_points(&mesh, 1);
        let cfg = DeviceConfig::default();
        let pp = PostProcessor::new(Scheme::PerPoint).run(&mesh, &field, &grid);
        let pe = PostProcessor::new(Scheme::PerElement).run(&mesh, &field, &grid);
        let t_pp = pp.simulate(&cfg).total_ms;
        let t_pe = pe.simulate(&cfg).total_ms;
        assert!(
            t_pe < t_pp,
            "simulated per-element {t_pe} ms !< per-point {t_pp} ms"
        );
    }

    #[test]
    fn rms_error_of_constant_filter() {
        let mesh = generate_mesh(MeshClass::LowVariance, 120, 1);
        let field = project_l2(&mesh, 1, |_, _| 2.0, 0);
        let grid = ComputationGrid::quadrature_points(&mesh, 1);
        // The 120-triangle mesh is coarse; shrink h so the stencil fits the
        // periodic domain.
        let sol = PostProcessor::new(Scheme::PerElement)
            .h_factor(0.2)
            .run(&mesh, &field, &grid);
        assert!(sol.rms_error(&grid, |_, _| 2.0) < 1e-9);
        assert!((sol.rms_error(&grid, |_, _| 3.0) - 1.0).abs() < 1e-8);
    }

    #[test]
    fn instrumented_run_records_phases_and_probes() {
        let mesh = generate_mesh(MeshClass::LowVariance, 150, 8);
        let field = project_l2(&mesh, 1, |x, y| x + y, 0);
        let grid = ComputationGrid::quadrature_points(&mesh, 1);
        let sol = PostProcessor::new(Scheme::PerElement)
            .blocks(4)
            .h_factor(0.5)
            .parallel(false)
            .instrument(true)
            .run(&mesh, &field, &grid);
        let names: Vec<&str> = sol.spans.iter().map(|r| r.name.as_str()).collect();
        for phase in [
            "setup.kernel",
            "build.point_grid",
            "build.partition",
            "eval.per_element",
            "reduce.patches",
        ] {
            assert!(names.contains(&phase), "missing span {phase}: {names:?}");
        }
        let eval = sol
            .spans
            .iter()
            .find(|r| r.name == "eval.per_element")
            .unwrap();
        assert!(eval.duration_ns > 0);
        assert_eq!(sol.block_stats.len(), sol.block_metrics.len());
        let probe = crate::probe::BlockStats::merged_probe(&sol.block_stats);
        assert!(probe.candidates_per_query().count() > 0);

        let pp = PostProcessor::new(Scheme::PerPoint)
            .h_factor(0.5)
            .instrument(true)
            .parallel(false)
            .run(&mesh, &field, &grid);
        assert!(pp.spans.iter().any(|r| r.name == "build.tri_grid"));
        assert!(pp.spans.iter().any(|r| r.name == "eval.per_point"));

        // Uninstrumented runs record nothing.
        let plain = PostProcessor::new(Scheme::PerPoint)
            .h_factor(0.5)
            .parallel(false)
            .run(&mesh, &field, &grid);
        assert!(plain.spans.is_empty());
        assert!(crate::probe::BlockStats::merged_probe(&plain.block_stats)
            .candidates_per_query()
            .is_empty());
    }

    #[test]
    fn scheme_labels_round_trip_over_all_variants() {
        // Exhaustive over Scheme::ALL: CLI parsing (`from_label`) and JSON
        // emission (`label`) can never drift for any variant, and labels
        // must be pairwise distinct for the round trip to be injective.
        for scheme in Scheme::ALL {
            assert_eq!(Scheme::from_label(scheme.label()), Some(scheme));
        }
        let labels: Vec<&str> = Scheme::ALL.iter().map(|s| s.label()).collect();
        for (i, a) in labels.iter().enumerate() {
            for b in &labels[i + 1..] {
                assert_ne!(a, b, "duplicate scheme label breaks from_label");
            }
        }
        assert_eq!(Scheme::from_label("per-face"), None);
        assert_eq!(Scheme::from_label(""), None);
    }

    #[test]
    fn settings_snapshot_reflects_builder() {
        let pp = PostProcessor::new(Scheme::PerElement)
            .smoothness(2)
            .h_factor(0.5)
            .blocks(7)
            .parallel(false)
            .instrument(true)
            .layout(Layout::Hilbert)
            .simd(SimdPolicy::Scalar);
        let s = pp.settings();
        assert_eq!(s.scheme, Scheme::PerElement);
        assert_eq!(s.smoothness, Some(2));
        assert_eq!(s.h_factor, 0.5);
        assert_eq!(s.n_blocks, 7);
        assert!(!s.parallel);
        assert!(s.instrument);
        assert_eq!(s.layout, Layout::Hilbert);
        assert_eq!(s.simd, SimdPolicy::Scalar);
        // Defaults: no smoothness override, paper defaults elsewhere.
        let d = PostProcessor::new(Scheme::PerPoint).settings();
        assert_eq!(d.smoothness, None);
        assert_eq!(d.h_factor, 1.0);
        assert_eq!(d.n_blocks, 16);
        assert!(d.parallel);
        assert!(!d.instrument);
        assert_eq!(d.layout, Layout::Natural);
        assert_eq!(d.simd, SimdPolicy::Auto);
    }

    #[test]
    fn simd_policies_agree_across_schemes_and_meshes() {
        // Auto (widest vector ISA), every forced width, and scalar must
        // agree ≤1e-12 on random meshes under both direct schemes; the
        // record must name the resolved ISA and its lane width.
        for (seed, class) in [
            (31u64, MeshClass::LowVariance),
            (77, MeshClass::HighVariance),
        ] {
            let mesh = generate_mesh(class, 160, seed);
            let field = project_l2(
                &mesh,
                2,
                |x, y| (TAU * x).sin() - 0.6 * y * y,
                seed as usize,
            );
            let grid = ComputationGrid::quadrature_points(&mesh, 2);
            for scheme in Scheme::ALL {
                let scalar = PostProcessor::new(scheme)
                    .h_factor(0.25)
                    .parallel(false)
                    .simd(SimdPolicy::Scalar)
                    .run(&mesh, &field, &grid);
                assert_eq!(scalar.simd.isa, "scalar");
                assert_eq!(scalar.simd.lanes, 1);
                for policy in SimdPolicy::ALL {
                    let sol = PostProcessor::new(scheme)
                        .h_factor(0.25)
                        .parallel(false)
                        .simd(policy)
                        .run(&mesh, &field, &grid);
                    let diff = sol.max_abs_diff(&scalar);
                    assert!(diff <= 1e-12, "{scheme:?}/{policy:?}: diff {diff}");
                    // Work counters model the traversal, not the ISA.
                    assert_eq!(sol.metrics, scalar.metrics, "{scheme:?}/{policy:?}");
                    assert_eq!(sol.simd.policy, policy.label());
                }
            }
        }
    }

    #[test]
    fn hilbert_layout_matches_natural_order() {
        let mesh = generate_mesh(MeshClass::LowVariance, 200, 23);
        let field = project_l2(&mesh, 2, |x, y| (TAU * x).sin() + 0.5 * y, 3);
        let grid = ComputationGrid::quadrature_points(&mesh, 2);
        for scheme in Scheme::ALL {
            let natural = PostProcessor::new(scheme)
                .blocks(4)
                .h_factor(0.3)
                .parallel(false)
                .run(&mesh, &field, &grid);
            let hilbert = PostProcessor::new(scheme)
                .blocks(4)
                .h_factor(0.3)
                .parallel(false)
                .layout(Layout::Hilbert)
                .run(&mesh, &field, &grid);
            let diff = natural.max_abs_diff(&hilbert);
            assert!(diff < 1e-12, "{scheme:?}: hilbert differs by {diff}");
            // The permuted run evaluates the same (element, point) pairs,
            // so aggregate work counters are identical.
            assert_eq!(natural.metrics, hilbert.metrics, "{scheme:?} counters");
        }
    }

    #[test]
    fn hilbert_layout_records_ordering_span() {
        let mesh = generate_mesh(MeshClass::LowVariance, 150, 8);
        let field = project_l2(&mesh, 1, |x, y| x + y, 0);
        let grid = ComputationGrid::quadrature_points(&mesh, 1);
        let sol = PostProcessor::new(Scheme::PerPoint)
            .h_factor(0.5)
            .parallel(false)
            .instrument(true)
            .layout(Layout::Hilbert)
            .run(&mesh, &field, &grid);
        let names: Vec<&str> = sol.spans.iter().map(|r| r.name.as_str()).collect();
        assert!(names.contains(&"build.hilbert_order"), "spans: {names:?}");
        assert!(names.contains(&"reduce.unpermute"), "spans: {names:?}");
    }

    #[test]
    #[should_panic(expected = "stencil width")]
    fn oversized_stencil_is_rejected() {
        let mesh = generate_mesh(MeshClass::StructuredPattern, 8, 0);
        let field = project_l2(&mesh, 3, |x, _| x, 0);
        let grid = ComputationGrid::quadrature_points(&mesh, 3);
        // 10 * s with s = 0.5 is far wider than the domain.
        let _ = PostProcessor::new(Scheme::PerPoint).run(&mesh, &field, &grid);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_field_is_rejected() {
        let mesh = generate_mesh(MeshClass::StructuredPattern, 32, 0);
        let field = ustencil_dg::DgField::zeros(1, 3);
        let grid = ComputationGrid::quadrature_points(&mesh, 1);
        let _ = PostProcessor::new(Scheme::PerPoint).run(&mesh, &field, &grid);
    }
}
