//! The reusable per-worker arena of the traversal kernel.
//!
//! Every buffer the hot loop needs lives here, owned by one worker and
//! reused across queries: the candidate id list of the current hash-grid
//! query, a direct-mapped [`ElementData`] cache that removes repeated
//! gathers of the same element, and the sub-triangle staging buffer the
//! cells-then-modes integration loop consumes. After the first few queries
//! warm the buffers up to their steady-state capacity, the per-query path
//! performs no heap allocation (see [`ScratchCapacity`] and the purity
//! tests).

use crate::integrate::{ElementData, MAX_MODES};
use crate::simd::SimdIsa;
use ustencil_geometry::{Point2, Triangle, Vec2};
use ustencil_quadrature::TriangleRule;
use ustencil_siac::Kernel1d;

/// Slots of the direct-mapped element cache (power of two). Sized so the
/// cache covers the working set of one stencil query (tens of candidates)
/// plus the overlap between neighbouring queries, while keeping the
/// per-worker footprint bounded (~56 KiB of `ElementData`).
const ELEM_CACHE_SLOTS: usize = 256;

/// Zero-padded SoA copy of a quadrature rule's nodes and weights,
/// precomputed once per run (the rule never changes across a traversal) so
/// the vector reductions load whole blocks without masking: lanes past the
/// rule's length carry zero weight and therefore contribute exactly
/// nothing to any mode.
#[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
#[derive(Debug, Clone)]
pub(crate) struct RuleSoa {
    /// Unit-triangle `u` per node, padded with zeros to a multiple of 8.
    pub(crate) u: Vec<f64>,
    /// Unit-triangle `v` per node, padded likewise.
    pub(crate) v: Vec<f64>,
    /// Rule weight per node, padded with zeros (the annihilator).
    pub(crate) w: Vec<f64>,
    /// True (unpadded) node count.
    pub(crate) nq: usize,
}

impl RuleSoa {
    pub(crate) fn new(rule: &TriangleRule) -> Self {
        let nq = rule.len();
        let padded = nq.div_ceil(8) * 8;
        let mut u = vec![0.0; padded];
        let mut v = vec![0.0; padded];
        let mut w = vec![0.0; padded];
        for (q, (&(pu, pv), &pw)) in rule.points().iter().zip(rule.weights()).enumerate() {
            u[q] = pu;
            v[q] = pv;
            w[q] = pw;
        }
        Self { u, v, w, nq }
    }
}

/// Direct-mapped cache of gathered [`ElementData`], keyed by element id.
///
/// One query visits each candidate once, but consecutive queries of a block
/// revisit mostly the same elements; the cache turns those repeat gathers
/// into an id compare. Collisions simply re-gather — the cache is a pure
/// memoization and never changes results.
#[derive(Debug, Clone)]
pub(crate) struct ElemCache {
    /// `id + 1` of the element held in each slot; 0 marks an empty slot.
    tags: Box<[u32]>,
    data: Box<[ElementData]>,
}

impl ElemCache {
    fn new() -> Self {
        Self {
            tags: vec![0u32; ELEM_CACHE_SLOTS].into_boxed_slice(),
            data: vec![ElementData::placeholder(); ELEM_CACHE_SLOTS].into_boxed_slice(),
        }
    }

    /// Returns the cached data of element `id`, gathering through `gather`
    /// on a miss.
    #[inline]
    pub(crate) fn get_or_gather(
        &mut self,
        id: u32,
        gather: impl FnOnce(usize) -> ElementData,
    ) -> &ElementData {
        let slot = id as usize & (ELEM_CACHE_SLOTS - 1);
        if self.tags[slot] != id + 1 {
            self.data[slot] = gather(id as usize);
            self.tags[slot] = id + 1;
        }
        &self.data[slot]
    }

    fn clear(&mut self) {
        self.tags.fill(0);
    }
}

/// Everything the staged mode reduction needs beyond the sub-triangles
/// themselves — the quadrature rule, the compiled SIAC kernel, and the
/// affine frames (stencil center / periodic shift / element reference map)
/// that turn a unit-triangle quadrature node into kernel- and
/// element-frame coordinates.
pub(crate) struct ReduceCtx<'a> {
    /// Monomial exponent table of the element basis.
    pub(crate) exps: &'a [(usize, usize)],
    /// Number of leading `exps` slots to reduce.
    pub(crate) n_modes: usize,
    /// Resolved ISA to dispatch on.
    pub(crate) isa: SimdIsa,
    /// The 1-D SIAC kernel (its compiled piecewise table feeds the
    /// lane-parallel evaluation).
    pub(crate) kernel: &'a Kernel1d,
    /// Quadrature rule applied to every staged sub-triangle.
    pub(crate) rule: &'a TriangleRule,
    /// Padded SoA copy of `rule` the vector arms batch from.
    pub(crate) soa: &'a RuleSoa,
    /// Reciprocal stencil scaling `1/h`.
    pub(crate) inv_h: f64,
    /// Stencil center (kernel frame origin).
    pub(crate) center: Point2,
    /// Periodic shift applied to the element image.
    pub(crate) shift: Vec2,
    /// Element reference-map origin.
    pub(crate) origin: Point2,
    /// Element reference-map inverse (row-major 2×2).
    pub(crate) inv: [f64; 4],
}

/// Staging buffer holding the surviving sub-triangles of one element-image
/// integration.
///
/// The traversal driver clips and fan-triangulates first, staging each
/// surviving sub-triangle with its Jacobian. The whole per-point pipeline —
/// mapping quadrature nodes to physical points, the piecewise-polynomial
/// SIAC kernel weighting, the element-frame transform, and the monomial
/// mode reduction — then runs over the staged batch in one pass, the
/// cells-then-modes loop order. On the vector ISAs that entire pipeline is
/// lane-parallel across quadrature nodes: the unit-triangle map and the
/// element transform are affine FMAs, the kernel's Horner step gathers
/// per-lane cell coefficients, and the coordinates are raised to their
/// monomial powers in registers, so the branchy per-point work of the
/// fused path becomes straight-line vector code.
#[derive(Debug, Clone, Default)]
pub struct QuadStage {
    /// Surviving sub-triangles with their absolute Jacobians.
    subs: Vec<(Triangle, f64)>,
    /// Vector-arm scratch: effective weights per (sub, node) lane slot.
    bw: Vec<f64>,
    /// Vector-arm scratch: element-frame `u` per lane slot.
    bu: Vec<f64>,
    /// Vector-arm scratch: element-frame `v` per lane slot.
    bv: Vec<f64>,
}

impl QuadStage {
    /// Number of staged sub-triangles.
    #[inline]
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// True when nothing is staged.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }

    /// Discards the staged sub-triangles (capacity is retained).
    #[inline]
    pub(crate) fn clear(&mut self) {
        self.subs.clear();
    }

    /// Stages one clipped sub-triangle with its absolute Jacobian
    /// `jac = |∂(x,y)/∂(u,v)|`.
    #[inline]
    pub(crate) fn push(&mut self, tri: Triangle, jac: f64) {
        self.subs.push((tri, jac));
    }

    /// Reduces the staged batch to per-monomial sums
    /// `S[slot] = Σ_T Σ_q w · u^a · v^b` with
    /// `w = (|J_T|·ω_q) · K(dx) · K(dy) / h²` over every staged
    /// sub-triangle `T` and rule node `q`, for the first `n_modes`
    /// exponent pairs — the modes loop of the cells-then-modes order,
    /// dispatched on `ctx.isa`.
    ///
    /// The scalar arm performs, per node, exactly the historical
    /// expression tree — [`Triangle::map_from_unit`], the element
    /// reference transform, `w = (|J|·ω) · ((K(dx)·K(dy))·h⁻¹)·h⁻¹` via
    /// [`Kernel1d::eval`], powers built as `u·u` and `(u·u)·u`, products
    /// associated `(w·uᵃ)·vᵇ`, per-slot accumulation in node order — so
    /// [`SimdIsa::Scalar`] reproduces pre-SIMD results bitwise. The
    /// vector arms batch the rule's nodes into blocks of 4 (AVX2+FMA) or
    /// 8 (AVX-512) lanes and run the pipeline in two register-friendly
    /// passes. Pass 1 (geometry + kernel, per staged sub-triangle):
    /// affine FMAs for both coordinate maps, then a clamped floor +
    /// coefficient gather + lane-parallel Horner for each kernel factor,
    /// packing the effective weight and element-frame coordinates of
    /// every lane slot into SoA scratch streams. Pass 2 (modes): one
    /// dense sweep over the packed streams raising the coordinates to
    /// their monomial powers and feeding every mode's FMA accumulator.
    /// Each accumulator is collapsed by a fixed-order horizontal
    /// reduction at the end — deterministic run-to-run, within 1e-12 of
    /// scalar (the lane split reassociates the sum).
    pub(crate) fn mono_sums(&mut self, ctx: &ReduceCtx<'_>) -> [f64; MAX_MODES] {
        match ctx.isa {
            SimdIsa::Scalar => self.mono_sums_scalar(ctx),
            // SAFETY: `resolve` only yields these ISAs when the CPU
            // reports the matching feature flags.
            #[cfg(target_arch = "x86_64")]
            SimdIsa::Avx2 => unsafe { self.mono_sums_avx2(ctx) },
            #[cfg(target_arch = "x86_64")]
            SimdIsa::Avx512 => unsafe { self.mono_sums_avx512(ctx) },
            #[cfg(not(target_arch = "x86_64"))]
            _ => self.mono_sums_scalar(ctx),
        }
    }

    fn mono_sums_scalar(&self, ctx: &ReduceCtx<'_>) -> [f64; MAX_MODES] {
        let mut sums = [0.0f64; MAX_MODES];
        let (du, dv) = max_degrees(ctx.exps, ctx.n_modes);
        let q_points = ctx.rule.points();
        let q_weights = ctx.rule.weights();
        for &(tri, jac) in &self.subs {
            for (&(uq, vq), &wq) in q_points.iter().zip(q_weights) {
                let p = tri.map_from_unit(uq, vq);
                let d = (p - ctx.shift) - ctx.origin;
                let u = ctx.inv[0] * d.x + ctx.inv[1] * d.y;
                let v = ctx.inv[2] * d.x + ctx.inv[3] * d.y;
                // Exactly `Stencil2d::eval`'s multiplication tree, applied
                // to the geometric pre-weight in the historical order.
                let kx = ctx.kernel.eval((p.x - ctx.center.x) * ctx.inv_h);
                let ky = ctx.kernel.eval((p.y - ctx.center.y) * ctx.inv_h);
                let w = (jac * wq) * (((kx * ky) * ctx.inv_h) * ctx.inv_h);
                // `w·uᵃ` is shared by every mode with the same `a`, so it
                // is hoisted out of the mode loop — the same product
                // computed once instead of per slot, with identical bits.
                // Powers past the basis's maximal exponent never feed an
                // output and are skipped (the per-node branches are
                // loop-invariant and predicted perfectly).
                let mut wu = [w, w * u, 0.0, 0.0];
                let mut vp = [1.0, v, 0.0, 0.0];
                if du >= 2 {
                    let u2 = u * u;
                    wu[2] = w * u2;
                    if du >= 3 {
                        wu[3] = w * (u2 * u);
                    }
                }
                if dv >= 2 {
                    let v2 = v * v;
                    vp[2] = v2;
                    if dv >= 3 {
                        vp[3] = v2 * v;
                    }
                }
                for (slot, &(a, b)) in ctx.exps.iter().enumerate().take(ctx.n_modes) {
                    sums[slot] += wu[a] * vp[b];
                }
            }
        }
        sums
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn mono_sums_avx2(&mut self, ctx: &ReduceCtx<'_>) -> [f64; MAX_MODES] {
        use core::arch::x86_64::*;
        let soa = ctx.soa;
        let nblk = soa.nq.div_ceil(4);
        let total = self.subs.len() * nblk * 4;
        if self.bw.len() < total {
            self.bw.resize(total, 0.0);
            self.bu.resize(total, 0.0);
            self.bv.resize(total, 0.0);
        }
        let bw = self.bw.as_mut_ptr();
        let bu = self.bu.as_mut_ptr();
        let bv = self.bv.as_mut_ptr();

        // Pass 1 — geometry + kernel: per sub-triangle, map every rule
        // node to its physical point, evaluate both kernel factors, and
        // pack the effective weight and element-frame coordinates of each
        // lane slot. No mode accumulators are live here, so the broadcast
        // frame constants stay in registers. The affine frames are folded
        // into single-FMA constants: the kernel-frame support shift
        // `rel = (p − center)/h − lo` becomes `p·h⁻¹ + m`, and the element
        // transform `inv · (p − shift − origin)` becomes
        // `i₀·p.x + i₁·p.y + c`.
        let klo = ctx.kernel.support().0;
        let invh = _mm256_set1_pd(ctx.inv_h);
        let mx = _mm256_set1_pd(-(ctx.center.x * ctx.inv_h + klo));
        let my = _mm256_set1_pd(-(ctx.center.y * ctx.inv_h + klo));
        let offx = ctx.shift.x + ctx.origin.x;
        let offy = ctx.shift.y + ctx.origin.y;
        let i0 = _mm256_set1_pd(ctx.inv[0]);
        let i1 = _mm256_set1_pd(ctx.inv[1]);
        let i2 = _mm256_set1_pd(ctx.inv[2]);
        let i3 = _mm256_set1_pd(ctx.inv[3]);
        let cu = _mm256_set1_pd(-(ctx.inv[0] * offx + ctx.inv[1] * offy));
        let cv = _mm256_set1_pd(-(ctx.inv[2] * offx + ctx.inv[3] * offy));
        let kcells = ctx.kernel.n_cells() as f64;
        let kdeg = ctx.kernel.smoothness() + 1;
        let kpp = ctx.kernel.piecewise_table().as_ptr();
        let inv_h2 = ctx.inv_h * ctx.inv_h;
        let sou = soa.u.as_ptr();
        let sov = soa.v.as_ptr();
        let sow = soa.w.as_ptr();
        let mut out = 0usize;
        for &(tri, jac) in &self.subs {
            let e1 = tri.b - tri.a;
            let e2 = tri.c - tri.a;
            let ax = _mm256_set1_pd(tri.a.x);
            let ay = _mm256_set1_pd(tri.a.y);
            let e1x = _mm256_set1_pd(e1.x);
            let e1y = _mm256_set1_pd(e1.y);
            let e2x = _mm256_set1_pd(e2.x);
            let e2y = _mm256_set1_pd(e2.y);
            // `|J|·h⁻²` folded scalar-side: one broadcast weight factor.
            let jw = _mm256_set1_pd(jac * inv_h2);
            for blk in 0..nblk {
                let base = blk * 4;
                let uq = _mm256_loadu_pd(sou.add(base));
                let vq = _mm256_loadu_pd(sov.add(base));
                let wq = _mm256_loadu_pd(sow.add(base));
                // Affine unit-triangle map: p = a + u·(b−a) + v·(c−a).
                let px = _mm256_fmadd_pd(vq, e2x, _mm256_fmadd_pd(uq, e1x, ax));
                let py = _mm256_fmadd_pd(vq, e2y, _mm256_fmadd_pd(uq, e1y, ay));
                let relx = _mm256_fmadd_pd(px, invh, mx);
                let rely = _mm256_fmadd_pd(py, invh, my);
                let kx = kernel1d_eval_avx2(relx, kcells, kpp, kdeg);
                let ky = kernel1d_eval_avx2(rely, kcells, kpp, kdeg);
                let w = _mm256_mul_pd(_mm256_mul_pd(jw, wq), _mm256_mul_pd(kx, ky));
                let u = _mm256_fmadd_pd(i0, px, _mm256_fmadd_pd(i1, py, cu));
                let v = _mm256_fmadd_pd(i2, px, _mm256_fmadd_pd(i3, py, cv));
                _mm256_storeu_pd(bw.add(out), w);
                _mm256_storeu_pd(bu.add(out), u);
                _mm256_storeu_pd(bv.add(out), v);
                out += 4;
            }
        }

        // Pass 2 — modes: one dense sweep over the packed streams. Only
        // the power vectors and the accumulators are live.
        let mut acc = [_mm256_setzero_pd(); MAX_MODES];
        let ones = _mm256_set1_pd(1.0);
        let zero = _mm256_setzero_pd();
        let (du, dv) = max_degrees(ctx.exps, ctx.n_modes);
        for base in (0..total).step_by(4) {
            let w = _mm256_loadu_pd(bw.add(base));
            let u = _mm256_loadu_pd(bu.add(base));
            let v = _mm256_loadu_pd(bv.add(base));
            // `w·uᵃ` hoisted out of the mode loop; powers past the
            // basis's maximal exponent are skipped (loop-invariant
            // branches).
            let mut wu = [w, _mm256_mul_pd(w, u), zero, zero];
            let mut vpow = [ones, v, zero, zero];
            if du >= 2 {
                let u2 = _mm256_mul_pd(u, u);
                wu[2] = _mm256_mul_pd(w, u2);
                if du >= 3 {
                    wu[3] = _mm256_mul_pd(w, _mm256_mul_pd(u2, u));
                }
            }
            if dv >= 2 {
                let v2 = _mm256_mul_pd(v, v);
                vpow[2] = v2;
                if dv >= 3 {
                    vpow[3] = _mm256_mul_pd(v2, v);
                }
            }
            for (slot, &(a, b)) in ctx.exps.iter().enumerate().take(ctx.n_modes) {
                acc[slot] = _mm256_fmadd_pd(wu[a], vpow[b], acc[slot]);
            }
        }
        let mut sums = [0.0f64; MAX_MODES];
        for (sum, acc) in sums.iter_mut().zip(&acc).take(ctx.n_modes) {
            let mut lanes = [0.0f64; 4];
            _mm256_storeu_pd(lanes.as_mut_ptr(), *acc);
            *sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
        }
        sums
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    unsafe fn mono_sums_avx512(&mut self, ctx: &ReduceCtx<'_>) -> [f64; MAX_MODES] {
        use core::arch::x86_64::*;
        let soa = ctx.soa;
        let nblk = soa.nq.div_ceil(8);
        // Low-order rules (the degree-1 case's 4-node rule) fill only half
        // a block, so two staged sub-triangles share each one: the low
        // lanes carry one sub, the high lanes the next, against the same
        // rule nodes.
        let paired = soa.nq <= 4;
        let total = if paired {
            self.subs.len().div_ceil(2) * 8
        } else {
            self.subs.len() * nblk * 8
        };
        if self.bw.len() < total {
            self.bw.resize(total, 0.0);
            self.bu.resize(total, 0.0);
            self.bv.resize(total, 0.0);
        }
        let bw = self.bw.as_mut_ptr();
        let bu = self.bu.as_mut_ptr();
        let bv = self.bv.as_mut_ptr();

        // Pass 1 — geometry + kernel: per sub-triangle, map every rule
        // node to its physical point, evaluate both kernel factors, and
        // pack the effective weight and element-frame coordinates of each
        // lane slot. No mode accumulators are live here, so the broadcast
        // frame constants stay in registers. The affine frames are folded
        // into single-FMA constants: the kernel-frame support shift
        // `rel = (p − center)/h − lo` becomes `p·h⁻¹ + m`, and the element
        // transform `inv · (p − shift − origin)` becomes
        // `i₀·p.x + i₁·p.y + c`.
        let klo = ctx.kernel.support().0;
        let invh = _mm512_set1_pd(ctx.inv_h);
        let mx = _mm512_set1_pd(-(ctx.center.x * ctx.inv_h + klo));
        let my = _mm512_set1_pd(-(ctx.center.y * ctx.inv_h + klo));
        let offx = ctx.shift.x + ctx.origin.x;
        let offy = ctx.shift.y + ctx.origin.y;
        let i0 = _mm512_set1_pd(ctx.inv[0]);
        let i1 = _mm512_set1_pd(ctx.inv[1]);
        let i2 = _mm512_set1_pd(ctx.inv[2]);
        let i3 = _mm512_set1_pd(ctx.inv[3]);
        let cu = _mm512_set1_pd(-(ctx.inv[0] * offx + ctx.inv[1] * offy));
        let cv = _mm512_set1_pd(-(ctx.inv[2] * offx + ctx.inv[3] * offy));
        let kcells = ctx.kernel.n_cells() as f64;
        let kdeg = ctx.kernel.smoothness() + 1;
        let kpp = ctx.kernel.piecewise_table().as_ptr();
        let inv_h2 = ctx.inv_h * ctx.inv_h;
        // The smoothness-1 kernel's whole piecewise table (4 cells × 2
        // coefficients) fits a single register, turning every coefficient
        // lookup into an in-register permute instead of a memory gather —
        // the gather's ~20-cycle latency dominates exactly the small-batch
        // shapes this kernel runs at.
        let table_len = ctx.kernel.n_cells() * kdeg;
        let table_reg = if table_len <= 8 {
            _mm512_maskz_loadu_pd(((1u16 << table_len) - 1) as u8, kpp)
        } else {
            _mm512_setzero_pd()
        };
        let sou = soa.u.as_ptr();
        let sov = soa.v.as_ptr();
        let sow = soa.w.as_ptr();
        let mut out = 0usize;
        if paired {
            // Rule nodes replicated into both halves; per-pair constants
            // are split broadcasts (sub A low, sub B high). An odd tail
            // re-runs sub A with zero weight in the high half.
            let uq = _mm512_broadcast_f64x4(_mm256_loadu_pd(sou));
            let vq = _mm512_broadcast_f64x4(_mm256_loadu_pd(sov));
            let wq = _mm512_broadcast_f64x4(_mm256_loadu_pd(sow));
            let mut i = 0usize;
            while i < self.subs.len() {
                let (t0, j0) = self.subs[i];
                let (t1, j1) = if i + 1 < self.subs.len() {
                    self.subs[i + 1]
                } else {
                    (t0, 0.0)
                };
                let e1a = t0.b - t0.a;
                let e2a = t0.c - t0.a;
                let e1b = t1.b - t1.a;
                let e2b = t1.c - t1.a;
                let ax = pair_pd(t0.a.x, t1.a.x);
                let ay = pair_pd(t0.a.y, t1.a.y);
                let e1x = pair_pd(e1a.x, e1b.x);
                let e1y = pair_pd(e1a.y, e1b.y);
                let e2x = pair_pd(e2a.x, e2b.x);
                let e2y = pair_pd(e2a.y, e2b.y);
                let jw = pair_pd(j0 * inv_h2, j1 * inv_h2);
                // Affine unit-triangle map: p = a + u·(b−a) + v·(c−a).
                let px = _mm512_fmadd_pd(vq, e2x, _mm512_fmadd_pd(uq, e1x, ax));
                let py = _mm512_fmadd_pd(vq, e2y, _mm512_fmadd_pd(uq, e1y, ay));
                let relx = _mm512_fmadd_pd(px, invh, mx);
                let rely = _mm512_fmadd_pd(py, invh, my);
                let (kx, ky) = if table_len <= 8 {
                    (
                        kernel1d_eval_avx512_table(relx, kcells, table_reg, kdeg),
                        kernel1d_eval_avx512_table(rely, kcells, table_reg, kdeg),
                    )
                } else {
                    (
                        kernel1d_eval_avx512(relx, kcells, kpp, kdeg),
                        kernel1d_eval_avx512(rely, kcells, kpp, kdeg),
                    )
                };
                let w = _mm512_mul_pd(_mm512_mul_pd(jw, wq), _mm512_mul_pd(kx, ky));
                let u = _mm512_fmadd_pd(i0, px, _mm512_fmadd_pd(i1, py, cu));
                let v = _mm512_fmadd_pd(i2, px, _mm512_fmadd_pd(i3, py, cv));
                _mm512_storeu_pd(bw.add(out), w);
                _mm512_storeu_pd(bu.add(out), u);
                _mm512_storeu_pd(bv.add(out), v);
                out += 8;
                i += 2;
            }
        } else {
            for &(tri, jac) in &self.subs {
                let e1 = tri.b - tri.a;
                let e2 = tri.c - tri.a;
                let ax = _mm512_set1_pd(tri.a.x);
                let ay = _mm512_set1_pd(tri.a.y);
                let e1x = _mm512_set1_pd(e1.x);
                let e1y = _mm512_set1_pd(e1.y);
                let e2x = _mm512_set1_pd(e2.x);
                let e2y = _mm512_set1_pd(e2.y);
                // `|J|·h⁻²` folded scalar-side: one broadcast weight factor.
                let jw = _mm512_set1_pd(jac * inv_h2);
                for blk in 0..nblk {
                    let base = blk * 8;
                    let uq = _mm512_loadu_pd(sou.add(base));
                    let vq = _mm512_loadu_pd(sov.add(base));
                    let wq = _mm512_loadu_pd(sow.add(base));
                    // Affine unit-triangle map: p = a + u·(b−a) + v·(c−a).
                    let px = _mm512_fmadd_pd(vq, e2x, _mm512_fmadd_pd(uq, e1x, ax));
                    let py = _mm512_fmadd_pd(vq, e2y, _mm512_fmadd_pd(uq, e1y, ay));
                    let relx = _mm512_fmadd_pd(px, invh, mx);
                    let rely = _mm512_fmadd_pd(py, invh, my);
                    let (kx, ky) = if table_len <= 8 {
                        (
                            kernel1d_eval_avx512_table(relx, kcells, table_reg, kdeg),
                            kernel1d_eval_avx512_table(rely, kcells, table_reg, kdeg),
                        )
                    } else {
                        (
                            kernel1d_eval_avx512(relx, kcells, kpp, kdeg),
                            kernel1d_eval_avx512(rely, kcells, kpp, kdeg),
                        )
                    };
                    let w = _mm512_mul_pd(_mm512_mul_pd(jw, wq), _mm512_mul_pd(kx, ky));
                    let u = _mm512_fmadd_pd(i0, px, _mm512_fmadd_pd(i1, py, cu));
                    let v = _mm512_fmadd_pd(i2, px, _mm512_fmadd_pd(i3, py, cv));
                    _mm512_storeu_pd(bw.add(out), w);
                    _mm512_storeu_pd(bu.add(out), u);
                    _mm512_storeu_pd(bv.add(out), v);
                    out += 8;
                }
            }
        }

        // Pass 2 — modes: one dense sweep over the packed streams. Only
        // the power vectors and the accumulators are live.
        let mut acc = [_mm512_setzero_pd(); MAX_MODES];
        let ones = _mm512_set1_pd(1.0);
        let zero = _mm512_setzero_pd();
        let (du, dv) = max_degrees(ctx.exps, ctx.n_modes);
        for base in (0..total).step_by(8) {
            let w = _mm512_loadu_pd(bw.add(base));
            let u = _mm512_loadu_pd(bu.add(base));
            let v = _mm512_loadu_pd(bv.add(base));
            // `w·uᵃ` hoisted out of the mode loop; powers past the
            // basis's maximal exponent are skipped (loop-invariant
            // branches).
            let mut wu = [w, _mm512_mul_pd(w, u), zero, zero];
            let mut vpow = [ones, v, zero, zero];
            if du >= 2 {
                let u2 = _mm512_mul_pd(u, u);
                wu[2] = _mm512_mul_pd(w, u2);
                if du >= 3 {
                    wu[3] = _mm512_mul_pd(w, _mm512_mul_pd(u2, u));
                }
            }
            if dv >= 2 {
                let v2 = _mm512_mul_pd(v, v);
                vpow[2] = v2;
                if dv >= 3 {
                    vpow[3] = _mm512_mul_pd(v2, v);
                }
            }
            for (slot, &(a, b)) in ctx.exps.iter().enumerate().take(ctx.n_modes) {
                acc[slot] = _mm512_fmadd_pd(wu[a], vpow[b], acc[slot]);
            }
        }
        let mut sums = [0.0f64; MAX_MODES];
        for (sum, acc) in sums.iter_mut().zip(&acc).take(ctx.n_modes) {
            let mut lanes = [0.0f64; 8];
            _mm512_storeu_pd(lanes.as_mut_ptr(), *acc);
            *sum = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
                + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
        }
        sums
    }
}

/// Lane-parallel [`Kernel1d::eval`] on support-relative coordinates
/// `rel = x − lo` (the caller folds the shift into its frame constants):
/// per-lane unit-cell lookup by clamped floor, coefficient gathers from
/// the compiled piecewise table, and a Horner step in the local
/// coordinate. Out-of-support lanes are zeroed at the end, matching the
/// scalar early returns.
///
/// # Safety
/// Requires AVX2+FMA; `pp` must point at a table of at least
/// `n_cells · deg` coefficients with `n_cells ≥ 1` and `deg ≥ 1`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn kernel1d_eval_avx2(
    rel: core::arch::x86_64::__m256d,
    n_cells: f64,
    pp: *const f64,
    deg: usize,
) -> core::arch::x86_64::__m256d {
    use core::arch::x86_64::*;
    let zero = _mm256_setzero_pd();
    let ncf = _mm256_set1_pd(n_cells);
    let valid = _mm256_and_pd(
        _mm256_cmp_pd::<_CMP_GE_OQ>(rel, zero),
        _mm256_cmp_pd::<_CMP_LT_OQ>(rel, ncf),
    );
    // Truncation equals floor on the in-range (non-negative) lanes; the
    // rest are zeroed by `valid` regardless.
    let cellf = _mm256_round_pd::<{ _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC }>(rel);
    let t = _mm256_sub_pd(rel, cellf);
    // Clamp so out-of-support lanes gather a harmless in-bounds cell.
    let cellc = _mm256_min_pd(_mm256_max_pd(cellf, zero), _mm256_set1_pd(n_cells - 1.0));
    let idx = _mm256_cvttpd_epi32(_mm256_mul_pd(cellc, _mm256_set1_pd(deg as f64)));
    let mut acc = _mm256_i32gather_pd::<8>(pp.add(deg - 1), idx);
    for j in (0..deg - 1).rev() {
        let c = _mm256_i32gather_pd::<8>(pp.add(j), idx);
        acc = _mm256_fmadd_pd(acc, t, c);
    }
    _mm256_and_pd(acc, valid)
}

/// Lane-parallel [`Kernel1d::eval`] for piecewise tables that fit one
/// 512-bit register (`n_cells · deg ≤ 8`, i.e. the smoothness-1 kernel):
/// the coefficient lookup is an in-register permute instead of a memory
/// gather, which matters at the small batch sizes those kernels run at.
///
/// # Safety
/// Requires AVX-512F; `tab` must hold the first `n_cells · deg` table
/// coefficients in its low lanes.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn kernel1d_eval_avx512_table(
    rel: core::arch::x86_64::__m512d,
    n_cells: f64,
    tab: core::arch::x86_64::__m512d,
    deg: usize,
) -> core::arch::x86_64::__m512d {
    use core::arch::x86_64::*;
    let zero = _mm512_setzero_pd();
    let ncf = _mm512_set1_pd(n_cells);
    let valid =
        _mm512_cmp_pd_mask::<_CMP_GE_OQ>(rel, zero) & _mm512_cmp_pd_mask::<_CMP_LT_OQ>(rel, ncf);
    let cellf = _mm512_roundscale_pd::<{ _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC }>(rel);
    let t = _mm512_sub_pd(rel, cellf);
    let cellc = _mm512_min_pd(_mm512_max_pd(cellf, zero), _mm512_set1_pd(n_cells - 1.0));
    let idx = _mm512_cvtepi32_epi64(_mm512_cvttpd_epi32(_mm512_mul_pd(
        cellc,
        _mm512_set1_pd(deg as f64),
    )));
    let mut acc = _mm512_permutexvar_pd(
        _mm512_add_epi64(idx, _mm512_set1_epi64((deg - 1) as i64)),
        tab,
    );
    for j in (0..deg - 1).rev() {
        let c = _mm512_permutexvar_pd(_mm512_add_epi64(idx, _mm512_set1_epi64(j as i64)), tab);
        acc = _mm512_fmadd_pd(acc, t, c);
    }
    _mm512_maskz_mov_pd(valid, acc)
}

/// A split broadcast: `a` in the low four lanes, `b` in the high four —
/// the per-pair constant shape of the paired low-order-rule path.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[inline]
unsafe fn pair_pd(a: f64, b: f64) -> core::arch::x86_64::__m512d {
    use core::arch::x86_64::*;
    _mm512_insertf64x4::<1>(_mm512_castpd256_pd512(_mm256_set1_pd(a)), _mm256_set1_pd(b))
}

/// Lane-parallel [`Kernel1d::eval`] on support-relative coordinates over
/// 8 lanes — the AVX-512 analog of [`kernel1d_eval_avx2`], with
/// mask-register validity instead of a blend mask.
///
/// # Safety
/// Requires AVX-512F; `pp` must point at a table of at least
/// `n_cells · deg` coefficients with `n_cells ≥ 1` and `deg ≥ 1`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn kernel1d_eval_avx512(
    rel: core::arch::x86_64::__m512d,
    n_cells: f64,
    pp: *const f64,
    deg: usize,
) -> core::arch::x86_64::__m512d {
    use core::arch::x86_64::*;
    let zero = _mm512_setzero_pd();
    let ncf = _mm512_set1_pd(n_cells);
    let valid =
        _mm512_cmp_pd_mask::<_CMP_GE_OQ>(rel, zero) & _mm512_cmp_pd_mask::<_CMP_LT_OQ>(rel, ncf);
    // Truncation equals floor on the in-range (non-negative) lanes.
    let cellf = _mm512_roundscale_pd::<{ _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC }>(rel);
    let t = _mm512_sub_pd(rel, cellf);
    let cellc = _mm512_min_pd(_mm512_max_pd(cellf, zero), _mm512_set1_pd(n_cells - 1.0));
    let idx = _mm512_cvttpd_epi32(_mm512_mul_pd(cellc, _mm512_set1_pd(deg as f64)));
    let mut acc = _mm512_i32gather_pd::<8>(idx, pp.add(deg - 1));
    for j in (0..deg - 1).rev() {
        let c = _mm512_i32gather_pd::<8>(idx, pp.add(j));
        acc = _mm512_fmadd_pd(acc, t, c);
    }
    _mm512_maskz_mov_pd(valid, acc)
}

/// Largest `u` and `v` exponents among the first `n_modes` entries of the
/// exponent table — the reduction kernels skip building powers past these.
#[inline]
fn max_degrees(exps: &[(usize, usize)], n_modes: usize) -> (usize, usize) {
    let mut du = 0usize;
    let mut dv = 0usize;
    for &(a, b) in exps.iter().take(n_modes) {
        du = du.max(a);
        dv = dv.max(b);
    }
    (du, dv)
}

/// Capacity snapshot of a [`Scratch`] arena, for allocation-freedom checks:
/// run a workload once to warm up, snapshot, run it again, and assert the
/// snapshot is unchanged — any growth inside the per-query path would show
/// up here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScratchCapacity {
    /// Capacity of the candidate id buffer.
    pub candidates: usize,
    /// Capacity of the staged sub-triangle buffer.
    pub staged: usize,
}

/// The per-worker scratch arena threaded through every traversal.
#[derive(Debug, Clone)]
pub struct Scratch {
    /// Candidate ids of the current hash-grid query.
    pub(crate) candidates: Vec<u32>,
    /// Memoized element gathers.
    pub(crate) cache: ElemCache,
    /// Sub-triangle staging of the current element image.
    pub(crate) stage: QuadStage,
}

impl Scratch {
    /// A fresh arena with warm initial capacities.
    pub fn new() -> Self {
        Self {
            candidates: Vec::with_capacity(64),
            cache: ElemCache::new(),
            stage: QuadStage::default(),
        }
    }

    /// Invalidates the element cache (required when the same arena is
    /// reused against a different mesh or field).
    pub fn invalidate(&mut self) {
        self.cache.clear();
    }

    /// Current buffer capacities (see [`ScratchCapacity`]).
    pub fn capacity(&self) -> ScratchCapacity {
        ScratchCapacity {
            candidates: self.candidates.capacity(),
            staged: self.stage.subs.capacity(),
        }
    }
}

impl Default for Scratch {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simd::SimdPolicy;

    #[allow(clippy::too_many_arguments)]
    fn ctx<'a>(
        kernel: &'a Kernel1d,
        rule: &'a TriangleRule,
        soa: &'a RuleSoa,
        exps: &'a [(usize, usize)],
        n_modes: usize,
        isa: SimdIsa,
        inv_h: f64,
        center: Point2,
    ) -> ReduceCtx<'a> {
        ReduceCtx {
            exps,
            n_modes,
            isa,
            kernel,
            rule,
            soa,
            inv_h,
            center,
            shift: Vec2::new(0.25, -0.5),
            origin: Point2::new(0.05, -0.1),
            inv: [1.3, 0.2, -0.4, 0.9],
        }
    }

    fn sample_subs() -> Vec<(Triangle, f64)> {
        let tris = [
            Triangle::new(
                Point2::new(0.40, 0.45),
                Point2::new(0.62, 0.50),
                Point2::new(0.48, 0.71),
            ),
            Triangle::new(
                Point2::new(0.52, 0.38),
                Point2::new(0.70, 0.61),
                Point2::new(0.41, 0.66),
            ),
            // Far from the test centers: exercises the out-of-support
            // lanes of the vector kernel evaluation.
            Triangle::new(
                Point2::new(3.00, 3.00),
                Point2::new(3.30, 3.05),
                Point2::new(3.10, 3.40),
            ),
        ];
        tris.iter().map(|t| (*t, t.jacobian().abs())).collect()
    }

    /// The scalar reduction must replay the historical per-node expression
    /// tree exactly — verified here against a hand-rolled replay of the
    /// same loop, with exact (bitwise) equality.
    #[test]
    fn sub_staging_matches_pointwise_reference() {
        let kern = Kernel1d::symmetric(2);
        let rule = TriangleRule::with_strength(4);
        let exps = [(0usize, 0usize), (1, 0), (0, 1), (2, 0), (1, 1), (0, 2)];
        let center = Point2::new(0.5, 0.5);
        let inv_h = 1.0 / 0.11;
        let mut s = QuadStage::default();
        for &(tri, jac) in &sample_subs() {
            s.push(tri, jac);
        }
        assert_eq!(s.len(), 3);
        let soa = RuleSoa::new(&rule);
        let c = ctx(&kern, &rule, &soa, &exps, 6, SimdIsa::Scalar, inv_h, center);
        let sums = s.mono_sums(&c);

        let mut want = [0.0f64; MAX_MODES];
        for &(tri, jac) in &sample_subs() {
            for (&(uq, vq), &wq) in rule.points().iter().zip(rule.weights()) {
                let p = tri.map_from_unit(uq, vq);
                let d = (p - c.shift) - c.origin;
                let u = c.inv[0] * d.x + c.inv[1] * d.y;
                let v = c.inv[2] * d.x + c.inv[3] * d.y;
                let kx = kern.eval((p.x - center.x) * inv_h);
                let ky = kern.eval((p.y - center.y) * inv_h);
                let w = (jac * wq) * (((kx * ky) * inv_h) * inv_h);
                for (slot, &(a, b)) in exps.iter().enumerate() {
                    want[slot] += (w * u.powi(a as i32)) * v.powi(b as i32);
                }
            }
        }
        // The powers differ (`powi` vs repeated products), so compare to
        // rounding; the zeroth mode uses no powers and must match bitwise.
        assert!(want[0] != 0.0);
        assert_eq!(sums[0], want[0]);
        for m in 1..6 {
            let tol = 1e-13 * want[m].abs().max(1.0);
            assert!((sums[m] - want[m]).abs() <= tol, "mode {m}");
        }
        s.clear();
        assert!(s.is_empty());
    }

    /// Sub-triangles wholly past the kernel support must vanish on every
    /// ISA — the scalar early return and the vector lane masks agree.
    #[test]
    fn out_of_support_subs_contribute_nothing() {
        let kern = Kernel1d::symmetric(1);
        let rule = TriangleRule::with_strength(2);
        let exps = [(0usize, 0usize)];
        let mut s = QuadStage::default();
        for &(tri, jac) in &sample_subs() {
            s.push(tri, jac);
        }
        // Center far away: every staged node falls outside the support.
        let center = Point2::new(100.0, -40.0);
        let soa = RuleSoa::new(&rule);
        let widest = SimdPolicy::Auto.resolve();
        for isa in [SimdIsa::Scalar, SimdIsa::Avx2, SimdIsa::Avx512] {
            if isa.lanes() > widest.lanes() {
                continue;
            }
            let c = ctx(&kern, &rule, &soa, &exps, 1, isa, 1.0 / 0.11, center);
            assert_eq!(s.mono_sums(&c)[0], 0.0, "{isa:?}");
        }
    }

    /// The vector reductions must agree with scalar to rounding, including
    /// partially-filled tail blocks and out-of-support lanes.
    #[test]
    fn mono_sums_vector_isas_match_scalar_to_rounding() {
        let kern = Kernel1d::symmetric(2);
        // Strength 5 → an odd node count, exercising the padded tail.
        let rule = TriangleRule::with_strength(5);
        let exps = [
            (0usize, 0usize),
            (1, 0),
            (0, 1),
            (2, 0),
            (1, 1),
            (0, 2),
            (3, 0),
            (0, 3),
        ];
        let mut s = QuadStage::default();
        for &(tri, jac) in &sample_subs() {
            s.push(tri, jac);
        }
        let center = Point2::new(0.5, 0.5);
        let inv_h = 1.0 / 0.07;
        let soa = RuleSoa::new(&rule);
        let c0 = ctx(&kern, &rule, &soa, &exps, 8, SimdIsa::Scalar, inv_h, center);
        let reference = s.mono_sums(&c0);
        assert!(reference[0] != 0.0);
        let widest = SimdPolicy::Auto.resolve();
        for isa in [SimdIsa::Avx2, SimdIsa::Avx512] {
            if isa.lanes() > widest.lanes() {
                continue;
            }
            let c = ctx(&kern, &rule, &soa, &exps, 8, isa, inv_h, center);
            let got = s.mono_sums(&c);
            for m in 0..8 {
                let tol = 1e-12 * reference[m].abs().max(1.0);
                assert!(
                    (got[m] - reference[m]).abs() <= tol,
                    "{isa:?} mode {m}: {} vs {}",
                    got[m],
                    reference[m]
                );
            }
        }
    }

    /// Low-order rules (≤ 4 nodes) take the paired AVX-512 path — two
    /// subs per block, odd tail zero-weighted — which must agree with
    /// scalar like every other arm. Three staged subs force the odd tail.
    #[test]
    fn paired_low_order_rule_matches_scalar() {
        let kern = Kernel1d::symmetric(1);
        let rule = TriangleRule::with_strength(2);
        assert!(rule.len() <= 4, "test premise: a low-order rule");
        let exps = [(0usize, 0usize), (1, 0), (0, 1)];
        let mut s = QuadStage::default();
        for &(tri, jac) in &sample_subs() {
            s.push(tri, jac);
        }
        let center = Point2::new(0.5, 0.5);
        let inv_h = 1.0 / 0.13;
        let soa = RuleSoa::new(&rule);
        let c0 = ctx(&kern, &rule, &soa, &exps, 3, SimdIsa::Scalar, inv_h, center);
        let reference = s.mono_sums(&c0);
        assert!(reference[0] != 0.0);
        let widest = SimdPolicy::Auto.resolve();
        for isa in [SimdIsa::Avx2, SimdIsa::Avx512] {
            if isa.lanes() > widest.lanes() {
                continue;
            }
            let c = ctx(&kern, &rule, &soa, &exps, 3, isa, inv_h, center);
            let got = s.mono_sums(&c);
            for m in 0..3 {
                let tol = 1e-12 * reference[m].abs().max(1.0);
                assert!(
                    (got[m] - reference[m]).abs() <= tol,
                    "{isa:?} mode {m}: {} vs {}",
                    got[m],
                    reference[m]
                );
            }
        }
    }

    #[test]
    fn capacity_snapshot_is_stable_after_warmup() {
        let tri = Triangle::new(
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(0.0, 1.0),
        );
        let mut s = Scratch::new();
        for _ in 0..100 {
            s.stage.push(tri, 1.0);
        }
        s.stage.clear();
        let snap = s.capacity();
        for _ in 0..100 {
            s.stage.push(tri, 1.0);
        }
        s.stage.clear();
        assert_eq!(s.capacity(), snap);
    }
}
