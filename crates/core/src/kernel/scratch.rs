//! The reusable per-worker arena of the traversal kernel.
//!
//! Every buffer the hot loop needs lives here, owned by one worker and
//! reused across queries: the candidate id list of the current hash-grid
//! query, a direct-mapped [`ElementData`] cache that removes repeated
//! gathers of the same element, and the SoA quadrature staging buffers the
//! cells-then-modes integration loop consumes. After the first few queries
//! warm the buffers up to their steady-state capacity, the per-query path
//! performs no heap allocation (see [`ScratchCapacity`] and the purity
//! tests).

use crate::integrate::{ElementData, MAX_MODES};

/// Slots of the direct-mapped element cache (power of two). Sized so the
/// cache covers the working set of one stencil query (tens of candidates)
/// plus the overlap between neighbouring queries, while keeping the
/// per-worker footprint bounded (~56 KiB of `ElementData`).
const ELEM_CACHE_SLOTS: usize = 256;

/// Direct-mapped cache of gathered [`ElementData`], keyed by element id.
///
/// One query visits each candidate once, but consecutive queries of a block
/// revisit mostly the same elements; the cache turns those repeat gathers
/// into an id compare. Collisions simply re-gather — the cache is a pure
/// memoization and never changes results.
#[derive(Debug, Clone)]
pub(crate) struct ElemCache {
    /// `id + 1` of the element held in each slot; 0 marks an empty slot.
    tags: Box<[u32]>,
    data: Box<[ElementData]>,
}

impl ElemCache {
    fn new() -> Self {
        Self {
            tags: vec![0u32; ELEM_CACHE_SLOTS].into_boxed_slice(),
            data: vec![ElementData::placeholder(); ELEM_CACHE_SLOTS].into_boxed_slice(),
        }
    }

    /// Returns the cached data of element `id`, gathering through `gather`
    /// on a miss.
    #[inline]
    pub(crate) fn get_or_gather(
        &mut self,
        id: u32,
        gather: impl FnOnce(usize) -> ElementData,
    ) -> &ElementData {
        let slot = id as usize & (ELEM_CACHE_SLOTS - 1);
        if self.tags[slot] != id + 1 {
            self.data[slot] = gather(id as usize);
            self.tags[slot] = id + 1;
        }
        &self.data[slot]
    }

    fn clear(&mut self) {
        self.tags.fill(0);
    }
}

/// SoA staging buffers for the quadrature points of one element-image
/// integration.
///
/// The traversal driver clips and fan-triangulates first, streaming every
/// surviving quadrature point into these parallel arrays (kernel-scaled
/// weight plus the element-frame coordinate powers), then evaluates all
/// modes over the staged batch — the cells-then-modes loop order that keeps
/// the innermost loop a branch-free multiply-accumulate over contiguous
/// `f64` slices.
#[derive(Debug, Clone, Default)]
pub struct QuadStage {
    len: usize,
    /// `|J| · ω_q · K_h(p_q - center)` per staged point.
    w: Vec<f64>,
    /// Element-frame powers `u^a`, indexed by exponent `a` (0..=3).
    u_pow: [Vec<f64>; 4],
    /// Element-frame powers `v^b`, indexed by exponent `b` (0..=3).
    v_pow: [Vec<f64>; 4],
}

impl QuadStage {
    /// Number of staged quadrature points.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is staged.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Discards the staged points (capacity is retained).
    #[inline]
    pub(crate) fn clear(&mut self) {
        self.len = 0;
        self.w.clear();
        for p in &mut self.u_pow {
            p.clear();
        }
        for p in &mut self.v_pow {
            p.clear();
        }
    }

    /// Stages one quadrature point: kernel-scaled weight `w` and the
    /// element-frame coordinates `(u, v)` of the physical point.
    #[inline]
    pub(crate) fn push(&mut self, w: f64, u: f64, v: f64) {
        self.w.push(w);
        let u2 = u * u;
        let v2 = v * v;
        self.u_pow[0].push(1.0);
        self.u_pow[1].push(u);
        self.u_pow[2].push(u2);
        self.u_pow[3].push(u2 * u);
        self.v_pow[0].push(1.0);
        self.v_pow[1].push(v);
        self.v_pow[2].push(v2);
        self.v_pow[3].push(v2 * v);
        self.len += 1;
    }

    /// Reduces the staged batch to per-monomial sums
    /// `S[slot] = Σ_q w_q · u_q^a · v_q^b` for the first `n_modes` exponent
    /// pairs of `exps` — the modes loop of the cells-then-modes order. Each
    /// slot's inner loop is a straight dot product over three contiguous
    /// slices, which the compiler auto-vectorizes.
    pub(crate) fn mono_sums(&self, exps: &[(usize, usize)], n_modes: usize) -> [f64; MAX_MODES] {
        let mut sums = [0.0f64; MAX_MODES];
        let w = &self.w[..self.len];
        for (slot, &(a, b)) in exps.iter().enumerate().take(n_modes) {
            let ua = &self.u_pow[a][..self.len];
            let vb = &self.v_pow[b][..self.len];
            let mut acc = 0.0;
            for q in 0..self.len {
                acc += w[q] * ua[q] * vb[q];
            }
            sums[slot] = acc;
        }
        sums
    }
}

/// Capacity snapshot of a [`Scratch`] arena, for allocation-freedom checks:
/// run a workload once to warm up, snapshot, run it again, and assert the
/// snapshot is unchanged — any growth inside the per-query path would show
/// up here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScratchCapacity {
    /// Capacity of the candidate id buffer.
    pub candidates: usize,
    /// Capacity of the staged-weight buffer (the power buffers track it).
    pub staged: usize,
}

/// The per-worker scratch arena threaded through every traversal.
#[derive(Debug, Clone)]
pub struct Scratch {
    /// Candidate ids of the current hash-grid query.
    pub(crate) candidates: Vec<u32>,
    /// Memoized element gathers.
    pub(crate) cache: ElemCache,
    /// SoA quadrature staging of the current element image.
    pub(crate) stage: QuadStage,
}

impl Scratch {
    /// A fresh arena with warm initial capacities.
    pub fn new() -> Self {
        Self {
            candidates: Vec::with_capacity(64),
            cache: ElemCache::new(),
            stage: QuadStage::default(),
        }
    }

    /// Invalidates the element cache (required when the same arena is
    /// reused against a different mesh or field).
    pub fn invalidate(&mut self) {
        self.cache.clear();
    }

    /// Current buffer capacities (see [`ScratchCapacity`]).
    pub fn capacity(&self) -> ScratchCapacity {
        ScratchCapacity {
            candidates: self.candidates.capacity(),
            staged: self.stage.w.capacity(),
        }
    }
}

impl Default for Scratch {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_push_and_sums() {
        let mut s = QuadStage::default();
        s.push(2.0, 3.0, 5.0);
        s.push(1.0, 1.0, 1.0);
        assert_eq!(s.len(), 2);
        // exps for degree 1: (0,0), (1,0), (0,1)
        let exps = [(0usize, 0usize), (1, 0), (0, 1)];
        let sums = s.mono_sums(&exps, 3);
        assert_eq!(sums[0], 3.0); // 2 + 1
        assert_eq!(sums[1], 7.0); // 2*3 + 1*1
        assert_eq!(sums[2], 11.0); // 2*5 + 1*1
        assert_eq!(sums[3], 0.0);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn stage_cubic_powers() {
        let mut s = QuadStage::default();
        s.push(1.0, 2.0, 3.0);
        let exps = [(3usize, 0usize), (0, 3), (2, 1)];
        let sums = s.mono_sums(&exps, 3);
        assert_eq!(sums[0], 8.0);
        assert_eq!(sums[1], 27.0);
        assert_eq!(sums[2], 12.0);
    }

    #[test]
    fn capacity_snapshot_is_stable_after_warmup() {
        let mut s = Scratch::new();
        for _ in 0..100 {
            s.stage.push(1.0, 0.5, 0.5);
        }
        s.stage.clear();
        let snap = s.capacity();
        for _ in 0..100 {
            s.stage.push(1.0, 0.5, 0.5);
        }
        s.stage.clear();
        assert_eq!(s.capacity(), snap);
    }
}
