//! Contribution sinks: what a traversal *does* with each integrated
//! element image.
//!
//! The traversal driver discovers intersections and reduces every element
//! image to monomial-power sums; a [`ContributionSink`] decides what those
//! sums become. Two production sinks exist:
//!
//! * [`AccumulateSolution`] contracts the sums against the element's own
//!   monomial coefficients — the direct evaluation all four schemes
//!   (per-point, per-element, pipelined, tiled) perform;
//! * [`AccumulateWeights`] keeps the sums symbolic and folds them into
//!   per-mode CSR weights — the evaluation-plan compiler's path.
//!
//! New backends (f32, SIMD batches, GPU staging) plug in here: implement
//! the trait, reuse the driver unchanged.

use crate::integrate::{ElementData, MAX_MODES};
use ustencil_dg::DubinerBasis;

/// Consumer of per-element-image integration results.
///
/// The driver calls [`absorb`](Self::absorb) once per element image whose
/// clipped intersection has positive area, and
/// [`finish_candidate`](Self::finish_candidate) once per candidate element
/// after all of its periodic images have been processed.
pub trait ContributionSink {
    /// Absorbs the monomial-power sums `Σ_q w_q u^a v^b` of one element
    /// image (`elem` is the element the sums belong to).
    fn absorb(&mut self, elem: &ElementData, mono_sums: &[f64; MAX_MODES]);

    /// Called after the last periodic image of candidate `id`; `hit` is
    /// true when any image truly intersected the stencil.
    fn finish_candidate(&mut self, id: u32, hit: bool) {
        let _ = (id, hit);
    }
}

/// The direct-evaluation sink: contracts each element image's monomial
/// sums against the element polynomial, accumulating the post-processed
/// solution value of the current query point.
#[derive(Debug, Clone, Copy, Default)]
pub struct AccumulateSolution {
    value: f64,
}

impl AccumulateSolution {
    /// A sink with a zeroed accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the accumulated value and resets the accumulator for the
    /// next query.
    #[inline]
    pub fn take(&mut self) -> f64 {
        std::mem::take(&mut self.value)
    }
}

impl ContributionSink for AccumulateSolution {
    #[inline]
    fn absorb(&mut self, elem: &ElementData, mono_sums: &[f64; MAX_MODES]) {
        self.value += elem.dot_mono(mono_sums);
    }
}

/// The plan-compilation sink: accumulates each candidate's monomial sums
/// across its periodic images, then transforms monomial → modal once per
/// surviving candidate and appends the per-mode weights to its CSR row.
#[derive(Debug, Clone)]
pub struct AccumulateWeights<'a> {
    basis: &'a DubinerBasis,
    mono_w: [f64; MAX_MODES],
    cols: Vec<u32>,
    weights: Vec<f64>,
    row_entries: u32,
}

impl<'a> AccumulateWeights<'a> {
    /// A sink producing weights in `basis`'s modal expansion.
    pub fn new(basis: &'a DubinerBasis) -> Self {
        Self {
            basis,
            mono_w: [0.0; MAX_MODES],
            cols: Vec::new(),
            weights: Vec::new(),
            row_entries: 0,
        }
    }

    /// Starts a new CSR row (one per query point).
    #[inline]
    pub fn begin_row(&mut self) {
        self.row_entries = 0;
    }

    /// Entries appended to the current row so far.
    #[inline]
    pub fn row_entries(&self) -> u32 {
        self.row_entries
    }

    /// Consumes the sink, returning the accumulated CSR column ids and the
    /// `n_modes`-strided weight array.
    pub fn into_csr(self) -> (Vec<u32>, Vec<f64>) {
        (self.cols, self.weights)
    }
}

impl ContributionSink for AccumulateWeights<'_> {
    #[inline]
    fn absorb(&mut self, elem: &ElementData, mono_sums: &[f64; MAX_MODES]) {
        for (w, s) in self.mono_w.iter_mut().zip(mono_sums).take(elem.n_modes()) {
            *w += s;
        }
    }

    fn finish_candidate(&mut self, id: u32, hit: bool) {
        if hit {
            // Monomial → modal: the transpose of the basis change
            // `ElementData::gather` applies to coefficients.
            let n_modes = self.basis.n_modes();
            self.cols.push(id);
            for m in 0..n_modes {
                let mc = self.basis.monomial_coefficients(m);
                let mut w = 0.0;
                for (slot, &c) in mc.iter().enumerate().take(n_modes) {
                    w += c * self.mono_w[slot];
                }
                self.weights.push(w);
            }
            self.row_entries += 1;
        }
        self.mono_w = [0.0; MAX_MODES];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ustencil_dg::project_l2;
    use ustencil_mesh::{generate_mesh, MeshClass};

    #[test]
    fn solution_sink_contracts_monomials() {
        let mesh = generate_mesh(MeshClass::LowVariance, 40, 1);
        let field = project_l2(&mesh, 1, |x, y| 1.0 + x + y, 0);
        let basis = field.basis().clone();
        let ed = ElementData::gather(&mesh, &field, &basis, 0);
        let mut sink = AccumulateSolution::new();
        // Sums that pick out the constant monomial only.
        let mut sums = [0.0; MAX_MODES];
        sums[0] = 2.0;
        sink.absorb(&ed, &sums);
        let got = sink.take();
        assert_eq!(sink.take(), 0.0, "take must reset");
        // dot_mono with the constant slot equals 2 * mono[0]; cross-check
        // against eval at the element origin (u = v = 0).
        let tri = mesh.triangle(0);
        let at_origin = ed.eval(tri.a, basis.monomial_exponents());
        assert!((got - 2.0 * at_origin).abs() < 1e-12 * at_origin.abs().max(1.0));
    }

    #[test]
    fn weights_sink_rows_and_reset() {
        let basis = DubinerBasis::new(1);
        let mesh = generate_mesh(MeshClass::LowVariance, 40, 1);
        let ed = ElementData::gather_geometry(&mesh, 0, basis.n_modes());
        let mut sink = AccumulateWeights::new(&basis);
        sink.begin_row();
        let mut sums = [0.0; MAX_MODES];
        sums[0] = 1.0;
        sink.absorb(&ed, &sums);
        sink.finish_candidate(7, true);
        // A missed candidate appends nothing but still clears the sums.
        sink.absorb(&ed, &sums);
        sink.finish_candidate(8, false);
        assert_eq!(sink.row_entries(), 1);
        let (cols, weights) = sink.into_csr();
        assert_eq!(cols, vec![7]);
        assert_eq!(weights.len(), basis.n_modes());
        // Constant-monomial sums transform to the modal coefficients of the
        // constant: weight[m] = mc_m[0].
        for (m, &w) in weights.iter().enumerate() {
            assert_eq!(w, basis.monomial_coefficients(m)[0]);
        }
    }
}
