//! The traversal driver: the one copy of the candidate-gather /
//! halo-shift / clip / fan-triangulate / quadrature loop.
//!
//! [`StencilTraversal`] owns the geometry pipeline of Eq. 2 — which lattice
//! squares a (shifted) element overlaps, the Sutherland–Hodgman clip, the
//! fan triangulation, and the quadrature staging — and hands every staged
//! element image to a [`ContributionSink`](super::ContributionSink). The
//! direct schemes and the plan compiler differ only in the sink they plug
//! in and in how they discover (point, element) pairs; the pair-level loop
//! bodies live in [`point_query`](StencilTraversal::point_query) (gather
//! schemes: per-point, plan compile) and
//! [`integrate_image`](StencilTraversal::integrate_image) (scatter scheme:
//! per-element, and through it pipelined and tiled execution).
//!
//! The innermost evaluation is cells-then-modes: all surviving
//! sub-triangles of one element image are staged into the
//! [`QuadStage`](super::QuadStage) first (with their Jacobians), then one
//! pass over the staged batch runs the whole per-node pipeline — unit-map,
//! SIAC kernel weight, element transform, monomial mode reduction —
//! lane-parallel across quadrature nodes on the vector ISAs.

use super::scratch::{QuadStage, ReduceCtx, RuleSoa, Scratch};
use super::sink::ContributionSink;
use crate::integrate::{flops_per_clip, flops_per_quad_eval, needed_shifts, ElementData};
use crate::metrics::Metrics;
use crate::probe::Probe;
use crate::simd::{SimdIsa, SimdPolicy};
use ustencil_geometry::{clip_triangle_rect, fan_triangulate, Aabb, Point2, Vec2, GEOM_EPS};
use ustencil_quadrature::TriangleRule;
use ustencil_siac::Stencil2d;
use ustencil_spatial::TriangleGrid;

/// The shared stencil-traversal driver. Holds everything constant across
/// integrations of one run; per-query mutable state lives in
/// [`Scratch`](super::Scratch) and the sink.
pub struct StencilTraversal<'a> {
    stencil: &'a Stencil2d,
    rule: &'a TriangleRule,
    exps: &'a [(usize, usize)],
    n_modes: usize,
    /// Modeled flops of one quadrature-point evaluation, precomputed.
    eval_flops: u64,
    /// Resolved ISA the staged mode reduction dispatches on.
    simd: SimdIsa,
    /// Zero-padded SoA copy of `rule`, precomputed for the vector arms.
    soa: RuleSoa,
}

impl<'a> StencilTraversal<'a> {
    /// Builds a driver for `n_modes` monomial slots with exponent table
    /// `exps` (the element basis's monomial exponents). The staged mode
    /// reduction dispatches on the host's widest SIMD ISA
    /// ([`SimdPolicy::Auto`]); use [`with_simd`](Self::with_simd) to pin a
    /// resolved ISA instead.
    pub fn new(
        stencil: &'a Stencil2d,
        rule: &'a TriangleRule,
        exps: &'a [(usize, usize)],
        n_modes: usize,
    ) -> Self {
        Self {
            stencil,
            rule,
            exps,
            n_modes,
            eval_flops: flops_per_quad_eval(stencil.kernel().smoothness(), n_modes),
            simd: SimdPolicy::Auto.resolve(),
            soa: RuleSoa::new(rule),
        }
    }

    /// Pins the SIMD ISA of the staged mode reduction (callers resolve
    /// their [`SimdPolicy`] once per run and thread the result here).
    pub fn with_simd(mut self, isa: SimdIsa) -> Self {
        self.simd = isa;
        self
    }

    /// One gather-style query: center the stencil at `center`, walk the
    /// triangle hash grid's candidates, and integrate every periodic image
    /// that meets the support, feeding the sink. This is the shared loop of
    /// the per-point scheme and the plan compiler; they differ only in the
    /// sink and in `elem_load_values` (the modeled memory traffic charged
    /// per candidate — the per-point scheme re-reads element data per pair,
    /// plan compilation charges nothing).
    ///
    /// Counter and probe semantics are exactly the historical ones:
    /// `cells_visited` from the hash-grid walk, one candidates sample per
    /// query, one `intersection_tests` per candidate, one quad-points
    /// sample per shift integration, one sub-regions sample and one
    /// `true_intersections` flag per candidate.
    #[allow(clippy::too_many_arguments)]
    pub fn point_query<S: ContributionSink>(
        &self,
        center: Point2,
        tri_grid: &TriangleGrid,
        gather: impl Fn(usize) -> ElementData,
        elem_load_values: u64,
        scratch: &mut Scratch,
        sink: &mut S,
        metrics: &mut Metrics,
        probe: &mut Probe,
    ) {
        let support = self.stencil.support_rect(center);
        let half_width = self.stencil.width() / 2.0;
        let Scratch {
            candidates,
            cache,
            stage,
        } = scratch;

        metrics.cells_visited += tri_grid.candidate_cells(center, half_width) as u64;
        candidates.clear();
        tri_grid.for_each_candidate(center, half_width, |id| candidates.push(id));
        probe.record_candidates(candidates.len() as u64);

        for &id in candidates.iter() {
            metrics.intersection_tests += 1;
            metrics.elem_data_loads += elem_load_values;
            let ed = cache.get_or_gather(id, &gather);
            let mut hit = false;
            let subregions_before = metrics.subregions;
            for shift in needed_shifts(&support) {
                let bb = Aabb::new(ed.bbox.min + shift, ed.bbox.max + shift);
                if support.intersects_aabb(&bb) {
                    let quads_before = metrics.quad_evals;
                    hit |= self.image_into_sink(center, ed, shift, stage, sink, metrics);
                    probe.record_quad_points(metrics.quad_evals - quads_before);
                }
            }
            probe.record_subregions(metrics.subregions - subregions_before);
            metrics.true_intersections += hit as u64;
            sink.finish_candidate(id, hit);
        }
    }

    /// Integrates the stencil centered at `center` against the periodic
    /// image `elem + shift`, feeding the sink. Returns whether any lattice
    /// square truly intersected the image. This is the scatter-scheme entry
    /// point (the per-element scheme discovers pairs through the point hash
    /// grid and calls this per surviving pair); `point_query` funnels into
    /// the same body.
    ///
    /// The caller has already established that the shifted bounding box
    /// meets the stencil support, and accounts `true_intersections` /
    /// probe samples itself.
    #[inline]
    pub fn integrate_image<S: ContributionSink>(
        &self,
        center: Point2,
        elem: &ElementData,
        shift: Vec2,
        stage: &mut QuadStage,
        sink: &mut S,
        metrics: &mut Metrics,
    ) -> bool {
        self.image_into_sink(center, elem, shift, stage, sink, metrics)
    }

    /// The single copy of the clip / fan-triangulate / quadrature loop.
    ///
    /// Stage 1 (cells): clip each overlapped lattice square against the
    /// shifted triangle, fan-triangulate, and stage every surviving
    /// sub-triangle with its Jacobian. Stage 2 (modes): run the whole
    /// per-node pipeline — map each quadrature node to its physical point,
    /// apply the SIAC kernel weight `K_h`, transform to the element frame,
    /// and reduce to monomial-power sums — in one lane-parallel pass over
    /// the staged batch, handing the sums to the sink.
    fn image_into_sink<S: ContributionSink>(
        &self,
        center: Point2,
        elem: &ElementData,
        shift: Vec2,
        stage: &mut QuadStage,
        sink: &mut S,
        metrics: &mut Metrics,
    ) -> bool {
        let stencil = self.stencil;
        let h = stencil.h();
        let n_cells = stencil.cells_per_side();
        let (lo, _) = stencil.kernel().support();
        let shifted = elem.tri.translate(shift);
        let bbox = Aabb::new(elem.bbox.min + shift, elem.bbox.max + shift);

        // Lattice cell range overlapped by the shifted element's bbox.
        let x_base = center.x + lo * h;
        let y_base = center.y + lo * h;
        let i0 = (((bbox.min.x - x_base) / h).floor().max(0.0)) as usize;
        let j0 = (((bbox.min.y - y_base) / h).floor().max(0.0)) as usize;
        if i0 >= n_cells || j0 >= n_cells {
            return false;
        }
        if bbox.max.x < x_base || bbox.max.y < y_base {
            return false;
        }
        let i1 = ((((bbox.max.x - x_base) / h).floor()) as usize).min(n_cells - 1);
        let j1 = ((((bbox.max.y - y_base) / h).floor()) as usize).min(n_cells - 1);

        let nq = self.rule.len() as u64;
        let (origin, inv) = elem.ref_coords();
        // Same reciprocal `Stencil2d::eval` forms internally, so the
        // deferred scalar kernel weighting reproduces its bits exactly.
        let inv_h = 1.0 / h;

        stage.clear();
        let mut any = false;
        for j in j0..=j1 {
            for i in i0..=i1 {
                let cell = stencil.cell_rect(center, i, j);
                metrics.cell_clips += 1;
                metrics.flops += flops_per_clip();
                let poly = clip_triangle_rect(&shifted, &cell);
                if poly.is_degenerate(GEOM_EPS) {
                    continue;
                }
                any = true;
                for sub in fan_triangulate(&poly) {
                    // Work is accounted per sub-region even when the
                    // degenerate-jacobian guard skips its staging, matching
                    // the historical counter semantics.
                    metrics.subregions += 1;
                    metrics.quad_evals += nq;
                    metrics.flops += nq * self.eval_flops;
                    let jac = sub.jacobian().abs();
                    if jac == 0.0 {
                        continue;
                    }
                    stage.push(sub, jac);
                }
            }
        }
        if !stage.is_empty() {
            let sums = stage.mono_sums(&ReduceCtx {
                exps: self.exps,
                n_modes: self.n_modes,
                isa: self.simd,
                kernel: stencil.kernel(),
                rule: self.rule,
                soa: &self.soa,
                inv_h,
                center,
                shift,
                origin,
                inv: *inv,
            });
            sink.absorb(elem, &sums);
        }
        any
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::AccumulateSolution;
    use ustencil_dg::project_l2;
    use ustencil_mesh::{generate_mesh, MeshClass};
    use ustencil_quadrature::TriangleRule;

    /// The staged SoA path must agree with the fused reference evaluation
    /// (integrate_physical over `K_h · u`) to rounding.
    #[test]
    fn staged_matches_fused_reference() {
        let mesh = generate_mesh(MeshClass::LowVariance, 120, 5);
        let field = project_l2(&mesh, 2, |x, y| 0.3 + x - 0.4 * y + x * y, 1);
        let basis = field.basis().clone();
        let k = 2;
        let stencil = Stencil2d::symmetric(k, mesh.max_edge_length());
        let rule =
            TriangleRule::with_strength(crate::integrate::IntegrationCtx::required_strength(k, 2));
        let exps = basis.monomial_exponents();
        let trav = StencilTraversal::new(&stencil, &rule, exps, basis.n_modes());

        let center = Point2::new(0.5, 0.5);
        let mut stage = QuadStage::default();
        let mut metrics = Metrics::default();
        let mut ref_metrics = Metrics::default();
        let ctx = crate::integrate::IntegrationCtx::new(&stencil, &rule, &basis);
        let mut any_hit = 0u32;
        for e in 0..mesh.n_triangles() {
            let ed = ElementData::gather(&mesh, &field, &basis, e);
            let mut sink = AccumulateSolution::new();
            let hit =
                trav.integrate_image(center, &ed, Vec2::ZERO, &mut stage, &mut sink, &mut metrics);
            let staged = sink.take();
            // Fused reference: kernel × polynomial at each quadrature point.
            let (fused, ref_hit) = fused_reference(&ctx, center, &ed, &mut ref_metrics);
            assert_eq!(hit, ref_hit, "element {e}");
            let tol = 1e-13 * fused.abs().max(1.0);
            assert!(
                (staged - fused).abs() < tol,
                "element {e}: {staged} vs {fused}"
            );
            any_hit += hit as u32;
        }
        assert!(any_hit > 0, "test must exercise intersecting elements");
        // Identical traversal ⇒ identical counters.
        assert_eq!(metrics.cell_clips, ref_metrics.cell_clips);
        assert_eq!(metrics.subregions, ref_metrics.subregions);
        assert_eq!(metrics.quad_evals, ref_metrics.quad_evals);
        assert_eq!(metrics.flops, ref_metrics.flops);
    }

    /// The pre-refactor fused loop, kept in test code as the numerical
    /// reference for the staged path.
    fn fused_reference(
        ctx: &crate::integrate::IntegrationCtx<'_>,
        center: Point2,
        elem: &ElementData,
        metrics: &mut Metrics,
    ) -> (f64, bool) {
        let stencil = ctx.stencil;
        let h = stencil.h();
        let n_cells = stencil.cells_per_side();
        let (lo, _) = stencil.kernel().support();
        let shifted = elem.tri;
        let bbox = elem.bbox;
        let x_base = center.x + lo * h;
        let y_base = center.y + lo * h;
        let i0 = (((bbox.min.x - x_base) / h).floor().max(0.0)) as usize;
        let j0 = (((bbox.min.y - y_base) / h).floor().max(0.0)) as usize;
        if i0 >= n_cells || j0 >= n_cells {
            return (0.0, false);
        }
        if bbox.max.x < x_base || bbox.max.y < y_base {
            return (0.0, false);
        }
        let i1 = ((((bbox.max.x - x_base) / h).floor()) as usize).min(n_cells - 1);
        let j1 = ((((bbox.max.y - y_base) / h).floor()) as usize).min(n_cells - 1);
        let nq = ctx.rule.len() as u64;
        let eval_flops = flops_per_quad_eval(stencil.kernel().smoothness(), elem.n_modes());
        let mut total = 0.0;
        let mut any = false;
        for j in j0..=j1 {
            for i in i0..=i1 {
                let cell = stencil.cell_rect(center, i, j);
                metrics.cell_clips += 1;
                metrics.flops += flops_per_clip();
                let poly = clip_triangle_rect(&shifted, &cell);
                if poly.is_degenerate(GEOM_EPS) {
                    continue;
                }
                any = true;
                for sub in fan_triangulate(&poly) {
                    metrics.subregions += 1;
                    metrics.quad_evals += nq;
                    metrics.flops += nq * eval_flops;
                    total += ctx.rule.integrate_physical(&sub, |x, y| {
                        let p = Point2::new(x, y);
                        stencil.eval(center, p) * elem.eval(p, ctx.exps)
                    });
                }
            }
        }
        (total, any)
    }
}
