//! The stencil-traversal kernel layer: one allocation-free implementation
//! of the clip → fan-triangulate → quadrature core (Eq. 2), shared by
//! every evaluation scheme and the plan compiler.
//!
//! The layer splits three concerns that used to be fused in each scheme:
//!
//! * [`StencilTraversal`] — the *driver*: geometry discovery and the
//!   quadrature staging loop, identical for every consumer;
//! * [`ContributionSink`] — the *consumer*: what staged monomial-power
//!   sums become ([`AccumulateSolution`] for direct evaluation,
//!   [`AccumulateWeights`] for plan compilation; new backends implement
//!   the trait);
//! * [`Scratch`] — the *arena*: per-worker reusable buffers (candidate
//!   list, element-data cache, SoA quadrature staging) that make the
//!   per-query path heap-allocation-free after warm-up.

mod scratch;
mod sink;
mod traversal;

pub use scratch::{QuadStage, Scratch, ScratchCapacity};
pub use sink::{AccumulateSolution, AccumulateWeights, ContributionSink};
pub use traversal::StencilTraversal;
