//! The computation grid: evaluation points derived from the mesh.
//!
//! "A grid of points is defined over the mesh which correspond to the
//! numerical quadrature points for each polygon element" (Section 1). The
//! grid therefore inherits the mesh's structure: regular meshes yield
//! regular grids, unstructured meshes irregular ones (Figure 2).

use ustencil_geometry::Point2;
use ustencil_mesh::TriMesh;
use ustencil_quadrature::TriangleRule;

/// The set of evaluation points of a post-processing run, with the owning
/// element of each point.
#[derive(Debug, Clone)]
pub struct ComputationGrid {
    points: Vec<Point2>,
    owner: Vec<u32>,
    points_per_element: usize,
}

impl ComputationGrid {
    /// The paper's grid: the quadrature points of the degree-`p` projection
    /// rule of every element (strength `2p`, i.e. `(p+1)^2` points per
    /// triangle).
    pub fn quadrature_points(mesh: &TriMesh, p: usize) -> Self {
        let rule = TriangleRule::with_strength(2 * p);
        let ppe = rule.len();
        let mut points = Vec::with_capacity(mesh.n_triangles() * ppe);
        let mut owner = Vec::with_capacity(mesh.n_triangles() * ppe);
        for e in 0..mesh.n_triangles() {
            let tri = mesh.triangle(e);
            for &(u, v) in rule.points() {
                points.push(tri.map_from_unit(u, v));
                owner.push(e as u32);
            }
        }
        Self {
            points,
            owner,
            points_per_element: ppe,
        }
    }

    /// A grid from explicit points and owners (for custom evaluation sets,
    /// e.g. visualization samples).
    ///
    /// # Panics
    /// Panics when lengths differ.
    pub fn from_points(points: Vec<Point2>, owner: Vec<u32>) -> Self {
        assert_eq!(points.len(), owner.len(), "points/owner length mismatch");
        Self {
            points,
            owner,
            points_per_element: 0,
        }
    }

    /// Number of grid points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the grid is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The evaluation points.
    #[inline]
    pub fn points(&self) -> &[Point2] {
        &self.points
    }

    /// Owning element of each point.
    #[inline]
    pub fn owners(&self) -> &[u32] {
        &self.owner
    }

    /// Points per element for quadrature-derived grids (0 for custom grids).
    #[inline]
    pub fn points_per_element(&self) -> usize {
        self.points_per_element
    }

    /// A grid with points renumbered by `point_new_to_old` and owner element
    /// ids translated through `elem_old_to_new` (so owners refer to a mesh
    /// renumbered with the matching element permutation). Quadrature grids
    /// lose their per-element point grouping under reordering, so
    /// `points_per_element` is reset to 0.
    ///
    /// # Panics
    /// Panics when `point_new_to_old` does not match the grid length or
    /// `elem_old_to_new` does not cover every owner id.
    pub fn reordered(&self, point_new_to_old: &[u32], elem_old_to_new: &[u32]) -> Self {
        assert_eq!(
            point_new_to_old.len(),
            self.points.len(),
            "point permutation length mismatch"
        );
        let mut points = Vec::with_capacity(self.points.len());
        let mut owner = Vec::with_capacity(self.owner.len());
        for &old in point_new_to_old {
            points.push(self.points[old as usize]);
            owner.push(elem_old_to_new[self.owner[old as usize] as usize]);
        }
        Self {
            points,
            owner,
            points_per_element: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ustencil_mesh::{generate_mesh, MeshClass};

    #[test]
    fn quadrature_grid_counts() {
        let mesh = generate_mesh(MeshClass::StructuredPattern, 32, 0);
        for p in 1..=3usize {
            let grid = ComputationGrid::quadrature_points(&mesh, p);
            assert_eq!(grid.points_per_element(), (p + 1) * (p + 1));
            assert_eq!(grid.len(), mesh.n_triangles() * (p + 1) * (p + 1));
        }
    }

    #[test]
    fn points_lie_inside_their_owner() {
        let mesh = generate_mesh(MeshClass::LowVariance, 100, 5);
        let grid = ComputationGrid::quadrature_points(&mesh, 2);
        for (p, &e) in grid.points().iter().zip(grid.owners()) {
            assert!(
                mesh.triangle(e as usize).contains(*p, 1e-10),
                "point {p:?} outside element {e}"
            );
        }
    }

    #[test]
    fn points_stay_in_unit_square() {
        let mesh = generate_mesh(MeshClass::HighVariance, 200, 8);
        let grid = ComputationGrid::quadrature_points(&mesh, 1);
        for p in grid.points() {
            assert!(p.x >= -1e-12 && p.x <= 1.0 + 1e-12);
            assert!(p.y >= -1e-12 && p.y <= 1.0 + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_custom_grid_panics() {
        let _ = ComputationGrid::from_points(vec![Point2::ORIGIN], vec![]);
    }
}
