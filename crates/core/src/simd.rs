//! Runtime-dispatched SIMD backend for the two hot inner loops: the staged
//! cells-then-modes quadrature reduction
//! ([`QuadStage`](crate::kernel::QuadStage)`::mono_sums`) and the plan
//! SpMV row kernel in
//! `ustencil-plan`.
//!
//! The design splits *policy* from *dispatch*:
//!
//! - [`SimdPolicy`] is the user-facing knob. It rides
//!   [`PostProcessor`](crate::PostProcessor), `CompileOptions`, and
//!   `DistOptions` exactly like [`Layout`](crate::Layout) does, and is what
//!   CLI flags and plan-cache keys carry.
//! - [`SimdIsa`] is the *resolved* instruction set a run actually executes
//!   with, chosen once per run by [`SimdPolicy::resolve`] from the policy
//!   and the host CPU's feature flags. Hot loops branch on the ISA exactly
//!   once per row/batch (the whole inner loop lives inside one
//!   `#[target_feature]` function), never per element.
//!
//! ## Determinism contract
//!
//! For a fixed `(policy, CPU)` pair every run is deterministic: `resolve`
//! is a pure function of the policy and the host feature flags, and every
//! vector kernel reduces its lanes in a fixed order. Across *different*
//! ISAs results agree to ≤1e-12 relative, not bitwise: the vector kernels
//! reassociate the reduction (lane-parallel partial sums) and contract
//! `a*b+acc` into fused multiply-adds (one rounding instead of two).
//! [`SimdIsa::Scalar`] is the exception — its loops are byte-for-byte the
//! pre-SIMD kernels, so a `SimdPolicy::Scalar` run is *bitwise* identical
//! to historical golden fixtures on any CPU.
//!
//! [`SimdPolicy::Forced`] never silently narrows: forcing a width the CPU
//! lacks falls back to `Scalar` (the only other bit-stable choice), not to
//! a narrower vector.

use std::sync::OnceLock;

/// Environment variable consulted by [`SimdPolicy::Auto`]: set
/// `USTENCIL_SIMD=scalar|f64x4|f64x8|auto` to steer every `Auto` resolution
/// in the process without plumbing options through call sites (this is how
/// the CI scalar leg forces the fallback across the whole test suite).
/// Explicit `Scalar`/`Forced` policies ignore it.
pub const SIMD_ENV: &str = "USTENCIL_SIMD";

/// Vector width of a forced SIMD policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdWidth {
    /// 4 × f64 lanes (AVX2 + FMA, 256-bit).
    F64x4,
    /// 8 × f64 lanes (AVX-512F, 512-bit).
    F64x8,
}

/// How the evaluation kernels pick their vector width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SimdPolicy {
    /// Use the widest ISA the host supports (the default). Honors the
    /// [`SIMD_ENV`] process-wide override.
    #[default]
    Auto,
    /// Run the scalar kernels — byte-for-byte the pre-SIMD loops, the
    /// bit-compatibility anchor for golden fixtures.
    Scalar,
    /// Require a specific vector width; falls back to [`Scalar`]
    /// (never a narrower vector) when the host lacks it.
    ///
    /// [`Scalar`]: SimdPolicy::Scalar
    Forced(SimdWidth),
}

/// The instruction set a run resolved to — what the hot loops dispatch on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdIsa {
    /// Portable scalar loops, bit-identical to the pre-SIMD kernels.
    Scalar,
    /// AVX2 + FMA, 4 × f64 lanes.
    Avx2,
    /// AVX-512F, 8 × f64 lanes.
    Avx512,
}

impl SimdWidth {
    fn isa(self) -> SimdIsa {
        match self {
            SimdWidth::F64x4 => SimdIsa::Avx2,
            SimdWidth::F64x8 => SimdIsa::Avx512,
        }
    }

    fn supported(self) -> bool {
        match self {
            SimdWidth::F64x4 => avx2_available(),
            SimdWidth::F64x8 => avx512_available(),
        }
    }
}

impl SimdPolicy {
    /// Every policy, in label order — the CLI's menu and the round-trip
    /// test surface (mirrors [`Layout::ALL`](crate::Layout::ALL)).
    pub const ALL: [SimdPolicy; 4] = [
        SimdPolicy::Auto,
        SimdPolicy::Scalar,
        SimdPolicy::Forced(SimdWidth::F64x4),
        SimdPolicy::Forced(SimdWidth::F64x8),
    ];

    /// Stable label, used by CLI flags, report JSON, and [`SIMD_ENV`].
    pub fn label(self) -> &'static str {
        match self {
            SimdPolicy::Auto => "auto",
            SimdPolicy::Scalar => "scalar",
            SimdPolicy::Forced(SimdWidth::F64x4) => "f64x4",
            SimdPolicy::Forced(SimdWidth::F64x8) => "f64x8",
        }
    }

    /// Exact inverse of [`label`](Self::label) (by construction: searches
    /// [`ALL`](Self::ALL)).
    pub fn from_label(label: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.label() == label)
    }

    /// Resolves the policy against the host CPU, once per run.
    ///
    /// `Auto` picks the widest supported ISA (consulting [`SIMD_ENV`]
    /// first); `Forced` degrades to `Scalar` when unsupported; `Scalar` is
    /// always `Scalar`. Pure in (policy, CPU, environment), so two runs
    /// under the same policy on the same host always execute the same
    /// kernels.
    pub fn resolve(self) -> SimdIsa {
        match self {
            SimdPolicy::Scalar => SimdIsa::Scalar,
            SimdPolicy::Forced(w) => {
                if w.supported() {
                    w.isa()
                } else {
                    SimdIsa::Scalar
                }
            }
            SimdPolicy::Auto => match env_override() {
                Some(SimdPolicy::Scalar) => SimdIsa::Scalar,
                Some(SimdPolicy::Forced(w)) => {
                    if w.supported() {
                        w.isa()
                    } else {
                        SimdIsa::Scalar
                    }
                }
                _ => widest_available(),
            },
        }
    }
}

impl SimdIsa {
    /// Stable label for report JSON (`"scalar"`, `"avx2"`, `"avx512"`).
    pub fn label(self) -> &'static str {
        match self {
            SimdIsa::Scalar => "scalar",
            SimdIsa::Avx2 => "avx2",
            SimdIsa::Avx512 => "avx512",
        }
    }

    /// f64 lanes per vector register (1 for scalar).
    pub fn lanes(self) -> usize {
        match self {
            SimdIsa::Scalar => 1,
            SimdIsa::Avx2 => 4,
            SimdIsa::Avx512 => 8,
        }
    }

    /// Nominal peak f64 throughput of one core at this ISA, in GFLOP/s —
    /// the denominator of the report's `fraction_of_peak`. A device-model
    /// constant (2 FMA ports × 2 flops per FMA × lanes × a nominal 3 GHz),
    /// deliberately not probed from the host: the fraction is a stable
    /// cross-run efficiency yardstick, not a hardware benchmark.
    pub fn nominal_peak_gflops(self) -> f64 {
        2.0 * 2.0 * self.lanes() as f64 * 3.0
    }
}

/// The widest ISA this host supports.
fn widest_available() -> SimdIsa {
    if avx512_available() {
        SimdIsa::Avx512
    } else if avx2_available() {
        SimdIsa::Avx2
    } else {
        SimdIsa::Scalar
    }
}

/// The parsed [`SIMD_ENV`] override, read once per process. An unset or
/// unparsable value means no override.
fn env_override() -> Option<SimdPolicy> {
    static OVERRIDE: OnceLock<Option<SimdPolicy>> = OnceLock::new();
    *OVERRIDE.get_or_init(|| {
        std::env::var(SIMD_ENV)
            .ok()
            .and_then(|v| SimdPolicy::from_label(v.trim()))
    })
}

#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
}

#[cfg(target_arch = "x86_64")]
fn avx512_available() -> bool {
    std::arch::is_x86_feature_detected!("avx512f")
}

#[cfg(not(target_arch = "x86_64"))]
fn avx2_available() -> bool {
    false
}

#[cfg(not(target_arch = "x86_64"))]
fn avx512_available() -> bool {
    false
}

/// The staged quadrature reduction: `Σ_q w[q] · a[q] · b[q]` over equal-
/// length slices, dispatched on `isa`.
///
/// The scalar arm is byte-for-byte the historical `mono_sums` inner loop
/// (one multiply-then-add chain in index order), so `SimdIsa::Scalar`
/// reproduces pre-SIMD results bitwise. The vector arms batch lane-parallel
/// across quadrature cells — the across-entity batching of
/// Kronbichler & Kormann — with two independent accumulator vectors to
/// hide FMA latency, a fixed-order horizontal reduction at the end, and a
/// scalar tail for the remainder; they agree with scalar to rounding
/// (≤1e-12 relative), not bitwise.
#[inline]
pub fn dot3(isa: SimdIsa, w: &[f64], a: &[f64], b: &[f64]) -> f64 {
    debug_assert!(w.len() == a.len() && w.len() == b.len());
    match isa {
        SimdIsa::Scalar => dot3_scalar(w, a, b),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `resolve` only yields these ISAs when the CPU reports the
        // matching feature flags.
        SimdIsa::Avx2 => unsafe { dot3_avx2(w, a, b) },
        #[cfg(target_arch = "x86_64")]
        SimdIsa::Avx512 => unsafe { dot3_avx512(w, a, b) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => dot3_scalar(w, a, b),
    }
}

#[inline]
fn dot3_scalar(w: &[f64], a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    for q in 0..w.len() {
        acc += w[q] * a[q] * b[q];
    }
    acc
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn dot3_avx2(w: &[f64], a: &[f64], b: &[f64]) -> f64 {
    use core::arch::x86_64::*;
    let n = w.len();
    let (wp, ap, bp) = (w.as_ptr(), a.as_ptr(), b.as_ptr());
    let mut acc0 = _mm256_setzero_pd();
    let mut acc1 = _mm256_setzero_pd();
    let mut q = 0;
    while q + 8 <= n {
        let t0 = _mm256_mul_pd(_mm256_loadu_pd(wp.add(q)), _mm256_loadu_pd(ap.add(q)));
        acc0 = _mm256_fmadd_pd(t0, _mm256_loadu_pd(bp.add(q)), acc0);
        let t1 = _mm256_mul_pd(
            _mm256_loadu_pd(wp.add(q + 4)),
            _mm256_loadu_pd(ap.add(q + 4)),
        );
        acc1 = _mm256_fmadd_pd(t1, _mm256_loadu_pd(bp.add(q + 4)), acc1);
        q += 8;
    }
    if q + 4 <= n {
        let t = _mm256_mul_pd(_mm256_loadu_pd(wp.add(q)), _mm256_loadu_pd(ap.add(q)));
        acc0 = _mm256_fmadd_pd(t, _mm256_loadu_pd(bp.add(q)), acc0);
        q += 4;
    }
    let mut lanes = [0.0f64; 4];
    _mm256_storeu_pd(lanes.as_mut_ptr(), _mm256_add_pd(acc0, acc1));
    let mut acc = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    while q < n {
        acc += w[q] * a[q] * b[q];
        q += 1;
    }
    acc
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn dot3_avx512(w: &[f64], a: &[f64], b: &[f64]) -> f64 {
    use core::arch::x86_64::*;
    let n = w.len();
    let (wp, ap, bp) = (w.as_ptr(), a.as_ptr(), b.as_ptr());
    let mut acc0 = _mm512_setzero_pd();
    let mut acc1 = _mm512_setzero_pd();
    let mut q = 0;
    while q + 16 <= n {
        let t0 = _mm512_mul_pd(_mm512_loadu_pd(wp.add(q)), _mm512_loadu_pd(ap.add(q)));
        acc0 = _mm512_fmadd_pd(t0, _mm512_loadu_pd(bp.add(q)), acc0);
        let t1 = _mm512_mul_pd(
            _mm512_loadu_pd(wp.add(q + 8)),
            _mm512_loadu_pd(ap.add(q + 8)),
        );
        acc1 = _mm512_fmadd_pd(t1, _mm512_loadu_pd(bp.add(q + 8)), acc1);
        q += 16;
    }
    if q + 8 <= n {
        let t = _mm512_mul_pd(_mm512_loadu_pd(wp.add(q)), _mm512_loadu_pd(ap.add(q)));
        acc0 = _mm512_fmadd_pd(t, _mm512_loadu_pd(bp.add(q)), acc0);
        q += 8;
    }
    // Remainder lanes via a masked load: fault-suppressing, so reading a
    // partial block at the slice end never touches memory past it.
    if q < n {
        let mask: __mmask8 = (1u8 << (n - q)) - 1;
        let t = _mm512_mul_pd(
            _mm512_maskz_loadu_pd(mask, wp.add(q)),
            _mm512_maskz_loadu_pd(mask, ap.add(q)),
        );
        acc1 = _mm512_fmadd_pd(t, _mm512_maskz_loadu_pd(mask, bp.add(q)), acc1);
    }
    let mut lanes = [0.0f64; 8];
    _mm512_storeu_pd(lanes.as_mut_ptr(), _mm512_add_pd(acc0, acc1));
    ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
        + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip_over_all_policies() {
        for p in SimdPolicy::ALL {
            assert_eq!(SimdPolicy::from_label(p.label()), Some(p));
        }
        assert_eq!(SimdPolicy::from_label("avx99"), None);
        assert_eq!(SimdPolicy::default(), SimdPolicy::Auto);
    }

    #[test]
    fn scalar_policy_always_resolves_scalar() {
        assert_eq!(SimdPolicy::Scalar.resolve(), SimdIsa::Scalar);
    }

    #[test]
    fn forced_policies_never_narrow_to_another_vector() {
        for w in [SimdWidth::F64x4, SimdWidth::F64x8] {
            let isa = SimdPolicy::Forced(w).resolve();
            assert!(
                isa == w.isa() || isa == SimdIsa::Scalar,
                "forced {w:?} resolved to {isa:?}"
            );
        }
    }

    #[test]
    fn auto_resolution_is_stable() {
        let a = SimdPolicy::Auto.resolve();
        let b = SimdPolicy::Auto.resolve();
        assert_eq!(a, b, "resolution must be deterministic per process");
    }

    #[test]
    fn isa_shape_is_consistent() {
        for isa in [SimdIsa::Scalar, SimdIsa::Avx2, SimdIsa::Avx512] {
            assert!(isa.lanes().is_power_of_two());
            assert!(isa.nominal_peak_gflops() > 0.0);
            assert!(!isa.label().is_empty());
        }
        assert_eq!(SimdIsa::Scalar.lanes(), 1);
        assert!(SimdIsa::Avx512.nominal_peak_gflops() > SimdIsa::Avx2.nominal_peak_gflops());
    }

    #[test]
    fn dot3_vector_arms_match_scalar_to_rounding() {
        // Deterministic pseudo-random data over lengths that hit every
        // unroll/tail combination of the vector kernels.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 100] {
            let w: Vec<f64> = (0..n).map(|_| next()).collect();
            let a: Vec<f64> = (0..n).map(|_| next()).collect();
            let b: Vec<f64> = (0..n).map(|_| next()).collect();
            let reference = dot3(SimdIsa::Scalar, &w, &a, &b);
            for isa in [SimdIsa::Avx2, SimdIsa::Avx512] {
                if isa.lanes() > SimdPolicy::Auto.resolve().lanes() {
                    continue; // host lacks the ISA; nothing to test
                }
                let got = dot3(isa, &w, &a, &b);
                let tol = 1e-12 * reference.abs().max(1.0);
                assert!(
                    (got - reference).abs() <= tol,
                    "{isa:?} n={n}: {got} vs {reference}"
                );
            }
        }
    }

    #[test]
    fn scalar_dot3_is_the_reference_loop() {
        // Pin the scalar arm's arithmetic order bitwise: mul-then-add in
        // index order, no FMA contraction, no reassociation.
        let w = [0.1, 0.2, 0.3, 0.4, 0.5];
        let a = [1.5, -2.5, 3.5, -4.5, 5.5];
        let b = [-0.7, 0.9, -1.1, 1.3, -1.7];
        let mut expect = 0.0f64;
        for q in 0..w.len() {
            expect += w[q] * a[q] * b[q];
        }
        assert_eq!(
            dot3(SimdIsa::Scalar, &w, &a, &b).to_bits(),
            expect.to_bits()
        );
    }
}
