//! Pipelined tiling — the alternative Section 4 considers and discards.
//!
//! "We also explored a pipe-lined tiling method, but this introduces
//! additional synchronizations between pipeline stages. There is no
//! additional memory overhead introduced by pipe-lining, but there is
//! reduction in overall performance."
//!
//! Instead of giving each patch a private partial-solution buffer, the
//! patches are greedily colored so that no two patches in the same *stage*
//! can touch the same grid point; stages execute one after another (a
//! barrier between stages), and every patch writes directly into the shared
//! solution vector. Memory overhead is exactly 1.0 — and the stage barriers
//! serialize part of the execution, which is what the ablation bench
//! measures against overlapped tiling.

use crate::metrics::Metrics;
use crate::per_element::PerElementRun;
use crate::probe::BlockStats;
use rayon::prelude::*;
use ustencil_geometry::Aabb;
use ustencil_mesh::Partition;
use ustencil_trace::Tracer;

/// The stage schedule of a pipelined execution.
#[derive(Debug, Clone)]
pub struct PipelineSchedule {
    /// `stages[s]` holds the patch indices executing concurrently in
    /// stage `s`.
    pub stages: Vec<Vec<usize>>,
}

impl PipelineSchedule {
    /// Number of stages (synchronization points).
    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }
}

/// Builds a stage schedule by greedy interval-graph coloring of the
/// patches' *influence regions* — each patch's element bounding box
/// inflated by half the stencil width. Patches whose influence regions
/// overlap may write to the same grid points and are placed in different
/// stages.
pub fn schedule_pipeline(run: &PerElementRun<'_>, partition: &Partition) -> PipelineSchedule {
    let half_width = run.stencil.width() / 2.0;
    // Influence region of each patch.
    let regions: Vec<Aabb> = partition
        .patches()
        .map(|patch| {
            let bb = patch.iter().fold(Aabb::EMPTY, |b, &e| {
                b.union(&run.mesh.triangle(e as usize).aabb())
            });
            bb.inflate(half_width)
        })
        .collect();

    // Periodic overlap test: regions live on the unit torus, so compare
    // against the nine translates.
    let overlaps = |a: &Aabb, b: &Aabb| -> bool {
        if a.is_empty() || b.is_empty() {
            return false;
        }
        ustencil_mesh::PERIODIC_SHIFTS
            .iter()
            .any(|&s| a.intersects(&b.translate(s)))
    };

    let n = regions.len();
    let mut stage_of = vec![usize::MAX; n];
    let mut stages: Vec<Vec<usize>> = Vec::new();
    for p in 0..n {
        // First stage whose members don't overlap patch p.
        let mut placed = false;
        for (s, members) in stages.iter_mut().enumerate() {
            if members.iter().all(|&q| !overlaps(&regions[p], &regions[q])) {
                members.push(p);
                stage_of[p] = s;
                placed = true;
                break;
            }
        }
        if !placed {
            stage_of[p] = stages.len();
            stages.push(vec![p]);
        }
    }
    PipelineSchedule { stages }
}

/// Executes the per-element scheme with pipelined tiling: stages run
/// sequentially; patches within a stage run concurrently and write straight
/// into the shared solution vector (their influence regions are disjoint,
/// so no two touch the same point). Returns the solution, per-patch
/// metrics (indexed by patch), and the schedule used.
pub fn run_pipelined(
    run: &PerElementRun<'_>,
    partition: &Partition,
    parallel: bool,
) -> (Vec<f64>, Vec<Metrics>, PipelineSchedule) {
    let (values, stats, schedule) =
        run_pipelined_instrumented(run, partition, parallel, false, &Tracer::disabled());
    (values, BlockStats::metrics_of(&stats), schedule)
}

/// [`run_pipelined`] with full observability: per-patch stats, optional
/// distribution probes, and one `pipeline.stage` span per synchronization
/// stage on `tracer` — making the stage barriers (the scheme's cost) visible
/// in the phase report.
pub fn run_pipelined_instrumented(
    run: &PerElementRun<'_>,
    partition: &Partition,
    parallel: bool,
    instrument: bool,
    tracer: &Tracer,
) -> (Vec<f64>, Vec<BlockStats>, PipelineSchedule) {
    let schedule = {
        let _span = tracer.span("pipeline.schedule");
        schedule_pipeline(run, partition)
    };
    let mut values = vec![0.0; run.grid.len()];
    let mut stats = vec![BlockStats::bare(Metrics::default()); partition.n_patches()];

    for stage in &schedule.stages {
        let _span = tracer.span("pipeline.stage");
        // Within a stage, influence regions are disjoint, so direct writes
        // cannot race; each worker still produces its partials locally and
        // we apply them after the join, which keeps the code safe without
        // unsafe shared mutation.
        let results: Vec<(usize, crate::per_element::PatchResult, BlockStats)> = if parallel {
            stage
                .par_iter()
                .map(|&p| {
                    let (r, s) = run.run_patch_instrumented(partition.patch(p), instrument);
                    (p, r, s)
                })
                .collect()
        } else {
            stage
                .iter()
                .map(|&p| {
                    let (r, s) = run.run_patch_instrumented(partition.patch(p), instrument);
                    (p, r, s)
                })
                .collect()
        };
        for (p, result, mut st) in results {
            for &(id, v) in &result.partials {
                values[id as usize] += v;
            }
            // Pipelining stores no partial copies: one slot per touched
            // point in the single shared buffer; report the no-overhead
            // accounting the paper describes.
            st.metrics.partial_slots = 0;
            stats[p] = st;
        }
    }
    // Baseline storage: the shared solution itself.
    if let Some(first) = stats.first_mut() {
        first.metrics.partial_slots = run.grid.len() as u64;
    }
    (values, stats, schedule)
}

/// Simulated execution time of a pipelined run: stages execute back to
/// back; within a stage, blocks are LPT-scheduled onto the SMs of all
/// devices.
pub fn simulate_pipelined(
    block_metrics: &[Metrics],
    schedule: &PipelineSchedule,
    config: &crate::device::DeviceConfig,
) -> f64 {
    let cycles_to_ms = 1.0 / (config.cost.clock_ghz * 1e6);
    let total_sms = config.n_devices * config.n_sms;
    let mut total_cycles = 0.0;
    for stage in &schedule.stages {
        let mut costs: Vec<f64> = stage
            .iter()
            .map(|&p| {
                config
                    .cost
                    .block_cycles(crate::engine::Scheme::PerElement, &block_metrics[p])
            })
            .collect();
        costs.sort_by(|a, b| b.total_cmp(a));
        let mut sms = vec![0.0f64; total_sms];
        for c in costs {
            // Place on the least-loaded SM; a zero-SM configuration (caller
            // bug) degrades to dropping the work instead of aborting.
            if let Some((imin, _)) = sms.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1)) {
                sms[imin] += c;
            }
        }
        total_cycles += sms.iter().fold(0.0f64, |a, &b| a.max(b));
    }
    total_cycles * cycles_to_ms
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid_points::ComputationGrid;
    use crate::integrate::IntegrationCtx;
    use ustencil_dg::project_l2;
    use ustencil_mesh::{generate_mesh, partition_recursive_bisection, MeshClass};
    use ustencil_quadrature::TriangleRule;
    use ustencil_siac::Stencil2d;
    use ustencil_spatial::{Boundary, PointGrid};

    struct Fixture {
        mesh: ustencil_mesh::TriMesh,
        field: ustencil_dg::DgField,
        grid: ComputationGrid,
        stencil: Stencil2d,
        pgrid: PointGrid,
        rule: TriangleRule,
    }

    fn setup(n_tri: usize, seed: u64) -> Fixture {
        let mesh = generate_mesh(MeshClass::LowVariance, n_tri, seed);
        let field = project_l2(&mesh, 1, |x, y| x * y + 0.5 * x, 0);
        let grid = ComputationGrid::quadrature_points(&mesh, 1);
        // A narrow stencil so patches can actually be independent.
        let h = mesh.max_edge_length() * 0.5;
        let stencil = Stencil2d::symmetric(1, h);
        let pgrid =
            PointGrid::build_half_edge(grid.points(), mesh.max_edge_length(), Boundary::Clamped);
        let rule = TriangleRule::with_strength(IntegrationCtx::required_strength(1, 1));
        Fixture {
            mesh,
            field,
            grid,
            stencil,
            pgrid,
            rule,
        }
    }

    fn run_of(f: &Fixture) -> PerElementRun<'_> {
        PerElementRun {
            mesh: &f.mesh,
            field: &f.field,
            grid: &f.grid,
            stencil: &f.stencil,
            point_grid: &f.pgrid,
            rule: &f.rule,
            simd: crate::simd::SimdIsa::Scalar,
        }
    }

    #[test]
    fn pipelined_matches_overlapped() {
        let f = setup(600, 5);
        let run = run_of(&f);
        let partition = partition_recursive_bisection(&f.mesh, 16);
        let (overlapped, _) = run.run(&partition, false);
        let (pipelined, _, schedule) = run_pipelined(&run, &partition, false);
        assert!(schedule.n_stages() >= 1);
        for (a, b) in overlapped.iter().zip(&pipelined) {
            assert!((a - b).abs() < 1e-11, "{a} vs {b}");
        }
    }

    #[test]
    fn stages_have_disjoint_influence_regions() {
        let f = setup(600, 7);
        let run = run_of(&f);
        let partition = partition_recursive_bisection(&f.mesh, 16);
        let schedule = schedule_pipeline(&run, &partition);
        let half_width = f.stencil.width() / 2.0;
        for stage in &schedule.stages {
            for (i, &p) in stage.iter().enumerate() {
                for &q in &stage[i + 1..] {
                    let rp = partition.patch(p).iter().fold(Aabb::EMPTY, |b, &e| {
                        b.union(&f.mesh.triangle(e as usize).aabb())
                    });
                    let rq = partition.patch(q).iter().fold(Aabb::EMPTY, |b, &e| {
                        b.union(&f.mesh.triangle(e as usize).aabb())
                    });
                    assert!(
                        !rp.inflate(half_width).intersects(&rq.inflate(half_width)),
                        "patches {p} and {q} share a stage but overlap"
                    );
                }
            }
        }
    }

    #[test]
    fn pipelining_needs_multiple_stages_and_is_slower_in_simulation() {
        let f = setup(600, 3);
        let run = run_of(&f);
        let partition = partition_recursive_bisection(&f.mesh, 16);
        let (_, blocks, schedule) = run_pipelined(&run, &partition, false);
        // Neighboring patches always conflict, so more than one stage.
        assert!(schedule.n_stages() > 1, "expected synchronization stages");
        let cfg = crate::device::DeviceConfig::default();
        let pipe_ms = simulate_pipelined(&blocks, &schedule, &cfg);
        let (_, overlapped_blocks) = run.run(&partition, false);
        let over_ms =
            crate::device::simulate(crate::engine::Scheme::PerElement, &overlapped_blocks, &cfg)
                .total_ms;
        assert!(
            pipe_ms > over_ms * 0.9,
            "pipelined {pipe_ms} should not beat overlapped {over_ms} materially"
        );
    }

    #[test]
    fn instrumented_pipelined_records_stage_spans() {
        let f = setup(400, 2);
        let run = run_of(&f);
        let partition = partition_recursive_bisection(&f.mesh, 8);
        let tracer = Tracer::new(true);
        let (values, stats, schedule) =
            run_pipelined_instrumented(&run, &partition, false, true, &tracer);
        let (plain, metrics, _) = run_pipelined(&run, &partition, false);
        assert_eq!(values, plain);
        assert_eq!(BlockStats::metrics_of(&stats), metrics);
        let records = tracer.into_records();
        let stage_spans = records
            .iter()
            .filter(|r| r.name == "pipeline.stage")
            .count();
        assert_eq!(stage_spans, schedule.n_stages());
        assert!(records.iter().any(|r| r.name == "pipeline.schedule"));
        assert!(records.iter().all(|r| r.duration_ns > 0));
        // Per-patch probes made it through the stage joins.
        let probe = BlockStats::merged_probe(&stats);
        assert!(probe.candidates_per_query().count() > 0);
    }

    #[test]
    fn parallel_pipelined_matches_sequential() {
        let f = setup(400, 9);
        let run = run_of(&f);
        let partition = partition_recursive_bisection(&f.mesh, 8);
        let (seq, _, _) = run_pipelined(&run, &partition, false);
        let (par, _, _) = run_pipelined(&run, &partition, true);
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a, b);
        }
    }
}
