//! Multi-device distribution of tiled work.
//!
//! Section 4: "For multi-GPU decomposition we divide the mesh into
//! `N_GPU x N_SM` patches ... evenly distributing them between the GPUs",
//! followed by a two-stage reduction — each device reduces the patches it
//! processed, then the per-device results are reduced once more.

use crate::per_element::PatchResult;
use ustencil_trace::Tracer;

/// Round-robin assignment of `n_patches` patch indices to `n_devices`
/// devices (the paper's even distribution).
///
/// # Panics
/// Panics when `n_devices == 0`.
pub fn assign_patches(n_patches: usize, n_devices: usize) -> Vec<Vec<usize>> {
    assert!(n_devices > 0, "need at least one device");
    let mut out = vec![Vec::with_capacity(n_patches.div_ceil(n_devices)); n_devices];
    for p in 0..n_patches {
        out[p % n_devices].push(p);
    }
    out
}

/// Accumulates sparse `(point id, value)` partials into a dense output.
/// The shared stage-1 primitive of both the in-process two-stage reduction
/// and the distributed runtime's per-rank local reduce — using the same
/// accumulation (in the same partial order) is what keeps the two paths
/// bitwise identical.
#[inline]
pub fn add_partials(partials: &[(u32, f64)], out: &mut [f64]) {
    for &(id, v) in partials {
        out[id as usize] += v;
    }
}

/// The two-stage reduction: per-device partial sums, then a cross-device
/// sum. Numerically equivalent to the single-stage reduction because each
/// point's contributions are still added in ascending patch order within
/// a device and devices hold disjoint patch sets.
pub fn two_stage_reduce(
    results: &[PatchResult],
    assignment: &[Vec<usize>],
    n_points: usize,
) -> Vec<f64> {
    two_stage_reduce_traced(results, assignment, n_points, &Tracer::disabled())
}

/// [`two_stage_reduce`] with phase spans: `reduce.per_device` covers the
/// per-device partial sums, `reduce.cross_device` the final sum across
/// devices.
pub fn two_stage_reduce_traced(
    results: &[PatchResult],
    assignment: &[Vec<usize>],
    n_points: usize,
    tracer: &Tracer,
) -> Vec<f64> {
    // Stage 1: each device reduces its own patches.
    let stage1: Vec<Vec<f64>> = {
        let _span = tracer.span("reduce.per_device");
        assignment
            .iter()
            .map(|patches| {
                let mut local = vec![0.0; n_points];
                for &p in patches {
                    add_partials(&results[p].partials, &mut local);
                }
                local
            })
            .collect()
    };
    // Stage 2: reduce the per-device solutions.
    let _span = tracer.span("reduce.cross_device");
    let mut total = vec![0.0; n_points];
    for local in stage1 {
        for (t, v) in total.iter_mut().zip(local) {
            *t += v;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use crate::per_element::reduce_patches;

    fn fake_results() -> Vec<PatchResult> {
        vec![
            PatchResult {
                partials: vec![(0, 1.0), (2, 0.5)],
                metrics: Metrics::default(),
            },
            PatchResult {
                partials: vec![(1, 2.0), (2, 0.25)],
                metrics: Metrics::default(),
            },
            PatchResult {
                partials: vec![(0, -0.5), (3, 4.0)],
                metrics: Metrics::default(),
            },
        ]
    }

    #[test]
    fn assignment_is_balanced_and_complete() {
        let a = assign_patches(10, 4);
        assert_eq!(a.len(), 4);
        let sizes: Vec<usize> = a.iter().map(Vec::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
        let mut all: Vec<usize> = a.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn two_stage_equals_single_stage() {
        let results = fake_results();
        let single = reduce_patches(&results, 4);
        for n_dev in 1..=3 {
            let assignment = assign_patches(results.len(), n_dev);
            let two = two_stage_reduce(&results, &assignment, 4);
            assert_eq!(single, two, "n_dev={n_dev}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_devices_panics() {
        let _ = assign_patches(4, 0);
    }

    #[test]
    fn traced_reduce_records_both_phases() {
        let results = fake_results();
        let assignment = assign_patches(results.len(), 2);
        let tracer = Tracer::new(true);
        let traced = two_stage_reduce_traced(&results, &assignment, 4, &tracer);
        assert_eq!(traced, reduce_patches(&results, 4));
        let names: Vec<String> = tracer.into_records().into_iter().map(|r| r.name).collect();
        assert_eq!(names, ["reduce.per_device", "reduce.cross_device"]);
    }
}
