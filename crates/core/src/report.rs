//! The structured run report: one JSON-serializable record unifying phase
//! spans, per-patch stats, distribution histograms, and the cost-model
//! simulation of a post-processing run.
//!
//! A [`RunReport`] is what the `reproduce` harness writes with `--json` and
//! what CI parses back to validate artifacts; [`RunReport::from_json`]
//! reverses [`RunReport::to_json`] exactly (emit → parse → compare is a
//! unit-tested identity). Derived quantities — the load-imbalance summary
//! and simulated GFLOP/s — are emitted for readability but recomputed on
//! parse, so they can never disagree with the underlying data.

use crate::device::SimReport;
use crate::engine::Solution;
use crate::metrics::Metrics;
use crate::probe::BlockStats;
use ustencil_trace::{CriticalPath, Hist64, ImbalanceSummary, Json, SpanRecord};

/// Version of the report JSON layout. Bumped whenever a required key is
/// added or changes meaning; [`RunReport::from_json`] rejects documents
/// written under any other version (including pre-versioned ones) with a
/// message naming both versions, so stale artifacts fail loudly instead of
/// parsing into garbage.
///
/// History: v1 (implicit, no `"schema"` key) through PR 5; v2 adds the
/// performance-observatory fields (`exposed_comms_ms`, `flow_sends`,
/// `flow_recvs` per rank, and the run-level `critical_path`); v3 adds the
/// run-level `serve` object (plan-cache service counters, per-tenant
/// ledgers, and queue-wait/service-latency histograms); v4 adds the
/// overlap fields to each rank's comms ledger (`interior`/`frontier`
/// owned-work partition and the `dup_payloads`/`coalesced` sliding-window
/// counters, with `exchange_ns` now meaning *exposed* exchange time); v5
/// adds the optional plan `delta` object (incremental-recompilation stats:
/// dirty elements, respliced rows/nnz, patch vs full-compile wall) and the
/// serve `patches` counter (cache entries revalidated by delta instead of
/// evicted); v6 adds the run-level `simd` object (requested policy,
/// dispatched ISA and lane width, and the achieved fraction of nominal
/// peak from the flop counters).
pub const REPORT_SCHEMA_VERSION: u64 = 6;

/// Canonical histogram names, in emission order. These are the keys of the
/// report's `"histograms"` object.
pub const HISTOGRAM_NAMES: [&str; 3] = [
    "candidates_per_query",
    "subregions_per_element",
    "quad_points_per_integration",
];

/// A whole harness invocation: which exhibit ran, with what seed, and every
/// run it executed.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// The exhibit or subcommand that produced this report.
    pub exhibit: String,
    /// Mesh-generation seed of the invocation.
    pub seed: u64,
    /// One record per executed configuration.
    pub runs: Vec<RunRecord>,
}

/// Compact per-patch record (the per-patch probes are merged into the
/// run-level histograms rather than serialized individually).
#[derive(Debug, Clone, PartialEq)]
pub struct PatchRecord {
    /// Host wall-clock nanoseconds spent evaluating the patch.
    pub wall_ns: u64,
    /// Elements assigned to the patch (0 for per-point blocks).
    pub elements: u64,
    /// Grid points the patch wrote.
    pub points: u64,
    /// The patch's work counters.
    pub metrics: Metrics,
}

/// Size and timing of a compiled evaluation plan (`ustencil-plan`), when a
/// run went through the plan path instead of direct evaluation. Build and
/// apply times are reported separately because the whole point of a plan is
/// paying the build once and amortizing it over many applies.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanStats {
    /// Output rows (grid points) of the plan.
    pub rows: u64,
    /// Stored `(point, element)` entries (CSR non-zeros).
    pub nnz: u64,
    /// Weight values per entry (the field's modes per element).
    pub n_modes: u64,
    /// In-memory size of the plan's CSR arrays, in bytes.
    pub bytes: u64,
    /// Wall-clock milliseconds spent compiling the plan.
    pub build_ms: f64,
    /// Wall-clock milliseconds of one apply (the amortized unit).
    pub apply_ms: f64,
    /// Incremental-recompilation stats when the plan was produced by
    /// patching an existing plan (`scheme = "plan+patch"`) instead of a
    /// fresh compile; `None` on the full-compile path.
    pub delta: Option<DeltaStats>,
}

/// Cost and shape of one incremental plan patch: how much of the operator a
/// dirty mesh region actually invalidated after inflating it by the
/// `(3k+1)h` stencil footprint, and what the splice cost relative to the
/// full compile it avoided.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaStats {
    /// Mesh elements in the dirty set (changed plus vanished).
    pub dirty_elements: u64,
    /// Plan rows recomputed and spliced (the footprint closure of the dirty
    /// set, plus rows of newly created grid points).
    pub respliced_rows: u64,
    /// CSR non-zeros in the respliced rows.
    pub respliced_nnz: u64,
    /// Wall-clock milliseconds of the patch (closure + row recompute +
    /// splice).
    pub patch_ms: f64,
    /// Wall-clock milliseconds of the full compile the patch stands in for
    /// (the base plan's build wall, carried across chained patches).
    pub full_build_ms: f64,
}

/// Memory-locality profile of a compiled plan's CSR structure, emitted when
/// a run applied a plan (`scheme = "plan"`). Spans are measured over the
/// coefficient array the apply reads — in 64-byte cache lines of
/// `n_modes`-wide f64 column blocks — so the numbers directly describe the
/// working set a row sweep drags through the cache hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalityStats {
    /// [`Layout::label`](crate::Layout::label) of the layout that produced
    /// the structure.
    pub layout: String,
    /// Rows measured (grid points).
    pub rows: u64,
    /// CSR non-zeros.
    pub nnz: u64,
    /// Mean per-row column span, in cache lines: the distance from the
    /// first to the last coefficient line a row touches.
    pub mean_span_lines: f64,
    /// 95th-percentile per-row column span, in cache lines.
    pub p95_span_lines: f64,
    /// Estimated reuse distance: mean number of coefficient cache lines a
    /// row touches that the *previous* row did not (0 = perfect reuse,
    /// row-span = no reuse).
    pub est_reuse_lines: f64,
    /// Row tiles of the cache-blocked apply (0 when the layout is not
    /// blocked).
    pub n_tiles: u64,
    /// Mean rows per tile (0 when not blocked).
    pub mean_rows_per_tile: f64,
    /// Mean tile fill: distinct coefficient lines a tile touches divided by
    /// its total line span (1 = dense span, → 0 = scattered; 0 when not
    /// blocked).
    pub tile_fill: f64,
}

/// One rank's communication ledger in a rank-sharded run: shard shape,
/// counted wire traffic, coarse phase timings, and the rank's exposed
/// communication time. Emitted for every rank of a `scheme = "dist"` run;
/// empty for single-address-space runs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RankCommRecord {
    /// Rank id (0-based; rank 0 is the coordinator).
    pub rank: u64,
    /// Elements the rank owns.
    pub owned_elements: u64,
    /// Ghost-ring elements replicated onto the rank.
    pub halo_elements: u64,
    /// Grid points the rank resolves.
    pub owned_points: u64,
    /// Owned work units evaluated while halo messages were in flight
    /// (elements for the push runtime, plan rows for the plan path).
    /// `interior + frontier` partitions the rank's owned work.
    pub interior: u64,
    /// Owned work units that waited for the exchange drain.
    pub frontier: u64,
    /// Messages the rank handed to the transport.
    pub msgs_sent: u64,
    /// Wire bytes the rank handed to the transport.
    pub bytes_sent: u64,
    /// Messages the rank received.
    pub msgs_recv: u64,
    /// Wire bytes the rank received.
    pub bytes_recv: u64,
    /// Payload messages the reliability layer sent more than once.
    pub retransmits: u64,
    /// Duplicate frames the receive side discarded (retransmit overlap).
    pub dup_payloads: u64,
    /// Messages that rode a coalesced bundle frame instead of their own.
    pub coalesced: u64,
    /// Nanoseconds of exposed exchange (post + drain; the overlapped
    /// in-flight time is excluded).
    pub exchange_ns: u64,
    /// Nanoseconds in the local evaluation phase.
    pub eval_ns: u64,
    /// Nanoseconds in the local reduce + gather phase.
    pub reduce_ns: u64,
    /// Milliseconds of the rank's communication intervals not hidden
    /// behind its computation — the wait the run actually paid (0 for
    /// uninstrumented runs).
    pub exposed_comms_ms: f64,
    /// Halo-phase flow send points the rank logged (0 uninstrumented).
    pub flow_sends: u64,
    /// Halo-phase flow receive points the rank logged (0 uninstrumented).
    pub flow_recvs: u64,
}

/// One tenant's ledger in a plan-cache service run: everything the serve
/// layer observed about this client's traffic. Latencies are microsecond
/// [`Hist64`] histograms, so tail quantiles (p99) come from real
/// distribution data rather than a mean.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantLedger {
    /// Tenant (client) id, 0-based.
    pub tenant: u64,
    /// Requests the tenant submitted.
    pub requests: u64,
    /// Requests answered from a resident plan (memory or disk tier).
    pub hits: u64,
    /// Requests that found no usable plan anywhere.
    pub misses: u64,
    /// Compiles charged to this tenant (it was the single-flight leader).
    pub compiles: u64,
    /// Output rows evaluated for the tenant across all coalesced batches.
    pub batched_rows: u64,
    /// Microseconds each request waited between admission and the start of
    /// its service batch.
    pub queue_wait_us: Hist64,
    /// Microseconds from admission to answer (wait + batch service).
    pub service_us: Hist64,
}

/// Aggregate ledger of a plan-cache service run (`scheme = "serve"`): cache
/// effectiveness, single-flight and coalescing behaviour, and the run-wide
/// latency distributions, plus one [`TenantLedger`] per client.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeStats {
    /// Client threads that generated traffic.
    pub clients: u64,
    /// Total requests served.
    pub requests: u64,
    /// Distinct meshes in the fixture catalog.
    pub catalog: u64,
    /// Requests answered from a resident compiled plan.
    pub hits: u64,
    /// Requests that had to produce a plan (compile or disk load).
    pub misses: u64,
    /// Plans actually compiled (≤ misses: single-flight followers and disk
    /// warm-starts do not compile).
    pub compiles: u64,
    /// Requesters that blocked on another request's in-flight compile
    /// instead of duplicating it.
    pub single_flight_waits: u64,
    /// Plans revived from the disk tier instead of recompiled.
    pub disk_loads: u64,
    /// Plans produced by patching a resident sibling plan (delta
    /// revalidation) instead of compiling from scratch.
    pub patches: u64,
    /// Plans evicted from the memory tier under the byte budget.
    pub evictions: u64,
    /// Coalesced `apply_many` batches executed.
    pub batches: u64,
    /// Output rows evaluated across all batches.
    pub batched_rows: u64,
    /// Resident bytes of the memory tier when the run ended.
    pub cache_bytes: u64,
    /// Run-wide admission-to-service queue-wait distribution, microseconds.
    pub queue_wait_us: Hist64,
    /// Run-wide admission-to-answer latency distribution, microseconds.
    pub service_us: Hist64,
    /// Per-tenant ledgers, ordered by tenant id.
    pub tenants: Vec<TenantLedger>,
}

/// What the SIMD dispatch layer actually did in a run: the policy the
/// caller asked for, the ISA
/// [`SimdPolicy::resolve`](crate::simd::SimdPolicy::resolve) picked on
/// this host, and the achieved
/// efficiency derived from the run's modeled flop counter over its wall
/// time. `fraction_of_peak` divides by
/// [`SimdIsa::nominal_peak_gflops`](crate::simd::SimdIsa::nominal_peak_gflops)
/// — a fixed device-model constant per ISA — so it is a stable cross-run
/// yardstick rather than a hardware measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct SimdRecord {
    /// [`SimdPolicy::label`](crate::simd::SimdPolicy::label) the run was
    /// configured with (`"auto"`, `"scalar"`, `"f64x4"`, `"f64x8"`).
    pub policy: String,
    /// [`SimdIsa::label`](crate::simd::SimdIsa::label) the policy resolved
    /// to on this host (`"scalar"`, `"avx2"`, `"avx512"`).
    pub isa: String,
    /// f64 lanes of the dispatched ISA (1 for scalar).
    pub lanes: u64,
    /// Achieved throughput: modeled flops over wall time, GFLOP/s.
    pub gflops: f64,
    /// `gflops` over the dispatched ISA's nominal single-core peak.
    pub fraction_of_peak: f64,
}

impl SimdRecord {
    /// Builds the record from a run's resolved dispatch and measured
    /// totals (`flops` from the metrics counter, `wall_secs` of the
    /// evaluation).
    pub fn measured(
        policy: crate::simd::SimdPolicy,
        isa: crate::simd::SimdIsa,
        flops: u64,
        wall_secs: f64,
    ) -> Self {
        let gflops = if wall_secs > 0.0 {
            flops as f64 / wall_secs / 1e9
        } else {
            0.0
        };
        Self {
            policy: policy.label().to_string(),
            isa: isa.label().to_string(),
            lanes: isa.lanes() as u64,
            gflops,
            fraction_of_peak: gflops / isa.nominal_peak_gflops(),
        }
    }
}

/// One phase of the serialized critical path (see
/// [`ustencil_trace::critical_path`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPhaseRecord {
    /// Canonical phase name (`"build"`, `"exchange"`, `"eval"`,
    /// `"reduce"`).
    pub name: String,
    /// The bottleneck rank.
    pub rank: u64,
    /// That rank's time in the phase, milliseconds.
    pub duration_ms: f64,
}

/// The serialized cross-rank critical path of an instrumented rank-sharded
/// run, plus per-rank utilization.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPathRecord {
    /// Sum of the bottleneck phase durations, milliseconds.
    pub total_ms: f64,
    /// Phases in barrier order (phases nobody recorded are omitted).
    pub phases: Vec<CriticalPhaseRecord>,
    /// Per-rank utilization: computation time over the rank's active
    /// window.
    pub utilization: Vec<f64>,
}

impl From<&CriticalPath> for CriticalPathRecord {
    fn from(cp: &CriticalPath) -> Self {
        Self {
            total_ms: cp.total_ns as f64 / 1e6,
            phases: cp
                .phases
                .iter()
                .map(|p| CriticalPhaseRecord {
                    name: p.name.clone(),
                    rank: p.rank,
                    duration_ms: p.duration_ns as f64 / 1e6,
                })
                .collect(),
            utilization: cp.utilization.clone(),
        }
    }
}

/// Everything observed about one post-processing run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Human-readable configuration label (e.g. `"low-variance/4k/p1"`).
    pub label: String,
    /// [`Scheme::label`](crate::Scheme::label) of the scheme that ran.
    pub scheme: String,
    /// Mesh size in triangles.
    pub n_triangles: u64,
    /// Evaluation points.
    pub n_points: u64,
    /// Host wall-clock milliseconds of the evaluation (build + eval).
    pub wall_ms: f64,
    /// Aggregated work counters.
    pub metrics: Metrics,
    /// Phase spans (empty when the run was not instrumented).
    pub spans: Vec<SpanRecord>,
    /// Per-patch stats, the basis of the imbalance summary.
    pub patches: Vec<PatchRecord>,
    /// Run-wide distribution histograms, keyed by [`HISTOGRAM_NAMES`].
    pub histograms: Vec<(String, Hist64)>,
    /// Cost-model simulation of the run, when one was computed.
    pub device_sim: Option<SimReport>,
    /// Evaluation-plan stats, when the run applied a compiled plan.
    pub plan: Option<PlanStats>,
    /// CSR locality profile, when the run applied a compiled plan.
    pub locality: Option<LocalityStats>,
    /// Per-rank communication ledgers (empty unless the run was
    /// rank-sharded).
    pub comms: Vec<RankCommRecord>,
    /// Cross-rank critical path (present only for instrumented
    /// rank-sharded runs).
    pub critical_path: Option<CriticalPathRecord>,
    /// Plan-cache service ledger (present only for `scheme = "serve"`
    /// runs).
    pub serve: Option<ServeStats>,
    /// SIMD dispatch summary (policy, resolved ISA, fraction of peak);
    /// `None` for runs that never touch the evaluation kernels (e.g.
    /// serve traffic replays).
    pub simd: Option<SimdRecord>,
}

impl RunRecord {
    /// Builds a record from a finished run. Histograms come from merging
    /// every block's probe; they are empty unless the run was
    /// [instrumented](crate::PostProcessor::instrument).
    pub fn from_solution(
        label: &str,
        n_triangles: usize,
        solution: &Solution,
        device_sim: Option<SimReport>,
    ) -> Self {
        let probe = BlockStats::merged_probe(&solution.block_stats);
        let histograms = vec![
            (
                HISTOGRAM_NAMES[0].to_string(),
                *probe.candidates_per_query(),
            ),
            (
                HISTOGRAM_NAMES[1].to_string(),
                *probe.subregions_per_element(),
            ),
            (
                HISTOGRAM_NAMES[2].to_string(),
                *probe.quad_points_per_integration(),
            ),
        ];
        Self {
            label: label.to_string(),
            scheme: solution.scheme.label().to_string(),
            n_triangles: n_triangles as u64,
            n_points: solution.values.len() as u64,
            wall_ms: solution.wall.as_secs_f64() * 1e3,
            metrics: solution.metrics,
            spans: solution.spans.clone(),
            patches: solution
                .block_stats
                .iter()
                .map(|s| PatchRecord {
                    wall_ns: s.wall_ns,
                    elements: s.elements,
                    points: s.points,
                    metrics: s.metrics,
                })
                .collect(),
            histograms,
            device_sim,
            plan: None,
            locality: None,
            comms: Vec::new(),
            critical_path: None,
            serve: None,
            simd: Some(solution.simd.clone()),
        }
    }

    /// Load-imbalance summaries over the per-patch stats, one per cost
    /// proxy: measured wall time, candidate tests, and quadrature volume.
    pub fn imbalance(&self) -> Vec<(&'static str, ImbalanceSummary)> {
        let of = |f: &dyn Fn(&PatchRecord) -> u64| {
            let values: Vec<f64> = self.patches.iter().map(|p| f(p) as f64).collect();
            ImbalanceSummary::from_values(&values)
        };
        vec![
            ("wall_ns", of(&|p| p.wall_ns)),
            ("intersection_tests", of(&|p| p.metrics.intersection_tests)),
            ("quad_evals", of(&|p| p.metrics.quad_evals)),
        ]
    }

    /// The named histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&Hist64> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

impl RunReport {
    /// An empty report for the given exhibit and seed.
    pub fn new(exhibit: &str, seed: u64) -> Self {
        Self {
            exhibit: exhibit.to_string(),
            seed,
            runs: Vec::new(),
        }
    }

    /// Serializes the report to a JSON document. The `"schema"` key is
    /// emitted first so a human (or a failing diff) sees the version at
    /// the top of the file.
    pub fn to_json(&self) -> Json {
        Json::object()
            .set("schema", REPORT_SCHEMA_VERSION)
            .set("exhibit", self.exhibit.as_str())
            .set("seed", self.seed)
            .set(
                "runs",
                self.runs.iter().map(record_to_json).collect::<Vec<_>>(),
            )
    }

    /// Serializes the report to pretty-printed JSON text.
    pub fn to_pretty_string(&self) -> String {
        self.to_json().to_pretty_string()
    }

    /// Parses a report back from JSON text. Exact inverse of
    /// [`to_json`](Self::to_json): derived fields (`imbalance`, `gflops`)
    /// are ignored and recomputed on demand.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text)?;
        match doc.get("schema").and_then(Json::as_u64) {
            Some(v) if v == REPORT_SCHEMA_VERSION => {}
            Some(v) => {
                return Err(format!(
                    "report schema version {v} is not supported: this build reads \
                     version {REPORT_SCHEMA_VERSION}; re-run the harness to regenerate \
                     the report"
                ));
            }
            None => {
                return Err(format!(
                    "report has no 'schema' key (written before schema versioning, \
                     pre-v2): this build reads version {REPORT_SCHEMA_VERSION}; \
                     re-run the harness to regenerate the report"
                ));
            }
        }
        let runs = get(&doc, "runs")?
            .as_array()
            .ok_or("'runs' is not an array")?
            .iter()
            .map(record_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            exhibit: get_str(&doc, "exhibit")?.to_string(),
            seed: get_u64(&doc, "seed")?,
            runs,
        })
    }
}

fn record_to_json(r: &RunRecord) -> Json {
    let spans: Vec<Json> = r
        .spans
        .iter()
        .map(|s| {
            Json::object()
                .set("name", s.name.as_str())
                .set("depth", s.depth)
                .set("start_ns", s.start_ns)
                .set("duration_ns", s.duration_ns)
        })
        .collect();
    let patches: Vec<Json> = r
        .patches
        .iter()
        .map(|p| {
            Json::object()
                .set("wall_ns", p.wall_ns)
                .set("elements", p.elements)
                .set("points", p.points)
                .set("metrics", metrics_to_json(&p.metrics))
        })
        .collect();
    let mut hists = Json::object();
    for (name, h) in &r.histograms {
        hists = hists.set(name, hist_to_json(h));
    }
    let mut imbalance = Json::object();
    for (name, s) in r.imbalance() {
        imbalance = imbalance.set(name, imbalance_to_json(&s));
    }
    let device_sim = match &r.device_sim {
        None => Json::Null,
        Some(sim) => Json::object()
            .set(
                "device_ms",
                sim.device_ms
                    .iter()
                    .map(|&ms| Json::Num(ms))
                    .collect::<Vec<_>>(),
            )
            .set("reduction_ms", sim.reduction_ms)
            .set("comms_ms", sim.comms_ms)
            .set("total_ms", sim.total_ms)
            .set("flops", sim.flops)
            .set("gflops", sim.gflops()),
    };
    let comms: Vec<Json> = r
        .comms
        .iter()
        .map(|c| {
            Json::object()
                .set("rank", c.rank)
                .set("owned_elements", c.owned_elements)
                .set("halo_elements", c.halo_elements)
                .set("owned_points", c.owned_points)
                .set("interior", c.interior)
                .set("frontier", c.frontier)
                .set("msgs_sent", c.msgs_sent)
                .set("bytes_sent", c.bytes_sent)
                .set("msgs_recv", c.msgs_recv)
                .set("bytes_recv", c.bytes_recv)
                .set("retransmits", c.retransmits)
                .set("dup_payloads", c.dup_payloads)
                .set("coalesced", c.coalesced)
                .set("exchange_ns", c.exchange_ns)
                .set("eval_ns", c.eval_ns)
                .set("reduce_ns", c.reduce_ns)
                .set("exposed_comms_ms", c.exposed_comms_ms)
                .set("flow_sends", c.flow_sends)
                .set("flow_recvs", c.flow_recvs)
        })
        .collect();
    let critical_path = match &r.critical_path {
        None => Json::Null,
        Some(cp) => Json::object()
            .set("total_ms", cp.total_ms)
            .set(
                "phases",
                cp.phases
                    .iter()
                    .map(|p| {
                        Json::object()
                            .set("name", p.name.as_str())
                            .set("rank", p.rank)
                            .set("duration_ms", p.duration_ms)
                    })
                    .collect::<Vec<_>>(),
            )
            .set(
                "utilization",
                cp.utilization
                    .iter()
                    .map(|&u| Json::Num(u))
                    .collect::<Vec<_>>(),
            ),
    };
    let plan = match &r.plan {
        None => Json::Null,
        Some(p) => {
            let delta = match &p.delta {
                None => Json::Null,
                Some(d) => Json::object()
                    .set("dirty_elements", d.dirty_elements)
                    .set("respliced_rows", d.respliced_rows)
                    .set("respliced_nnz", d.respliced_nnz)
                    .set("patch_ms", d.patch_ms)
                    .set("full_build_ms", d.full_build_ms),
            };
            Json::object()
                .set("rows", p.rows)
                .set("nnz", p.nnz)
                .set("n_modes", p.n_modes)
                .set("bytes", p.bytes)
                .set("build_ms", p.build_ms)
                .set("apply_ms", p.apply_ms)
                .set("delta", delta)
        }
    };
    let locality = match &r.locality {
        None => Json::Null,
        Some(l) => Json::object()
            .set("layout", l.layout.as_str())
            .set("rows", l.rows)
            .set("nnz", l.nnz)
            .set("mean_span_lines", l.mean_span_lines)
            .set("p95_span_lines", l.p95_span_lines)
            .set("est_reuse_lines", l.est_reuse_lines)
            .set("n_tiles", l.n_tiles)
            .set("mean_rows_per_tile", l.mean_rows_per_tile)
            .set("tile_fill", l.tile_fill),
    };
    let serve = match &r.serve {
        None => Json::Null,
        Some(s) => Json::object()
            .set("clients", s.clients)
            .set("requests", s.requests)
            .set("catalog", s.catalog)
            .set("hits", s.hits)
            .set("misses", s.misses)
            .set("compiles", s.compiles)
            .set("single_flight_waits", s.single_flight_waits)
            .set("disk_loads", s.disk_loads)
            .set("patches", s.patches)
            .set("evictions", s.evictions)
            .set("batches", s.batches)
            .set("batched_rows", s.batched_rows)
            .set("cache_bytes", s.cache_bytes)
            .set("queue_wait_us", hist_to_json(&s.queue_wait_us))
            .set("service_us", hist_to_json(&s.service_us))
            .set(
                "tenants",
                s.tenants
                    .iter()
                    .map(|t| {
                        Json::object()
                            .set("tenant", t.tenant)
                            .set("requests", t.requests)
                            .set("hits", t.hits)
                            .set("misses", t.misses)
                            .set("compiles", t.compiles)
                            .set("batched_rows", t.batched_rows)
                            .set("queue_wait_us", hist_to_json(&t.queue_wait_us))
                            .set("service_us", hist_to_json(&t.service_us))
                    })
                    .collect::<Vec<_>>(),
            ),
    };
    let simd = match &r.simd {
        None => Json::Null,
        Some(s) => Json::object()
            .set("policy", s.policy.as_str())
            .set("isa", s.isa.as_str())
            .set("lanes", s.lanes)
            .set("gflops", s.gflops)
            .set("fraction_of_peak", s.fraction_of_peak),
    };
    Json::object()
        .set("label", r.label.as_str())
        .set("scheme", r.scheme.as_str())
        .set("n_triangles", r.n_triangles)
        .set("n_points", r.n_points)
        .set("wall_ms", r.wall_ms)
        .set("metrics", metrics_to_json(&r.metrics))
        .set("spans", spans)
        .set("patches", patches)
        .set("imbalance", imbalance)
        .set("histograms", hists)
        .set("device_sim", device_sim)
        .set("plan", plan)
        .set("locality", locality)
        .set("comms", comms)
        .set("critical_path", critical_path)
        .set("serve", serve)
        .set("simd", simd)
}

fn record_from_json(doc: &Json) -> Result<RunRecord, String> {
    let spans = get(doc, "spans")?
        .as_array()
        .ok_or("'spans' is not an array")?
        .iter()
        .map(|s| {
            Ok(SpanRecord {
                name: get_str(s, "name")?.to_string(),
                depth: get_u64(s, "depth")? as u32,
                start_ns: get_u64(s, "start_ns")?,
                duration_ns: get_u64(s, "duration_ns")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let patches = get(doc, "patches")?
        .as_array()
        .ok_or("'patches' is not an array")?
        .iter()
        .map(|p| {
            Ok(PatchRecord {
                wall_ns: get_u64(p, "wall_ns")?,
                elements: get_u64(p, "elements")?,
                points: get_u64(p, "points")?,
                metrics: metrics_from_json(get(p, "metrics")?)?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let histograms = match get(doc, "histograms")? {
        Json::Obj(pairs) => pairs
            .iter()
            .map(|(name, h)| Ok((name.clone(), hist_from_json(h)?)))
            .collect::<Result<Vec<_>, String>>()?,
        _ => return Err("'histograms' is not an object".to_string()),
    };
    let device_sim = match get(doc, "device_sim")? {
        Json::Null => None,
        sim => Some(SimReport {
            device_ms: sim
                .get("device_ms")
                .and_then(Json::as_array)
                .ok_or("'device_ms' is not an array")?
                .iter()
                .map(|v| v.as_f64().ok_or("non-numeric device_ms entry"))
                .collect::<Result<Vec<_>, _>>()?,
            reduction_ms: get_f64(sim, "reduction_ms")?,
            comms_ms: get_f64(sim, "comms_ms")?,
            total_ms: get_f64(sim, "total_ms")?,
            flops: get_u64(sim, "flops")?,
        }),
    };
    let comms = get(doc, "comms")?
        .as_array()
        .ok_or("'comms' is not an array")?
        .iter()
        .map(|c| {
            Ok(RankCommRecord {
                rank: get_u64(c, "rank")?,
                owned_elements: get_u64(c, "owned_elements")?,
                halo_elements: get_u64(c, "halo_elements")?,
                owned_points: get_u64(c, "owned_points")?,
                interior: get_u64(c, "interior")?,
                frontier: get_u64(c, "frontier")?,
                msgs_sent: get_u64(c, "msgs_sent")?,
                bytes_sent: get_u64(c, "bytes_sent")?,
                msgs_recv: get_u64(c, "msgs_recv")?,
                bytes_recv: get_u64(c, "bytes_recv")?,
                retransmits: get_u64(c, "retransmits")?,
                dup_payloads: get_u64(c, "dup_payloads")?,
                coalesced: get_u64(c, "coalesced")?,
                exchange_ns: get_u64(c, "exchange_ns")?,
                eval_ns: get_u64(c, "eval_ns")?,
                reduce_ns: get_u64(c, "reduce_ns")?,
                exposed_comms_ms: get_f64(c, "exposed_comms_ms")?,
                flow_sends: get_u64(c, "flow_sends")?,
                flow_recvs: get_u64(c, "flow_recvs")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let critical_path = match get(doc, "critical_path")? {
        Json::Null => None,
        cp => Some(CriticalPathRecord {
            total_ms: get_f64(cp, "total_ms")?,
            phases: get(cp, "phases")?
                .as_array()
                .ok_or("'phases' is not an array")?
                .iter()
                .map(|p| {
                    Ok(CriticalPhaseRecord {
                        name: get_str(p, "name")?.to_string(),
                        rank: get_u64(p, "rank")?,
                        duration_ms: get_f64(p, "duration_ms")?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
            utilization: get(cp, "utilization")?
                .as_array()
                .ok_or("'utilization' is not an array")?
                .iter()
                .map(|u| u.as_f64().ok_or("non-numeric utilization entry"))
                .collect::<Result<Vec<_>, _>>()?,
        }),
    };
    let plan = match get(doc, "plan")? {
        Json::Null => None,
        p => Some(PlanStats {
            rows: get_u64(p, "rows")?,
            nnz: get_u64(p, "nnz")?,
            n_modes: get_u64(p, "n_modes")?,
            bytes: get_u64(p, "bytes")?,
            build_ms: get_f64(p, "build_ms")?,
            apply_ms: get_f64(p, "apply_ms")?,
            delta: match get(p, "delta")? {
                Json::Null => None,
                d => Some(DeltaStats {
                    dirty_elements: get_u64(d, "dirty_elements")?,
                    respliced_rows: get_u64(d, "respliced_rows")?,
                    respliced_nnz: get_u64(d, "respliced_nnz")?,
                    patch_ms: get_f64(d, "patch_ms")?,
                    full_build_ms: get_f64(d, "full_build_ms")?,
                }),
            },
        }),
    };
    let locality = match get(doc, "locality")? {
        Json::Null => None,
        l => Some(LocalityStats {
            layout: get_str(l, "layout")?.to_string(),
            rows: get_u64(l, "rows")?,
            nnz: get_u64(l, "nnz")?,
            mean_span_lines: get_f64(l, "mean_span_lines")?,
            p95_span_lines: get_f64(l, "p95_span_lines")?,
            est_reuse_lines: get_f64(l, "est_reuse_lines")?,
            n_tiles: get_u64(l, "n_tiles")?,
            mean_rows_per_tile: get_f64(l, "mean_rows_per_tile")?,
            tile_fill: get_f64(l, "tile_fill")?,
        }),
    };
    let serve = match get(doc, "serve")? {
        Json::Null => None,
        s => Some(ServeStats {
            clients: get_u64(s, "clients")?,
            requests: get_u64(s, "requests")?,
            catalog: get_u64(s, "catalog")?,
            hits: get_u64(s, "hits")?,
            misses: get_u64(s, "misses")?,
            compiles: get_u64(s, "compiles")?,
            single_flight_waits: get_u64(s, "single_flight_waits")?,
            disk_loads: get_u64(s, "disk_loads")?,
            patches: get_u64(s, "patches")?,
            evictions: get_u64(s, "evictions")?,
            batches: get_u64(s, "batches")?,
            batched_rows: get_u64(s, "batched_rows")?,
            cache_bytes: get_u64(s, "cache_bytes")?,
            queue_wait_us: hist_from_json(get(s, "queue_wait_us")?)?,
            service_us: hist_from_json(get(s, "service_us")?)?,
            tenants: get(s, "tenants")?
                .as_array()
                .ok_or("'tenants' is not an array")?
                .iter()
                .map(|t| {
                    Ok(TenantLedger {
                        tenant: get_u64(t, "tenant")?,
                        requests: get_u64(t, "requests")?,
                        hits: get_u64(t, "hits")?,
                        misses: get_u64(t, "misses")?,
                        compiles: get_u64(t, "compiles")?,
                        batched_rows: get_u64(t, "batched_rows")?,
                        queue_wait_us: hist_from_json(get(t, "queue_wait_us")?)?,
                        service_us: hist_from_json(get(t, "service_us")?)?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
        }),
    };
    let simd = match get(doc, "simd")? {
        Json::Null => None,
        s => Some(SimdRecord {
            policy: get_str(s, "policy")?.to_string(),
            isa: get_str(s, "isa")?.to_string(),
            lanes: get_u64(s, "lanes")?,
            gflops: get_f64(s, "gflops")?,
            fraction_of_peak: get_f64(s, "fraction_of_peak")?,
        }),
    };
    Ok(RunRecord {
        label: get_str(doc, "label")?.to_string(),
        scheme: get_str(doc, "scheme")?.to_string(),
        n_triangles: get_u64(doc, "n_triangles")?,
        n_points: get_u64(doc, "n_points")?,
        wall_ms: get_f64(doc, "wall_ms")?,
        metrics: metrics_from_json(get(doc, "metrics")?)?,
        spans,
        patches,
        histograms,
        device_sim,
        plan,
        locality,
        comms,
        critical_path,
        serve,
        simd,
    })
}

/// Field names mirror the [`Metrics`] struct exactly.
const METRIC_FIELDS: [&str; 11] = [
    "intersection_tests",
    "true_intersections",
    "cell_clips",
    "subregions",
    "quad_evals",
    "flops",
    "cells_visited",
    "elem_data_loads",
    "point_data_loads",
    "solution_writes",
    "partial_slots",
];

fn metrics_to_json(m: &Metrics) -> Json {
    Json::object()
        .set("intersection_tests", m.intersection_tests)
        .set("true_intersections", m.true_intersections)
        .set("cell_clips", m.cell_clips)
        .set("subregions", m.subregions)
        .set("quad_evals", m.quad_evals)
        .set("flops", m.flops)
        .set("cells_visited", m.cells_visited)
        .set("elem_data_loads", m.elem_data_loads)
        .set("point_data_loads", m.point_data_loads)
        .set("solution_writes", m.solution_writes)
        .set("partial_slots", m.partial_slots)
}

fn metrics_from_json(doc: &Json) -> Result<Metrics, String> {
    let mut vals = [0u64; METRIC_FIELDS.len()];
    for (slot, field) in vals.iter_mut().zip(METRIC_FIELDS) {
        *slot = get_u64(doc, field)?;
    }
    let [intersection_tests, true_intersections, cell_clips, subregions, quad_evals, flops, cells_visited, elem_data_loads, point_data_loads, solution_writes, partial_slots] =
        vals;
    Ok(Metrics {
        intersection_tests,
        true_intersections,
        cell_clips,
        subregions,
        quad_evals,
        flops,
        cells_visited,
        elem_data_loads,
        point_data_loads,
        solution_writes,
        partial_slots,
    })
}

fn hist_to_json(h: &Hist64) -> Json {
    let buckets: Vec<Json> = h
        .iter_nonempty()
        .map(|(b, c)| {
            let (lo, hi) = Hist64::bucket_bounds(b);
            Json::object()
                .set("bucket", b)
                .set("lo", lo)
                .set("hi", hi.min(h.max()))
                .set("count", c)
        })
        .collect();
    Json::object()
        .set("count", h.count())
        .set("sum", h.sum())
        .set("max", h.max())
        .set("buckets", buckets)
}

fn hist_from_json(doc: &Json) -> Result<Hist64, String> {
    let sparse = get(doc, "buckets")?
        .as_array()
        .ok_or("'buckets' is not an array")?
        .iter()
        .map(|b| Ok((get_u64(b, "bucket")? as usize, get_u64(b, "count")?)))
        .collect::<Result<Vec<_>, String>>()?;
    Hist64::from_parts(&sparse, get_u64(doc, "sum")?, get_u64(doc, "max")?)
}

fn imbalance_to_json(s: &ImbalanceSummary) -> Json {
    Json::object()
        .set("n", s.n)
        .set("min", s.min)
        .set("max", s.max)
        .set("mean", s.mean)
        .set("max_over_mean", s.max_over_mean)
        .set("cov", s.cov)
        .set("gini", s.gini)
}

fn get<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, String> {
    doc.get(key).ok_or_else(|| format!("missing key '{key}'"))
}

fn get_u64(doc: &Json, key: &str) -> Result<u64, String> {
    get(doc, key)?
        .as_u64()
        .ok_or_else(|| format!("'{key}' is not a non-negative integer"))
}

fn get_f64(doc: &Json, key: &str) -> Result<f64, String> {
    get(doc, key)?
        .as_f64()
        .ok_or_else(|| format!("'{key}' is not a number"))
}

fn get_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, String> {
    get(doc, key)?
        .as_str()
        .ok_or_else(|| format!("'{key}' is not a string"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{PostProcessor, Scheme};
    use crate::grid_points::ComputationGrid;
    use ustencil_dg::project_l2;
    use ustencil_mesh::{generate_mesh, MeshClass};

    fn small_report() -> RunReport {
        let mesh = generate_mesh(MeshClass::LowVariance, 120, 3);
        let field = project_l2(&mesh, 1, |x, y| x - y, 0);
        let grid = ComputationGrid::quadrature_points(&mesh, 1);
        let mut report = RunReport::new("test", 3);
        for scheme in [Scheme::PerPoint, Scheme::PerElement] {
            let sol = PostProcessor::new(scheme)
                .blocks(4)
                .h_factor(0.5)
                .parallel(false)
                .instrument(true)
                .run(&mesh, &field, &grid);
            let sim = sol.simulate(&crate::device::DeviceConfig::default());
            report.runs.push(RunRecord::from_solution(
                &format!("test/{}", scheme.label()),
                mesh.n_triangles(),
                &sol,
                Some(sim),
            ));
        }
        report
    }

    #[test]
    fn json_round_trip_is_identity() {
        let report = small_report();
        let text = report.to_pretty_string();
        let parsed = RunReport::from_json(&text).expect("parse emitted report");
        assert_eq!(parsed, report);
        // And the re-emission is byte-identical (stable field order).
        assert_eq!(parsed.to_pretty_string(), text);
    }

    #[test]
    fn report_contains_the_advertised_content() {
        let report = small_report();
        assert_eq!(report.runs.len(), 2);
        for run in &report.runs {
            assert!(crate::Scheme::from_label(&run.scheme).is_some());
            assert!(!run.spans.is_empty(), "instrumented run must have spans");
            assert!(run.spans.iter().any(|s| s.duration_ns > 0));
            assert!(!run.patches.is_empty());
            let cand = run.histogram("candidates_per_query").unwrap();
            assert!(cand.count() > 0);
            assert_eq!(cand.sum(), run.metrics.intersection_tests);
            let imb = run.imbalance();
            assert_eq!(imb.len(), 3);
            for (_, s) in imb {
                assert!(s.max_over_mean >= 1.0 - 1e-12);
                assert!((0.0..1.0).contains(&s.gini));
            }
            assert!(run.device_sim.as_ref().unwrap().total_ms > 0.0);
        }
    }

    #[test]
    fn malformed_reports_are_rejected() {
        assert!(RunReport::from_json("{}").is_err());
        assert!(RunReport::from_json("not json").is_err());
        let mut report = RunReport::new("x", 1);
        report.runs.push(RunRecord {
            label: "l".into(),
            scheme: "per-point".into(),
            n_triangles: 1,
            n_points: 1,
            wall_ms: 0.5,
            metrics: Metrics::default(),
            spans: vec![],
            patches: vec![],
            histograms: vec![],
            device_sim: None,
            plan: None,
            locality: None,
            comms: vec![],
            critical_path: None,
            serve: None,
            simd: None,
        });
        // A valid minimal report still round-trips.
        let text = report.to_pretty_string();
        assert_eq!(RunReport::from_json(&text).unwrap(), report);
        // Corrupting a required field breaks the parse.
        let broken = text.replace("\"seed\"", "\"sead\"");
        assert!(RunReport::from_json(&broken).is_err());
    }

    #[test]
    fn schema_versioning_rejects_old_and_foreign_reports() {
        let report = small_report();
        let text = report.to_pretty_string();
        // The version is the first key of the document.
        assert!(text
            .trim_start_matches('{')
            .trim_start()
            .starts_with(&format!("\"schema\": {REPORT_SCHEMA_VERSION}")));
        // A pre-versioning report (no schema key) is rejected with a
        // message that says what to do about it.
        let unversioned = text.replacen("\"schema\"", "\"schemo\"", 1);
        let err = RunReport::from_json(&unversioned).unwrap_err();
        assert!(err.contains("pre-v2"), "unhelpful error: {err}");
        assert!(err.contains("re-run the harness"), "unhelpful error: {err}");
        // A future version is rejected, naming both versions.
        let future = text.replacen(
            &format!("\"schema\": {REPORT_SCHEMA_VERSION}"),
            "\"schema\": 99",
            1,
        );
        let err = RunReport::from_json(&future).unwrap_err();
        assert!(err.contains("99"), "unhelpful error: {err}");
        assert!(
            err.contains(&REPORT_SCHEMA_VERSION.to_string()),
            "unhelpful error: {err}"
        );
    }

    #[test]
    fn serve_stats_round_trip() {
        let mut wait = Hist64::new();
        let mut service = Hist64::new();
        for us in [12u64, 48, 210, 3_500, 90] {
            wait.record(us);
            service.record(us * 3);
        }
        let tenants: Vec<TenantLedger> = (0..2)
            .map(|t| TenantLedger {
                tenant: t,
                requests: 100 + t,
                hits: 90 - t,
                misses: 10 + 2 * t,
                compiles: 3,
                batched_rows: 40_000 + t,
                queue_wait_us: wait,
                service_us: service,
            })
            .collect();
        let mut report = RunReport::new("serve", 42);
        report.runs.push(RunRecord {
            label: "serve/cached".into(),
            scheme: "serve".into(),
            n_triangles: 1000,
            n_points: 3000,
            wall_ms: 250.0,
            metrics: Metrics::default(),
            spans: vec![],
            patches: vec![],
            histograms: vec![],
            device_sim: None,
            plan: None,
            locality: None,
            comms: vec![],
            critical_path: None,
            serve: Some(ServeStats {
                clients: 8,
                requests: 200,
                catalog: 6,
                hits: 180,
                misses: 20,
                compiles: 6,
                single_flight_waits: 9,
                disk_loads: 4,
                patches: 2,
                evictions: 3,
                batches: 75,
                batched_rows: 600_000,
                cache_bytes: 4_500_000,
                queue_wait_us: wait,
                service_us: service,
                tenants,
            }),
            simd: None,
        });
        let text = report.to_pretty_string();
        let parsed = RunReport::from_json(&text).expect("serve report parses");
        assert_eq!(parsed, report);
        assert_eq!(parsed.to_pretty_string(), text);
        // Tail quantiles survive: the p99 read back from the parsed
        // histogram is the p99 of the data that went in.
        let s = parsed.runs[0].serve.as_ref().unwrap();
        assert_eq!(
            s.service_us.quantile_upper_bound(0.99),
            service.quantile_upper_bound(0.99)
        );
        // The serve object and its latency histograms are required keys.
        for key in ["\"serve\"", "\"single_flight_waits\"", "\"queue_wait_us\""] {
            let broken = text.replace(key, "\"zzz\"");
            assert!(RunReport::from_json(&broken).is_err(), "corrupting {key}");
        }
    }

    #[test]
    fn plan_stats_round_trip() {
        let mut report = RunReport::new("plan", 7);
        report.runs.push(RunRecord {
            label: "low-variance/4k/p1/plan".into(),
            scheme: "plan".into(),
            n_triangles: 4000,
            n_points: 16000,
            wall_ms: 1.25,
            metrics: Metrics::default(),
            spans: vec![],
            patches: vec![PatchRecord {
                wall_ns: 10,
                elements: 0,
                points: 16000,
                metrics: Metrics::default(),
            }],
            histograms: vec![],
            device_sim: None,
            plan: Some(PlanStats {
                rows: 16000,
                nnz: 320000,
                n_modes: 3,
                bytes: 9_000_000,
                build_ms: 480.5,
                apply_ms: 3.75,
                delta: Some(DeltaStats {
                    dirty_elements: 120,
                    respliced_rows: 900,
                    respliced_nnz: 18000,
                    patch_ms: 12.5,
                    full_build_ms: 480.5,
                }),
            }),
            locality: Some(LocalityStats {
                layout: "hilbert-blocked".into(),
                rows: 16000,
                nnz: 320000,
                mean_span_lines: 42.5,
                p95_span_lines: 96.0,
                est_reuse_lines: 3.25,
                n_tiles: 25,
                mean_rows_per_tile: 640.0,
                tile_fill: 0.75,
            }),
            comms: vec![],
            critical_path: None,
            serve: None,
            simd: Some(SimdRecord {
                policy: "auto".into(),
                isa: "avx2".into(),
                lanes: 4,
                gflops: 9.5,
                fraction_of_peak: 9.5 / 48.0,
            }),
        });
        let text = report.to_pretty_string();
        let parsed = RunReport::from_json(&text).expect("plan report parses");
        assert_eq!(parsed, report);
        assert_eq!(parsed.to_pretty_string(), text);
        // Dropping the plan object breaks the parse (key is required).
        let broken = text.replace("\"plan\"", "\"paln\"");
        assert!(RunReport::from_json(&broken).is_err());
        // The locality object is likewise required (null when absent).
        let broken = text.replace("\"locality\"", "\"localty\"");
        assert!(RunReport::from_json(&broken).is_err());
        // The v6 simd object and its inner fields are required keys.
        for key in ["\"simd\"", "\"fraction_of_peak\"", "\"lanes\""] {
            let broken = text.replace(key, "\"zzz\"");
            assert!(RunReport::from_json(&broken).is_err(), "corrupting {key}");
        }
    }

    #[test]
    fn rank_comm_records_round_trip() {
        let mut report = RunReport::new("fig14", 2013);
        report.runs.push(RunRecord {
            label: "low-variance/4k/p1/dist@2ranks".into(),
            scheme: "dist".into(),
            n_triangles: 1000,
            n_points: 4000,
            wall_ms: 12.5,
            metrics: Metrics::default(),
            spans: vec![],
            patches: vec![],
            histograms: vec![],
            device_sim: None,
            plan: None,
            locality: None,
            comms: (0..2)
                .map(|r| RankCommRecord {
                    rank: r,
                    owned_elements: 500,
                    halo_elements: 120 + r,
                    owned_points: 2000,
                    interior: 410 - r,
                    frontier: 90 + r,
                    msgs_sent: 6,
                    bytes_sent: 48_000 + r,
                    msgs_recv: 6,
                    bytes_recv: 48_100 - r,
                    retransmits: r,
                    dup_payloads: r,
                    coalesced: 2 * r,
                    exchange_ns: 1_000_000,
                    eval_ns: 9_000_000,
                    reduce_ns: 500_000,
                    exposed_comms_ms: 0.75 + r as f64,
                    flow_sends: 6,
                    flow_recvs: 6,
                })
                .collect(),
            critical_path: Some(CriticalPathRecord {
                total_ms: 11.5,
                phases: vec![
                    CriticalPhaseRecord {
                        name: "build".into(),
                        rank: 0,
                        duration_ms: 1.0,
                    },
                    CriticalPhaseRecord {
                        name: "exchange".into(),
                        rank: 1,
                        duration_ms: 1.5,
                    },
                    CriticalPhaseRecord {
                        name: "eval".into(),
                        rank: 0,
                        duration_ms: 9.0,
                    },
                ],
                utilization: vec![0.8, 0.75],
            }),
            serve: None,
            simd: None,
        });
        let text = report.to_pretty_string();
        let parsed = RunReport::from_json(&text).expect("dist report parses");
        assert_eq!(parsed, report);
        assert_eq!(parsed.to_pretty_string(), text);
        // The comms array is a required key, and so are the
        // per-rank observability fields and the critical path.
        for key in [
            "\"comms\"",
            "\"exposed_comms_ms\"",
            "\"critical_path\"",
            "\"interior\"",
            "\"frontier\"",
            "\"dup_payloads\"",
            "\"coalesced\"",
        ] {
            let broken = text.replace(key, "\"zzz\"");
            assert!(RunReport::from_json(&broken).is_err(), "corrupting {key}");
        }
    }
}
