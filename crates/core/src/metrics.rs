//! Work counters threaded through the evaluation hot loops.
//!
//! Metrics are accumulated in plain (non-atomic) per-worker structs and
//! merged at join points, so the hot loop pays only an integer increment.
//! They feed the streaming-device cost model
//! ([`device`](crate::device)) and surface to users through
//! [`RunReport`](crate::report::RunReport), whose JSON `"metrics"` object
//! mirrors this struct's field names one-to-one. The richer per-block view
//! (wall time, distribution probes) lives in
//! [`BlockStats`](crate::probe::BlockStats).

/// Counted work of one evaluation run (or one block/patch of it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Stencil/element candidate pairs examined — the paper's
    /// "intersection tests" (Table 1). Every candidate delivered by the
    /// hash grid counts, including halo false positives.
    pub intersection_tests: u64,
    /// Candidate pairs whose clipped intersection had positive area.
    pub true_intersections: u64,
    /// Sutherland–Hodgman clip invocations (one per stencil lattice square
    /// tested against an element).
    pub cell_clips: u64,
    /// Triangular integration sub-regions produced by clipping.
    pub subregions: u64,
    /// Quadrature-point integrand evaluations.
    pub quad_evals: u64,
    /// Estimated double-precision floating-point operations.
    pub flops: u64,
    /// Hash-grid cells visited by queries.
    pub cells_visited: u64,
    /// f64 values of *element data* read from global memory (modal
    /// coefficients + vertex data). Charged per integration in the
    /// per-point scheme, once per element in the per-element scheme — the
    /// data-reuse asymmetry at the heart of the paper.
    pub elem_data_loads: u64,
    /// f64 values of per-point data read (spatial offsets: 2 per
    /// integration in the per-element scheme).
    pub point_data_loads: u64,
    /// f64 solution values written (including partial-solution writes).
    pub solution_writes: u64,
    /// Partial-solution storage slots allocated by overlapped tiling
    /// (equals the final solution size when untiled).
    pub partial_slots: u64,
}

impl Metrics {
    /// Element-data footprint in f64 values for polynomial degree `p`:
    /// `(p+1)(p+2)/2` modal coefficients plus 3 values of vertex/bounds
    /// data, as counted in Sections 3.3–3.4 of the paper.
    pub const fn element_data_values(p: usize) -> u64 {
        ((p + 1) * (p + 2) / 2 + 3) as u64
    }

    /// Merges another metrics block into this one.
    pub fn merge(&mut self, other: &Metrics) {
        self.intersection_tests += other.intersection_tests;
        self.true_intersections += other.true_intersections;
        self.cell_clips += other.cell_clips;
        self.subregions += other.subregions;
        self.quad_evals += other.quad_evals;
        self.flops += other.flops;
        self.cells_visited += other.cells_visited;
        self.elem_data_loads += other.elem_data_loads;
        self.point_data_loads += other.point_data_loads;
        self.solution_writes += other.solution_writes;
        self.partial_slots += other.partial_slots;
    }

    /// Sum of a sequence of metric blocks.
    pub fn sum<'a, I: IntoIterator<Item = &'a Metrics>>(blocks: I) -> Metrics {
        let mut total = Metrics::default();
        for b in blocks {
            total.merge(b);
        }
        total
    }

    /// Fraction of candidate tests that produced a true intersection.
    pub fn hit_rate(&self) -> f64 {
        if self.intersection_tests == 0 {
            0.0
        } else {
            self.true_intersections as f64 / self.intersection_tests as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = Metrics {
            intersection_tests: 10,
            flops: 100,
            ..Default::default()
        };
        let b = Metrics {
            intersection_tests: 5,
            true_intersections: 3,
            flops: 50,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.intersection_tests, 15);
        assert_eq!(a.true_intersections, 3);
        assert_eq!(a.flops, 150);
    }

    #[test]
    fn sum_of_blocks() {
        let blocks = vec![
            Metrics {
                quad_evals: 1,
                ..Default::default()
            };
            4
        ];
        assert_eq!(Metrics::sum(&blocks).quad_evals, 4);
    }

    #[test]
    fn element_data_footprint_matches_paper() {
        // Paper: (P+1)(P+2)/2 + 3 values; 6 / 9 / 13 for P = 1 / 2 / 3.
        assert_eq!(Metrics::element_data_values(1), 6);
        assert_eq!(Metrics::element_data_values(2), 9);
        assert_eq!(Metrics::element_data_values(3), 13);
    }

    #[test]
    fn hit_rate() {
        let m = Metrics {
            intersection_tests: 8,
            true_intersections: 2,
            ..Default::default()
        };
        assert_eq!(m.hit_rate(), 0.25);
        assert_eq!(Metrics::default().hit_rate(), 0.0);
    }
}
