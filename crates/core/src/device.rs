//! The streaming-device cost model.
//!
//! The paper's evaluation ran on NVIDIA Tesla M2090 GPUs; this repository
//! replaces that hardware with a deterministic cost model driven entirely by
//! the work counters of [`Metrics`] (see DESIGN.md, substitutions table).
//! The model captures the three effects the paper attributes performance to:
//!
//! 1. **Intersection-test volume** — hash-grid cell visits and clip calls
//!    carry cycle charges (clips also carry a SIMD-divergence penalty);
//! 2. **Memory behaviour** — element-data reads are charged *uncoalesced*
//!    in the per-point scheme (scattered, per-integration reads) and
//!    *coalesced* in the per-element scheme (loaded once, reused from
//!    shared memory);
//! 3. **Block scheduling** — per-patch block costs are placed onto SMs with
//!    longest-processing-time scheduling; device time is the busiest SM.
//!
//! The constants are loosely modeled on the M2090 (16 SMs, ~1.3 GHz,
//! 665 GFLOP/s double precision, ~8x coalescing advantage); the claims
//! checked against the paper are ratios and scaling shapes, never absolute
//! times.

use crate::engine::Scheme;
use crate::metrics::Metrics;

/// Cycle charges of the model, per SM.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Cycles per double-precision flop (throughput-reciprocal; an SM
    /// retires ~32 DP flops per cycle).
    pub flop_cycles: f64,
    /// Cycles per f64 read that coalesces across the warp.
    pub coalesced_load_cycles: f64,
    /// Cycles per f64 read with a scattered (uncoalesced) access pattern.
    pub uncoalesced_load_cycles: f64,
    /// Cycles per f64 solution write.
    pub write_cycles: f64,
    /// Divergence penalty per Sutherland–Hodgman clip (branchy SIMD code).
    pub clip_cycles: f64,
    /// Cycles per hash-grid cell visited by a query.
    pub cell_visit_cycles: f64,
    /// Cycles per partial-solution slot in the reduction phase.
    pub reduce_cycles: f64,
    /// Cycles per byte moved over the inter-rank link (PCIe/network; a
    /// few GB/s against a ~1.3 GHz clock).
    pub link_byte_cycles: f64,
    /// Fixed per-message latency charge on the inter-rank link.
    pub msg_latency_cycles: f64,
    /// Device clock in GHz.
    pub clock_ghz: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            flop_cycles: 1.0 / 32.0,
            coalesced_load_cycles: 2.0,
            uncoalesced_load_cycles: 16.0,
            write_cycles: 2.0,
            clip_cycles: 48.0,
            cell_visit_cycles: 12.0,
            reduce_cycles: 4.0,
            link_byte_cycles: 4.0,
            msg_latency_cycles: 20_000.0,
            clock_ghz: 1.3,
        }
    }
}

/// A simulated multi-device configuration (`N_GPU`, `N_SM`).
#[derive(Debug, Clone, Copy)]
pub struct DeviceConfig {
    /// Number of devices (paper: 1, 2, 4, 8).
    pub n_devices: usize,
    /// Streaming multiprocessors per device (M2090: 16).
    pub n_sms: usize,
    /// The cycle model.
    pub cost: CostModel,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self {
            n_devices: 1,
            n_sms: 16,
            cost: CostModel::default(),
        }
    }
}

/// Outcome of a simulated execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Busy time of each device in milliseconds (compute phase).
    pub device_ms: Vec<f64>,
    /// Reduction-phase time in milliseconds.
    pub reduction_ms: f64,
    /// Communication-phase time in milliseconds (0 for single-address-space
    /// runs; counted wire traffic under [`simulate_ranks`]).
    pub comms_ms: f64,
    /// End-to-end simulated time: slowest device plus comms plus reduction.
    pub total_ms: f64,
    /// Total counted flops across all blocks.
    pub flops: u64,
}

impl SimReport {
    /// Achieved throughput in GFLOP/s under the simulated time.
    pub fn gflops(&self) -> f64 {
        if self.total_ms <= 0.0 {
            0.0
        } else {
            self.flops as f64 / (self.total_ms * 1e-3) / 1e9
        }
    }
}

impl CostModel {
    /// Cycle cost of one block's counted work under the given scheme.
    pub fn block_cycles(&self, scheme: Scheme, m: &Metrics) -> f64 {
        let elem_load_cost = match scheme {
            // Scattered per-integration reads of heterogeneous elements.
            Scheme::PerPoint => self.uncoalesced_load_cycles,
            // Loaded once per element into shared memory, then reused.
            Scheme::PerElement => self.coalesced_load_cycles,
        };
        m.flops as f64 * self.flop_cycles
            + m.elem_data_loads as f64 * elem_load_cost
            + m.point_data_loads as f64 * self.coalesced_load_cycles
            + m.solution_writes as f64 * self.write_cycles
            + m.cell_clips as f64 * self.clip_cycles
            + m.cells_visited as f64 * self.cell_visit_cycles
    }
}

/// Simulates executing `blocks` (one [`Metrics`] per block/patch) on the
/// configured devices.
///
/// Blocks are distributed round-robin across devices (the paper's even
/// patch distribution) and LPT-scheduled onto each device's SMs; a device's
/// compute time is its busiest SM. The reduction phase charges each
/// partial-solution slot once, parallelized across all SMs of all devices,
/// plus a second stage across devices.
pub fn simulate(scheme: Scheme, blocks: &[Metrics], config: &DeviceConfig) -> SimReport {
    assert!(config.n_devices > 0 && config.n_sms > 0, "empty device");
    let cycles_to_ms = 1.0 / (config.cost.clock_ghz * 1e6);

    // Distribute blocks to devices round-robin.
    let mut device_cycles = vec![0.0f64; config.n_devices];
    for (d, dev_cycles) in device_cycles.iter_mut().enumerate() {
        // LPT scheduling of this device's blocks onto its SMs.
        let mut costs: Vec<f64> = blocks
            .iter()
            .skip(d)
            .step_by(config.n_devices)
            .map(|m| config.cost.block_cycles(scheme, m))
            .collect();
        costs.sort_by(|a, b| b.total_cmp(a));
        let mut sms = vec![0.0f64; config.n_sms];
        for c in costs {
            // Place on the least-loaded SM; a zero-SM configuration (caller
            // bug) degrades to dropping the work instead of aborting.
            if let Some((imin, _)) = sms.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1)) {
                sms[imin] += c;
            }
        }
        *dev_cycles = sms.iter().fold(0.0f64, |a, &b| a.max(b));
    }

    let total_slots: u64 = blocks.iter().map(|m| m.partial_slots).sum();
    let reduction_cycles = total_slots as f64 * config.cost.reduce_cycles
        / (config.n_devices * config.n_sms) as f64
        // Second stage: one pass over the solution per extra device.
        + (config.n_devices.saturating_sub(1)) as f64
            * total_slots as f64
            * config.cost.reduce_cycles
            / (config.n_devices * config.n_sms * 4) as f64;

    let device_ms: Vec<f64> = device_cycles.iter().map(|c| c * cycles_to_ms).collect();
    let compute_ms = device_ms.iter().fold(0.0f64, |a, &b| a.max(b));
    let reduction_ms = reduction_cycles * cycles_to_ms;
    SimReport {
        device_ms,
        reduction_ms,
        comms_ms: 0.0,
        total_ms: compute_ms + reduction_ms,
        flops: blocks.iter().map(|m| m.flops).sum(),
    }
}

/// One rank's wire traffic, as counted by the distributed runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankTraffic {
    /// Wire bytes the rank sent.
    pub bytes_sent: u64,
    /// Messages the rank sent.
    pub msgs_sent: u64,
    /// Fraction of the rank's wire time that was *exposed* — not hidden
    /// behind overlapped computation. Measured by the runtime as exchange
    /// time over exchange + evaluation time; 1.0 (fully exposed, the
    /// phase-barrier behaviour) when no overlap measurement exists.
    pub exposed_fraction: f64,
}

impl Default for RankTraffic {
    fn default() -> Self {
        Self {
            bytes_sent: 0,
            msgs_sent: 0,
            exposed_fraction: 1.0,
        }
    }
}

/// Simulates a rank-sharded execution: each rank is one device evaluating
/// its own blocks, plus a communication phase charged from *counted* wire
/// traffic and a cross-rank reduction.
///
/// `rank_blocks[r]` holds rank `r`'s per-patch metrics and `traffic[r]`
/// its measured send-side traffic (the distributed runtime counts both).
/// The comms phase is the busiest rank's `bytes · link_byte_cycles +
/// msgs · msg_latency_cycles` — ranks exchange halos concurrently, so the
/// slowest link bounds the phase, which is what flattens the log-log
/// scaling curve once halo traffic stops shrinking with rank count.
///
/// # Panics
/// Panics when `rank_blocks` is empty, its length differs from
/// `traffic`'s, or the config has zero SMs.
pub fn simulate_ranks(
    scheme: Scheme,
    rank_blocks: &[Vec<Metrics>],
    traffic: &[RankTraffic],
    config: &DeviceConfig,
) -> SimReport {
    assert!(!rank_blocks.is_empty(), "no ranks to simulate");
    assert_eq!(rank_blocks.len(), traffic.len(), "ranks/traffic mismatch");
    assert!(config.n_sms > 0, "empty device");
    let n_ranks = rank_blocks.len();
    let cycles_to_ms = 1.0 / (config.cost.clock_ghz * 1e6);

    // Each rank LPT-schedules its own blocks onto its SMs.
    let device_ms: Vec<f64> = rank_blocks
        .iter()
        .map(|blocks| {
            let mut costs: Vec<f64> = blocks
                .iter()
                .map(|m| config.cost.block_cycles(scheme, m))
                .collect();
            costs.sort_by(|a, b| b.total_cmp(a));
            let mut sms = vec![0.0f64; config.n_sms];
            for c in costs {
                if let Some((imin, _)) = sms.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1)) {
                    sms[imin] += c;
                }
            }
            sms.iter().fold(0.0f64, |a, &b| a.max(b)) * cycles_to_ms
        })
        .collect();
    let compute_ms = device_ms.iter().fold(0.0f64, |a, &b| a.max(b));

    // Only the exposed slice of each rank's wire time is charged: traffic
    // hidden behind overlapped computation already paid inside compute_ms.
    let comms_cycles = traffic
        .iter()
        .map(|t| {
            (t.bytes_sent as f64 * config.cost.link_byte_cycles
                + t.msgs_sent as f64 * config.cost.msg_latency_cycles)
                * t.exposed_fraction.clamp(0.0, 1.0)
        })
        .fold(0.0f64, f64::max);
    let comms_ms = comms_cycles * cycles_to_ms;

    let total_slots: u64 = rank_blocks.iter().flatten().map(|m| m.partial_slots).sum();
    let reduction_cycles = total_slots as f64 * config.cost.reduce_cycles
        / (n_ranks * config.n_sms) as f64
        + (n_ranks.saturating_sub(1)) as f64 * total_slots as f64 * config.cost.reduce_cycles
            / (n_ranks * config.n_sms * 4) as f64;
    let reduction_ms = reduction_cycles * cycles_to_ms;

    SimReport {
        device_ms,
        reduction_ms,
        comms_ms,
        total_ms: compute_ms + comms_ms + reduction_ms,
        flops: rank_blocks.iter().flatten().map(|m| m.flops).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(flops: u64, elem_loads: u64) -> Metrics {
        Metrics {
            flops,
            elem_data_loads: elem_loads,
            partial_slots: 100,
            ..Default::default()
        }
    }

    #[test]
    fn per_point_pays_more_for_element_loads() {
        let cfg = DeviceConfig::default();
        let m = block(1000, 1000);
        let pp = cfg.cost.block_cycles(Scheme::PerPoint, &m);
        let pe = cfg.cost.block_cycles(Scheme::PerElement, &m);
        assert!(pp > pe);
        let ratio = cfg.cost.uncoalesced_load_cycles / cfg.cost.coalesced_load_cycles;
        assert!(ratio >= 4.0, "model must penalize uncoalesced access");
    }

    #[test]
    fn more_devices_reduce_time() {
        let blocks: Vec<Metrics> = (0..128).map(|i| block(1_000_000 + i, 5_000)).collect();
        let mut last = f64::INFINITY;
        for n in [1usize, 2, 4, 8] {
            let cfg = DeviceConfig {
                n_devices: n,
                ..Default::default()
            };
            let rep = simulate(Scheme::PerElement, &blocks, &cfg);
            assert!(
                rep.total_ms < last,
                "no speedup at {n} devices: {} !< {last}",
                rep.total_ms
            );
            last = rep.total_ms;
        }
    }

    #[test]
    fn near_linear_scaling_with_many_balanced_blocks() {
        let blocks: Vec<Metrics> = (0..1024).map(|_| block(1_000_000, 5_000)).collect();
        let t1 = simulate(
            Scheme::PerElement,
            &blocks,
            &DeviceConfig {
                n_devices: 1,
                ..Default::default()
            },
        )
        .total_ms;
        let t8 = simulate(
            Scheme::PerElement,
            &blocks,
            &DeviceConfig {
                n_devices: 8,
                ..Default::default()
            },
        )
        .total_ms;
        let speedup = t1 / t8;
        assert!(
            speedup > 6.0,
            "expected near-linear 8-device scaling, got {speedup}"
        );
    }

    #[test]
    fn gflops_reporting() {
        let blocks = vec![block(13_000_000_000, 0)];
        let rep = simulate(Scheme::PerElement, &blocks, &DeviceConfig::default());
        assert!(rep.flops == 13_000_000_000);
        assert!(rep.gflops() > 0.0);
    }

    #[test]
    fn rank_sim_charges_counted_traffic() {
        let blocks: Vec<Metrics> = (0..32).map(|_| block(1_000_000, 5_000)).collect();
        let per_rank: Vec<Vec<Metrics>> = blocks.chunks(16).map(|c| c.to_vec()).collect();
        let quiet = vec![RankTraffic::default(); 2];
        let busy = vec![
            RankTraffic {
                bytes_sent: 1_000_000,
                msgs_sent: 10,
                exposed_fraction: 1.0,
            };
            2
        ];
        let cfg = DeviceConfig::default();
        let rep_quiet = simulate_ranks(Scheme::PerElement, &per_rank, &quiet, &cfg);
        let rep_busy = simulate_ranks(Scheme::PerElement, &per_rank, &busy, &cfg);
        assert_eq!(rep_quiet.comms_ms, 0.0);
        assert!(rep_busy.comms_ms > 0.0);
        assert!(
            (rep_busy.total_ms - rep_quiet.total_ms - rep_busy.comms_ms).abs() < 1e-12,
            "comms must be additive on top of compute + reduction"
        );
        // Overlap scales the charge: a rank that hid 3/4 of its wire time
        // pays exactly a quarter of the fully-exposed cost.
        let hidden: Vec<RankTraffic> = busy
            .iter()
            .map(|t| RankTraffic {
                exposed_fraction: 0.25,
                ..*t
            })
            .collect();
        let rep_hidden = simulate_ranks(Scheme::PerElement, &per_rank, &hidden, &cfg);
        assert!(
            (rep_hidden.comms_ms - rep_busy.comms_ms * 0.25).abs() < 1e-12,
            "exposed fraction must scale the comms charge"
        );
    }

    #[test]
    fn rank_scaling_bends_under_flat_halo_traffic() {
        // With per-rank halo traffic that does not shrink as ranks are
        // added, the speedup curve must fall away from linear — the shape
        // Fig. 14 shows once communication stops being amortized.
        let blocks: Vec<Metrics> = (0..256).map(|_| block(4_000_000, 5_000)).collect();
        let cfg = DeviceConfig::default();
        let time_at = |n: usize| {
            let per_rank: Vec<Vec<Metrics>> = (0..n)
                .map(|r| {
                    blocks
                        .iter()
                        .skip(r)
                        .step_by(n)
                        .cloned()
                        .collect::<Vec<_>>()
                })
                .collect();
            let traffic = vec![
                RankTraffic {
                    bytes_sent: if n > 1 { 100_000 } else { 0 },
                    msgs_sent: if n > 1 { (n - 1) as u64 * 2 } else { 0 },
                    exposed_fraction: 1.0,
                };
                n
            ];
            simulate_ranks(Scheme::PerElement, &per_rank, &traffic, &cfg).total_ms
        };
        let t1 = time_at(1);
        let t8 = time_at(8);
        let speedup = t1 / t8;
        assert!(speedup > 1.5, "ranks must still help, got {speedup}");
        assert!(
            speedup < 7.0,
            "flat halo traffic must bend the curve below linear, got {speedup}"
        );
    }

    #[test]
    fn single_huge_block_does_not_scale() {
        // One indivisible block: device time is flat regardless of device
        // count (the serialization the tiling scheme exists to avoid).
        let blocks = vec![block(1_000_000_000, 0)];
        let t1 = simulate(Scheme::PerElement, &blocks, &DeviceConfig::default()).total_ms;
        let t8 = simulate(
            Scheme::PerElement,
            &blocks,
            &DeviceConfig {
                n_devices: 8,
                ..Default::default()
            },
        )
        .total_ms;
        assert!(t8 > 0.9 * t1, "indivisible work cannot speed up");
    }
}
