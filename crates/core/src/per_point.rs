//! The per-point evaluation scheme (Algorithm 2).
//!
//! Iterate over grid points; for each, center the stencil and gather every
//! element whose image can intersect it through the triangle hash grid
//! (including the halo ring). Each gathered element's data is re-read for
//! every point that samples it — the access pattern whose cost the
//! per-element scheme removes.

use crate::grid_points::ComputationGrid;
use crate::integrate::ElementData;
use crate::kernel::{AccumulateSolution, Scratch, StencilTraversal};
use crate::metrics::Metrics;
use crate::probe::{timed, BlockStats, Probe};
use crate::simd::SimdIsa;
use rayon::prelude::*;
use ustencil_dg::DgField;
use ustencil_mesh::TriMesh;
use ustencil_quadrature::TriangleRule;
use ustencil_siac::Stencil2d;
use ustencil_spatial::TriangleGrid;

/// Inputs shared by every block of a per-point run.
pub struct PerPointRun<'a> {
    /// The mesh being sampled.
    pub mesh: &'a TriMesh,
    /// The dG field being filtered.
    pub field: &'a DgField,
    /// Evaluation points.
    pub grid: &'a ComputationGrid,
    /// The scaled stencil.
    pub stencil: &'a Stencil2d,
    /// Triangle hash grid over element centroids (periodic).
    pub tri_grid: &'a TriangleGrid,
    /// Exact triangle rule for the clipped sub-regions.
    pub rule: &'a TriangleRule,
    /// Resolved SIMD ISA of the quadrature reduction.
    pub simd: SimdIsa,
}

impl PerPointRun<'_> {
    /// Processes the half-open point range `[start, end)`, writing results
    /// into `values` (length `end - start`).
    fn run_block(
        &self,
        start: usize,
        end: usize,
        values: &mut [f64],
        probe: &mut Probe,
    ) -> Metrics {
        let mut metrics = Metrics::default();
        let basis = self.field.basis();
        let trav = StencilTraversal::new(
            self.stencil,
            self.rule,
            basis.monomial_exponents(),
            basis.n_modes(),
        )
        .with_simd(self.simd);
        // The per-point scheme reads the element data anew for every
        // (point, element) pair — no reuse across points is *modeled*, so
        // the full load is charged per candidate even though the scratch
        // cache elides repeat gathers in the implementation.
        let elem_values = Metrics::element_data_values(self.field.degree());
        let mut scratch = Scratch::new();
        let mut sink = AccumulateSolution::new();

        for (slot, i) in (start..end).enumerate() {
            let center = self.grid.points()[i];
            trav.point_query(
                center,
                self.tri_grid,
                |e| ElementData::gather(self.mesh, self.field, basis, e),
                elem_values,
                &mut scratch,
                &mut sink,
                &mut metrics,
                probe,
            );
            values[slot] = sink.take();
            metrics.solution_writes += 1;
        }
        // Untiled scheme: exactly one solution slot per grid point.
        metrics.partial_slots += (end - start) as u64;
        metrics
    }

    /// Runs the whole grid split into `n_blocks` contiguous blocks,
    /// optionally in parallel, returning the solution and per-block metrics.
    pub fn run(&self, n_blocks: usize, parallel: bool) -> (Vec<f64>, Vec<Metrics>) {
        let (values, stats) = self.run_instrumented(n_blocks, parallel, false);
        (values, BlockStats::metrics_of(&stats))
    }

    /// Like [`run`](Self::run), but returns full per-block stats (wall
    /// time, owned point counts, distribution probes). With
    /// `instrument = false` the probes stay disabled and the hot loop pays
    /// only its counter increments.
    pub fn run_instrumented(
        &self,
        n_blocks: usize,
        parallel: bool,
        instrument: bool,
    ) -> (Vec<f64>, Vec<BlockStats>) {
        let n = self.grid.len();
        let n_blocks = n_blocks.clamp(1, n.max(1));
        let bounds: Vec<(usize, usize)> = (0..n_blocks)
            .map(|b| (b * n / n_blocks, (b + 1) * n / n_blocks))
            .collect();

        let block = |s: usize, e: usize, slice: &mut [f64]| -> BlockStats {
            let mut probe = Probe::new(instrument);
            let (metrics, wall_ns) = timed(|| self.run_block(s, e, slice, &mut probe));
            BlockStats {
                metrics,
                wall_ns,
                elements: 0,
                points: (e - s) as u64,
                probe,
            }
        };

        let mut values = vec![0.0; n];
        let stats: Vec<BlockStats> = if parallel {
            // Split the output buffer along block boundaries so each worker
            // owns its slice — race freedom by construction.
            let mut slices: Vec<&mut [f64]> = Vec::with_capacity(n_blocks);
            let mut rest = values.as_mut_slice();
            for &(s, e) in &bounds {
                let (head, tail) = rest.split_at_mut(e - s);
                slices.push(head);
                rest = tail;
            }
            bounds
                .par_iter()
                .zip(slices)
                .map(|(&(s, e), slice)| block(s, e, slice))
                .collect()
        } else {
            bounds
                .iter()
                .map(|&(s, e)| {
                    let mut slice = vec![0.0; e - s];
                    let st = block(s, e, &mut slice);
                    values[s..e].copy_from_slice(&slice);
                    st
                })
                .collect()
        };
        (values, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrate::IntegrationCtx as Ctx;
    use ustencil_dg::project_l2;
    use ustencil_mesh::{generate_mesh, MeshClass};
    use ustencil_spatial::Boundary;

    fn setup(
        n_tri: usize,
        p: usize,
        seed: u64,
    ) -> (
        TriMesh,
        DgField,
        ComputationGrid,
        Stencil2d,
        TriangleGrid,
        TriangleRule,
    ) {
        let mesh = generate_mesh(MeshClass::LowVariance, n_tri, seed);
        let field = project_l2(&mesh, p, |x, y| 0.2 + x - 0.5 * y + x * y, 2);
        let grid = ComputationGrid::quadrature_points(&mesh, p);
        let stencil = Stencil2d::symmetric(p, mesh.max_edge_length());
        let tgrid = TriangleGrid::build(&mesh, Boundary::Periodic);
        let rule = TriangleRule::with_strength(Ctx::required_strength(p, p));
        (mesh, field, grid, stencil, tgrid, rule)
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let (mesh, field, grid, stencil, tgrid, rule) = setup(120, 1, 4);
        let run = PerPointRun {
            mesh: &mesh,
            field: &field,
            grid: &grid,
            stencil: &stencil,
            tri_grid: &tgrid,
            rule: &rule,
            simd: SimdIsa::Scalar,
        };
        let (seq, m_seq) = run.run(1, false);
        let (par, m_par) = run.run(7, true);
        for (a, b) in seq.iter().zip(&par) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
        // Metrics totals must agree regardless of blocking.
        let t_seq = Metrics::sum(&m_seq);
        let t_par = Metrics::sum(&m_par);
        assert_eq!(t_seq.intersection_tests, t_par.intersection_tests);
        assert_eq!(t_seq.subregions, t_par.subregions);
        assert_eq!(t_seq.quad_evals, t_par.quad_evals);
    }

    #[test]
    fn constant_field_is_preserved_everywhere() {
        let (mesh, _, grid, stencil, tgrid, rule) = setup(150, 1, 7);
        let field = project_l2(&mesh, 1, |_, _| 1.75, 0);
        let run = PerPointRun {
            mesh: &mesh,
            field: &field,
            grid: &grid,
            stencil: &stencil,
            tri_grid: &tgrid,
            rule: &rule,
            simd: SimdIsa::Scalar,
        };
        let (values, _) = run.run(4, false);
        for (i, v) in values.iter().enumerate() {
            assert!(
                (v - 1.75).abs() < 1e-9,
                "point {i} ({:?}): {v}",
                grid.points()[i]
            );
        }
    }

    #[test]
    fn metrics_are_populated() {
        let (mesh, field, grid, stencil, tgrid, rule) = setup(80, 1, 2);
        let run = PerPointRun {
            mesh: &mesh,
            field: &field,
            grid: &grid,
            stencil: &stencil,
            tri_grid: &tgrid,
            rule: &rule,
            simd: SimdIsa::Scalar,
        };
        let (_, blocks) = run.run(2, false);
        let m = Metrics::sum(&blocks);
        assert!(m.intersection_tests > 0);
        assert!(m.true_intersections > 0);
        assert!(m.true_intersections <= m.intersection_tests);
        assert!(m.flops > m.quad_evals);
        assert_eq!(m.solution_writes, grid.len() as u64);
        assert_eq!(m.partial_slots, grid.len() as u64);
        // Per-point reads element data per test.
        assert_eq!(
            m.elem_data_loads,
            m.intersection_tests * Metrics::element_data_values(1)
        );
    }

    #[test]
    fn instrumented_run_populates_stats() {
        let (mesh, field, grid, stencil, tgrid, rule) = setup(100, 1, 6);
        let run = PerPointRun {
            mesh: &mesh,
            field: &field,
            grid: &grid,
            stencil: &stencil,
            tri_grid: &tgrid,
            rule: &rule,
            simd: SimdIsa::Scalar,
        };
        let (plain, metrics) = run.run(3, false);
        let (instr, stats) = run.run_instrumented(3, false, true);
        // Instrumentation must not change the numerics or the counters.
        assert_eq!(plain, instr);
        assert_eq!(metrics, BlockStats::metrics_of(&stats));
        let points: u64 = stats.iter().map(|s| s.points).sum();
        assert_eq!(points, grid.len() as u64);
        for s in &stats {
            assert!(s.wall_ns > 0, "per-block wall time must be measured");
            assert_eq!(s.elements, 0, "per-point blocks own points, not elements");
        }
        let probe = BlockStats::merged_probe(&stats);
        // One candidates sample per grid point, one sub-region sample per
        // candidate pair, quadrature samples bounded by the clip volume.
        assert_eq!(probe.candidates_per_query().count(), grid.len() as u64);
        let m = Metrics::sum(&BlockStats::metrics_of(&stats));
        assert_eq!(probe.candidates_per_query().sum(), m.intersection_tests);
        assert_eq!(probe.subregions_per_element().count(), m.intersection_tests);
        assert_eq!(probe.subregions_per_element().sum(), m.subregions);
        assert_eq!(probe.quad_points_per_integration().sum(), m.quad_evals);
        // Uninstrumented stats leave the probes empty.
        let (_, bare) = run.run_instrumented(3, false, false);
        assert!(BlockStats::merged_probe(&bare)
            .candidates_per_query()
            .is_empty());
    }
}
