//! Data-layout policy: in what *order* the engines visit points and
//! elements.
//!
//! The schemes and the plan compiler decide *which* (element, point) pairs
//! interact; [`Layout`] decides the traversal and storage order of those
//! pairs. Natural order is whatever the mesh generator produced — for the
//! Delaunay generators that is close to insertion order, which scatters
//! spatially adjacent elements across the index space. The Hilbert layouts
//! renumber points and elements along a Hilbert space-filling curve
//! (`ustencil_spatial::hilbert`), so consecutive CSR rows of a compiled
//! [`EvalPlan`](../../ustencil_plan/struct.EvalPlan.html) read nearby
//! coefficient columns and the direct schemes revisit recently-cached
//! elements.
//!
//! Reordering is an internal concern: every public API still speaks
//! original indices. Inputs are permuted on entry, outputs inverse-permuted
//! on exit. Direct-scheme results move by ≤1e-12 (floating-point summation
//! order changes); plan application is bitwise identical to natural order
//! after the inverse permutation.

/// Traversal/storage order for evaluation points and mesh elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Layout {
    /// Mesh-generator order, untouched. The default; bit-compatible with
    /// every result produced before layouts existed.
    #[default]
    Natural,
    /// Points and elements renumbered along a Hilbert space-filling curve;
    /// plan apply runs over the permuted CSR with a plain row sweep.
    Hilbert,
    /// Hilbert renumbering plus a cache-blocked plan apply: rows are
    /// grouped into tiles whose coefficient column span fits in L2, and
    /// workers process whole tiles (row-aligned, so numerics are unchanged
    /// relative to [`Layout::Hilbert`]).
    HilbertBlocked,
}

impl Layout {
    /// Every layout, in declaration order. [`from_label`](Self::from_label)
    /// searches this list, so labels can never drift variant by variant.
    pub const ALL: [Layout; 3] = [Layout::Natural, Layout::Hilbert, Layout::HilbertBlocked];

    /// Canonical label — used for CLI flags and as the `"layout"` value in
    /// `RunReport` JSON.
    pub fn label(&self) -> &'static str {
        match self {
            Layout::Natural => "natural",
            Layout::Hilbert => "hilbert",
            Layout::HilbertBlocked => "hilbert-blocked",
        }
    }

    /// The layout a [`label`](Self::label) string names (exact inverse of
    /// `label` by construction).
    pub fn from_label(label: &str) -> Option<Layout> {
        Self::ALL.into_iter().find(|l| l.label() == label)
    }

    /// Whether this layout renumbers points/elements (both Hilbert
    /// variants do; natural order does not).
    pub fn reorders(&self) -> bool {
        !matches!(self, Layout::Natural)
    }

    /// Whether plan application should use the cache-blocked row-tile
    /// sweep.
    pub fn blocked(&self) -> bool {
        matches!(self, Layout::HilbertBlocked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip_over_all_variants() {
        for layout in Layout::ALL {
            assert_eq!(Layout::from_label(layout.label()), Some(layout));
        }
        let labels: Vec<&str> = Layout::ALL.iter().map(|l| l.label()).collect();
        for (i, a) in labels.iter().enumerate() {
            for b in &labels[i + 1..] {
                assert_ne!(a, b, "duplicate layout label breaks from_label");
            }
        }
        assert_eq!(Layout::from_label("z-order"), None);
        assert_eq!(Layout::from_label(""), None);
    }

    #[test]
    fn predicates_match_variants() {
        assert!(!Layout::Natural.reorders());
        assert!(Layout::Hilbert.reorders());
        assert!(Layout::HilbertBlocked.reorders());
        assert!(!Layout::Natural.blocked());
        assert!(!Layout::Hilbert.blocked());
        assert!(Layout::HilbertBlocked.blocked());
        assert_eq!(Layout::default(), Layout::Natural);
    }
}
