//! The stencil evaluation engine: per-point and per-element SIAC
//! post-processing over unstructured meshes, overlapped patch tiling, and a
//! streaming-device cost model.
//!
//! This crate implements the paper's two evaluation strategies
//! (Section 3) and its scalability machinery (Section 4):
//!
//! * [`kernel`] — the shared stencil-traversal layer: one allocation-free
//!   clip/fan-triangulate/quadrature driver parameterized by contribution
//!   sinks, used by every scheme below and by the plan compiler;
//! * [`per_point`] — Algorithm 2: center a stencil on every grid point and
//!   gather intersecting elements through a triangle hash grid (halo ring
//!   included);
//! * [`per_element`] — Algorithm 3: iterate elements, reuse each element's
//!   data across every integration, and scatter partial solutions to the
//!   grid points found through a point hash grid;
//! * [`tiling`] — spatially overlapped tiling: disjoint element patches
//!   accumulate partial solutions in private scratch space, then a reduction
//!   sums overlapping contributions (Figure 7);
//! * [`device`] — a deterministic streaming-multiprocessor cost model that
//!   converts counted work ([`Metrics`]) into simulated execution time,
//!   standing in for the paper's GPUs (see DESIGN.md, substitutions);
//! * [`engine`] — the [`PostProcessor`] front door tying it all together;
//! * [`probe`] / [`report`] — the observability layer: per-block stats and
//!   distribution histograms merged at join points, unified with phase
//!   spans and the cost model into a JSON-serializable [`RunReport`].
//!
//! The numerical contract: both schemes compute exactly the same convolution
//! (Eq. 1–2), so their outputs agree to rounding; the difference is purely
//! in work distribution, data reuse, and memory behaviour.

#![deny(missing_docs)]

pub mod device;
pub mod engine;
pub mod grid_points;
pub mod integrate;
pub mod kernel;
pub mod layout;
pub mod metrics;
pub mod per_element;
pub mod per_point;
pub mod pipelined;
pub mod probe;
pub mod report;
pub mod simd;
pub mod tiling;

pub use device::{simulate_ranks, CostModel, DeviceConfig, RankTraffic, SimReport};
pub use engine::{PostProcessor, ProcessorSettings, Scheme, Solution};
pub use grid_points::ComputationGrid;
pub use kernel::{
    AccumulateSolution, AccumulateWeights, ContributionSink, QuadStage, Scratch, ScratchCapacity,
    StencilTraversal,
};
pub use layout::Layout;
pub use metrics::Metrics;
pub use probe::{BlockStats, Probe};
pub use report::{
    CriticalPathRecord, CriticalPhaseRecord, DeltaStats, LocalityStats, PlanStats, RankCommRecord,
    RunRecord, RunReport, ServeStats, SimdRecord, TenantLedger, REPORT_SCHEMA_VERSION,
};
pub use simd::{SimdIsa, SimdPolicy, SimdWidth};

/// One-stop imports for applications.
pub mod prelude {
    pub use crate::device::{simulate_ranks, CostModel, DeviceConfig, RankTraffic, SimReport};
    pub use crate::engine::{PostProcessor, ProcessorSettings, Scheme, Solution};
    pub use crate::grid_points::ComputationGrid;
    pub use crate::layout::Layout;
    pub use crate::metrics::Metrics;
    pub use crate::probe::{BlockStats, Probe};
    pub use crate::report::{
        CriticalPathRecord, CriticalPhaseRecord, DeltaStats, LocalityStats, PlanStats,
        RankCommRecord, RunRecord, RunReport, ServeStats, SimdRecord, TenantLedger,
        REPORT_SCHEMA_VERSION,
    };
    pub use crate::simd::{SimdIsa, SimdPolicy, SimdWidth};
}
