//! The per-element evaluation scheme with overlapped patch tiling
//! (Algorithm 3, Section 4).
//!
//! Iterate over mesh elements grouped into disjoint *patches*; gather each
//! element's data once, find every grid point whose stencil intersects the
//! element through the point hash grid, and scatter partial solutions into
//! the patch's private scratch space. A final reduction sums overlapping
//! partials — no synchronization between concurrently executing patches.

use crate::grid_points::ComputationGrid;
use crate::integrate::{needed_shifts, ElementData};
use crate::kernel::{AccumulateSolution, Scratch, StencilTraversal};
use crate::metrics::Metrics;
use crate::probe::{timed, BlockStats, Probe};
use crate::simd::SimdIsa;
use rayon::prelude::*;
use std::collections::HashMap;
use ustencil_dg::DgField;
use ustencil_geometry::Rect;
use ustencil_mesh::{Partition, TriMesh};
use ustencil_quadrature::TriangleRule;
use ustencil_siac::Stencil2d;
use ustencil_spatial::PointGrid;

/// Partial solutions of one patch: sparse `(point id, value)` pairs sorted
/// by id, plus the work counters of the patch's block.
#[derive(Debug, Clone)]
pub struct PatchResult {
    /// Sorted partial solutions.
    pub partials: Vec<(u32, f64)>,
    /// Work of this patch.
    pub metrics: Metrics,
}

/// Inputs shared by every patch of a per-element run.
pub struct PerElementRun<'a> {
    /// The mesh being iterated.
    pub mesh: &'a TriMesh,
    /// The dG field being filtered.
    pub field: &'a DgField,
    /// Evaluation points.
    pub grid: &'a ComputationGrid,
    /// The scaled stencil.
    pub stencil: &'a Stencil2d,
    /// Point hash grid (clamped boundary; periodic images are handled by
    /// explicit shift enumeration).
    pub point_grid: &'a PointGrid,
    /// Exact triangle rule for the clipped sub-regions.
    pub rule: &'a TriangleRule,
    /// Resolved SIMD ISA of the quadrature reduction.
    pub simd: SimdIsa,
}

impl PerElementRun<'_> {
    /// Processes one patch of elements into its private scratch space.
    pub fn run_patch(&self, elements: &[u32]) -> PatchResult {
        self.run_patch_instrumented(elements, false).0
    }

    /// Like [`run_patch`](Self::run_patch), but also times the patch and
    /// (when `instrument` is set) records distribution probes.
    pub fn run_patch_instrumented(
        &self,
        elements: &[u32],
        instrument: bool,
    ) -> (PatchResult, BlockStats) {
        let mut probe = Probe::new(instrument);
        let (result, wall_ns) = timed(|| self.patch_body(elements, &mut probe));
        let stats = BlockStats {
            metrics: result.metrics,
            wall_ns,
            elements: elements.len() as u64,
            points: result.partials.len() as u64,
            probe,
        };
        (result, stats)
    }

    fn patch_body(&self, elements: &[u32], probe: &mut Probe) -> PatchResult {
        let mut metrics = Metrics::default();
        let basis = self.field.basis();
        let half_width = self.stencil.width() / 2.0;
        let trav = StencilTraversal::new(
            self.stencil,
            self.rule,
            basis.monomial_exponents(),
            basis.n_modes(),
        )
        .with_simd(self.simd);
        let elem_values = Metrics::element_data_values(self.field.degree());
        let points = self.grid.points();

        let mut partials: HashMap<u32, f64> = HashMap::new();
        let mut scratch = Scratch::new();
        let mut sink = AccumulateSolution::new();

        for &e in elements {
            // Element data is gathered once and reused for every
            // integration over this element — the scheme's defining
            // data-reuse property.
            metrics.elem_data_loads += elem_values;
            let ed = ElementData::gather(self.mesh, self.field, basis, e as usize);
            let subregions_before = metrics.subregions;

            // Periodic images of the search region (Eq. 3, per-element
            // bounds). A point image p + sigma sees the element image
            // T - sigma.
            let inflated = Rect::new(
                ed.bbox.min.x - half_width,
                ed.bbox.min.y - half_width,
                ed.bbox.max.x + half_width,
                ed.bbox.max.y + half_width,
            );
            for sigma in needed_shifts(&inflated) {
                let query = ustencil_geometry::Aabb::new(ed.bbox.min - sigma, ed.bbox.max - sigma);
                metrics.cells_visited += self.point_grid.candidate_cells(&query, half_width) as u64;
                scratch.candidates.clear();
                self.point_grid
                    .for_each_candidate(&query, half_width, |id| scratch.candidates.push(id));
                probe.record_candidates(scratch.candidates.len() as u64);

                let elem_shift = -sigma;
                let image_min = ed.bbox.min + elem_shift;
                let image_max = ed.bbox.max + elem_shift;
                let image_bb = ustencil_geometry::Aabb::new(image_min, image_max);
                for &id in &scratch.candidates {
                    metrics.intersection_tests += 1;
                    // Only the point's spatial offset is read per
                    // integration (2 values, Section 3.4).
                    metrics.point_data_loads += 2;
                    let center = points[id as usize];
                    let support = self.stencil.support_rect(center);
                    if !support.intersects_aabb(&image_bb) {
                        continue;
                    }
                    let quads_before = metrics.quad_evals;
                    let hit = trav.integrate_image(
                        center,
                        &ed,
                        elem_shift,
                        &mut scratch.stage,
                        &mut sink,
                        &mut metrics,
                    );
                    let v = sink.take();
                    probe.record_quad_points(metrics.quad_evals - quads_before);
                    metrics.true_intersections += hit as u64;
                    if hit {
                        *partials.entry(id).or_insert(0.0) += v;
                        metrics.solution_writes += 1;
                    }
                }
            }
            probe.record_subregions(metrics.subregions - subregions_before);
        }

        let mut partials: Vec<(u32, f64)> = partials.into_iter().collect();
        partials.sort_unstable_by_key(|&(id, _)| id);
        metrics.partial_slots += partials.len() as u64;

        PatchResult { partials, metrics }
    }

    /// Runs all patches (optionally in parallel) and reduces the partial
    /// solutions into the final grid-point values.
    pub fn run(&self, partition: &Partition, parallel: bool) -> (Vec<f64>, Vec<Metrics>) {
        let (values, stats) = self.run_instrumented(partition, parallel, false);
        (values, BlockStats::metrics_of(&stats))
    }

    /// Evaluates every patch (optionally in parallel) without reducing,
    /// returning the partial solutions alongside full per-patch stats.
    /// This is the evaluation phase the engine wraps in its `eval` span;
    /// the reduction phase is [`reduce_patches`].
    pub fn run_patches(
        &self,
        partition: &Partition,
        parallel: bool,
        instrument: bool,
    ) -> (Vec<PatchResult>, Vec<BlockStats>) {
        let patches: Vec<&[u32]> = partition.patches().collect();
        let pairs: Vec<(PatchResult, BlockStats)> = if parallel {
            patches
                .par_iter()
                .map(|p| self.run_patch_instrumented(p, instrument))
                .collect()
        } else {
            patches
                .iter()
                .map(|p| self.run_patch_instrumented(p, instrument))
                .collect()
        };
        pairs.into_iter().unzip()
    }

    /// Like [`run`](Self::run), but returns full per-patch stats.
    pub fn run_instrumented(
        &self,
        partition: &Partition,
        parallel: bool,
        instrument: bool,
    ) -> (Vec<f64>, Vec<BlockStats>) {
        let (results, stats) = self.run_patches(partition, parallel, instrument);
        let values = reduce_patches(&results, self.grid.len());
        (values, stats)
    }
}

/// The reduction phase: sums every patch's partial solutions into the final
/// solution vector (Figure 7). Patches are reduced in patch order so the
/// result is deterministic.
pub fn reduce_patches(results: &[PatchResult], n_points: usize) -> Vec<f64> {
    let mut values = vec![0.0; n_points];
    for r in results {
        for &(id, v) in &r.partials {
            values[id as usize] += v;
        }
    }
    values
}

/// Relative memory overhead of the tiling: total partial-solution slots over
/// the baseline one-slot-per-point storage (the Figure 8 quantity; 1.0 means
/// no overhead).
pub fn memory_overhead(block_metrics: &[Metrics], n_points: usize) -> f64 {
    let slots: u64 = block_metrics.iter().map(|m| m.partial_slots).sum();
    slots as f64 / n_points as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrate::IntegrationCtx as Ctx;
    use ustencil_dg::project_l2;
    use ustencil_mesh::{generate_mesh, partition_recursive_bisection, MeshClass};
    use ustencil_spatial::Boundary;

    struct Fixture {
        mesh: TriMesh,
        field: DgField,
        grid: ComputationGrid,
        stencil: Stencil2d,
        pgrid: PointGrid,
        rule: TriangleRule,
    }

    fn setup(n_tri: usize, p: usize, seed: u64) -> Fixture {
        let mesh = generate_mesh(MeshClass::LowVariance, n_tri, seed);
        let field = project_l2(&mesh, p, |x, y| 0.2 + x - 0.5 * y + x * y, 2);
        let grid = ComputationGrid::quadrature_points(&mesh, p);
        let stencil = Stencil2d::symmetric(p, mesh.max_edge_length());
        let pgrid =
            PointGrid::build_half_edge(grid.points(), mesh.max_edge_length(), Boundary::Clamped);
        let rule = TriangleRule::with_strength(Ctx::required_strength(p, p));
        Fixture {
            mesh,
            field,
            grid,
            stencil,
            pgrid,
            rule,
        }
    }

    fn run_of(f: &Fixture) -> PerElementRun<'_> {
        PerElementRun {
            mesh: &f.mesh,
            field: &f.field,
            grid: &f.grid,
            stencil: &f.stencil,
            point_grid: &f.pgrid,
            rule: &f.rule,
            simd: SimdIsa::Scalar,
        }
    }

    #[test]
    fn single_patch_matches_multi_patch() {
        let f = setup(120, 1, 4);
        let run = run_of(&f);
        let p1 = partition_recursive_bisection(&f.mesh, 1);
        let p8 = partition_recursive_bisection(&f.mesh, 8);
        let (v1, _) = run.run(&p1, false);
        let (v8, m8) = run.run(&p8, false);
        for (a, b) in v1.iter().zip(&v8) {
            assert!((a - b).abs() < 1e-11, "{a} vs {b}");
        }
        assert_eq!(m8.len(), 8);
    }

    #[test]
    fn parallel_matches_sequential() {
        let f = setup(100, 2, 9);
        let run = run_of(&f);
        let part = partition_recursive_bisection(&f.mesh, 6);
        let (seq, _) = run.run(&part, false);
        let (par, _) = run.run(&part, true);
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a, b, "parallel patch execution must be bitwise equal");
        }
    }

    #[test]
    fn constant_field_preserved() {
        let f = setup(150, 1, 7);
        let field = project_l2(&f.mesh, 1, |_, _| -0.75, 0);
        let run = PerElementRun {
            mesh: &f.mesh,
            field: &field,
            grid: &f.grid,
            stencil: &f.stencil,
            point_grid: &f.pgrid,
            rule: &f.rule,
            simd: SimdIsa::Scalar,
        };
        let part = partition_recursive_bisection(&f.mesh, 4);
        let (values, _) = run.run(&part, false);
        for v in &values {
            assert!((v + 0.75).abs() < 1e-9, "{v}");
        }
    }

    #[test]
    fn tiling_memory_overhead_exceeds_one_and_shrinks() {
        let f_small = setup(300, 1, 3);
        let run = run_of(&f_small);
        let part = partition_recursive_bisection(&f_small.mesh, 16);
        let (_, blocks) = run.run(&part, false);
        let overhead_small = memory_overhead(&blocks, f_small.grid.len());
        assert!(
            overhead_small > 1.0,
            "patches must overlap: {overhead_small}"
        );

        let f_large = setup(1200, 1, 3);
        let run = run_of(&f_large);
        let part = partition_recursive_bisection(&f_large.mesh, 16);
        let (_, blocks) = run.run(&part, false);
        let overhead_large = memory_overhead(&blocks, f_large.grid.len());
        assert!(
            overhead_large < overhead_small,
            "overhead must shrink with mesh size: {overhead_small} -> {overhead_large}"
        );
    }

    #[test]
    fn element_data_loaded_once_per_element() {
        let f = setup(90, 2, 5);
        let run = run_of(&f);
        let part = partition_recursive_bisection(&f.mesh, 3);
        let (_, blocks) = run.run(&part, false);
        let m = Metrics::sum(&blocks);
        assert_eq!(
            m.elem_data_loads,
            f.mesh.n_triangles() as u64 * Metrics::element_data_values(2)
        );
        assert_eq!(m.point_data_loads, 2 * m.intersection_tests);
    }

    #[test]
    fn instrumented_patches_carry_stats() {
        let f = setup(120, 1, 11);
        let run = run_of(&f);
        let part = partition_recursive_bisection(&f.mesh, 6);
        let (plain, metrics) = run.run(&part, false);
        let (instr, stats) = run.run_instrumented(&part, false, true);
        assert_eq!(plain, instr, "instrumentation must not change values");
        assert_eq!(metrics, BlockStats::metrics_of(&stats));
        let elements: u64 = stats.iter().map(|s| s.elements).sum();
        assert_eq!(elements, f.mesh.n_triangles() as u64);
        for s in &stats {
            assert!(s.wall_ns > 0);
            assert_eq!(s.points, s.metrics.partial_slots);
        }
        let probe = BlockStats::merged_probe(&stats);
        let m = Metrics::sum(&metrics);
        // One sub-region sample per element; quad samples sum to the total.
        assert_eq!(
            probe.subregions_per_element().count(),
            f.mesh.n_triangles() as u64
        );
        assert_eq!(probe.subregions_per_element().sum(), m.subregions);
        assert_eq!(probe.quad_points_per_integration().sum(), m.quad_evals);
        assert_eq!(probe.candidates_per_query().sum(), m.intersection_tests);
    }
}
