//! The shared integration kernel: exact evaluation of one element's
//! contribution to one stencil.
//!
//! Both evaluation schemes reduce to the same primitive (Eq. 2): clip each
//! stencil lattice square against (an image of) a mesh triangle, fan-
//! triangulate the intersection, and integrate `K_h(p - center) * u(p)` over
//! every sub-triangle. Because lattice squares never straddle a kernel
//! breakpoint and the element polynomial has known degree, a fixed-strength
//! triangle rule makes each integral exact to rounding.

use crate::metrics::Metrics;
use ustencil_dg::{DgField, DubinerBasis};
use ustencil_geometry::{Aabb, Point2, Triangle, Vec2};
use ustencil_mesh::TriMesh;
use ustencil_quadrature::TriangleRule;
use ustencil_siac::Stencil2d;

/// Maximum modal coefficients supported without heap allocation (degree 3).
pub const MAX_MODES: usize = 10;

/// Per-element data gathered once and reused across integrations — the `ED`
/// of Algorithms 2 and 3. Holds the element geometry, the inverse affine
/// map, and the element polynomial in *reference monomial* form for cheap
/// evaluation.
#[derive(Debug, Clone, Copy)]
pub struct ElementData {
    /// Element geometry.
    pub tri: Triangle,
    /// Cached bounding box.
    pub bbox: Aabb,
    /// Monomial coefficients of the element polynomial over `u^a v^b`.
    mono: [f64; MAX_MODES],
    /// Inverse affine map rows: `(u, v) = M (p - origin)`.
    inv: [f64; 4],
    origin: Point2,
    n_modes: usize,
}

impl ElementData {
    /// Gathers element `e`'s data. The caller accounts the memory traffic
    /// (this is the load the per-element scheme amortizes).
    pub fn gather(mesh: &TriMesh, field: &DgField, basis: &DubinerBasis, e: usize) -> Self {
        let n_modes = basis.n_modes();
        let mut ed = Self::gather_geometry(mesh, e, n_modes);

        // Convert the modal expansion to reference monomials.
        for (m, &c) in field.element_coeffs(e).iter().enumerate() {
            for (slot, &mc) in ed
                .mono
                .iter_mut()
                .zip(basis.monomial_coefficients(m))
                .take(n_modes)
            {
                *slot += c * mc;
            }
        }
        ed
    }

    /// Gathers only element `e`'s geometry (polynomial left zero) — the
    /// plan compiler's variant, which keeps the quadrature symbolic and
    /// never touches field coefficients.
    pub fn gather_geometry(mesh: &TriMesh, e: usize, n_modes: usize) -> Self {
        debug_assert!(n_modes <= MAX_MODES);
        let tri = mesh.triangle(e);

        // Inverse affine map.
        let e1 = tri.b - tri.a;
        let e2 = tri.c - tri.a;
        let det = e1.cross(e2);
        let inv = [e2.y / det, -e2.x / det, -e1.y / det, e1.x / det];

        Self {
            tri,
            bbox: tri.aabb(),
            mono: [0.0; MAX_MODES],
            inv,
            origin: tri.a,
            n_modes,
        }
    }

    /// A placeholder value for pre-sized caches; never read before being
    /// overwritten by a real gather.
    pub(crate) fn placeholder() -> Self {
        Self {
            tri: Triangle::new(
                Point2::new(0.0, 0.0),
                Point2::new(1.0, 0.0),
                Point2::new(0.0, 1.0),
            ),
            bbox: Aabb::new(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)),
            mono: [0.0; MAX_MODES],
            inv: [1.0, 0.0, 0.0, 1.0],
            origin: Point2::new(0.0, 0.0),
            n_modes: 0,
        }
    }

    /// Number of monomial slots in use.
    #[inline]
    pub fn n_modes(&self) -> usize {
        self.n_modes
    }

    /// The element-frame map: `(u, v) = inv · (p - origin)`.
    #[inline]
    pub(crate) fn ref_coords(&self) -> (Point2, &[f64; 4]) {
        (self.origin, &self.inv)
    }

    /// Contracts monomial-power sums against the element polynomial:
    /// `Σ_slot mono[slot] · sums[slot]`.
    #[inline]
    pub(crate) fn dot_mono(&self, sums: &[f64; MAX_MODES]) -> f64 {
        let mut acc = 0.0;
        for (&c, &s) in self.mono[..self.n_modes].iter().zip(sums) {
            acc += c * s;
        }
        acc
    }

    /// Evaluates the element polynomial at physical point `p` (which may lie
    /// outside the element; the polynomial extends globally).
    #[inline]
    pub fn eval(&self, p: Point2, exps: &[(usize, usize)]) -> f64 {
        let d = p - self.origin;
        let u = self.inv[0] * d.x + self.inv[1] * d.y;
        let v = self.inv[2] * d.x + self.inv[3] * d.y;
        // Incremental power tables beat repeated `powi` with runtime
        // exponents in this hot loop (degree <= 3).
        let up = [1.0, u, u * u, u * u * u];
        let vp = [1.0, v, v * v, v * v * v];
        let mut acc = 0.0;
        for (&c, &(a, b)) in self.mono[..self.n_modes].iter().zip(exps) {
            acc += c * up[a] * vp[b];
        }
        acc
    }
}

/// Everything constant across integrations of one run.
pub struct IntegrationCtx<'a> {
    /// The scaled 2D stencil.
    pub stencil: &'a Stencil2d,
    /// Triangle rule of strength `2k + p` (exact for the clipped integrand).
    pub rule: &'a TriangleRule,
    /// Monomial exponent table of the element basis.
    pub exps: &'a [(usize, usize)],
}

impl<'a> IntegrationCtx<'a> {
    /// Builds the context for a field of degree `p` and a stencil of
    /// smoothness `k`.
    pub fn new(stencil: &'a Stencil2d, rule: &'a TriangleRule, basis: &'a DubinerBasis) -> Self {
        Self {
            stencil,
            rule,
            exps: basis.monomial_exponents(),
        }
    }

    /// Required rule strength for degree-`p` elements filtered at
    /// smoothness `k`: kernel bi-degree `2k` plus element degree `p`.
    pub const fn required_strength(k: usize, p: usize) -> usize {
        2 * k + p
    }
}

/// Estimated flops of one quadrature-point integrand evaluation.
#[inline]
pub const fn flops_per_quad_eval(k: usize, n_modes: usize) -> u64 {
    // Two 1D kernel Horner evaluations (2k flops each) + product/scale (4),
    // affine map (8), monomial sum (4 per mode), accumulate (2).
    (4 * k + 4 + 8 + 4 * n_modes + 2) as u64
}

/// Estimated flops of one Sutherland–Hodgman triangle/square clip.
#[inline]
pub const fn flops_per_clip() -> u64 {
    // 4 half-plane passes over <= 7 vertices, ~5 flops per vertex test plus
    // occasional intersection construction.
    4 * 7 * 5
}

/// Integrates the stencil centered at `center` against the periodic image
/// `tri + shift` of the element described by `elem`, accumulating metrics.
/// Returns the partial value and whether any lattice square truly
/// intersected the element (the caller aggregates this into
/// [`Metrics::true_intersections`] once per candidate pair).
///
/// `shift` is the translation applied to the element (so the field is
/// evaluated at `p - shift`). The caller has already established that the
/// shifted bounding box meets the stencil support.
///
/// This is a convenience wrapper over the kernel layer
/// ([`StencilTraversal`](crate::kernel::StencilTraversal) with an
/// [`AccumulateSolution`](crate::kernel::AccumulateSolution) sink) that
/// allocates its own staging buffer per call; hot paths hold a
/// [`Scratch`](crate::kernel::Scratch) arena and drive the traversal
/// directly.
pub fn integrate_element_stencil(
    ctx: &IntegrationCtx<'_>,
    center: Point2,
    elem: &ElementData,
    shift: Vec2,
    metrics: &mut Metrics,
) -> (f64, bool) {
    let trav = crate::kernel::StencilTraversal::new(ctx.stencil, ctx.rule, ctx.exps, elem.n_modes);
    let mut stage = crate::kernel::QuadStage::default();
    let mut sink = crate::kernel::AccumulateSolution::new();
    let hit = trav.integrate_image(center, elem, shift, &mut stage, &mut sink, metrics);
    (sink.take(), hit)
}

/// The periodic shifts whose element images can intersect a support
/// rectangle that may overhang the unit square. Returns shifts `(sx, sy)`
/// with each component in `{-1, 0, 1}`; at most 4 when the support is
/// narrower than the domain.
pub fn needed_shifts(support: &ustencil_geometry::Rect) -> impl Iterator<Item = Vec2> {
    let xs = [
        Some(0.0),
        (support.x0 < 0.0).then_some(-1.0),
        (support.x1 > 1.0).then_some(1.0),
    ];
    let ys = [
        Some(0.0),
        (support.y0 < 0.0).then_some(-1.0),
        (support.y1 > 1.0).then_some(1.0),
    ];
    xs.into_iter()
        .flatten()
        .flat_map(move |sx| ys.into_iter().flatten().map(move |sy| Vec2::new(sx, sy)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ustencil_dg::project_l2;
    use ustencil_mesh::{generate_mesh, MeshClass};
    use ustencil_quadrature::GaussLegendre;

    #[test]
    fn element_data_eval_matches_field() {
        let mesh = generate_mesh(MeshClass::LowVariance, 60, 2);
        let f = |x: f64, y: f64| 1.0 + x - 2.0 * y + x * y;
        let field = project_l2(&mesh, 2, f, 0);
        let basis = field.basis().clone();
        for e in [0usize, 10, 30] {
            let ed = ElementData::gather(&mesh, &field, &basis, e);
            let tri = mesh.triangle(e);
            for &(u, v) in &[(0.2, 0.2), (0.5, 0.1), (0.1, 0.7)] {
                let p = tri.map_from_unit(u, v);
                let via_ed = ed.eval(p, basis.monomial_exponents());
                let via_field = field.eval_ref(e, u, v);
                assert!(
                    (via_ed - via_field).abs() < 1e-11,
                    "e={e}: {via_ed} vs {via_field}"
                );
            }
        }
    }

    /// The sum of integrals over all elements equals the full convolution,
    /// whose value for a constant field is the constant (kernel has unit
    /// mass).
    #[test]
    fn constant_field_convolves_to_itself() {
        let mesh = generate_mesh(MeshClass::LowVariance, 150, 6);
        let field = project_l2(&mesh, 1, |_, _| 2.5, 0);
        let basis = field.basis().clone();
        let k = 1;
        let h = mesh.max_edge_length();
        let stencil = Stencil2d::symmetric(k, h);
        let rule = TriangleRule::with_strength(IntegrationCtx::required_strength(k, 1));
        let ctx = IntegrationCtx::new(&stencil, &rule, &basis);

        let center = Point2::new(0.5, 0.5);
        let support = stencil.support_rect(center);
        let mut metrics = Metrics::default();
        let mut total = 0.0;
        for e in 0..mesh.n_triangles() {
            let ed = ElementData::gather(&mesh, &field, &basis, e);
            for shift in needed_shifts(&support) {
                let bb = Aabb::new(ed.bbox.min + shift, ed.bbox.max + shift);
                if support.intersects_aabb(&bb) {
                    total += integrate_element_stencil(&ctx, center, &ed, shift, &mut metrics).0;
                }
            }
        }
        assert!(
            (total - 2.5).abs() < 1e-9,
            "convolution of constant: {total}"
        );
        assert!(metrics.subregions > 0);
        assert!(metrics.cell_clips >= metrics.subregions / 6);
    }

    /// Against a 1D-style reference: convolving a linear field reproduces it
    /// at interior points (degree 1 <= 2k).
    #[test]
    fn linear_field_reproduced_at_interior_point() {
        let mesh = generate_mesh(MeshClass::LowVariance, 200, 9);
        let f = |x: f64, y: f64| 0.3 + 1.7 * x - 0.9 * y;
        let field = project_l2(&mesh, 1, f, 0);
        let basis = field.basis().clone();
        let k = 1;
        let h = mesh.max_edge_length();
        let stencil = Stencil2d::symmetric(k, h);
        let rule = TriangleRule::with_strength(IntegrationCtx::required_strength(k, 1));
        let ctx = IntegrationCtx::new(&stencil, &rule, &basis);

        let center = Point2::new(0.47, 0.53);
        let support = stencil.support_rect(center);
        assert!(
            support.x0 > 0.0 && support.x1 < 1.0 && support.y0 > 0.0 && support.y1 < 1.0,
            "test point must be interior"
        );
        let mut metrics = Metrics::default();
        let mut total = 0.0;
        for e in 0..mesh.n_triangles() {
            let ed = ElementData::gather(&mesh, &field, &basis, e);
            if support.intersects_aabb(&ed.bbox) {
                total += integrate_element_stencil(&ctx, center, &ed, Vec2::ZERO, &mut metrics).0;
            }
        }
        let want = f(center.x, center.y);
        assert!(
            (total - want).abs() < 1e-9,
            "reproduction failed: {total} vs {want}"
        );
    }

    #[test]
    fn needed_shifts_interior_is_identity_only() {
        let r = ustencil_geometry::Rect::new(0.2, 0.3, 0.6, 0.7);
        let shifts: Vec<Vec2> = needed_shifts(&r).collect();
        assert_eq!(shifts, vec![Vec2::ZERO]);
    }

    #[test]
    fn needed_shifts_corner_overhang() {
        let r = ustencil_geometry::Rect::new(-0.1, -0.2, 0.3, 0.2);
        let shifts: Vec<Vec2> = needed_shifts(&r).collect();
        assert_eq!(shifts.len(), 4);
        assert!(shifts.contains(&Vec2::new(-1.0, -1.0)));
        assert!(shifts.contains(&Vec2::ZERO));
    }

    #[test]
    fn disjoint_element_contributes_nothing() {
        let mesh = generate_mesh(MeshClass::LowVariance, 100, 3);
        let field = project_l2(&mesh, 1, |x, _| x, 0);
        let basis = field.basis().clone();
        let stencil = Stencil2d::symmetric(1, 0.01);
        let rule = TriangleRule::with_strength(3);
        let ctx = IntegrationCtx::new(&stencil, &rule, &basis);
        // Element far from the tiny stencil at the opposite corner.
        let e = (0..mesh.n_triangles())
            .find(|&e| mesh.centroid(e).distance(Point2::new(0.9, 0.9)) < 0.2)
            .unwrap();
        let ed = ElementData::gather(&mesh, &field, &basis, e);
        let mut metrics = Metrics::default();
        let (v, hit) =
            integrate_element_stencil(&ctx, Point2::new(0.1, 0.1), &ed, Vec2::ZERO, &mut metrics);
        assert_eq!(v, 0.0);
        assert!(!hit);
    }

    /// Cross-check the 2D machinery against a semi-analytic 1D x 1D
    /// reference on a two-triangle mesh covering the square.
    #[test]
    fn matches_tensor_reference_on_simple_mesh() {
        // Field u(x, y) = x * y is bilinear; with p = 2 the projection is
        // exact, and the convolution tensor-factorizes:
        // u*(c) = (K_h * x)(cx) * (K_h * y)(cy) = cx * cy by reproduction.
        let mesh = generate_mesh(MeshClass::StructuredPattern, 2, 0);
        let field = project_l2(&mesh, 2, |x, y| x * y, 0);
        let basis = field.basis().clone();
        let k = 2;
        let h = 0.05; // small enough to stay interior
        let stencil = Stencil2d::symmetric(k, h);
        let rule = TriangleRule::with_strength(IntegrationCtx::required_strength(k, 2));
        let ctx = IntegrationCtx::new(&stencil, &rule, &basis);
        let center = Point2::new(0.45, 0.55);
        let support = stencil.support_rect(center);
        let mut metrics = Metrics::default();
        let mut total = 0.0;
        for e in 0..mesh.n_triangles() {
            let ed = ElementData::gather(&mesh, &field, &basis, e);
            if support.intersects_aabb(&ed.bbox) {
                total += integrate_element_stencil(&ctx, center, &ed, Vec2::ZERO, &mut metrics).0;
            }
        }
        // Sanity: 1D reproduction verified independently via Gauss rules.
        let gl = GaussLegendre::with_strength(3 * k + 2);
        let kern = stencil.kernel();
        let mut conv_x = 0.0;
        for c in 0..kern.n_cells() {
            let a = kern.support().0 + c as f64;
            conv_x += gl.integrate_on(a, a + 1.0, |s| kern.eval(s) * (center.x + h * s));
        }
        assert!((conv_x - center.x).abs() < 1e-12);
        assert!(
            (total - center.x * center.y).abs() < 1e-9,
            "{total} vs {}",
            center.x * center.y
        );
    }
}
