//! Per-block instrumentation: distribution probes and per-patch stats.
//!
//! Like [`Metrics`], everything here follows the
//! merge-at-join design: each worker owns its [`Probe`] and [`BlockStats`]
//! privately, the coordinator merges after the join. A disabled probe
//! reduces every `record_*` call to a single predictable branch, so the
//! evaluation hot loops stay a plain integer increment when observability
//! is off (guarded by the `probe_overhead` micro-benchmark).

use std::time::Instant;
use ustencil_trace::Hist64;

use crate::metrics::Metrics;

/// Streaming distribution recorders for one block/patch of work.
///
/// Three distributions drive the paper's data-structure and work-volume
/// arguments:
///
/// * **candidates per query** — how many ids each hash-grid range query
///   delivers (halo false positives included), the Section 3 search cost;
/// * **sub-regions per element** — how many triangular integration regions
///   clipping produces per processed element, the Section 3.2 clip volume;
/// * **quadrature points per integration** — integrand evaluations per
///   stencil/element integration, the inner-loop trip count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Probe {
    enabled: bool,
    candidates_per_query: Hist64,
    subregions_per_element: Hist64,
    quad_points_per_integration: Hist64,
}

impl Probe {
    /// A probe that records (`enabled = true`) or ignores all samples.
    pub fn new(enabled: bool) -> Self {
        Self {
            enabled,
            candidates_per_query: Hist64::new(),
            subregions_per_element: Hist64::new(),
            quad_points_per_integration: Hist64::new(),
        }
    }

    /// A probe that drops every sample after one branch.
    pub fn disabled() -> Self {
        Self::new(false)
    }

    /// Whether samples are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records how many candidates one hash-grid query delivered.
    #[inline]
    pub fn record_candidates(&mut self, n: u64) {
        if self.enabled {
            self.candidates_per_query.record(n);
        }
    }

    /// Records how many integration sub-regions one element produced.
    #[inline]
    pub fn record_subregions(&mut self, n: u64) {
        if self.enabled {
            self.subregions_per_element.record(n);
        }
    }

    /// Records how many quadrature points one integration evaluated.
    #[inline]
    pub fn record_quad_points(&mut self, n: u64) {
        if self.enabled {
            self.quad_points_per_integration.record(n);
        }
    }

    /// Merges another probe's samples into this one. The merged probe is
    /// enabled when either side was.
    pub fn merge(&mut self, other: &Probe) {
        self.enabled |= other.enabled;
        self.candidates_per_query.merge(&other.candidates_per_query);
        self.subregions_per_element
            .merge(&other.subregions_per_element);
        self.quad_points_per_integration
            .merge(&other.quad_points_per_integration);
    }

    /// Candidates-per-query distribution.
    pub fn candidates_per_query(&self) -> &Hist64 {
        &self.candidates_per_query
    }

    /// Sub-regions-per-element distribution.
    pub fn subregions_per_element(&self) -> &Hist64 {
        &self.subregions_per_element
    }

    /// Quadrature-points-per-integration distribution.
    pub fn quad_points_per_integration(&self) -> &Hist64 {
        &self.quad_points_per_integration
    }

    /// Restores a probe from deserialized histograms.
    pub fn from_histograms(
        candidates_per_query: Hist64,
        subregions_per_element: Hist64,
        quad_points_per_integration: Hist64,
    ) -> Self {
        Self {
            enabled: true,
            candidates_per_query,
            subregions_per_element,
            quad_points_per_integration,
        }
    }
}

/// Everything observed about one block/patch of work.
///
/// Blocks are the unit of device scheduling, so the spread of these values
/// across a run *is* its load-imbalance story (`RunReport` summarizes it
/// with max/mean, CoV, and Gini).
#[derive(Debug, Clone, PartialEq)]
pub struct BlockStats {
    /// The block's work counters.
    pub metrics: Metrics,
    /// Host wall-clock time spent evaluating the block, in nanoseconds.
    pub wall_ns: u64,
    /// Mesh elements assigned to the block (0 for per-point blocks, which
    /// own point ranges instead).
    pub elements: u64,
    /// Grid points the block wrote: owned points for per-point blocks,
    /// touched partial-solution slots for per-element patches.
    pub points: u64,
    /// The block's distribution probe.
    pub probe: Probe,
}

impl BlockStats {
    /// Stats for an uninstrumented block: counters only.
    pub fn bare(metrics: Metrics) -> Self {
        Self {
            metrics,
            wall_ns: 0,
            elements: 0,
            points: 0,
            probe: Probe::disabled(),
        }
    }

    /// Projects per-block metrics out of a stats slice (the shape the
    /// device cost model consumes).
    pub fn metrics_of(stats: &[BlockStats]) -> Vec<Metrics> {
        stats.iter().map(|s| s.metrics).collect()
    }

    /// Merges every block's probe into one run-wide probe.
    pub fn merged_probe(stats: &[BlockStats]) -> Probe {
        let mut total = Probe::disabled();
        for s in stats {
            total.merge(&s.probe);
        }
        total
    }
}

/// Times a closure, returning its result and the elapsed nanoseconds.
pub(crate) fn timed<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_nanos() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_probe_records_nothing() {
        let mut p = Probe::disabled();
        p.record_candidates(10);
        p.record_subregions(3);
        p.record_quad_points(7);
        assert!(!p.is_enabled());
        assert!(p.candidates_per_query().is_empty());
        assert!(p.subregions_per_element().is_empty());
        assert!(p.quad_points_per_integration().is_empty());
    }

    #[test]
    fn enabled_probe_records_all_three() {
        let mut p = Probe::new(true);
        p.record_candidates(10);
        p.record_candidates(20);
        p.record_subregions(3);
        p.record_quad_points(7);
        assert_eq!(p.candidates_per_query().count(), 2);
        assert_eq!(p.candidates_per_query().sum(), 30);
        assert_eq!(p.subregions_per_element().count(), 1);
        assert_eq!(p.quad_points_per_integration().max(), 7);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = Probe::new(true);
        let mut b = Probe::new(true);
        a.record_candidates(1);
        b.record_candidates(100);
        a.merge(&b);
        assert_eq!(a.candidates_per_query().count(), 2);
        assert_eq!(a.candidates_per_query().max(), 100);
        // Merging an enabled probe into a disabled one enables it.
        let mut d = Probe::disabled();
        d.merge(&a);
        assert!(d.is_enabled());
        assert_eq!(d.candidates_per_query().count(), 2);
    }

    #[test]
    fn merged_probe_over_blocks() {
        let mut p0 = Probe::new(true);
        p0.record_candidates(4);
        let mut p1 = Probe::new(true);
        p1.record_candidates(8);
        let stats = vec![
            BlockStats {
                probe: p0,
                ..BlockStats::bare(Metrics::default())
            },
            BlockStats {
                probe: p1,
                ..BlockStats::bare(Metrics::default())
            },
        ];
        let merged = BlockStats::merged_probe(&stats);
        assert_eq!(merged.candidates_per_query().count(), 2);
        assert_eq!(merged.candidates_per_query().sum(), 12);
    }
}
