//! Unstructured 2D triangular meshes over the periodic unit square.
//!
//! The paper evaluates its stencil schemes over Delaunay meshes of the unit
//! square in two statistical classes (Figures 9 and 10): *low variance*
//! (roughly uniform element sizes) and *high variance* (strongly graded
//! element sizes). This crate provides:
//!
//! * [`TriMesh`] — the mesh container with validation and derived geometry,
//! * [`delaunay`] — an incremental Bowyer–Watson Delaunay triangulator with
//!   walk-based point location,
//! * [`generate`] — seeded generators for the paper's mesh classes plus a
//!   structured-pattern mesh for convergence studies,
//! * [`partition`] — the recursive-bisection patch partitioner used by the
//!   overlapped tiling scheme (Section 4),
//! * [`periodic`] — helpers for the periodic unit-square domain,
//! * [`stats`] — element-size statistics (the "variance" classification),
//! * [`amr`] — deterministic mesh edits (midpoint refinement, band
//!   displacement) driving the incremental plan-recompilation workload.

#![deny(missing_docs)]

pub mod amr;
pub mod delaunay;
pub mod generate;
pub mod partition;
pub mod periodic;
pub mod stats;
pub mod trimesh;

pub use amr::{displace_band, elements_on_longest_edge, refine_elements};
pub use delaunay::delaunay_triangulate;
pub use generate::{generate_mesh, MeshClass};
pub use partition::{halo_elements, partition_recursive_bisection, partition_subset, Partition};
pub use periodic::{minimal_image_delta, wrap_unit, PERIODIC_SHIFTS};
pub use stats::MeshStats;
pub use trimesh::{MeshError, TriMesh};
