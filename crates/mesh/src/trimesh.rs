//! The triangular mesh container.

use ustencil_geometry::{Aabb, Point2, Triangle};

/// Errors produced by [`TriMesh::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum MeshError {
    /// A triangle references a vertex index that is out of bounds.
    VertexIndexOutOfBounds {
        /// Offending triangle index.
        triangle: usize,
        /// Offending vertex index.
        vertex: u32,
    },
    /// A triangle has non-positive signed area (degenerate or clockwise).
    NotCounterClockwise {
        /// Offending triangle index.
        triangle: usize,
        /// Its signed area.
        signed_area: f64,
    },
    /// A triangle repeats a vertex.
    RepeatedVertex {
        /// Offending triangle index.
        triangle: usize,
    },
    /// An interior edge is shared by more than two triangles (non-manifold).
    NonManifoldEdge {
        /// The vertex pair of the offending edge.
        edge: (u32, u32),
    },
}

impl std::fmt::Display for MeshError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeshError::VertexIndexOutOfBounds { triangle, vertex } => {
                write!(f, "triangle {triangle} references missing vertex {vertex}")
            }
            MeshError::NotCounterClockwise {
                triangle,
                signed_area,
            } => write!(
                f,
                "triangle {triangle} is not counter-clockwise (signed area {signed_area:e})"
            ),
            MeshError::RepeatedVertex { triangle } => {
                write!(f, "triangle {triangle} repeats a vertex")
            }
            MeshError::NonManifoldEdge { edge } => {
                write!(
                    f,
                    "edge ({}, {}) is shared by more than two triangles",
                    edge.0, edge.1
                )
            }
        }
    }
}

impl std::error::Error for MeshError {}

/// An unstructured triangular mesh: shared vertices plus index triples.
///
/// Triangles are stored counter-clockwise. The mesh is *flat* data — vertex
/// and index buffers — so it can be traversed without pointer chasing in the
/// evaluator hot loops.
#[derive(Debug, Clone, Default)]
pub struct TriMesh {
    vertices: Vec<Point2>,
    triangles: Vec<[u32; 3]>,
}

impl TriMesh {
    /// Builds a mesh from raw buffers without validation; call
    /// [`validate`](Self::validate) to check invariants.
    pub fn from_raw(vertices: Vec<Point2>, triangles: Vec<[u32; 3]>) -> Self {
        Self {
            vertices,
            triangles,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn n_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of triangles.
    #[inline]
    pub fn n_triangles(&self) -> usize {
        self.triangles.len()
    }

    /// Vertex buffer.
    #[inline]
    pub fn vertices(&self) -> &[Point2] {
        &self.vertices
    }

    /// Index buffer.
    #[inline]
    pub fn triangle_indices(&self) -> &[[u32; 3]] {
        &self.triangles
    }

    /// The `i`-th triangle as a geometric [`Triangle`].
    #[inline]
    pub fn triangle(&self, i: usize) -> Triangle {
        let [a, b, c] = self.triangles[i];
        Triangle::new(
            self.vertices[a as usize],
            self.vertices[b as usize],
            self.vertices[c as usize],
        )
    }

    /// Iterator over all triangles as geometry.
    pub fn triangles(&self) -> impl ExactSizeIterator<Item = Triangle> + '_ {
        (0..self.n_triangles()).map(|i| self.triangle(i))
    }

    /// Bounding box of the whole mesh.
    pub fn aabb(&self) -> Aabb {
        Aabb::from_points(self.vertices.iter().copied())
    }

    /// Sum of all triangle areas.
    pub fn total_area(&self) -> f64 {
        self.triangles().map(|t| t.area()).sum()
    }

    /// Length of the longest edge over all triangles — the `s` of
    /// Section 3.2, which fixes both the hash-grid cell size and the stencil
    /// scaling `h`.
    pub fn max_edge_length(&self) -> f64 {
        self.triangles()
            .map(|t| t.longest_edge())
            .fold(0.0, f64::max)
    }

    /// Centroid of the `i`-th triangle.
    #[inline]
    pub fn centroid(&self, i: usize) -> Point2 {
        self.triangle(i).centroid()
    }

    /// A mesh with the same geometry but triangles renumbered by
    /// `new_to_old`: triangle `i` of the result is triangle `new_to_old[i]`
    /// of `self`. The vertex buffer is shared unchanged — only element
    /// identity moves, which is what locality-ordering (e.g. a Hilbert
    /// permutation from `ustencil-spatial`) needs.
    ///
    /// # Panics
    /// Panics when `new_to_old` is not `n_triangles` long or indexes out of
    /// bounds.
    pub fn reordered_elements(&self, new_to_old: &[u32]) -> TriMesh {
        assert_eq!(
            new_to_old.len(),
            self.triangles.len(),
            "permutation length must match triangle count"
        );
        let triangles = new_to_old
            .iter()
            .map(|&old| self.triangles[old as usize])
            .collect();
        TriMesh {
            vertices: self.vertices.clone(),
            triangles,
        }
    }

    /// Checks structural invariants: index bounds, counter-clockwise
    /// orientation with positive area, distinct vertices per triangle, and
    /// edge manifoldness. Returns the first violation found.
    pub fn validate(&self) -> Result<(), MeshError> {
        let nv = self.vertices.len() as u32;
        for (i, tri) in self.triangles.iter().enumerate() {
            for &v in tri {
                if v >= nv {
                    return Err(MeshError::VertexIndexOutOfBounds {
                        triangle: i,
                        vertex: v,
                    });
                }
            }
            if tri[0] == tri[1] || tri[1] == tri[2] || tri[0] == tri[2] {
                return Err(MeshError::RepeatedVertex { triangle: i });
            }
            let sa = self.triangle(i).signed_area();
            if sa <= 0.0 {
                return Err(MeshError::NotCounterClockwise {
                    triangle: i,
                    signed_area: sa,
                });
            }
        }
        // Manifoldness: every undirected edge appears at most twice.
        let mut edges: std::collections::HashMap<(u32, u32), u32> =
            std::collections::HashMap::with_capacity(self.triangles.len() * 3 / 2);
        for tri in &self.triangles {
            for k in 0..3 {
                let a = tri[k];
                let b = tri[(k + 1) % 3];
                let key = (a.min(b), a.max(b));
                let count = edges.entry(key).or_insert(0);
                *count += 1;
                if *count > 2 {
                    return Err(MeshError::NonManifoldEdge { edge: key });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_triangle_square() -> TriMesh {
        TriMesh::from_raw(
            vec![
                Point2::new(0.0, 0.0),
                Point2::new(1.0, 0.0),
                Point2::new(1.0, 1.0),
                Point2::new(0.0, 1.0),
            ],
            vec![[0, 1, 2], [0, 2, 3]],
        )
    }

    #[test]
    fn basic_accessors() {
        let m = two_triangle_square();
        assert_eq!(m.n_vertices(), 4);
        assert_eq!(m.n_triangles(), 2);
        assert!((m.total_area() - 1.0).abs() < 1e-15);
        assert!((m.max_edge_length() - 2f64.sqrt()).abs() < 1e-15);
        assert_eq!(m.aabb().max, Point2::new(1.0, 1.0));
    }

    #[test]
    fn valid_mesh_passes_validation() {
        assert_eq!(two_triangle_square().validate(), Ok(()));
    }

    #[test]
    fn out_of_bounds_index_detected() {
        let m = TriMesh::from_raw(vec![Point2::ORIGIN], vec![[0, 1, 2]]);
        assert!(matches!(
            m.validate(),
            Err(MeshError::VertexIndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn clockwise_triangle_detected() {
        let m = TriMesh::from_raw(
            vec![
                Point2::new(0.0, 0.0),
                Point2::new(1.0, 0.0),
                Point2::new(0.0, 1.0),
            ],
            vec![[0, 2, 1]],
        );
        assert!(matches!(
            m.validate(),
            Err(MeshError::NotCounterClockwise { .. })
        ));
    }

    #[test]
    fn repeated_vertex_detected() {
        let m = TriMesh::from_raw(
            vec![Point2::new(0.0, 0.0), Point2::new(1.0, 0.0)],
            vec![[0, 1, 1]],
        );
        assert!(matches!(
            m.validate(),
            Err(MeshError::RepeatedVertex { .. })
        ));
    }

    #[test]
    fn non_manifold_edge_detected() {
        let m = TriMesh::from_raw(
            vec![
                Point2::new(0.0, 0.0),
                Point2::new(1.0, 0.0),
                Point2::new(0.5, 1.0),
                Point2::new(0.5, -1.0),
                Point2::new(0.5, 2.0),
            ],
            // Edge (0,1) used by three triangles.
            vec![[0, 1, 2], [0, 3, 1], [0, 1, 4]],
        );
        assert!(matches!(
            m.validate(),
            Err(MeshError::NonManifoldEdge { .. })
        ));
    }

    #[test]
    fn error_display_formats() {
        let e = MeshError::RepeatedVertex { triangle: 7 };
        assert!(e.to_string().contains("triangle 7"));
    }
}
