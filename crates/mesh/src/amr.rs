//! Deterministic mesh edits for adaptive/moving-mesh workloads: midpoint
//! refinement and band-limited vertex displacement.
//!
//! These are the mesh-side half of the incremental-recompilation scenario
//! (`ustencil-plan`'s `PlanDelta`): each edit produces a *new* [`TriMesh`]
//! that shares most of its geometry bit-for-bit with the old one, so the
//! plan patcher's content diff can match the untouched region exactly.
//! Both edits are careful to preserve the mesh's longest edge — the
//! characteristic length `s` that scales the stencil (`h = h_factor · s`)
//! and the spatial grids — because a changed `s` invalidates *every*
//! compiled weight, not just the edited region's.
//!
//! Refinement is 1→4 midpoint subdivision. The hanging nodes it creates on
//! the refinement-front boundary are fine for this repo's purposes: dG
//! fields carry no inter-element continuity, [`TriMesh::validate`] keys
//! edges by vertex pairs (a child half-edge is a different key than the
//! neighbor's full edge), and the stencil traversal treats elements as an
//! unstructured soup of triangles.

use crate::trimesh::TriMesh;
use ustencil_geometry::Point2;

/// Flags the elements that own (a share of) a longest edge. Refining or
/// displacing these would change `max_edge_length` and with it the kernel
/// scale `h`, forcing a full plan recompile — AMR drivers exclude them from
/// the dirty set they generate.
pub fn elements_on_longest_edge(mesh: &TriMesh) -> Vec<bool> {
    let s = mesh.max_edge_length();
    let vs = mesh.vertices();
    mesh.triangle_indices()
        .iter()
        .map(|tri| {
            (0..3).any(|k| {
                let a = vs[tri[k] as usize];
                let b = vs[tri[(k + 1) % 3] as usize];
                a.distance(b) == s
            })
        })
        .collect()
}

/// Midpoint-refines the given elements (1 → 4): each refined triangle
/// `(v0, v1, v2)` is replaced *in place* by its corner child
/// `(v0, m01, m20)` and the remaining three children are appended at the
/// tail, grouped by parent in ascending order. Midpoints are deduplicated
/// across refined elements sharing an edge. Unrefined elements keep their
/// indices, so the old → new element correspondence is monotone — exactly
/// the shape `DirtySet::diff`'s order-preserving matcher recovers.
///
/// Refining an element that owns a longest edge (see
/// [`elements_on_longest_edge`]) is allowed but changes
/// [`TriMesh::max_edge_length`] once no surviving element carries that
/// edge.
///
/// # Panics
/// Panics when an element index is out of bounds or repeated.
pub fn refine_elements(mesh: &TriMesh, elements: &[u32]) -> TriMesh {
    let mut vertices = mesh.vertices().to_vec();
    let mut triangles = mesh.triangle_indices().to_vec();
    let mut refined = vec![false; mesh.n_triangles()];
    for &e in elements {
        assert!(
            (e as usize) < mesh.n_triangles(),
            "refine_elements: element {e} out of bounds"
        );
        assert!(
            !refined[e as usize],
            "refine_elements: element {e} repeated"
        );
        refined[e as usize] = true;
    }

    // Midpoint vertices, deduplicated by (sorted) parent-edge vertex pair.
    let mut midpoints: std::collections::HashMap<(u32, u32), u32> =
        std::collections::HashMap::new();
    let mut tail: Vec<[u32; 3]> = Vec::with_capacity(3 * elements.len());
    let mut order: Vec<u32> = elements.to_vec();
    order.sort_unstable();
    for &e in &order {
        let [v0, v1, v2] = triangles[e as usize];
        let mut mid = |a: u32, b: u32, vertices: &mut Vec<Point2>| -> u32 {
            let key = (a.min(b), a.max(b));
            *midpoints.entry(key).or_insert_with(|| {
                let pa = vertices[a as usize];
                let pb = vertices[b as usize];
                vertices.push(Point2::new(0.5 * (pa.x + pb.x), 0.5 * (pa.y + pb.y)));
                (vertices.len() - 1) as u32
            })
        };
        let m01 = mid(v0, v1, &mut vertices);
        let m12 = mid(v1, v2, &mut vertices);
        let m20 = mid(v2, v0, &mut vertices);
        // Corner child at the parent's slot; the other corners and the
        // medial triangle go to the tail. All four inherit the parent's
        // counter-clockwise orientation.
        triangles[e as usize] = [v0, m01, m20];
        tail.push([m01, v1, m12]);
        tail.push([m20, m12, v2]);
        tail.push([m01, m12, m20]);
    }
    triangles.extend_from_slice(&tail);
    TriMesh::from_raw(vertices, triangles)
}

/// splitmix64 — the repo's standard deterministic hash-RNG step.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Uniform in `[-1, 1)` from a hash.
fn unit_jitter(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 52) as f64 * 2.0 - 1.0
}

/// Displaces interior vertices inside the vertical band
/// `x ∈ [x_lo, x_hi]` by a deterministic pseudo-random jitter of up to
/// `amplitude` times the vertex's shortest incident edge. Element count and
/// connectivity are unchanged — only coordinates move — so this models a
/// moving-mesh (r-adaptivity) step.
///
/// Displacements that would grow any incident edge to the current longest
/// edge or beyond, flip an incident triangle's orientation, or push the
/// vertex outside the open unit square are skipped, and endpoints of a
/// longest edge plus domain-boundary vertices are pinned. Consequently
/// [`TriMesh::max_edge_length`] keeps its exact bit pattern and a compiled
/// plan for the old mesh can be patched rather than recompiled.
pub fn displace_band(mesh: &TriMesh, x_lo: f64, x_hi: f64, amplitude: f64, seed: u64) -> TriMesh {
    let s = mesh.max_edge_length();
    let n_vertices = mesh.n_vertices();
    let mut vertices = mesh.vertices().to_vec();
    let triangles = mesh.triangle_indices();

    // Incident triangles per vertex (CSR), for the orientation and edge
    // checks; pin longest-edge endpoints while scanning edges.
    let mut counts = vec![0u32; n_vertices];
    let mut pinned = vec![false; n_vertices];
    for tri in triangles {
        for k in 0..3 {
            counts[tri[k] as usize] += 1;
            let a = tri[k] as usize;
            let b = tri[(k + 1) % 3] as usize;
            if vertices[a].distance(vertices[b]) == s {
                pinned[a] = true;
                pinned[b] = true;
            }
        }
    }
    let mut offsets = vec![0u32; n_vertices + 1];
    for v in 0..n_vertices {
        offsets[v + 1] = offsets[v] + counts[v];
    }
    let mut cursor = offsets[..n_vertices].to_vec();
    let mut incident = vec![0u32; triangles.len() * 3];
    for (t, tri) in triangles.iter().enumerate() {
        for &v in tri {
            incident[cursor[v as usize] as usize] = t as u32;
            cursor[v as usize] += 1;
        }
    }

    let signed_area = |a: Point2, b: Point2, c: Point2| -> f64 {
        0.5 * ((b.x - a.x) * (c.y - a.y) - (c.x - a.x) * (b.y - a.y))
    };

    for v in 0..n_vertices {
        let p = vertices[v];
        if p.x < x_lo || p.x > x_hi || pinned[v] {
            continue;
        }
        if p.x == 0.0 || p.x == 1.0 || p.y == 0.0 || p.y == 1.0 {
            continue;
        }
        // Jitter scale: the shortest incident edge keeps the move local.
        let mut min_edge = f64::INFINITY;
        let tris = &incident[offsets[v] as usize..offsets[v + 1] as usize];
        for &t in tris {
            let tri = triangles[t as usize];
            for k in 0..3 {
                if tri[k] as usize == v {
                    for other in [tri[(k + 1) % 3], tri[(k + 2) % 3]] {
                        min_edge = min_edge.min(p.distance(vertices[other as usize]));
                    }
                }
            }
        }
        let h1 = splitmix64(seed ^ (v as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let h2 = splitmix64(h1);
        let cand = Point2::new(
            p.x + amplitude * min_edge * unit_jitter(h1),
            p.y + amplitude * min_edge * unit_jitter(h2),
        );
        if cand.x <= 0.0 || cand.x >= 1.0 || cand.y <= 0.0 || cand.y >= 1.0 {
            continue;
        }
        // Accept only if every incident triangle stays counter-clockwise
        // and every incident edge stays strictly shorter than the longest.
        let ok = tris.iter().all(|&t| {
            let tri = triangles[t as usize];
            let at = |i: u32| -> Point2 {
                if i as usize == v {
                    cand
                } else {
                    vertices[i as usize]
                }
            };
            let (a, b, c) = (at(tri[0]), at(tri[1]), at(tri[2]));
            if signed_area(a, b, c) <= 0.0 {
                return false;
            }
            (0..3).all(|k| {
                let (x, y) = (tri[k], tri[(k + 1) % 3]);
                x as usize != v && y as usize != v || at(x).distance(at(y)) < s
            })
        });
        if ok {
            vertices[v] = cand;
        }
    }
    TriMesh::from_raw(vertices, mesh.triangle_indices().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_mesh, MeshClass};

    #[test]
    fn refinement_preserves_area_and_orientation() {
        let mesh = generate_mesh(MeshClass::LowVariance, 200, 5);
        let on_longest = elements_on_longest_edge(&mesh);
        let targets: Vec<u32> = (0..mesh.n_triangles() as u32)
            .filter(|&e| !on_longest[e as usize])
            .take(20)
            .collect();
        let refined = refine_elements(&mesh, &targets);
        assert_eq!(
            refined.n_triangles(),
            mesh.n_triangles() + 3 * targets.len()
        );
        assert!((refined.total_area() - mesh.total_area()).abs() < 1e-12);
        // Hanging nodes are expected; orientation and manifoldness hold.
        refined.validate().expect("refined mesh validates");
        // The longest edge survived refinement away from it.
        assert_eq!(
            refined.max_edge_length().to_bits(),
            mesh.max_edge_length().to_bits()
        );
    }

    #[test]
    fn refining_shared_edges_dedups_midpoints() {
        let mesh = generate_mesh(MeshClass::LowVariance, 100, 9);
        let all: Vec<u32> = (0..mesh.n_triangles() as u32).collect();
        let refined = refine_elements(&mesh, &all);
        refined.validate().expect("fully refined mesh validates");
        assert_eq!(refined.n_triangles(), 4 * mesh.n_triangles());
        // Interior edges shared by two refined parents contribute one
        // midpoint, not two: strictly fewer than 3 new vertices per parent.
        assert!(refined.n_vertices() < mesh.n_vertices() + 3 * mesh.n_triangles());
    }

    #[test]
    fn displacement_moves_band_only_and_keeps_longest_edge() {
        let mesh = generate_mesh(MeshClass::LowVariance, 300, 11);
        let moved = displace_band(&mesh, 0.3, 0.6, 0.2, 42);
        moved.validate().expect("displaced mesh validates");
        assert_eq!(moved.n_triangles(), mesh.n_triangles());
        assert_eq!(
            moved.max_edge_length().to_bits(),
            mesh.max_edge_length().to_bits()
        );
        let mut n_moved = 0;
        for (a, b) in mesh.vertices().iter().zip(moved.vertices()) {
            if a.x.to_bits() != b.x.to_bits() || a.y.to_bits() != b.y.to_bits() {
                assert!(a.x >= 0.3 && a.x <= 0.6, "moved vertex outside band");
                n_moved += 1;
            }
        }
        assert!(n_moved > 0, "band displacement moved nothing");
    }

    #[test]
    fn displacement_is_deterministic() {
        let mesh = generate_mesh(MeshClass::HighVariance, 250, 3);
        let a = displace_band(&mesh, 0.0, 1.0, 0.15, 7);
        let b = displace_band(&mesh, 0.0, 1.0, 0.15, 7);
        for (pa, pb) in a.vertices().iter().zip(b.vertices()) {
            assert_eq!(pa.x.to_bits(), pb.x.to_bits());
            assert_eq!(pa.y.to_bits(), pb.y.to_bits());
        }
    }
}
