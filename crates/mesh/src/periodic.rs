//! The periodic unit-square domain.
//!
//! The paper's experiments use periodic boundary conditions over `[0, 1]^2`:
//! a stencil overhanging the domain boundary wraps around (Section 2.2).
//! Wrapping is implemented by testing the nine periodic translates of an
//! element against the (untranslated) stencil, keeping all stencil geometry
//! in one coordinate frame.

use ustencil_geometry::Vec2;

/// The nine lattice translations of the periodic unit square, the identity
/// first.
pub const PERIODIC_SHIFTS: [Vec2; 9] = [
    Vec2::new(0.0, 0.0),
    Vec2::new(1.0, 0.0),
    Vec2::new(-1.0, 0.0),
    Vec2::new(0.0, 1.0),
    Vec2::new(0.0, -1.0),
    Vec2::new(1.0, 1.0),
    Vec2::new(1.0, -1.0),
    Vec2::new(-1.0, 1.0),
    Vec2::new(-1.0, -1.0),
];

/// Wraps a coordinate into `[0, 1)`.
#[inline]
pub fn wrap_unit(x: f64) -> f64 {
    let r = x - x.floor();
    // `x.floor()` of very small negatives can produce r == 1.0.
    if r >= 1.0 {
        r - 1.0
    } else {
        r
    }
}

/// Signed minimal-image difference `a - b` on the periodic unit interval,
/// in `[-1/2, 1/2)`.
#[inline]
pub fn minimal_image_delta(a: f64, b: f64) -> f64 {
    let d = a - b;
    d - (d + 0.5).floor()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_unit_basic() {
        assert_eq!(wrap_unit(0.25), 0.25);
        assert_eq!(wrap_unit(1.25), 0.25);
        assert!((wrap_unit(-0.25) - 0.75).abs() < 1e-15);
        assert_eq!(wrap_unit(0.0), 0.0);
        assert_eq!(wrap_unit(1.0), 0.0);
        assert!(wrap_unit(-1e-18) < 1.0);
    }

    #[test]
    fn minimal_image_examples() {
        assert!((minimal_image_delta(0.1, 0.9) - 0.2).abs() < 1e-15); // wraps
        assert!((minimal_image_delta(0.9, 0.1) + 0.2).abs() < 1e-15);
        assert!((minimal_image_delta(0.3, 0.1) - 0.2).abs() < 1e-15);
    }

    #[test]
    fn minimal_image_in_half_open_interval() {
        for i in 0..100 {
            let a = i as f64 / 100.0;
            for j in 0..100 {
                let b = j as f64 / 100.0;
                let d = minimal_image_delta(a, b);
                assert!((-0.5..0.5).contains(&d), "a={a} b={b} d={d}");
            }
        }
    }

    #[test]
    fn shifts_cover_neighborhood() {
        assert_eq!(PERIODIC_SHIFTS.len(), 9);
        assert_eq!(PERIODIC_SHIFTS[0], Vec2::ZERO);
        // All distinct.
        for (i, a) in PERIODIC_SHIFTS.iter().enumerate() {
            for b in PERIODIC_SHIFTS.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }
}
