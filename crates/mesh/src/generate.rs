//! Seeded mesh generators for the paper's experiment classes.

use crate::delaunay::delaunay_triangulate;
use crate::trimesh::TriMesh;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use ustencil_geometry::Point2;

/// The statistical classes of test mesh used in Section 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MeshClass {
    /// Roughly uniform element sizes (Figure 9): Delaunay triangulation of a
    /// jittered lattice.
    LowVariance,
    /// Strongly graded element sizes (Figure 10): Delaunay triangulation of
    /// a cubically warped lattice, concentrating small elements near one
    /// corner.
    HighVariance,
    /// A translation-invariant structured pattern (each lattice square split
    /// along its diagonal) used for convergence and superconvergence tests;
    /// not itself one of the paper's performance meshes.
    StructuredPattern,
}

impl MeshClass {
    /// Short lowercase label used in benchmark output ("lv", "hv", "sp").
    pub fn label(&self) -> &'static str {
        match self {
            MeshClass::LowVariance => "lv",
            MeshClass::HighVariance => "hv",
            MeshClass::StructuredPattern => "sp",
        }
    }
}

/// Cubic warp used by the high-variance class: densifies points near 0
/// while keeping the endpoints fixed.
#[inline]
fn warp(x: f64) -> f64 {
    x * x * x
}

/// Generates a mesh of approximately `target_triangles` triangles covering
/// the unit square `[0, 1]^2` exactly, deterministically from `seed`.
///
/// The triangle count lands within a few percent of the target (the paper's
/// sizes — "on the order of 4k, 16k, ..." — have the same looseness).
///
/// # Panics
/// Panics when `target_triangles < 2`.
pub fn generate_mesh(class: MeshClass, target_triangles: usize, seed: u64) -> TriMesh {
    assert!(target_triangles >= 2, "need at least 2 triangles");
    match class {
        MeshClass::StructuredPattern => structured_pattern(target_triangles),
        MeshClass::LowVariance => unstructured(target_triangles, seed, false),
        MeshClass::HighVariance => unstructured(target_triangles, seed, true),
    }
}

fn structured_pattern(target_triangles: usize) -> TriMesh {
    let n = (((target_triangles as f64) / 2.0).sqrt().round() as usize).max(1);
    let mut vertices = Vec::with_capacity((n + 1) * (n + 1));
    for j in 0..=n {
        for i in 0..=n {
            vertices.push(Point2::new(i as f64 / n as f64, j as f64 / n as f64));
        }
    }
    let idx = |i: usize, j: usize| (j * (n + 1) + i) as u32;
    let mut triangles = Vec::with_capacity(2 * n * n);
    for j in 0..n {
        for i in 0..n {
            let (v00, v10, v11, v01) = (idx(i, j), idx(i + 1, j), idx(i + 1, j + 1), idx(i, j + 1));
            triangles.push([v00, v10, v11]);
            triangles.push([v00, v11, v01]);
        }
    }
    TriMesh::from_raw(vertices, triangles)
}

fn unstructured(target_triangles: usize, seed: u64, graded: bool) -> TriMesh {
    let mut rng = StdRng::seed_from_u64(seed);

    // Boundary resolution: one point per expected element width.
    let m = ((target_triangles as f64 / 2.0).sqrt().round() as usize).max(2);
    // Corners pin the hull to the exact unit square.
    let mut points = vec![
        Point2::new(0.0, 0.0),
        Point2::new(1.0, 0.0),
        Point2::new(1.0, 1.0),
        Point2::new(0.0, 1.0),
    ];

    // Boundary points, jittered along each side so no three consecutive
    // boundary points are evenly spaced (avoids cocircular degeneracies),
    // warped for the graded class to match the interior density.
    let side = |f: &mut dyn FnMut(f64), rng: &mut StdRng| {
        for i in 1..m {
            let jitter = rng.random_range(-0.35..0.35);
            let t = (i as f64 + jitter) / m as f64;
            let t = if graded { warp(t) } else { t };
            f(t.clamp(1e-6, 1.0 - 1e-6));
        }
    };
    let mut pts = Vec::new();
    side(&mut |t| pts.push(Point2::new(t, 0.0)), &mut rng);
    side(&mut |t| pts.push(Point2::new(t, 1.0)), &mut rng);
    side(&mut |t| pts.push(Point2::new(0.0, t)), &mut rng);
    side(&mut |t| pts.push(Point2::new(1.0, t)), &mut rng);
    points.extend(pts.iter().copied());

    // Interior points. Number chosen from Euler's relation for a
    // triangulated convex region: T = 2 V - H - 2.
    let hull = points.len();
    let total_vertices = (target_triangles + hull + 2) / 2;
    let interior = total_vertices.saturating_sub(hull).max(1);
    let g = (interior as f64).sqrt().round().max(1.0) as usize;
    for j in 0..g {
        for i in 0..g {
            let jx = rng.random_range(-0.45..0.45);
            let jy = rng.random_range(-0.45..0.45);
            let x = (i as f64 + 0.5 + jx) / g as f64;
            let y = (j as f64 + 0.5 + jy) / g as f64;
            let (x, y) = if graded { (warp(x), warp(y)) } else { (x, y) };
            // Keep interior points strictly inside.
            points.push(Point2::new(
                x.clamp(1e-4, 1.0 - 1e-4),
                y.clamp(1e-4, 1.0 - 1e-4),
            ));
        }
    }

    delaunay_triangulate(&points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::MeshStats;

    #[test]
    fn structured_pattern_exact_cover() {
        let mesh = generate_mesh(MeshClass::StructuredPattern, 128, 0);
        mesh.validate().unwrap();
        assert!((mesh.total_area() - 1.0).abs() < 1e-12);
        assert_eq!(mesh.n_triangles(), 128);
    }

    #[test]
    fn low_variance_covers_unit_square() {
        let mesh = generate_mesh(MeshClass::LowVariance, 1000, 7);
        mesh.validate().unwrap();
        assert!(
            (mesh.total_area() - 1.0).abs() < 1e-9,
            "area {}",
            mesh.total_area()
        );
        let n = mesh.n_triangles() as f64;
        assert!((n - 1000.0).abs() / 1000.0 < 0.15, "count {n}");
    }

    #[test]
    fn high_variance_covers_unit_square() {
        let mesh = generate_mesh(MeshClass::HighVariance, 1000, 7);
        mesh.validate().unwrap();
        assert!(
            (mesh.total_area() - 1.0).abs() < 1e-9,
            "area {}",
            mesh.total_area()
        );
    }

    #[test]
    fn variance_classes_are_ordered() {
        let lv = MeshStats::compute(&generate_mesh(MeshClass::LowVariance, 2000, 3));
        let hv = MeshStats::compute(&generate_mesh(MeshClass::HighVariance, 2000, 3));
        assert!(
            hv.edge_cv > 1.5 * lv.edge_cv,
            "hv cv {} should dominate lv cv {}",
            hv.edge_cv,
            lv.edge_cv
        );
        assert!(hv.max_edge / hv.min_edge > lv.max_edge / lv.min_edge);
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let a = generate_mesh(MeshClass::LowVariance, 500, 42);
        let b = generate_mesh(MeshClass::LowVariance, 500, 42);
        assert_eq!(a.triangle_indices(), b.triangle_indices());
        assert_eq!(a.vertices().len(), b.vertices().len());
        let c = generate_mesh(MeshClass::LowVariance, 500, 43);
        assert_ne!(a.vertices(), c.vertices());
    }

    #[test]
    fn labels() {
        assert_eq!(MeshClass::LowVariance.label(), "lv");
        assert_eq!(MeshClass::HighVariance.label(), "hv");
        assert_eq!(MeshClass::StructuredPattern.label(), "sp");
    }

    #[test]
    fn larger_targets_make_more_triangles() {
        let small = generate_mesh(MeshClass::LowVariance, 200, 1);
        let large = generate_mesh(MeshClass::LowVariance, 2000, 1);
        assert!(large.n_triangles() > 5 * small.n_triangles());
    }
}
