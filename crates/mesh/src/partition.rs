//! Recursive-bisection mesh partitioning for the overlapped tiling scheme.
//!
//! "Patch construction follows from simple recursive bisection of the mesh
//! elements until there are k patches of roughly equal size" (Section 4).
//! Splits alternate between axes, always cutting the longer extent of the
//! current element set's centroid bounding box, which keeps patch perimeters
//! short — the quantity that controls the tiling memory overhead (Figure 8).
//!
//! Non-power-of-two patch counts are handled by splitting the count as
//! `⌈k/2⌉ / ⌊k/2⌋` at every level and placing the cut where the cumulative
//! *element area* crosses the proportional target, so uneven patch counts
//! still receive area-balanced shares of the domain.
//!
//! Beyond patch construction, this module provides the two sharding
//! primitives the distributed runtime (`ustencil-dist`) builds on:
//! [`partition_subset`] re-partitions one rank's element set into SM-sized
//! sub-patches, and [`halo_elements`] extracts the ghost ring of elements
//! within a stencil-derived distance of an owned set, honoring the periodic
//! unit domain.

use crate::periodic::PERIODIC_SHIFTS;
use crate::trimesh::TriMesh;
use ustencil_geometry::{Aabb, Point2};

/// A disjoint partition of mesh elements into patches.
#[derive(Debug, Clone)]
pub struct Partition {
    patches: Vec<Vec<u32>>,
}

impl Partition {
    /// Number of patches (matches the `k` requested at construction).
    #[inline]
    pub fn n_patches(&self) -> usize {
        self.patches.len()
    }

    /// Element indices of patch `p`.
    #[inline]
    pub fn patch(&self, p: usize) -> &[u32] {
        &self.patches[p]
    }

    /// Iterator over all patches.
    pub fn patches(&self) -> impl ExactSizeIterator<Item = &[u32]> {
        self.patches.iter().map(|p| p.as_slice())
    }

    /// Ratio of the largest patch size to the ideal (`n / k`); 1.0 is
    /// perfect balance.
    pub fn imbalance(&self) -> f64 {
        let total: usize = self.patches.iter().map(Vec::len).sum();
        let ideal = total as f64 / self.patches.len() as f64;
        let max = self.patches.iter().map(Vec::len).max().unwrap_or(0);
        if ideal == 0.0 {
            1.0
        } else {
            max as f64 / ideal
        }
    }
}

/// Partitions the mesh into `k` patches of roughly equal area by recursive
/// coordinate bisection of element centroids.
///
/// `k` may be any positive number; non-power-of-two values split as
/// `⌈k/2⌉ / ⌊k/2⌋` with the cut placed area-proportionally. When `k`
/// exceeds the element count, the excess patches are empty.
///
/// # Panics
/// Panics when `k == 0`.
pub fn partition_recursive_bisection(mesh: &TriMesh, k: usize) -> Partition {
    assert!(k > 0, "cannot partition into zero patches");
    let ids: Vec<u32> = (0..mesh.n_triangles() as u32).collect();
    partition_ids(mesh, ids, k)
}

/// Partitions an arbitrary subset of mesh elements into `k` patches with
/// the same recursive-bisection rule as [`partition_recursive_bisection`].
///
/// The distributed runtime uses this to split one rank's owned + halo
/// element set into SM-sized sub-patches whose geometry matches what the
/// single-address-space tiling scheme would build.
///
/// # Panics
/// Panics when `k == 0`.
pub fn partition_subset(mesh: &TriMesh, ids: &[u32], k: usize) -> Partition {
    assert!(k > 0, "cannot partition into zero patches");
    partition_ids(mesh, ids.to_vec(), k)
}

fn partition_ids(mesh: &TriMesh, mut ids: Vec<u32>, k: usize) -> Partition {
    let centroids: Vec<Point2> = (0..mesh.n_triangles()).map(|i| mesh.centroid(i)).collect();
    let areas: Vec<f64> = (0..mesh.n_triangles())
        .map(|i| mesh.triangle(i).area())
        .collect();
    let mut patches = Vec::with_capacity(k);
    bisect(&mut ids, &centroids, &areas, k, &mut patches);
    debug_assert_eq!(patches.len(), k);
    Partition { patches }
}

fn bisect(ids: &mut [u32], centroids: &[Point2], areas: &[f64], k: usize, out: &mut Vec<Vec<u32>>) {
    if k == 1 {
        out.push(ids.to_vec());
        return;
    }
    if ids.is_empty() {
        out.extend(std::iter::repeat_with(Vec::new).take(k));
        return;
    }
    // Split the patch count as ⌈k/2⌉ / ⌊k/2⌋ so odd counts never round a
    // whole patch away, and place the element cut where cumulative area
    // crosses the proportional share of the ⌈k/2⌉ side.
    let k_lo = k.div_ceil(2);
    let k_hi = k - k_lo;

    // Cut across the longer extent of the centroid bounding box.
    let bb = Aabb::from_points(ids.iter().map(|&i| centroids[i as usize]));
    let horizontal = bb.width() >= bb.height();
    ids.sort_unstable_by(|&a, &b| {
        let (ca, cb) = (centroids[a as usize], centroids[b as usize]);
        if horizontal {
            ca.x.total_cmp(&cb.x)
        } else {
            ca.y.total_cmp(&cb.y)
        }
    });

    let total: f64 = ids.iter().map(|&i| areas[i as usize]).sum();
    let target = total * k_lo as f64 / k as f64;
    let mut acc = 0.0;
    let mut split = ids.len();
    for (i, &id) in ids.iter().enumerate() {
        let a = areas[id as usize];
        // An element straddling the target area goes to whichever side its
        // majority lies in.
        if acc + 0.5 * a >= target {
            split = i;
            break;
        }
        acc += a;
    }
    // Area-proportional placement is constrained by a ±1% element-count
    // window per level so per-element work stays balanced even on graded
    // meshes (count imbalance compounds to < 1.05 over a 16-way split).
    let ideal = ids.len() as f64 * k_lo as f64 / k as f64;
    let slack = (ids.len() as f64 / 100.0).max(1.0);
    let split = split.clamp(
        (ideal - slack).ceil() as usize,
        (ideal + slack).floor() as usize,
    );
    // Keep every patch nonempty whenever enough elements remain.
    let lo_min = k_lo.min(ids.len());
    let hi_min = k_hi.min(ids.len() - lo_min);
    let split = split.clamp(lo_min, ids.len() - hi_min);

    let (lo, hi) = ids.split_at_mut(split);
    bisect(lo, centroids, areas, k_lo, out);
    bisect(hi, centroids, areas, k_hi, out);
}

/// The ghost ring of `owned`: all elements *not* in `owned` whose bounding
/// box comes within `halo_width` of the owned set's bounding box under the
/// periodic unit domain.
///
/// `owned` must be sorted ascending (the shard plan keeps it that way); the
/// result is sorted ascending. The distributed runtime sizes `halo_width`
/// from the stencil extent so that every element that can contribute to an
/// owned grid point — including candidates discovered through the spatial
/// grid's cell-rounded lookups — lives in the ring.
pub fn halo_elements(mesh: &TriMesh, owned: &[u32], halo_width: f64) -> Vec<u32> {
    debug_assert!(owned.windows(2).all(|w| w[0] < w[1]), "owned not sorted");
    let mut owned_bb = Aabb::EMPTY;
    for &e in owned {
        owned_bb = owned_bb.union(&mesh.triangle(e as usize).aabb());
    }
    let reach = owned_bb.inflate(halo_width);
    let mut halo = Vec::new();
    for e in 0..mesh.n_triangles() as u32 {
        if owned.binary_search(&e).is_ok() {
            continue;
        }
        let bb = mesh.triangle(e as usize).aabb();
        if PERIODIC_SHIFTS
            .iter()
            .any(|&s| bb.translate(s).intersects(&reach))
        {
            halo.push(e);
        }
    }
    halo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_mesh, MeshClass};

    fn check_partition(mesh: &TriMesh, part: &Partition) {
        let mut seen = vec![false; mesh.n_triangles()];
        for patch in part.patches() {
            for &e in patch {
                assert!(!seen[e as usize], "element {e} in two patches");
                seen[e as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some element unassigned");
    }

    #[test]
    fn covers_disjointly_for_various_k() {
        let mesh = generate_mesh(MeshClass::LowVariance, 500, 11);
        for k in [1usize, 2, 3, 4, 7, 16, 33] {
            let part = partition_recursive_bisection(&mesh, k);
            assert_eq!(part.n_patches(), k);
            check_partition(&mesh, &part);
        }
    }

    #[test]
    fn balanced_for_power_of_two() {
        let mesh = generate_mesh(MeshClass::LowVariance, 2000, 5);
        let part = partition_recursive_bisection(&mesh, 16);
        assert!(part.imbalance() < 1.05, "imbalance {}", part.imbalance());
    }

    #[test]
    fn balanced_for_odd_k() {
        let mesh = generate_mesh(MeshClass::LowVariance, 2000, 5);
        let part = partition_recursive_bisection(&mesh, 7);
        assert!(part.imbalance() < 1.1, "imbalance {}", part.imbalance());
    }

    #[test]
    fn balanced_for_non_power_of_two_counts() {
        // The ⌈k/2⌉/⌊k/2⌋ split with area-proportional cuts must keep both
        // element count and area close to ideal for every awkward k.
        let mesh = generate_mesh(MeshClass::LowVariance, 2000, 5);
        for k in [3usize, 5, 6, 7] {
            let part = partition_recursive_bisection(&mesh, k);
            assert_eq!(part.n_patches(), k);
            check_partition(&mesh, &part);
            assert!(
                part.imbalance() < 1.1,
                "k={k} count imbalance {}",
                part.imbalance()
            );
            let patch_area = |p: &[u32]| -> f64 {
                p.iter()
                    .map(|&e| mesh.triangle(e as usize).area())
                    .sum::<f64>()
            };
            let total: f64 = part.patches().map(patch_area).sum();
            let max = part.patches().map(patch_area).fold(0.0f64, f64::max);
            let area_imbalance = max / (total / k as f64);
            assert!(
                area_imbalance < 1.1,
                "k={k} area imbalance {area_imbalance}"
            );
        }
    }

    #[test]
    fn patches_are_spatially_compact() {
        // Each patch's centroid bounding box should be much smaller than the
        // domain for a 16-way split of a uniform mesh.
        let mesh = generate_mesh(MeshClass::LowVariance, 4000, 2);
        let part = partition_recursive_bisection(&mesh, 16);
        for patch in part.patches() {
            let bb = Aabb::from_points(patch.iter().map(|&e| mesh.centroid(e as usize)));
            assert!(bb.area() < 0.15, "patch box area {}", bb.area());
        }
    }

    #[test]
    fn k_exceeding_elements_yields_empty_patches() {
        let mesh = generate_mesh(MeshClass::StructuredPattern, 8, 0);
        let part = partition_recursive_bisection(&mesh, 64);
        assert_eq!(part.n_patches(), 64);
        check_partition(&mesh, &part);
    }

    #[test]
    fn single_patch_is_identity() {
        let mesh = generate_mesh(MeshClass::StructuredPattern, 32, 0);
        let part = partition_recursive_bisection(&mesh, 1);
        assert_eq!(part.patch(0).len(), mesh.n_triangles());
    }

    #[test]
    #[should_panic(expected = "zero patches")]
    fn zero_patches_panics() {
        let mesh = generate_mesh(MeshClass::StructuredPattern, 8, 0);
        let _ = partition_recursive_bisection(&mesh, 0);
    }

    #[test]
    fn subset_partition_covers_the_subset() {
        let mesh = generate_mesh(MeshClass::LowVariance, 500, 3);
        let full = partition_recursive_bisection(&mesh, 4);
        let subset = full.patch(2);
        let sub = partition_subset(&mesh, subset, 5);
        assert_eq!(sub.n_patches(), 5);
        let mut collected: Vec<u32> = sub.patches().flatten().copied().collect();
        collected.sort_unstable();
        let mut expect = subset.to_vec();
        expect.sort_unstable();
        assert_eq!(collected, expect);
    }

    #[test]
    fn halo_ring_contains_near_and_excludes_far() {
        let mesh = generate_mesh(MeshClass::LowVariance, 1000, 9);
        let part = partition_recursive_bisection(&mesh, 8);
        let mut owned = part.patch(0).to_vec();
        owned.sort_unstable();
        let width = 2.5 * mesh.max_edge_length();
        let halo = halo_elements(&mesh, &owned, width);
        assert!(!halo.is_empty(), "a strict subset must have a ghost ring");
        assert!(halo.windows(2).all(|w| w[0] < w[1]), "halo must be sorted");
        for &e in &halo {
            assert!(owned.binary_search(&e).is_err(), "halo overlaps owned");
        }
        // Definition check: membership is exactly bbox proximity under some
        // periodic shift.
        let mut owned_bb = Aabb::EMPTY;
        for &e in &owned {
            owned_bb = owned_bb.union(&mesh.triangle(e as usize).aabb());
        }
        let reach = owned_bb.inflate(width);
        for e in 0..mesh.n_triangles() as u32 {
            if owned.binary_search(&e).is_ok() {
                continue;
            }
            let bb = mesh.triangle(e as usize).aabb();
            let near = PERIODIC_SHIFTS
                .iter()
                .any(|&s| bb.translate(s).intersects(&reach));
            assert_eq!(near, halo.binary_search(&e).is_ok(), "element {e}");
        }
    }

    #[test]
    fn halo_wraps_across_the_periodic_boundary() {
        // Own only elements hugging the left edge; with a modest width the
        // ring must pick up elements at x ≈ 1 through the periodic wrap.
        let mesh = generate_mesh(MeshClass::LowVariance, 2000, 4);
        let mut owned: Vec<u32> = (0..mesh.n_triangles() as u32)
            .filter(|&e| mesh.centroid(e as usize).x < 0.08)
            .collect();
        owned.sort_unstable();
        assert!(!owned.is_empty());
        let halo = halo_elements(&mesh, &owned, 0.05);
        let wrapped = halo.iter().any(|&e| mesh.centroid(e as usize).x > 0.9);
        assert!(wrapped, "halo must wrap across x = 0/1");
    }

    #[test]
    fn full_ownership_has_empty_halo() {
        let mesh = generate_mesh(MeshClass::StructuredPattern, 32, 0);
        let owned: Vec<u32> = (0..mesh.n_triangles() as u32).collect();
        assert!(halo_elements(&mesh, &owned, 0.2).is_empty());
    }
}
