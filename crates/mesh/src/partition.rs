//! Recursive-bisection mesh partitioning for the overlapped tiling scheme.
//!
//! "Patch construction follows from simple recursive bisection of the mesh
//! elements until there are k patches of roughly equal size" (Section 4).
//! Splits alternate between axes, always cutting the longer extent of the
//! current element set's centroid bounding box, which keeps patch perimeters
//! short — the quantity that controls the tiling memory overhead (Figure 8).

use crate::trimesh::TriMesh;
use ustencil_geometry::{Aabb, Point2};

/// A disjoint partition of mesh elements into patches.
#[derive(Debug, Clone)]
pub struct Partition {
    patches: Vec<Vec<u32>>,
}

impl Partition {
    /// Number of patches (matches the `k` requested at construction).
    #[inline]
    pub fn n_patches(&self) -> usize {
        self.patches.len()
    }

    /// Element indices of patch `p`.
    #[inline]
    pub fn patch(&self, p: usize) -> &[u32] {
        &self.patches[p]
    }

    /// Iterator over all patches.
    pub fn patches(&self) -> impl ExactSizeIterator<Item = &[u32]> {
        self.patches.iter().map(|p| p.as_slice())
    }

    /// Ratio of the largest patch size to the ideal (`n / k`); 1.0 is
    /// perfect balance.
    pub fn imbalance(&self) -> f64 {
        let total: usize = self.patches.iter().map(Vec::len).sum();
        let ideal = total as f64 / self.patches.len() as f64;
        let max = self.patches.iter().map(Vec::len).max().unwrap_or(0);
        if ideal == 0.0 {
            1.0
        } else {
            max as f64 / ideal
        }
    }
}

/// Partitions the mesh into `k` patches of roughly equal element count by
/// recursive coordinate bisection of element centroids.
///
/// `k` may be any positive number; non-power-of-two values are handled by
/// splitting counts proportionally. When `k` exceeds the element count, the
/// excess patches are empty.
///
/// # Panics
/// Panics when `k == 0`.
pub fn partition_recursive_bisection(mesh: &TriMesh, k: usize) -> Partition {
    assert!(k > 0, "cannot partition into zero patches");
    let mut ids: Vec<u32> = (0..mesh.n_triangles() as u32).collect();
    let centroids: Vec<Point2> = (0..mesh.n_triangles()).map(|i| mesh.centroid(i)).collect();
    let mut patches = Vec::with_capacity(k);
    bisect(&mut ids, &centroids, k, &mut patches);
    debug_assert_eq!(patches.len(), k);
    Partition { patches }
}

fn bisect(ids: &mut [u32], centroids: &[Point2], k: usize, out: &mut Vec<Vec<u32>>) {
    if k == 1 {
        out.push(ids.to_vec());
        return;
    }
    if ids.is_empty() {
        out.extend(std::iter::repeat_with(Vec::new).take(k));
        return;
    }
    // Split k into halves and elements proportionally.
    let k_lo = k / 2;
    let k_hi = k - k_lo;
    let split = (ids.len() * k_lo) / k;

    // Cut across the longer extent of the centroid bounding box.
    let bb = Aabb::from_points(ids.iter().map(|&i| centroids[i as usize]));
    let horizontal = bb.width() >= bb.height();
    if horizontal {
        ids.select_nth_unstable_by(split.min(ids.len().saturating_sub(1)), |&a, &b| {
            centroids[a as usize].x.total_cmp(&centroids[b as usize].x)
        });
    } else {
        ids.select_nth_unstable_by(split.min(ids.len().saturating_sub(1)), |&a, &b| {
            centroids[a as usize].y.total_cmp(&centroids[b as usize].y)
        });
    }
    let (lo, hi) = ids.split_at_mut(split);
    bisect(lo, centroids, k_lo, out);
    bisect(hi, centroids, k_hi, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_mesh, MeshClass};

    fn check_partition(mesh: &TriMesh, part: &Partition) {
        let mut seen = vec![false; mesh.n_triangles()];
        for patch in part.patches() {
            for &e in patch {
                assert!(!seen[e as usize], "element {e} in two patches");
                seen[e as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some element unassigned");
    }

    #[test]
    fn covers_disjointly_for_various_k() {
        let mesh = generate_mesh(MeshClass::LowVariance, 500, 11);
        for k in [1usize, 2, 3, 4, 7, 16, 33] {
            let part = partition_recursive_bisection(&mesh, k);
            assert_eq!(part.n_patches(), k);
            check_partition(&mesh, &part);
        }
    }

    #[test]
    fn balanced_for_power_of_two() {
        let mesh = generate_mesh(MeshClass::LowVariance, 2000, 5);
        let part = partition_recursive_bisection(&mesh, 16);
        assert!(part.imbalance() < 1.05, "imbalance {}", part.imbalance());
    }

    #[test]
    fn balanced_for_odd_k() {
        let mesh = generate_mesh(MeshClass::LowVariance, 2000, 5);
        let part = partition_recursive_bisection(&mesh, 7);
        assert!(part.imbalance() < 1.1, "imbalance {}", part.imbalance());
    }

    #[test]
    fn patches_are_spatially_compact() {
        // Each patch's centroid bounding box should be much smaller than the
        // domain for a 16-way split of a uniform mesh.
        let mesh = generate_mesh(MeshClass::LowVariance, 4000, 2);
        let part = partition_recursive_bisection(&mesh, 16);
        for patch in part.patches() {
            let bb = Aabb::from_points(patch.iter().map(|&e| mesh.centroid(e as usize)));
            assert!(bb.area() < 0.15, "patch box area {}", bb.area());
        }
    }

    #[test]
    fn k_exceeding_elements_yields_empty_patches() {
        let mesh = generate_mesh(MeshClass::StructuredPattern, 8, 0);
        let part = partition_recursive_bisection(&mesh, 64);
        assert_eq!(part.n_patches(), 64);
        check_partition(&mesh, &part);
    }

    #[test]
    fn single_patch_is_identity() {
        let mesh = generate_mesh(MeshClass::StructuredPattern, 32, 0);
        let part = partition_recursive_bisection(&mesh, 1);
        assert_eq!(part.patch(0).len(), mesh.n_triangles());
    }

    #[test]
    #[should_panic(expected = "zero patches")]
    fn zero_patches_panics() {
        let mesh = generate_mesh(MeshClass::StructuredPattern, 8, 0);
        let _ = partition_recursive_bisection(&mesh, 0);
    }
}
