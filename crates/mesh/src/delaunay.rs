//! Incremental Bowyer–Watson Delaunay triangulation.
//!
//! Points are inserted in Morton (Z-curve) order so that the walk-based point
//! location starts next to its target, giving near-linear construction time
//! on the million-triangle meshes of the paper's largest experiments.

use crate::trimesh::TriMesh;
use ustencil_geometry::{point::orient2d, Point2};

const INVALID: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct DTri {
    /// Vertex indices, counter-clockwise.
    v: [u32; 3],
    /// `adj[k]` is the triangle across edge `(v[k], v[(k+1)%3])`.
    adj: [u32; 3],
    alive: bool,
}

/// `> 0` when `p` lies strictly inside the circumcircle of the
/// counter-clockwise triangle `(a, b, c)`.
fn in_circle(a: Point2, b: Point2, c: Point2, p: Point2) -> f64 {
    let adx = a.x - p.x;
    let ady = a.y - p.y;
    let bdx = b.x - p.x;
    let bdy = b.y - p.y;
    let cdx = c.x - p.x;
    let cdy = c.y - p.y;
    let ad = adx * adx + ady * ady;
    let bd = bdx * bdx + bdy * bdy;
    let cd = cdx * cdx + cdy * cdy;
    adx * (bdy * cd - bd * cdy) - ady * (bdx * cd - bd * cdx) + ad * (bdx * cdy - bdy * cdx)
}

/// Interleaves the low 16 bits of `x` and `y` into a Morton code.
fn morton(x: u32, y: u32) -> u64 {
    fn spread(mut v: u64) -> u64 {
        v &= 0xffff;
        v = (v | (v << 8)) & 0x00ff00ff;
        v = (v | (v << 4)) & 0x0f0f0f0f;
        v = (v | (v << 2)) & 0x33333333;
        v = (v | (v << 1)) & 0x55555555;
        v
    }
    spread(x as u64) | (spread(y as u64) << 1)
}

struct Triangulator {
    points: Vec<Point2>,
    tris: Vec<DTri>,
    /// Most recently created triangle; the walk starts here.
    last: u32,
    /// Scratch buffers reused across insertions.
    cavity: Vec<u32>,
    in_cavity: Vec<bool>,
    boundary: Vec<(u32, u32, u32)>, // (a, b, outside neighbor)
}

impl Triangulator {
    fn new(points: Vec<Point2>) -> Self {
        // Super-triangle comfortably containing the bounding box.
        let bb = points
            .iter()
            .fold(ustencil_geometry::Aabb::EMPTY, |b, &p| b.union_point(p));
        let c = bb.center();
        let span = bb.width().max(bb.height()).max(1e-9);
        let r = 16.0 * span;
        let s0 = Point2::new(c.x - 2.0 * r, c.y - r);
        let s1 = Point2::new(c.x + 2.0 * r, c.y - r);
        let s2 = Point2::new(c.x, c.y + 2.0 * r);

        let mut all = Vec::with_capacity(points.len() + 3);
        all.push(s0);
        all.push(s1);
        all.push(s2);
        all.extend_from_slice(&points);

        let tris = vec![DTri {
            v: [0, 1, 2],
            adj: [INVALID; 3],
            alive: true,
        }];
        Self {
            points: all,
            tris,
            last: 0,
            cavity: Vec::new(),
            in_cavity: Vec::new(),
            boundary: Vec::new(),
        }
    }

    #[inline]
    fn pt(&self, i: u32) -> Point2 {
        self.points[i as usize]
    }

    /// Cavity-membership test: does the circumcircle of triangle `t`
    /// contain `p`?
    ///
    /// A triangle with one super vertex is treated as a ghost whose
    /// circumcircle is the limit half-plane beyond its real (hull) edge,
    /// decided by `orient2d` in hull-scale coordinates. Evaluating the
    /// `in_circle` determinant directly with a super vertex at huge
    /// coordinates loses the sign exactly when `p` lies a sliver's width
    /// inside the hull, which stitched such points onto the hull and
    /// left uncovered slivers behind after super-triangle removal.
    fn circum_contains(&self, t: u32, p: Point2) -> bool {
        let tri = &self.tris[t as usize];
        if let Some(k) = tri.v.iter().position(|&v| v < 3) {
            let (a, b) = (tri.v[(k + 1) % 3], tri.v[(k + 2) % 3]);
            if a >= 3 && b >= 3 {
                return orient2d(self.pt(a), self.pt(b), p) > 0.0;
            }
        }
        in_circle(self.pt(tri.v[0]), self.pt(tri.v[1]), self.pt(tri.v[2]), p) > 0.0
    }

    /// Walks from `start` to the triangle containing `p`.
    fn locate(&self, p: Point2, start: u32) -> u32 {
        let mut t = start;
        if !self.tris[t as usize].alive {
            // Fallback entry point: any live triangle.
            t = self
                .tris
                .iter()
                .position(|tr| tr.alive)
                .expect("triangulation has live triangles") as u32;
        }
        let mut steps = 0usize;
        let max_steps = 4 * self.tris.len() + 64;
        'walk: loop {
            let tri = &self.tris[t as usize];
            for k in 0..3 {
                let a = self.pt(tri.v[k]);
                let b = self.pt(tri.v[(k + 1) % 3]);
                if orient2d(a, b, p) < 0.0 {
                    let next = tri.adj[k];
                    if next == INVALID {
                        // p outside the hull of live triangles; cannot happen
                        // inside the super-triangle, but guard anyway.
                        return t;
                    }
                    t = next;
                    steps += 1;
                    if steps > max_steps {
                        break 'walk;
                    }
                    continue 'walk;
                }
            }
            return t;
        }
        // Degenerate walk cycle (numerically coincident points): fall back to
        // a linear scan for a containing triangle.
        for (i, tri) in self.tris.iter().enumerate() {
            if !tri.alive {
                continue;
            }
            let [a, b, c] = tri.v;
            if orient2d(self.pt(a), self.pt(b), p) >= 0.0
                && orient2d(self.pt(b), self.pt(c), p) >= 0.0
                && orient2d(self.pt(c), self.pt(a), p) >= 0.0
            {
                return i as u32;
            }
        }
        panic!("Delaunay location failed: point {p:?} not inside any triangle");
    }

    /// Inserts the point with index `pi` (into `self.points`).
    fn insert(&mut self, pi: u32) {
        let p = self.pt(pi);
        let seed = self.locate(p, self.last);

        // Grow the cavity: all triangles whose circumcircle contains p,
        // connected to the seed.
        self.in_cavity.resize(self.tris.len(), false);
        self.cavity.clear();
        self.boundary.clear();
        let mut stack = vec![seed];
        self.in_cavity[seed as usize] = true;
        while let Some(t) = stack.pop() {
            self.cavity.push(t);
            let tri = self.tris[t as usize];
            for k in 0..3 {
                let n = tri.adj[k];
                if n == INVALID || self.in_cavity[n as usize] {
                    continue;
                }
                if self.circum_contains(n, p) {
                    self.in_cavity[n as usize] = true;
                    stack.push(n);
                }
            }
        }

        // Emit the boundary from the settled cavity set, force-absorbing
        // neighbors whose boundary edge would make a degenerate (collinear)
        // new triangle — this happens when p lands exactly on an existing
        // edge whose far circumcircle test is a numeric tie.
        loop {
            self.boundary.clear();
            let mut grew = false;
            for ci in 0..self.cavity.len() {
                let t = self.cavity[ci];
                let tri = self.tris[t as usize];
                for k in 0..3 {
                    let n = tri.adj[k];
                    let a = tri.v[k];
                    let b = tri.v[(k + 1) % 3];
                    if n != INVALID && self.in_cavity[n as usize] {
                        continue;
                    }
                    if orient2d(self.pt(a), self.pt(b), p) <= 0.0 && n != INVALID {
                        // Degenerate fan triangle; absorb the neighbor.
                        self.in_cavity[n as usize] = true;
                        self.cavity.push(n);
                        grew = true;
                        break;
                    }
                    self.boundary.push((a, b, n));
                }
                if grew {
                    break;
                }
            }
            if !grew {
                break;
            }
        }

        // Retire cavity triangles.
        for &t in &self.cavity {
            self.tris[t as usize].alive = false;
            self.in_cavity[t as usize] = false;
        }

        // Re-triangulate: fan from p over the boundary cycle. Map each
        // boundary edge's start vertex to its new triangle to wire spokes.
        let first_new = self.tris.len() as u32;
        let nb = self.boundary.len();
        // start_of[a] = new triangle whose boundary edge starts at a.
        let mut start_of: Vec<(u32, u32)> = Vec::with_capacity(nb);
        for (i, &(a, _b, _n)) in self.boundary.iter().enumerate() {
            start_of.push((a, first_new + i as u32));
        }
        let lookup = |a: u32, start_of: &[(u32, u32)]| -> u32 {
            start_of
                .iter()
                .find(|&&(v, _)| v == a)
                .map(|&(_, t)| t)
                .expect("boundary cycle is closed")
        };
        let boundary = std::mem::take(&mut self.boundary);
        for (i, &(a, b, outside)) in boundary.iter().enumerate() {
            let ti = first_new + i as u32;
            // New triangle (a, b, p): edge 0 = (a,b) faces `outside`,
            // edge 1 = (b,p) pairs with the new triangle starting at b,
            // edge 2 = (p,a) pairs with the new triangle ending at a.
            let spoke1 = lookup(b, &start_of);
            let tri = DTri {
                v: [a, b, pi],
                adj: [outside, spoke1, INVALID],
                alive: true,
            };
            self.tris.push(tri);
            // Fix the outside triangle's back-pointer.
            if outside != INVALID {
                let out = &mut self.tris[outside as usize];
                for k in 0..3 {
                    if out.v[k] == b && out.v[(k + 1) % 3] == a {
                        out.adj[k] = ti;
                    }
                }
            }
        }
        self.boundary = boundary;
        // Second pass: each triangle's edge 2 = (p, a) pairs with the
        // triangle whose edge 1 = (b, p) has b == a, i.e. the one whose
        // boundary edge *ends* at a.
        for (i, &(a, _b, _)) in self.boundary.iter().enumerate() {
            let ti = first_new + i as u32;
            // Find the new triangle (x, a, p): its start vertex x satisfies
            // start_of edge (x -> a). That triangle's spoke1 already points
            // at ti; mirror it.
            let prev = self
                .boundary
                .iter()
                .position(|&(_, b2, _)| b2 == a)
                .expect("boundary cycle is closed");
            self.tris[ti as usize].adj[2] = first_new + prev as u32;
        }
        self.last = first_new;
    }

    fn finish(mut self) -> TriMesh {
        // Drop triangles touching the three super vertices, remap indices.
        let mut triangles = Vec::new();
        for tri in self.tris.drain(..) {
            if !tri.alive {
                continue;
            }
            if tri.v.iter().any(|&v| v < 3) {
                continue;
            }
            triangles.push([tri.v[0] - 3, tri.v[1] - 3, tri.v[2] - 3]);
        }
        let vertices = self.points.split_off(3);
        TriMesh::from_raw(vertices, triangles)
    }
}

/// Computes the Delaunay triangulation of a point set.
///
/// The result triangulates the convex hull of the input. Input order is
/// irrelevant (points are re-ordered internally along a Morton curve); vertex
/// order in the output mesh follows the internal insertion order.
///
/// ```
/// use ustencil_geometry::Point2;
/// use ustencil_mesh::delaunay_triangulate;
/// let mesh = delaunay_triangulate(&[
///     Point2::new(0.0, 0.0),
///     Point2::new(1.0, 0.0),
///     Point2::new(1.0, 1.01),
///     Point2::new(0.0, 1.0),
/// ]);
/// assert_eq!(mesh.n_triangles(), 2);
/// mesh.validate().unwrap();
/// ```
///
/// # Panics
/// Panics when fewer than 3 points are supplied.
pub fn delaunay_triangulate(points: &[Point2]) -> TriMesh {
    assert!(points.len() >= 3, "Delaunay needs at least 3 points");

    // Morton sort for walk locality.
    let bb = ustencil_geometry::Aabb::from_points(points.iter().copied());
    let w = bb.width().max(1e-300);
    let h = bb.height().max(1e-300);
    let mut order: Vec<Point2> = points.to_vec();
    order.sort_by_key(|p| {
        let gx = (((p.x - bb.min.x) / w) * 65535.0) as u32;
        let gy = (((p.y - bb.min.y) / h) * 65535.0) as u32;
        morton(gx.min(65535), gy.min(65535))
    });
    order.dedup_by(|a, b| a.x == b.x && a.y == b.y);

    let n = order.len();
    let mut tr = Triangulator::new(order);
    for i in 0..n {
        tr.insert((i + 3) as u32);
    }
    tr.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(n: usize) -> Vec<Point2> {
        // Slightly jittered deterministic grid to avoid cocircular quads.
        let mut pts = Vec::new();
        let mut state = 12345u64;
        let mut jitter = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64 - 0.5) * 0.2
        };
        for i in 0..n {
            for j in 0..n {
                pts.push(Point2::new(
                    (i as f64 + 0.5 + jitter()) / n as f64,
                    (j as f64 + 0.5 + jitter()) / n as f64,
                ));
            }
        }
        pts
    }

    /// Brute-force Delaunay check: no vertex strictly inside any
    /// circumcircle.
    fn assert_delaunay(mesh: &TriMesh) {
        let verts = mesh.vertices();
        for t in mesh.triangles() {
            for &p in verts {
                let d = in_circle(t.a, t.b, t.c, p);
                // Scale-relative tolerance.
                assert!(
                    d <= 1e-9,
                    "vertex {p:?} strictly inside circumcircle of {t:?} (d={d:e})"
                );
            }
        }
    }

    #[test]
    fn triangle_of_three_points() {
        let mesh = delaunay_triangulate(&[
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(0.0, 1.0),
        ]);
        assert_eq!(mesh.n_triangles(), 1);
        assert!((mesh.total_area() - 0.5).abs() < 1e-12);
        mesh.validate().unwrap();
    }

    #[test]
    fn square_of_four_points() {
        let mesh = delaunay_triangulate(&[
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.01), // avoid exact cocircularity
            Point2::new(0.0, 1.0),
        ]);
        assert_eq!(mesh.n_triangles(), 2);
        mesh.validate().unwrap();
        assert_delaunay(&mesh);
    }

    #[test]
    fn jittered_grid_is_delaunay_and_valid() {
        let pts = grid_points(8);
        let mesh = delaunay_triangulate(&pts);
        mesh.validate().unwrap();
        assert_delaunay(&mesh);
        assert_eq!(mesh.n_vertices(), pts.len());
    }

    #[test]
    fn area_equals_hull_area_for_known_hull() {
        // Points jittered inside the unit square plus exact corners: hull is
        // the unit square, so total area must be 1.
        let mut pts = grid_points(6);
        pts.push(Point2::new(0.0, 0.0));
        pts.push(Point2::new(1.0, 0.0));
        pts.push(Point2::new(1.0, 1.0));
        pts.push(Point2::new(0.0, 1.0));
        let mesh = delaunay_triangulate(&pts);
        mesh.validate().unwrap();
        assert!(
            (mesh.total_area() - 1.0).abs() < 1e-9,
            "area {}",
            mesh.total_area()
        );
    }

    #[test]
    fn euler_formula_for_triangulated_hull() {
        // For a triangulation of a convex hull: T = 2V - H - 2, where H is
        // the number of hull vertices.
        let mut pts = grid_points(5);
        pts.push(Point2::new(0.0, 0.0));
        pts.push(Point2::new(1.0, 0.0));
        pts.push(Point2::new(1.0, 1.0));
        pts.push(Point2::new(0.0, 1.0));
        let mesh = delaunay_triangulate(&pts);
        // Hull is the 4 corners (all other points strictly inside).
        let expected = 2 * mesh.n_vertices() - 4 - 2;
        assert_eq!(mesh.n_triangles(), expected);
    }

    #[test]
    fn duplicate_points_are_deduplicated() {
        let mesh = delaunay_triangulate(&[
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(0.0, 1.0),
            Point2::new(1.0, 0.0), // duplicate
        ]);
        assert_eq!(mesh.n_vertices(), 3);
        assert_eq!(mesh.n_triangles(), 1);
    }

    #[test]
    fn collinear_boundary_points_handled() {
        // Points exactly on the bottom edge of the square, plus apexes.
        let pts = [
            Point2::new(0.0, 0.0),
            Point2::new(0.25, 0.0),
            Point2::new(0.5, 0.0),
            Point2::new(0.75, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(0.3, 0.7),
            Point2::new(0.8, 0.9),
        ];
        let mesh = delaunay_triangulate(&pts);
        mesh.validate().unwrap();
        assert_delaunay(&mesh);
    }

    #[test]
    #[should_panic(expected = "at least 3 points")]
    fn too_few_points_panics() {
        let _ = delaunay_triangulate(&[Point2::ORIGIN, Point2::new(1.0, 0.0)]);
    }
}
