//! Element-size statistics.
//!
//! The paper classifies meshes by the *variance* of their element sizes
//! (Figures 9 and 10). [`MeshStats`] quantifies that classification so tests
//! can assert the generators actually produce the intended mesh class.

use crate::trimesh::TriMesh;

/// Summary statistics of a mesh's edge lengths and areas.
#[derive(Debug, Clone, PartialEq)]
pub struct MeshStats {
    /// Number of triangles.
    pub n_triangles: usize,
    /// Shortest edge over all triangles.
    pub min_edge: f64,
    /// Longest edge over all triangles (the `s` of Section 3.2).
    pub max_edge: f64,
    /// Mean edge length.
    pub mean_edge: f64,
    /// Coefficient of variation (stddev / mean) of edge lengths — the
    /// low/high "variance" classification measure.
    pub edge_cv: f64,
    /// Smallest triangle area.
    pub min_area: f64,
    /// Largest triangle area.
    pub max_area: f64,
    /// Sum of triangle areas.
    pub total_area: f64,
}

impl MeshStats {
    /// Computes statistics over every triangle of the mesh.
    ///
    /// # Panics
    /// Panics for empty meshes.
    pub fn compute(mesh: &TriMesh) -> Self {
        assert!(mesh.n_triangles() > 0, "stats of an empty mesh");
        let mut min_edge = f64::INFINITY;
        let mut max_edge: f64 = 0.0;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        let mut count = 0usize;
        let mut min_area = f64::INFINITY;
        let mut max_area: f64 = 0.0;
        let mut total_area = 0.0;
        for t in mesh.triangles() {
            let edges = [t.a.distance(t.b), t.b.distance(t.c), t.c.distance(t.a)];
            for e in edges {
                min_edge = min_edge.min(e);
                max_edge = max_edge.max(e);
                sum += e;
                sum_sq += e * e;
                count += 1;
            }
            let a = t.area();
            min_area = min_area.min(a);
            max_area = max_area.max(a);
            total_area += a;
        }
        let mean = sum / count as f64;
        let var = (sum_sq / count as f64 - mean * mean).max(0.0);
        Self {
            n_triangles: mesh.n_triangles(),
            min_edge,
            max_edge,
            mean_edge: mean,
            edge_cv: var.sqrt() / mean,
            min_area,
            max_area,
            total_area,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ustencil_geometry::Point2;

    #[test]
    fn stats_of_uniform_square_pair() {
        let mesh = TriMesh::from_raw(
            vec![
                Point2::new(0.0, 0.0),
                Point2::new(1.0, 0.0),
                Point2::new(1.0, 1.0),
                Point2::new(0.0, 1.0),
            ],
            vec![[0, 1, 2], [0, 2, 3]],
        );
        let s = MeshStats::compute(&mesh);
        assert_eq!(s.n_triangles, 2);
        assert_eq!(s.min_edge, 1.0);
        assert!((s.max_edge - 2f64.sqrt()).abs() < 1e-15);
        assert!((s.total_area - 1.0).abs() < 1e-15);
        assert!((s.min_area - 0.5).abs() < 1e-15);
        assert!(s.edge_cv > 0.0 && s.edge_cv < 0.3);
    }

    #[test]
    #[should_panic(expected = "empty mesh")]
    fn empty_mesh_panics() {
        let _ = MeshStats::compute(&TriMesh::default());
    }
}
