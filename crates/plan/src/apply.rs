//! Applying a compiled plan to dG fields: the SpMV-style hot loop.

use crate::plan::EvalPlan;
use rayon::prelude::*;
use std::time::{Duration, Instant};
use ustencil_core::{BlockStats, Metrics, Probe};
use ustencil_dg::DgField;
use ustencil_trace::{SpanRecord, Tracer};

/// Configuration of a plan apply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApplyOptions {
    /// Concurrent row blocks (default 16, matching the engine).
    pub n_blocks: usize,
    /// Whether to apply blocks on worker threads (default true).
    pub parallel: bool,
    /// Whether to record spans and per-row entry-count probes (default
    /// false; off, the hot loop pays only its counter increments).
    pub instrument: bool,
}

impl Default for ApplyOptions {
    fn default() -> Self {
        Self {
            n_blocks: 16,
            parallel: true,
            instrument: false,
        }
    }
}

/// Result of applying a plan to one field.
#[derive(Debug, Clone)]
pub struct PlanSolution {
    /// Post-processed value at each grid point (one per plan row).
    pub values: Vec<f64>,
    /// Aggregated work counters of the apply.
    pub metrics: Metrics,
    /// Per-block stats (wall time, owned rows, entry-count probes).
    pub block_stats: Vec<BlockStats>,
    /// Phase spans of the apply (empty unless instrumented).
    pub spans: Vec<SpanRecord>,
    /// Wall-clock time of the apply.
    pub wall: Duration,
}

impl PlanSolution {
    /// Maximum absolute difference against another value vector (e.g. a
    /// direct [`Solution::values`](ustencil_core::Solution)).
    pub fn max_abs_diff(&self, other: &[f64]) -> f64 {
        self.values
            .iter()
            .zip(other)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl EvalPlan {
    /// Applies the plan to `field` with default options (16 blocks,
    /// parallel, uninstrumented).
    ///
    /// # Panics
    /// Panics when the field's degree or element count does not match the
    /// plan.
    pub fn apply(&self, field: &DgField) -> PlanSolution {
        self.apply_with(field, &ApplyOptions::default())
    }

    /// Applies the plan to `field` with explicit options.
    ///
    /// # Panics
    /// Panics when the field's degree or element count does not match the
    /// plan.
    pub fn apply_with(&self, field: &DgField, options: &ApplyOptions) -> PlanSolution {
        self.check_field(field);
        let start = Instant::now();
        let tracer = Tracer::new(options.instrument);

        let n = self.rows();
        let n_blocks = options.n_blocks.clamp(1, n.max(1));
        let bounds: Vec<(usize, usize)> = (0..n_blocks)
            .map(|b| (b * n / n_blocks, (b + 1) * n / n_blocks))
            .collect();

        let block = |s: usize, e: usize, slice: &mut [f64]| -> BlockStats {
            let block_start = Instant::now();
            let mut probe = Probe::new(options.instrument);
            let metrics = self.apply_block(s, e, field.coefficients(), slice, &mut probe);
            BlockStats {
                metrics,
                wall_ns: block_start.elapsed().as_nanos() as u64,
                elements: 0,
                points: (e - s) as u64,
                probe,
            }
        };

        let mut values = vec![0.0; n];
        let block_stats: Vec<BlockStats> = {
            let _span = tracer.span("apply.spmv");
            if options.parallel {
                // Split the output along block boundaries so each worker
                // owns its slice — race freedom by construction.
                let mut slices: Vec<&mut [f64]> = Vec::with_capacity(n_blocks);
                let mut rest = values.as_mut_slice();
                for &(s, e) in &bounds {
                    let (head, tail) = rest.split_at_mut(e - s);
                    slices.push(head);
                    rest = tail;
                }
                bounds
                    .par_iter()
                    .zip(slices)
                    .map(|(&(s, e), slice)| block(s, e, slice))
                    .collect()
            } else {
                bounds
                    .iter()
                    .map(|&(s, e)| {
                        let mut slice = vec![0.0; e - s];
                        let st = block(s, e, &mut slice);
                        values[s..e].copy_from_slice(&slice);
                        st
                    })
                    .collect()
            }
        };

        PlanSolution {
            values,
            metrics: Metrics::sum(block_stats.iter().map(|s| &s.metrics)),
            block_stats,
            spans: tracer.into_records(),
            wall: start.elapsed(),
        }
    }

    /// Applies the plan to a batch of fields (e.g. the timesteps of a
    /// simulation), reusing the plan across all of them.
    ///
    /// # Panics
    /// Panics when any field's degree or element count does not match the
    /// plan.
    pub fn apply_many(&self, fields: &[DgField], options: &ApplyOptions) -> Vec<PlanSolution> {
        fields.iter().map(|f| self.apply_with(f, options)).collect()
    }

    /// The bare SpMV: writes values into a caller-provided buffer with no
    /// allocation, spans, or stats. This is the serve-time fast path.
    ///
    /// # Panics
    /// Panics when the field does not match the plan or `out` is not
    /// exactly [`rows`](EvalPlan::rows) long.
    pub fn apply_into(&self, field: &DgField, out: &mut [f64]) {
        self.check_field(field);
        assert_eq!(out.len(), self.rows(), "output buffer/plan row mismatch");
        let mut probe = Probe::disabled();
        self.apply_block(0, self.rows(), field.coefficients(), out, &mut probe);
    }

    fn check_field(&self, field: &DgField) {
        assert_eq!(
            field.degree(),
            self.degree,
            "field degree does not match the plan"
        );
        assert_eq!(
            field.n_elements(),
            self.n_elements,
            "field element count does not match the plan"
        );
    }

    /// Evaluates rows `[start, end)` into `out` (length `end - start`).
    fn apply_block(
        &self,
        start: usize,
        end: usize,
        coeffs: &[f64],
        out: &mut [f64],
        probe: &mut Probe,
    ) -> Metrics {
        let mut metrics = Metrics::default();
        let nm = self.n_modes;
        for (slot, r) in (start..end).enumerate() {
            let (lo, hi) = self.row_range(r);
            let mut acc = 0.0;
            for e in lo..hi {
                let w = &self.weights[e * nm..(e + 1) * nm];
                let c = &coeffs[self.cols[e] as usize * nm..];
                for (wm, cm) in w.iter().zip(c) {
                    acc += wm * cm;
                }
            }
            out[slot] = acc;
            // Row entries are this scheme's "candidates": the histogram
            // shows how many stored elements each output point reads.
            probe.record_candidates((hi - lo) as u64);
            metrics.solution_writes += 1;
            let entries = (hi - lo) as u64;
            metrics.elem_data_loads += entries * nm as u64;
            metrics.flops += 2 * entries * nm as u64;
        }
        metrics.partial_slots += (end - start) as u64;
        metrics
    }
}
