//! Applying a compiled plan to dG fields: the SpMV-style hot loop.

use crate::plan::EvalPlan;
use rayon::prelude::*;
use std::time::{Duration, Instant};
use ustencil_core::{BlockStats, Metrics, Probe, SimdIsa, SimdPolicy, SimdRecord};
use ustencil_dg::DgField;
use ustencil_trace::{SpanRecord, Tracer};

/// Upper bound on modal coefficients per element supported by the
/// lane-accumulator row kernel (degree 6 ⇒ 28 modes, with headroom).
const MAX_MODES: usize = 32;

/// Configuration of a plan apply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApplyOptions {
    /// Concurrent row blocks (default 16, matching the engine).
    pub n_blocks: usize,
    /// Whether to apply blocks on worker threads (default true).
    pub parallel: bool,
    /// Whether to record spans and per-row entry-count probes (default
    /// false; off, the hot loop pays only its counter increments).
    pub instrument: bool,
    /// SIMD dispatch policy of the row kernel (default
    /// [`SimdPolicy::Auto`]: widest ISA the host supports).
    pub simd: SimdPolicy,
}

impl Default for ApplyOptions {
    fn default() -> Self {
        Self {
            n_blocks: 16,
            parallel: true,
            instrument: false,
            simd: SimdPolicy::Auto,
        }
    }
}

/// Result of applying a plan to one field.
#[derive(Debug, Clone)]
pub struct PlanSolution {
    /// Post-processed value at each grid point (one per plan row).
    pub values: Vec<f64>,
    /// Aggregated work counters of the apply.
    pub metrics: Metrics,
    /// Per-block stats (wall time, owned rows, entry-count probes).
    pub block_stats: Vec<BlockStats>,
    /// Phase spans of the apply (empty unless instrumented).
    pub spans: Vec<SpanRecord>,
    /// Wall-clock time of the apply.
    pub wall: Duration,
    /// SIMD dispatch summary: requested policy, resolved ISA, achieved
    /// fraction of nominal peak over this apply's wall time.
    pub simd: SimdRecord,
}

impl PlanSolution {
    /// Maximum absolute difference against another value vector (e.g. a
    /// direct [`Solution::values`](ustencil_core::Solution)).
    pub fn max_abs_diff(&self, other: &[f64]) -> f64 {
        self.values
            .iter()
            .zip(other)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl EvalPlan {
    /// Applies the plan to `field` with default options (16 blocks,
    /// parallel, uninstrumented).
    ///
    /// # Panics
    /// Panics when the field's degree or element count does not match the
    /// plan.
    pub fn apply(&self, field: &DgField) -> PlanSolution {
        self.apply_with(field, &ApplyOptions::default())
    }

    /// Applies the plan to `field` with explicit options.
    ///
    /// The row kernel dispatches on [`ApplyOptions::simd`]:
    /// [`SimdPolicy::Scalar`] runs the pre-SIMD per-mode lane loop
    /// byte-for-byte (bitwise-stable against historical golden vectors),
    /// vector ISAs agree with it to ≤1e-12.
    ///
    /// ```
    /// use ustencil_core::{ComputationGrid, SimdPolicy};
    /// use ustencil_dg::project_l2;
    /// use ustencil_mesh::{generate_mesh, MeshClass};
    /// use ustencil_plan::{ApplyOptions, CompileOptions, EvalPlan};
    ///
    /// let mesh = generate_mesh(MeshClass::LowVariance, 60, 9);
    /// let field = project_l2(&mesh, 1, |x, y| x - 0.5 * y, 0);
    /// let grid = ComputationGrid::quadrature_points(&mesh, 1);
    /// let opts = CompileOptions {
    ///     h_factor: 0.25,
    ///     parallel: false,
    ///     ..CompileOptions::default()
    /// };
    /// let plan = EvalPlan::compile(&mesh, &grid, 1, &opts);
    ///
    /// // The scalar policy is the bit-compatibility anchor: whatever ISA
    /// // `Auto` picks on this host, forcing Scalar reproduces the exact
    /// // pre-SIMD arithmetic, and the vector result stays within 1e-12.
    /// let scalar = plan.apply_with(&field, &ApplyOptions {
    ///     simd: SimdPolicy::Scalar,
    ///     parallel: false,
    ///     ..ApplyOptions::default()
    /// });
    /// let auto = plan.apply_with(&field, &ApplyOptions {
    ///     parallel: false,
    ///     ..ApplyOptions::default()
    /// });
    /// assert_eq!(scalar.simd.isa, "scalar");
    /// assert!(auto.max_abs_diff(&scalar.values) <= 1e-12);
    /// ```
    ///
    /// # Panics
    /// Panics when the field's degree or element count does not match the
    /// plan.
    pub fn apply_with(&self, field: &DgField, options: &ApplyOptions) -> PlanSolution {
        self.check_field(field);
        let isa = options.simd.resolve();
        let start = Instant::now();
        let tracer = Tracer::new(options.instrument);

        // Reordered plans reference permuted element slots; gather the
        // field's coefficients into those slots once (a streaming copy), so
        // the row sweep reads a compact, Hilbert-ordered array.
        let gathered: Option<Vec<f64>> = if self.layout.reorders() {
            let _span = tracer.span("apply.gather");
            Some(self.gather_coeffs(field.coefficients()))
        } else {
            None
        };
        let coeffs: &[f64] = gathered.as_deref().unwrap_or_else(|| field.coefficients());

        let n = self.rows();
        // Blocked layouts sweep cache-sized row tiles (work-stealing units
        // whose coefficient span fits in L2); other layouts split the rows
        // into n_blocks uniform chunks. Either way the per-row arithmetic
        // order is identical.
        let bounds: Vec<(usize, usize)> = if self.layout.blocked() && self.tiles.len() >= 2 {
            self.tiles
                .windows(2)
                .map(|w| (w[0] as usize, w[1] as usize))
                .collect()
        } else {
            let n_blocks = options.n_blocks.clamp(1, n.max(1));
            (0..n_blocks)
                .map(|b| (b * n / n_blocks, (b + 1) * n / n_blocks))
                .collect()
        };

        let block = |s: usize, e: usize, slice: &mut [f64]| -> BlockStats {
            let block_start = Instant::now();
            let mut probe = Probe::new(options.instrument);
            let metrics = self.apply_block(s, e, coeffs, slice, isa, &mut probe);
            BlockStats {
                metrics,
                wall_ns: block_start.elapsed().as_nanos() as u64,
                elements: 0,
                points: (e - s) as u64,
                probe,
            }
        };

        let mut values = vec![0.0; n];
        let block_stats: Vec<BlockStats> = {
            let _span = tracer.span("apply.spmv");
            if options.parallel {
                // Split the output along block boundaries so each worker
                // owns its slice — race freedom by construction.
                let mut slices: Vec<&mut [f64]> = Vec::with_capacity(bounds.len());
                let mut rest = values.as_mut_slice();
                for &(s, e) in &bounds {
                    let (head, tail) = rest.split_at_mut(e - s);
                    slices.push(head);
                    rest = tail;
                }
                bounds
                    .par_iter()
                    .zip(slices)
                    .map(|(&(s, e), slice)| block(s, e, slice))
                    .collect()
            } else {
                bounds
                    .iter()
                    .map(|&(s, e)| {
                        let mut slice = vec![0.0; e - s];
                        let st = block(s, e, &mut slice);
                        values[s..e].copy_from_slice(&slice);
                        st
                    })
                    .collect()
            }
        };

        // Rows were computed in the plan's internal (possibly permuted)
        // order; scatter them back so callers see original point indices.
        let values = if self.layout.reorders() {
            let _span = tracer.span("apply.scatter");
            self.scatter_rows(&values)
        } else {
            values
        };

        let wall = start.elapsed();
        let metrics = Metrics::sum(block_stats.iter().map(|s| &s.metrics));
        let simd = SimdRecord::measured(options.simd, isa, metrics.flops, wall.as_secs_f64());
        PlanSolution {
            values,
            metrics,
            block_stats,
            spans: tracer.into_records(),
            wall,
            simd,
        }
    }

    /// Applies the plan to a batch of fields (e.g. the timesteps of a
    /// simulation), reusing the plan across all of them.
    ///
    /// # Panics
    /// Panics when any field's degree or element count does not match the
    /// plan.
    pub fn apply_many(&self, fields: &[DgField], options: &ApplyOptions) -> Vec<PlanSolution> {
        fields.iter().map(|f| self.apply_with(f, options)).collect()
    }

    /// The bare SpMV: writes values into a caller-provided buffer with no
    /// spans or stats. Allocation-free for natural-layout plans — the
    /// serve-time fast path. Reordered plans allocate one scratch buffer
    /// (the coefficient gather); the inverse row permutation is fused into
    /// the sweep, so each row lands directly in its original output slot.
    ///
    /// # Panics
    /// Panics when the field does not match the plan or `out` is not
    /// exactly [`rows`](EvalPlan::rows) long.
    pub fn apply_into(&self, field: &DgField, out: &mut [f64]) {
        self.check_field(field);
        assert_eq!(out.len(), self.rows(), "output buffer/plan row mismatch");
        let isa = SimdPolicy::Auto.resolve();
        if !self.layout.reorders() {
            let mut probe = Probe::disabled();
            self.apply_block(0, self.rows(), field.coefficients(), out, isa, &mut probe);
            return;
        }
        let coeffs = self.gather_coeffs(field.coefficients());
        for (r, &p) in self.row_perm.iter().enumerate() {
            out[p as usize] = self.row_dot(r, &coeffs, isa);
        }
    }

    /// Applies only the named rows of a natural-layout plan, writing row
    /// `r`'s value into `out[r]` and leaving every other slot untouched.
    /// Each named row runs the same per-row dot product as a full
    /// apply, so a partition of the rows into subset calls reproduces
    /// `apply_with`'s values *bitwise* — the property the distributed
    /// runtime's interior/frontier overlap split rests on. Rows are swept
    /// in the order given, chunked into at most `n_blocks` uniform blocks
    /// for per-block stats; counters sum exactly across a row partition.
    ///
    /// # Panics
    /// Panics when the field does not match the plan, the plan's layout
    /// permutes rows (subset slots would be ambiguous), or `out` is not
    /// exactly [`rows`](EvalPlan::rows) long.
    pub fn apply_rows_into(
        &self,
        rows: &[u32],
        field: &DgField,
        out: &mut [f64],
        n_blocks: usize,
        simd: SimdPolicy,
    ) -> Vec<BlockStats> {
        self.check_field(field);
        assert!(
            !self.layout.reorders(),
            "row-subset apply requires a layout that keeps natural row order"
        );
        assert_eq!(out.len(), self.rows(), "output buffer/plan row mismatch");
        let isa = simd.resolve();
        let coeffs = field.coefficients();
        let n = rows.len();
        if n == 0 {
            return Vec::new();
        }
        let nm = self.n_modes;
        let n_blocks = n_blocks.clamp(1, n);
        (0..n_blocks)
            .map(|b| (b * n / n_blocks, (b + 1) * n / n_blocks))
            .map(|(s, e)| {
                let block_start = Instant::now();
                let mut metrics = Metrics::default();
                for &r in &rows[s..e] {
                    let r = r as usize;
                    out[r] = self.row_dot(r, coeffs, isa);
                    let (lo, hi) = self.row_range(r);
                    metrics.solution_writes += 1;
                    let entries = (hi - lo) as u64;
                    metrics.elem_data_loads += entries * nm as u64;
                    metrics.flops += 2 * entries * nm as u64;
                }
                metrics.partial_slots += (e - s) as u64;
                BlockStats {
                    metrics,
                    wall_ns: block_start.elapsed().as_nanos() as u64,
                    elements: 0,
                    points: (e - s) as u64,
                    probe: Probe::disabled(),
                }
            })
            .collect()
    }

    /// Copies `coeffs` (element-major, original numbering) into permuted
    /// element slots: slot `c` receives element `col_perm[c]`'s modes.
    fn gather_coeffs(&self, coeffs: &[f64]) -> Vec<f64> {
        let nm = self.n_modes;
        let mut out = vec![0.0; coeffs.len()];
        for (slot, &old) in self.col_perm.iter().enumerate() {
            let old = old as usize;
            out[slot * nm..(slot + 1) * nm].copy_from_slice(&coeffs[old * nm..(old + 1) * nm]);
        }
        out
    }

    /// Scatters internally-ordered row values back to original point order.
    fn scatter_rows(&self, permuted: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; permuted.len()];
        for (r, &p) in self.row_perm.iter().enumerate() {
            out[p as usize] = permuted[r];
        }
        out
    }

    fn check_field(&self, field: &DgField) {
        assert!(
            self.n_modes <= MAX_MODES,
            "plan exceeds the row kernel's {MAX_MODES}-mode lane budget"
        );
        assert_eq!(
            field.degree(),
            self.degree,
            "field degree does not match the plan"
        );
        assert_eq!(
            field.n_elements(),
            self.n_elements,
            "field element count does not match the plan"
        );
    }

    /// One row's dot product against `coeffs`, dispatched on the resolved
    /// SIMD ISA. The scalar arm is byte-for-byte the historical per-mode
    /// lane kernel, so `SimdPolicy::Scalar` reproduces pre-SIMD results
    /// bitwise. The vector arms keep the same shape — independent per-mode
    /// accumulator chains, reduced in a fixed order at the end — so every
    /// ISA stays deterministic and bitwise identical across layouts
    /// (each layout stores a row's entries in the same sequence), while
    /// agreeing with the scalar arm to rounding (`≤ 1e-12`).
    #[inline]
    fn row_dot(&self, r: usize, coeffs: &[f64], isa: SimdIsa) -> f64 {
        match isa {
            SimdIsa::Scalar => self.row_dot_scalar(r, coeffs),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `resolve` only yields these ISAs when the CPU
            // reports the matching feature flags.
            SimdIsa::Avx2 => unsafe { self.row_dot_avx2(r, coeffs) },
            #[cfg(target_arch = "x86_64")]
            SimdIsa::Avx512 => unsafe { self.row_dot_avx512(r, coeffs) },
            #[cfg(not(target_arch = "x86_64"))]
            _ => self.row_dot_scalar(r, coeffs),
        }
    }

    /// The portable row kernel, accumulated in per-mode lanes. The lanes
    /// break the single-accumulator FMA dependency chain (the former
    /// hot-loop bottleneck: one serial add per mode-entry) into `n_modes`
    /// independent chains the CPU can overlap and auto-vectorize.
    #[inline]
    fn row_dot_scalar(&self, r: usize, coeffs: &[f64]) -> f64 {
        // Pick the narrowest lane array that holds n_modes, so the per-row
        // lane reset and reduction don't pay for unused slots. The branch
        // is perfectly predicted (n_modes is fixed per plan).
        match self.n_modes {
            1..=4 => self.row_dot_lanes::<4>(r, coeffs),
            5..=8 => self.row_dot_lanes::<8>(r, coeffs),
            9..=16 => self.row_dot_lanes::<16>(r, coeffs),
            _ => self.row_dot_lanes::<MAX_MODES>(r, coeffs),
        }
    }

    #[inline]
    fn row_dot_lanes<const L: usize>(&self, r: usize, coeffs: &[f64]) -> f64 {
        let nm = self.n_modes;
        debug_assert!(nm <= L);
        let (lo, hi) = self.row_range(r);
        let mut lane = [0.0f64; L];
        for e in lo..hi {
            let w = &self.weights[e * nm..(e + 1) * nm];
            let col = self.cols[e] as usize;
            let c = &coeffs[col * nm..col * nm + nm];
            for m in 0..nm {
                lane[m] += w[m] * c[m];
            }
        }
        lane[..nm].iter().sum()
    }

    /// AVX2+FMA row kernel: the mode dimension is batched into 4-wide
    /// vector lanes, one accumulator vector per 4-mode block (so the
    /// per-mode chains stay independent, exactly like the scalar lanes),
    /// with a fault-suppressing `maskload` for the `n_modes % 4` tail.
    /// The whole entries loop lives inside one `#[target_feature]` body —
    /// per-entry calls into a feature-gated function would block inlining
    /// and cost a dynamic-dispatch-sized penalty per CSR entry.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn row_dot_avx2(&self, r: usize, coeffs: &[f64]) -> f64 {
        use core::arch::x86_64::*;
        let nm = self.n_modes;
        let (lo, hi) = self.row_range(r);
        let full = nm / 4;
        let rem = nm % 4;
        let mut acc = [_mm256_setzero_pd(); MAX_MODES / 4];
        let mut tail_acc = _mm256_setzero_pd();
        // -1 in a lane's high bit enables the load; maskload suppresses
        // faults on the disabled lanes, so reading past a row's final
        // entry-slice is safe even at the end of the weights buffer.
        let mask = match rem {
            1 => _mm256_setr_epi64x(-1, 0, 0, 0),
            2 => _mm256_setr_epi64x(-1, -1, 0, 0),
            3 => _mm256_setr_epi64x(-1, -1, -1, 0),
            _ => _mm256_setzero_si256(),
        };
        for e in lo..hi {
            let w = self.weights.as_ptr().add(e * nm);
            let c = coeffs.as_ptr().add(self.cols[e] as usize * nm);
            for (b, a) in acc.iter_mut().enumerate().take(full) {
                let wv = _mm256_loadu_pd(w.add(b * 4));
                let cv = _mm256_loadu_pd(c.add(b * 4));
                *a = _mm256_fmadd_pd(wv, cv, *a);
            }
            if rem != 0 {
                let wv = _mm256_maskload_pd(w.add(full * 4), mask);
                let cv = _mm256_maskload_pd(c.add(full * 4), mask);
                tail_acc = _mm256_fmadd_pd(wv, cv, tail_acc);
            }
        }
        // Fixed-order reduction: block order, then `(l0+l1)+(l2+l3)`
        // within each block — deterministic for a given ISA.
        let mut total = 0.0;
        let mut lanes = [0.0f64; 4];
        for a in acc.iter().take(full) {
            _mm256_storeu_pd(lanes.as_mut_ptr(), *a);
            total += (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
        }
        if rem != 0 {
            _mm256_storeu_pd(lanes.as_mut_ptr(), tail_acc);
            total += (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
        }
        total
    }

    /// AVX-512 row kernel: 8-wide mode blocks with a `maskz` tail load
    /// (`__mmask8` of the low `n_modes % 8` lanes). Same accumulator and
    /// reduction discipline as [`Self::row_dot_avx2`].
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    unsafe fn row_dot_avx512(&self, r: usize, coeffs: &[f64]) -> f64 {
        use core::arch::x86_64::*;
        let nm = self.n_modes;
        let (lo, hi) = self.row_range(r);
        let full = nm / 8;
        let rem = nm % 8;
        let mut acc = [_mm512_setzero_pd(); MAX_MODES / 8];
        let mut tail_acc = _mm512_setzero_pd();
        let mask: __mmask8 = (1u8 << rem).wrapping_sub(1);
        for e in lo..hi {
            let w = self.weights.as_ptr().add(e * nm);
            let c = coeffs.as_ptr().add(self.cols[e] as usize * nm);
            for (b, a) in acc.iter_mut().enumerate().take(full) {
                let wv = _mm512_loadu_pd(w.add(b * 8));
                let cv = _mm512_loadu_pd(c.add(b * 8));
                *a = _mm512_fmadd_pd(wv, cv, *a);
            }
            if rem != 0 {
                let wv = _mm512_maskz_loadu_pd(mask, w.add(full * 8));
                let cv = _mm512_maskz_loadu_pd(mask, c.add(full * 8));
                tail_acc = _mm512_fmadd_pd(wv, cv, tail_acc);
            }
        }
        let mut total = 0.0;
        let mut lanes = [0.0f64; 8];
        for a in acc.iter().take(full) {
            _mm512_storeu_pd(lanes.as_mut_ptr(), *a);
            total += ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
                + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
        }
        if rem != 0 {
            _mm512_storeu_pd(lanes.as_mut_ptr(), tail_acc);
            total += ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
                + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
        }
        total
    }

    /// Evaluates rows `[start, end)` into `out` (length `end - start`).
    fn apply_block(
        &self,
        start: usize,
        end: usize,
        coeffs: &[f64],
        out: &mut [f64],
        isa: SimdIsa,
        probe: &mut Probe,
    ) -> Metrics {
        let mut metrics = Metrics::default();
        let nm = self.n_modes;
        for (slot, r) in (start..end).enumerate() {
            out[slot] = self.row_dot(r, coeffs, isa);
            let (lo, hi) = self.row_range(r);
            // Row entries are this scheme's "candidates": the histogram
            // shows how many stored elements each output point reads.
            probe.record_candidates((hi - lo) as u64);
            metrics.solution_writes += 1;
            let entries = (hi - lo) as u64;
            metrics.elem_data_loads += entries * nm as u64;
            metrics.flops += 2 * entries * nm as u64;
        }
        metrics.partial_slots += (end - start) as u64;
        metrics
    }
}
