//! Applying a compiled plan to dG fields: the SpMV-style hot loop.

use crate::plan::EvalPlan;
use rayon::prelude::*;
use std::time::{Duration, Instant};
use ustencil_core::{BlockStats, Metrics, Probe};
use ustencil_dg::DgField;
use ustencil_trace::{SpanRecord, Tracer};

/// Upper bound on modal coefficients per element supported by the
/// lane-accumulator row kernel (degree 6 ⇒ 28 modes, with headroom).
const MAX_MODES: usize = 32;

/// Configuration of a plan apply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApplyOptions {
    /// Concurrent row blocks (default 16, matching the engine).
    pub n_blocks: usize,
    /// Whether to apply blocks on worker threads (default true).
    pub parallel: bool,
    /// Whether to record spans and per-row entry-count probes (default
    /// false; off, the hot loop pays only its counter increments).
    pub instrument: bool,
}

impl Default for ApplyOptions {
    fn default() -> Self {
        Self {
            n_blocks: 16,
            parallel: true,
            instrument: false,
        }
    }
}

/// Result of applying a plan to one field.
#[derive(Debug, Clone)]
pub struct PlanSolution {
    /// Post-processed value at each grid point (one per plan row).
    pub values: Vec<f64>,
    /// Aggregated work counters of the apply.
    pub metrics: Metrics,
    /// Per-block stats (wall time, owned rows, entry-count probes).
    pub block_stats: Vec<BlockStats>,
    /// Phase spans of the apply (empty unless instrumented).
    pub spans: Vec<SpanRecord>,
    /// Wall-clock time of the apply.
    pub wall: Duration,
}

impl PlanSolution {
    /// Maximum absolute difference against another value vector (e.g. a
    /// direct [`Solution::values`](ustencil_core::Solution)).
    pub fn max_abs_diff(&self, other: &[f64]) -> f64 {
        self.values
            .iter()
            .zip(other)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl EvalPlan {
    /// Applies the plan to `field` with default options (16 blocks,
    /// parallel, uninstrumented).
    ///
    /// # Panics
    /// Panics when the field's degree or element count does not match the
    /// plan.
    pub fn apply(&self, field: &DgField) -> PlanSolution {
        self.apply_with(field, &ApplyOptions::default())
    }

    /// Applies the plan to `field` with explicit options.
    ///
    /// # Panics
    /// Panics when the field's degree or element count does not match the
    /// plan.
    pub fn apply_with(&self, field: &DgField, options: &ApplyOptions) -> PlanSolution {
        self.check_field(field);
        let start = Instant::now();
        let tracer = Tracer::new(options.instrument);

        // Reordered plans reference permuted element slots; gather the
        // field's coefficients into those slots once (a streaming copy), so
        // the row sweep reads a compact, Hilbert-ordered array.
        let gathered: Option<Vec<f64>> = if self.layout.reorders() {
            let _span = tracer.span("apply.gather");
            Some(self.gather_coeffs(field.coefficients()))
        } else {
            None
        };
        let coeffs: &[f64] = gathered.as_deref().unwrap_or_else(|| field.coefficients());

        let n = self.rows();
        // Blocked layouts sweep cache-sized row tiles (work-stealing units
        // whose coefficient span fits in L2); other layouts split the rows
        // into n_blocks uniform chunks. Either way the per-row arithmetic
        // order is identical.
        let bounds: Vec<(usize, usize)> = if self.layout.blocked() && self.tiles.len() >= 2 {
            self.tiles
                .windows(2)
                .map(|w| (w[0] as usize, w[1] as usize))
                .collect()
        } else {
            let n_blocks = options.n_blocks.clamp(1, n.max(1));
            (0..n_blocks)
                .map(|b| (b * n / n_blocks, (b + 1) * n / n_blocks))
                .collect()
        };

        let block = |s: usize, e: usize, slice: &mut [f64]| -> BlockStats {
            let block_start = Instant::now();
            let mut probe = Probe::new(options.instrument);
            let metrics = self.apply_block(s, e, coeffs, slice, &mut probe);
            BlockStats {
                metrics,
                wall_ns: block_start.elapsed().as_nanos() as u64,
                elements: 0,
                points: (e - s) as u64,
                probe,
            }
        };

        let mut values = vec![0.0; n];
        let block_stats: Vec<BlockStats> = {
            let _span = tracer.span("apply.spmv");
            if options.parallel {
                // Split the output along block boundaries so each worker
                // owns its slice — race freedom by construction.
                let mut slices: Vec<&mut [f64]> = Vec::with_capacity(bounds.len());
                let mut rest = values.as_mut_slice();
                for &(s, e) in &bounds {
                    let (head, tail) = rest.split_at_mut(e - s);
                    slices.push(head);
                    rest = tail;
                }
                bounds
                    .par_iter()
                    .zip(slices)
                    .map(|(&(s, e), slice)| block(s, e, slice))
                    .collect()
            } else {
                bounds
                    .iter()
                    .map(|&(s, e)| {
                        let mut slice = vec![0.0; e - s];
                        let st = block(s, e, &mut slice);
                        values[s..e].copy_from_slice(&slice);
                        st
                    })
                    .collect()
            }
        };

        // Rows were computed in the plan's internal (possibly permuted)
        // order; scatter them back so callers see original point indices.
        let values = if self.layout.reorders() {
            let _span = tracer.span("apply.scatter");
            self.scatter_rows(&values)
        } else {
            values
        };

        PlanSolution {
            values,
            metrics: Metrics::sum(block_stats.iter().map(|s| &s.metrics)),
            block_stats,
            spans: tracer.into_records(),
            wall: start.elapsed(),
        }
    }

    /// Applies the plan to a batch of fields (e.g. the timesteps of a
    /// simulation), reusing the plan across all of them.
    ///
    /// # Panics
    /// Panics when any field's degree or element count does not match the
    /// plan.
    pub fn apply_many(&self, fields: &[DgField], options: &ApplyOptions) -> Vec<PlanSolution> {
        fields.iter().map(|f| self.apply_with(f, options)).collect()
    }

    /// The bare SpMV: writes values into a caller-provided buffer with no
    /// spans or stats. Allocation-free for natural-layout plans — the
    /// serve-time fast path. Reordered plans allocate one scratch buffer
    /// (the coefficient gather); the inverse row permutation is fused into
    /// the sweep, so each row lands directly in its original output slot.
    ///
    /// # Panics
    /// Panics when the field does not match the plan or `out` is not
    /// exactly [`rows`](EvalPlan::rows) long.
    pub fn apply_into(&self, field: &DgField, out: &mut [f64]) {
        self.check_field(field);
        assert_eq!(out.len(), self.rows(), "output buffer/plan row mismatch");
        if !self.layout.reorders() {
            let mut probe = Probe::disabled();
            self.apply_block(0, self.rows(), field.coefficients(), out, &mut probe);
            return;
        }
        let coeffs = self.gather_coeffs(field.coefficients());
        for (r, &p) in self.row_perm.iter().enumerate() {
            out[p as usize] = self.row_dot(r, &coeffs);
        }
    }

    /// Applies only the named rows of a natural-layout plan, writing row
    /// `r`'s value into `out[r]` and leaving every other slot untouched.
    /// Each named row runs the same per-row dot product as a full
    /// apply, so a partition of the rows into subset calls reproduces
    /// `apply_with`'s values *bitwise* — the property the distributed
    /// runtime's interior/frontier overlap split rests on. Rows are swept
    /// in the order given, chunked into at most `n_blocks` uniform blocks
    /// for per-block stats; counters sum exactly across a row partition.
    ///
    /// # Panics
    /// Panics when the field does not match the plan, the plan's layout
    /// permutes rows (subset slots would be ambiguous), or `out` is not
    /// exactly [`rows`](EvalPlan::rows) long.
    pub fn apply_rows_into(
        &self,
        rows: &[u32],
        field: &DgField,
        out: &mut [f64],
        n_blocks: usize,
    ) -> Vec<BlockStats> {
        self.check_field(field);
        assert!(
            !self.layout.reorders(),
            "row-subset apply requires a layout that keeps natural row order"
        );
        assert_eq!(out.len(), self.rows(), "output buffer/plan row mismatch");
        let coeffs = field.coefficients();
        let n = rows.len();
        if n == 0 {
            return Vec::new();
        }
        let nm = self.n_modes;
        let n_blocks = n_blocks.clamp(1, n);
        (0..n_blocks)
            .map(|b| (b * n / n_blocks, (b + 1) * n / n_blocks))
            .map(|(s, e)| {
                let block_start = Instant::now();
                let mut metrics = Metrics::default();
                for &r in &rows[s..e] {
                    let r = r as usize;
                    out[r] = self.row_dot(r, coeffs);
                    let (lo, hi) = self.row_range(r);
                    metrics.solution_writes += 1;
                    let entries = (hi - lo) as u64;
                    metrics.elem_data_loads += entries * nm as u64;
                    metrics.flops += 2 * entries * nm as u64;
                }
                metrics.partial_slots += (e - s) as u64;
                BlockStats {
                    metrics,
                    wall_ns: block_start.elapsed().as_nanos() as u64,
                    elements: 0,
                    points: (e - s) as u64,
                    probe: Probe::disabled(),
                }
            })
            .collect()
    }

    /// Copies `coeffs` (element-major, original numbering) into permuted
    /// element slots: slot `c` receives element `col_perm[c]`'s modes.
    fn gather_coeffs(&self, coeffs: &[f64]) -> Vec<f64> {
        let nm = self.n_modes;
        let mut out = vec![0.0; coeffs.len()];
        for (slot, &old) in self.col_perm.iter().enumerate() {
            let old = old as usize;
            out[slot * nm..(slot + 1) * nm].copy_from_slice(&coeffs[old * nm..(old + 1) * nm]);
        }
        out
    }

    /// Scatters internally-ordered row values back to original point order.
    fn scatter_rows(&self, permuted: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; permuted.len()];
        for (r, &p) in self.row_perm.iter().enumerate() {
            out[p as usize] = permuted[r];
        }
        out
    }

    fn check_field(&self, field: &DgField) {
        assert!(
            self.n_modes <= MAX_MODES,
            "plan exceeds the row kernel's {MAX_MODES}-mode lane budget"
        );
        assert_eq!(
            field.degree(),
            self.degree,
            "field degree does not match the plan"
        );
        assert_eq!(
            field.n_elements(),
            self.n_elements,
            "field element count does not match the plan"
        );
    }

    /// One row's dot product against `coeffs`, accumulated in per-mode
    /// lanes. The lanes break the single-accumulator FMA dependency chain
    /// (the former hot-loop bottleneck: one serial add per mode-entry) into
    /// `n_modes` independent chains the CPU can overlap and vectorize. The
    /// lane order and the final lane reduction are fixed, so the result is
    /// deterministic — and bitwise identical across layouts, because every
    /// layout stores each row's entries in the same sequence.
    #[inline]
    fn row_dot(&self, r: usize, coeffs: &[f64]) -> f64 {
        // Pick the narrowest lane array that holds n_modes, so the per-row
        // lane reset and reduction don't pay for unused slots. The branch
        // is perfectly predicted (n_modes is fixed per plan).
        match self.n_modes {
            1..=4 => self.row_dot_lanes::<4>(r, coeffs),
            5..=8 => self.row_dot_lanes::<8>(r, coeffs),
            9..=16 => self.row_dot_lanes::<16>(r, coeffs),
            _ => self.row_dot_lanes::<MAX_MODES>(r, coeffs),
        }
    }

    #[inline]
    fn row_dot_lanes<const L: usize>(&self, r: usize, coeffs: &[f64]) -> f64 {
        let nm = self.n_modes;
        debug_assert!(nm <= L);
        let (lo, hi) = self.row_range(r);
        let mut lane = [0.0f64; L];
        for e in lo..hi {
            let w = &self.weights[e * nm..(e + 1) * nm];
            let col = self.cols[e] as usize;
            let c = &coeffs[col * nm..col * nm + nm];
            for m in 0..nm {
                lane[m] += w[m] * c[m];
            }
        }
        lane[..nm].iter().sum()
    }

    /// Evaluates rows `[start, end)` into `out` (length `end - start`).
    fn apply_block(
        &self,
        start: usize,
        end: usize,
        coeffs: &[f64],
        out: &mut [f64],
        probe: &mut Probe,
    ) -> Metrics {
        let mut metrics = Metrics::default();
        let nm = self.n_modes;
        for (slot, r) in (start..end).enumerate() {
            out[slot] = self.row_dot(r, coeffs);
            let (lo, hi) = self.row_range(r);
            // Row entries are this scheme's "candidates": the histogram
            // shows how many stored elements each output point reads.
            probe.record_candidates((hi - lo) as u64);
            metrics.solution_writes += 1;
            let entries = (hi - lo) as u64;
            metrics.elem_data_loads += entries * nm as u64;
            metrics.flops += 2 * entries * nm as u64;
        }
        metrics.partial_slots += (end - start) as u64;
        metrics
    }
}
