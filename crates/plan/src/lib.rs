//! Evaluation plans: compile the stencil geometry once, apply it to many
//! fields as a sparse operator.
//!
//! Everything geometric in the convolution (Eq. 1–2) — stencil placement,
//! Sutherland–Hodgman clipping, fan triangulation, quadrature nodes, and the
//! `K(x)K(y) · φ_j` kernel-times-basis products — depends only on
//! `(mesh, grid, kernel)`, never on the dG coefficients. The direct
//! [`PostProcessor::run`](ustencil_core::PostProcessor::run) recomputes all
//! of it per call; for time-dependent output (the paper's motivating use of
//! SIAC filtering) that is the dominant redundant cost.
//!
//! An [`EvalPlan`] removes it. Compilation runs the per-point discovery
//! machinery once and folds quadrature × kernel × basis into per-mode
//! weights, stored in CSR layout: each output point owns a row of
//! `(element, weight[0..n_modes])` entries. Applying the plan to a field is
//! then a flat, cache-friendly SpMV-style loop:
//!
//! ```text
//! value[row] = Σ_{entry ∈ row} Σ_m weight[entry][m] · coeff[col(entry)][m]
//! ```
//!
//! parallel over contiguous row chunks, instrumented with the same
//! `Probe`/`Tracer` spans as the direct pipeline. Plans serialize to JSON
//! ([`EvalPlan::to_json`]) with bit-exact weights, so they can be built
//! offline and loaded at serve time, and their size/timing surface through
//! [`RunReport`](ustencil_core::RunReport) as
//! [`PlanStats`](ustencil_core::PlanStats).
//!
//! Entry points:
//!
//! * [`EvalPlan::compile`] — build a plan from a mesh, grid, and options;
//! * [`EvalPlan::apply`] / [`EvalPlan::apply_many`] — evaluate fields;
//! * [`PlanExt`] — compile straight from a configured
//!   [`PostProcessor`](ustencil_core::PostProcessor);
//! * [`CachedPlan`] — a front end that compiles lazily and recompiles only
//!   when the problem content ([`PlanKey`]) changes, patching incrementally
//!   when the change is a mesh edit;
//! * [`EvalPlan::patch`] / [`EvalPlan::patched`] — after a mesh edit,
//!   recompile only the rows whose `(3k+1)h` stencil footprint touches the
//!   dirty region ([`DirtySet::diff`]) and splice them into the existing
//!   CSR ([`PlanDelta`]), at a fraction of full-compile cost (DESIGN.md
//!   §16).

#![deny(missing_docs)]

mod apply;
mod cached;
mod compile;
mod delta;
mod key;
mod plan;
mod record;
mod serial;
#[cfg(test)]
mod tests;

pub use apply::{ApplyOptions, PlanSolution};
pub use cached::{CachedPlan, PlanExt};
pub use compile::CompileOptions;
pub use delta::{DirtySet, PatchError, PlanDelta, PATCH_SCHEME_LABEL};
pub use key::{grid_content_hash, mesh_content_hash, PlanKey};
pub use plan::{EvalPlan, SCHEME_LABEL};
