//! The compiled plan: a CSR sparse operator over `(point, element)` pairs.

use std::time::Duration;
use ustencil_core::{Metrics, PlanStats};
use ustencil_trace::SpanRecord;

/// The `"scheme"` string plan-based runs carry in `RunReport` JSON.
///
/// Direct runs are labelled by [`Scheme::label`](ustencil_core::Scheme);
/// plan applies are a third execution strategy that reuses the report
/// schema, distinguished by this label.
pub const SCHEME_LABEL: &str = "plan";

/// A compiled evaluation plan.
///
/// CSR layout: output point `r` owns entries `row_ptr[r]..row_ptr[r + 1]`;
/// entry `e` references element `cols[e]` and carries `n_modes` weights at
/// `weights[e * n_modes..(e + 1) * n_modes]`, one per modal coefficient of
/// the field. Weights absorb the entire geometric pipeline (clipping, fan
/// triangulation, quadrature, kernel values, basis transform), so applying
/// the plan never touches the mesh.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalPlan {
    pub(crate) degree: usize,
    pub(crate) smoothness: usize,
    pub(crate) n_modes: usize,
    pub(crate) n_elements: usize,
    pub(crate) h: f64,
    /// Row starts; `rows + 1` entries, `row_ptr[0] == 0`.
    pub(crate) row_ptr: Vec<u64>,
    /// Element index of each entry.
    pub(crate) cols: Vec<u32>,
    /// Entry-major weights, `nnz * n_modes` values.
    pub(crate) weights: Vec<f64>,
    /// Wall-clock time of compilation (zero for deserialized plans).
    pub(crate) build_wall: Duration,
    /// Compilation phase spans (empty unless instrumented).
    pub(crate) build_spans: Vec<SpanRecord>,
    /// Work counters of the compilation pass.
    pub(crate) build_metrics: Metrics,
}

impl EvalPlan {
    /// Field polynomial degree the plan was compiled for.
    #[inline]
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Kernel smoothness `k` baked into the weights.
    #[inline]
    pub fn smoothness(&self) -> usize {
        self.smoothness
    }

    /// Modal coefficients per element, `(p + 1)(p + 2) / 2`.
    #[inline]
    pub fn n_modes(&self) -> usize {
        self.n_modes
    }

    /// Elements of the mesh the plan was compiled against.
    #[inline]
    pub fn n_elements(&self) -> usize {
        self.n_elements
    }

    /// Kernel scale `h` baked into the weights.
    #[inline]
    pub fn h(&self) -> f64 {
        self.h
    }

    /// Stencil width `(3k + 1) h` of the compiled kernel.
    #[inline]
    pub fn stencil_width(&self) -> f64 {
        (3 * self.smoothness + 1) as f64 * self.h
    }

    /// Output rows (grid points).
    #[inline]
    pub fn rows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Stored `(point, element)` entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// CSR column ids (the element each stored entry reads), concatenated
    /// across rows. The distributed runtime scans this to learn which
    /// non-owned elements a rank's rows reference — its halo set.
    #[inline]
    pub fn cols(&self) -> &[u32] {
        &self.cols
    }

    /// In-memory size of the CSR arrays in bytes.
    pub fn bytes(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<u64>()
            + self.cols.len() * std::mem::size_of::<u32>()
            + self.weights.len() * std::mem::size_of::<f64>()
    }

    /// The stored weights as raw IEEE-754 bit patterns, entry-major. This
    /// is the bit-exactness surface: two plans evaluate identically iff
    /// their structure matches and these streams are equal.
    pub fn weights_bits(&self) -> impl Iterator<Item = u64> + '_ {
        self.weights.iter().map(|w| w.to_bits())
    }

    /// The half-open entry range of row `r`.
    #[inline]
    pub(crate) fn row_range(&self, r: usize) -> (usize, usize) {
        (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize)
    }

    /// Wall-clock time spent compiling (zero for deserialized plans).
    #[inline]
    pub fn build_wall(&self) -> Duration {
        self.build_wall
    }

    /// Compilation phase spans (empty unless compiled with instrumentation).
    pub fn build_spans(&self) -> &[SpanRecord] {
        &self.build_spans
    }

    /// Work counters of the compilation pass (the one-time geometric cost
    /// the plan amortizes).
    #[inline]
    pub fn build_metrics(&self) -> &Metrics {
        &self.build_metrics
    }

    /// Size/timing stats in the shape `RunReport` serializes. `apply_ms` is
    /// zero here; [`EvalPlan::to_run_record`] fills it from a measured
    /// apply.
    pub fn stats(&self) -> PlanStats {
        PlanStats {
            rows: self.rows() as u64,
            nnz: self.nnz() as u64,
            n_modes: self.n_modes as u64,
            bytes: self.bytes() as u64,
            build_ms: self.build_wall.as_secs_f64() * 1e3,
            apply_ms: 0.0,
        }
    }
}
