//! The compiled plan: a CSR sparse operator over `(point, element)` pairs.

use std::time::Duration;
use ustencil_core::{Layout, LocalityStats, Metrics, PlanStats};
use ustencil_trace::SpanRecord;

/// Bytes per cache line assumed by the locality model and the tile sizing.
pub(crate) const CACHE_LINE: usize = 64;

/// Coefficient-footprint budget of one apply tile, in bytes (≈ half an L2
/// slice, leaving room for the tile's weights stream).
pub(crate) const TILE_COEFF_BUDGET: usize = 256 * 1024;

/// The `"scheme"` string plan-based runs carry in `RunReport` JSON.
///
/// Direct runs are labelled by [`Scheme::label`](ustencil_core::Scheme);
/// plan applies are a third execution strategy that reuses the report
/// schema, distinguished by this label.
pub const SCHEME_LABEL: &str = "plan";

/// A compiled evaluation plan.
///
/// CSR layout: output point `r` owns entries `row_ptr[r]..row_ptr[r + 1]`;
/// entry `e` references element `cols[e]` and carries `n_modes` weights at
/// `weights[e * n_modes..(e + 1) * n_modes]`, one per modal coefficient of
/// the field. Weights absorb the entire geometric pipeline (clipping, fan
/// triangulation, quadrature, kernel values, basis transform), so applying
/// the plan never touches the mesh.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalPlan {
    pub(crate) degree: usize,
    pub(crate) smoothness: usize,
    pub(crate) n_modes: usize,
    pub(crate) n_elements: usize,
    pub(crate) h: f64,
    /// Row starts; `rows + 1` entries, `row_ptr[0] == 0`.
    pub(crate) row_ptr: Vec<u64>,
    /// Element index of each entry.
    pub(crate) cols: Vec<u32>,
    /// Entry-major weights, `nnz * n_modes` values.
    pub(crate) weights: Vec<f64>,
    /// Wall-clock time of compilation (zero for deserialized plans).
    pub(crate) build_wall: Duration,
    /// Compilation phase spans (empty unless instrumented).
    pub(crate) build_spans: Vec<SpanRecord>,
    /// Work counters of the compilation pass.
    pub(crate) build_metrics: Metrics,
    /// Storage order of the CSR (rows and columns).
    pub(crate) layout: Layout,
    /// Point permutation, new → old (`row_perm[r]` is the caller-visible
    /// point row `r` computes). Empty for [`Layout::Natural`].
    pub(crate) row_perm: Vec<u32>,
    /// Element permutation, new → old (`cols` reference permuted element
    /// slots; slot `c` holds element `col_perm[c]`). Empty for
    /// [`Layout::Natural`].
    pub(crate) col_perm: Vec<u32>,
    /// Row-tile boundaries of the cache-blocked apply (`n_tiles + 1`
    /// entries when the layout is blocked, empty otherwise).
    pub(crate) tiles: Vec<u32>,
}

impl EvalPlan {
    /// Field polynomial degree the plan was compiled for.
    #[inline]
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Kernel smoothness `k` baked into the weights.
    #[inline]
    pub fn smoothness(&self) -> usize {
        self.smoothness
    }

    /// Modal coefficients per element, `(p + 1)(p + 2) / 2`.
    #[inline]
    pub fn n_modes(&self) -> usize {
        self.n_modes
    }

    /// Elements of the mesh the plan was compiled against.
    #[inline]
    pub fn n_elements(&self) -> usize {
        self.n_elements
    }

    /// Kernel scale `h` baked into the weights.
    #[inline]
    pub fn h(&self) -> f64 {
        self.h
    }

    /// Stencil width `(3k + 1) h` of the compiled kernel.
    #[inline]
    pub fn stencil_width(&self) -> f64 {
        (3 * self.smoothness + 1) as f64 * self.h
    }

    /// Output rows (grid points).
    #[inline]
    pub fn rows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Stored `(point, element)` entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// CSR column ids (the element each stored entry reads), concatenated
    /// across rows. The distributed runtime scans this to learn which
    /// non-owned elements a rank's rows reference — its halo set.
    ///
    /// For reordered plans ([`layout`](Self::layout) ≠ `Natural`) the ids
    /// are *permuted element slots*; translate through
    /// [`col_perm`](Self::col_perm) to recover original element indices.
    #[inline]
    pub fn cols(&self) -> &[u32] {
        &self.cols
    }

    /// The storage order the plan was compiled with.
    #[inline]
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Point permutation (new → old), empty for natural layout: row `r` of
    /// the internal CSR computes caller point `row_perm[r]`.
    #[inline]
    pub fn row_perm(&self) -> &[u32] {
        &self.row_perm
    }

    /// Element permutation (new → old), empty for natural layout: permuted
    /// coefficient slot `c` holds element `col_perm[c]`.
    #[inline]
    pub fn col_perm(&self) -> &[u32] {
        &self.col_perm
    }

    /// Row-tile boundaries of the cache-blocked apply (`n_tiles + 1`
    /// entries; empty unless the layout is blocked).
    #[inline]
    pub fn tiles(&self) -> &[u32] {
        &self.tiles
    }

    /// In-memory size of the CSR arrays in bytes.
    pub fn bytes(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<u64>()
            + self.cols.len() * std::mem::size_of::<u32>()
            + self.weights.len() * std::mem::size_of::<f64>()
    }

    /// The stored weights as raw IEEE-754 bit patterns, entry-major. This
    /// is the bit-exactness surface: two plans evaluate identically iff
    /// their structure matches and these streams are equal.
    pub fn weights_bits(&self) -> impl Iterator<Item = u64> + '_ {
        self.weights.iter().map(|w| w.to_bits())
    }

    /// The half-open entry range of row `r`.
    #[inline]
    pub(crate) fn row_range(&self, r: usize) -> (usize, usize) {
        (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize)
    }

    /// The element columns row `r` reads, in stored (execution) order.
    /// For natural-layout plans these are global element ids — the basis
    /// of the sharded runtime's interior/frontier row classification.
    #[inline]
    pub fn row_cols(&self, r: usize) -> &[u32] {
        let (lo, hi) = self.row_range(r);
        &self.cols[lo..hi]
    }

    /// Wall-clock time spent compiling (zero for deserialized plans).
    #[inline]
    pub fn build_wall(&self) -> Duration {
        self.build_wall
    }

    /// Compilation phase spans (empty unless compiled with instrumentation).
    pub fn build_spans(&self) -> &[SpanRecord] {
        &self.build_spans
    }

    /// Work counters of the compilation pass (the one-time geometric cost
    /// the plan amortizes).
    #[inline]
    pub fn build_metrics(&self) -> &Metrics {
        &self.build_metrics
    }

    /// Size/timing stats in the shape `RunReport` serializes. `apply_ms` is
    /// zero here; [`EvalPlan::to_run_record`] fills it from a measured
    /// apply.
    pub fn stats(&self) -> PlanStats {
        PlanStats {
            rows: self.rows() as u64,
            nnz: self.nnz() as u64,
            n_modes: self.n_modes as u64,
            bytes: self.bytes() as u64,
            build_ms: self.build_wall.as_secs_f64() * 1e3,
            apply_ms: 0.0,
            delta: None,
        }
    }

    /// Cache line of the coefficient array that the first byte of element
    /// slot `c`'s modal block lives in.
    #[inline]
    pub(crate) fn coeff_line(&self, c: u32) -> u64 {
        (c as u64 * self.n_modes as u64 * 8) / CACHE_LINE as u64
    }

    /// Measures the CSR's memory-locality profile: per-row coefficient
    /// column spans in cache lines, an estimated row-to-row reuse distance,
    /// and (for blocked layouts) the tile shape. One O(nnz log nnz) sweep;
    /// intended for reports and benches, not hot paths.
    pub fn locality_stats(&self) -> LocalityStats {
        let rows = self.rows();
        let mut spans = Vec::with_capacity(rows);
        let mut est_reuse_sum = 0.0f64;
        let mut prev_lines: Vec<u64> = Vec::new();
        let mut row_lines: Vec<u64> = Vec::new();
        for r in 0..rows {
            let (lo, hi) = self.row_range(r);
            if lo == hi {
                spans.push(0.0);
                prev_lines.clear();
                continue;
            }
            row_lines.clear();
            let mut min_line = u64::MAX;
            let mut max_line = 0u64;
            for e in lo..hi {
                let line = self.coeff_line(self.cols[e]);
                min_line = min_line.min(line);
                max_line = max_line.max(line);
                row_lines.push(line);
            }
            spans.push((max_line - min_line + 1) as f64);
            row_lines.sort_unstable();
            row_lines.dedup();
            // Lines this row touches that the previous row did not: the
            // row-to-row working-set churn (0 = perfect reuse).
            let fresh = row_lines
                .iter()
                .filter(|l| prev_lines.binary_search(l).is_err())
                .count();
            est_reuse_sum += fresh as f64;
            std::mem::swap(&mut prev_lines, &mut row_lines);
        }
        let mean = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        let mean_span_lines = mean(&spans);
        let mut sorted = spans.clone();
        sorted.sort_by(f64::total_cmp);
        let p95_span_lines = if sorted.is_empty() {
            0.0
        } else {
            sorted[((sorted.len() - 1) as f64 * 0.95) as usize]
        };

        let (n_tiles, mean_rows_per_tile, tile_fill) = if self.tiles.len() >= 2 {
            let n_tiles = self.tiles.len() - 1;
            let mut fill_sum = 0.0f64;
            let mut lines = Vec::new();
            for w in self.tiles.windows(2) {
                let (lo, _) = self.row_range(w[0] as usize);
                let (_, hi) = self.row_range(w[1] as usize - 1);
                if lo == hi {
                    fill_sum += 1.0;
                    continue;
                }
                lines.clear();
                lines.extend(self.cols[lo..hi].iter().map(|&c| self.coeff_line(c)));
                lines.sort_unstable();
                lines.dedup();
                let span = lines.last().unwrap() - lines.first().unwrap() + 1;
                fill_sum += lines.len() as f64 / span as f64;
            }
            (
                n_tiles as u64,
                rows as f64 / n_tiles as f64,
                fill_sum / n_tiles as f64,
            )
        } else {
            (0, 0.0, 0.0)
        };

        LocalityStats {
            layout: self.layout.label().to_string(),
            rows: rows as u64,
            nnz: self.nnz() as u64,
            mean_span_lines,
            p95_span_lines,
            est_reuse_lines: est_reuse_sum / rows.max(1) as f64,
            n_tiles,
            mean_rows_per_tile,
            tile_fill,
        }
    }

    /// Splits the rows into cache-sized tiles: each tile's *distinct*
    /// coefficient cache lines (times [`CACHE_LINE`] bytes) stay under
    /// [`TILE_COEFF_BUDGET`], except where a single row alone exceeds it.
    /// The budget deliberately counts distinct lines, not the min-to-max
    /// span: under periodic wrap a boundary stencil touches both ends of
    /// the coefficient array, so spans are routinely the whole array while
    /// the lines actually resident stay small. Tiles are row-aligned, so a
    /// tiled sweep visits rows and entries in exactly the order of an
    /// untiled one — tiling changes scheduling granularity, never numerics.
    pub(crate) fn build_tiles(&self) -> Vec<u32> {
        let budget_lines = TILE_COEFF_BUDGET / CACHE_LINE;
        let rows = self.rows();
        if rows == 0 {
            return Vec::new();
        }
        let mut tiles = vec![0u32];
        let mut tile_lines: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut tile_rows = 0usize;
        let mut row_lines: Vec<u64> = Vec::new();
        for r in 0..rows {
            let (lo, hi) = self.row_range(r);
            row_lines.clear();
            row_lines.extend(self.cols[lo..hi].iter().map(|&c| self.coeff_line(c)));
            row_lines.sort_unstable();
            row_lines.dedup();
            let fresh = row_lines.iter().filter(|l| !tile_lines.contains(l)).count();
            if tile_rows > 0 && tile_lines.len() + fresh > budget_lines {
                // Close the current tile and start a new one at this row.
                tiles.push(r as u32);
                tile_lines.clear();
                tile_rows = 0;
            }
            tile_lines.extend(row_lines.iter().copied());
            tile_rows += 1;
        }
        tiles.push(rows as u32);
        tiles
    }
}
