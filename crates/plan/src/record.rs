//! Bridging plan runs into the `RunReport` schema.

use crate::apply::PlanSolution;
use crate::delta::PATCH_SCHEME_LABEL;
use crate::plan::{EvalPlan, SCHEME_LABEL};
use ustencil_core::report::HISTOGRAM_NAMES;
use ustencil_core::{BlockStats, DeltaStats, PlanStats, RunRecord};

impl EvalPlan {
    /// Builds a [`RunRecord`] for one measured apply of this plan, in the
    /// same schema direct runs use: `scheme` is [`SCHEME_LABEL`], spans
    /// concatenate the build and apply phases, patches come from the
    /// apply's row blocks, and the `plan` field carries the size and
    /// build/apply split.
    pub fn to_run_record(
        &self,
        label: &str,
        n_triangles: usize,
        apply: &PlanSolution,
    ) -> RunRecord {
        let probe = BlockStats::merged_probe(&apply.block_stats);
        let histograms = vec![
            (
                HISTOGRAM_NAMES[0].to_string(),
                *probe.candidates_per_query(),
            ),
            (
                HISTOGRAM_NAMES[1].to_string(),
                *probe.subregions_per_element(),
            ),
            (
                HISTOGRAM_NAMES[2].to_string(),
                *probe.quad_points_per_integration(),
            ),
        ];
        let mut spans = self.build_spans.clone();
        spans.extend(apply.spans.iter().cloned());
        RunRecord {
            label: label.to_string(),
            scheme: SCHEME_LABEL.to_string(),
            n_triangles: n_triangles as u64,
            n_points: apply.values.len() as u64,
            wall_ms: apply.wall.as_secs_f64() * 1e3,
            metrics: apply.metrics,
            spans,
            patches: apply
                .block_stats
                .iter()
                .map(|s| ustencil_core::report::PatchRecord {
                    wall_ns: s.wall_ns,
                    elements: s.elements,
                    points: s.points,
                    metrics: s.metrics,
                })
                .collect(),
            histograms,
            device_sim: None,
            plan: Some(PlanStats {
                apply_ms: apply.wall.as_secs_f64() * 1e3,
                ..self.stats()
            }),
            locality: Some(self.locality_stats()),
            comms: Vec::new(),
            critical_path: None,
            serve: None,
            simd: Some(apply.simd.clone()),
        }
    }

    /// Like [`EvalPlan::to_run_record`], but for a plan produced by the
    /// incremental patch path: `scheme` is [`PATCH_SCHEME_LABEL`] and the
    /// `plan` stats carry the measured [`DeltaStats`] (schema v5's `delta`
    /// object), so `checkjson` can assert the patch-vs-full amortization.
    pub fn to_run_record_patched(
        &self,
        label: &str,
        n_triangles: usize,
        apply: &PlanSolution,
        delta: &DeltaStats,
    ) -> RunRecord {
        let mut record = self.to_run_record(label, n_triangles, apply);
        record.scheme = PATCH_SCHEME_LABEL.to_string();
        if let Some(plan) = record.plan.as_mut() {
            plan.delta = Some(*delta);
        }
        record
    }
}
