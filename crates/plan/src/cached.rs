//! Front ends that tie plans to the engine's `PostProcessor`: compile from
//! a processor's settings, or cache a plan and recompile only on change.

use crate::apply::{ApplyOptions, PlanSolution};
use crate::compile::CompileOptions;
use crate::key::PlanKey;
use crate::plan::EvalPlan;
use ustencil_core::{ComputationGrid, PostProcessor, ProcessorSettings};
use ustencil_dg::DgField;
use ustencil_mesh::TriMesh;

/// Plan-mode extension of [`PostProcessor`]: compile the geometry once
/// under the processor's exact kernel/quadrature settings, then apply the
/// result to any number of fields.
pub trait PlanExt {
    /// Compiles an [`EvalPlan`] for degree-`degree` fields over `mesh` at
    /// `grid`'s points, mirroring the kernel/smoothness/parallelism choices
    /// this processor's `run` would make.
    fn compile_plan(&self, mesh: &TriMesh, degree: usize, grid: &ComputationGrid) -> EvalPlan;

    /// A lazily-compiled, self-invalidating plan front end bound to this
    /// processor's settings.
    fn plan(&self) -> CachedPlan;
}

impl PlanExt for PostProcessor {
    fn compile_plan(&self, mesh: &TriMesh, degree: usize, grid: &ComputationGrid) -> EvalPlan {
        EvalPlan::compile(
            mesh,
            grid,
            degree,
            &CompileOptions::from_settings(&self.settings()),
        )
    }

    fn plan(&self) -> CachedPlan {
        CachedPlan::new(self.settings())
    }
}

/// A cached-plan runner: the drop-in "many timesteps" counterpart of
/// [`PostProcessor::run`](ustencil_core::PostProcessor::run). The first
/// [`run`](CachedPlan::run) compiles a plan; subsequent runs against the
/// same problem reuse it and pay only the SpMV.
///
/// Invalidation is by *content*, through [`PlanKey`]: each run hashes the
/// mesh and grid buffers and compares the full key (content digests,
/// degree, kernel, layout) against the cached plan's. A same-shape mesh
/// with moved vertices therefore recompiles instead of silently reusing
/// the stale operator — the hazard the former shape-only check
/// (element count, degree, row count) could not see. In-place mutation is
/// caught the same way, so [`invalidate`](CachedPlan::invalidate) is now
/// only an optimization hint, not a correctness requirement.
#[derive(Debug, Clone)]
pub struct CachedPlan {
    compile: CompileOptions,
    apply: ApplyOptions,
    plan: Option<EvalPlan>,
    /// Key of the cached plan. `None` while `plan` is `Some` marks an
    /// externally seeded plan ([`set`](Self::set)) whose key is adopted on
    /// its first shape-matching run.
    key: Option<PlanKey>,
    rebuilds: usize,
}

impl CachedPlan {
    /// A cache adopting a processor's settings for both compile and apply.
    pub fn new(settings: ProcessorSettings) -> Self {
        Self {
            compile: CompileOptions::from_settings(&settings),
            apply: ApplyOptions {
                n_blocks: settings.n_blocks,
                parallel: settings.parallel,
                instrument: settings.instrument,
            },
            plan: None,
            key: None,
            rebuilds: 0,
        }
    }

    /// Whether the cached plan (if any) matches the given problem. Plans
    /// this cache compiled match by full content key; an externally
    /// [`set`](Self::set) plan (no key yet) matches by shape once, then
    /// adopts the key it was accepted under.
    fn matches(
        &self,
        key: &PlanKey,
        mesh: &TriMesh,
        field: &DgField,
        grid: &ComputationGrid,
    ) -> bool {
        match (&self.plan, &self.key) {
            (Some(_), Some(cached)) => cached == key,
            (Some(p), None) => {
                p.n_elements() == mesh.n_triangles()
                    && p.degree() == field.degree()
                    && p.rows() == grid.len()
            }
            (None, _) => false,
        }
    }

    /// Applies the cached plan to `field`, compiling it first if the cache
    /// is empty or the problem content changed.
    pub fn run(&mut self, mesh: &TriMesh, field: &DgField, grid: &ComputationGrid) -> PlanSolution {
        let key = PlanKey::new(mesh, grid, field.degree(), &self.compile);
        if !self.matches(&key, mesh, field, grid) {
            self.plan = Some(EvalPlan::compile(mesh, grid, field.degree(), &self.compile));
            self.rebuilds += 1;
        }
        // Compiled above, or a seeded plan accepted for this problem: in
        // both cases the plan now answers exactly to `key`.
        self.key = Some(key);
        self.plan
            .as_ref()
            .expect("plan compiled above")
            .apply_with(field, &self.apply)
    }

    /// The cached plan, when one has been compiled.
    pub fn get(&self) -> Option<&EvalPlan> {
        self.plan.as_ref()
    }

    /// The cached plan's content key, once a [`run`](Self::run) has bound
    /// one ([`set`](Self::set) plans have no key until their first run).
    pub fn key(&self) -> Option<&PlanKey> {
        self.key.as_ref()
    }

    /// How many times [`run`](Self::run) had to (re)compile.
    pub fn rebuilds(&self) -> usize {
        self.rebuilds
    }

    /// Drops the cached plan, forcing the next run to recompile. With
    /// content keys this is never needed for correctness; it remains for
    /// callers that want to release the plan's memory eagerly.
    pub fn invalidate(&mut self) {
        self.plan = None;
        self.key = None;
    }

    /// Seeds the cache with an externally built (e.g. deserialized) plan.
    /// The caller asserts the plan is right for the problem it will be run
    /// against: the first shape-matching run adopts it and binds its
    /// content key.
    pub fn set(&mut self, plan: EvalPlan) {
        self.plan = Some(plan);
        self.key = None;
    }
}
