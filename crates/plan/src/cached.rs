//! Front ends that tie plans to the engine's `PostProcessor`: compile from
//! a processor's settings, or cache a plan and recompile only on change.

use crate::apply::{ApplyOptions, PlanSolution};
use crate::compile::CompileOptions;
use crate::plan::EvalPlan;
use ustencil_core::{ComputationGrid, PostProcessor, ProcessorSettings};
use ustencil_dg::DgField;
use ustencil_mesh::TriMesh;

/// Plan-mode extension of [`PostProcessor`]: compile the geometry once
/// under the processor's exact kernel/quadrature settings, then apply the
/// result to any number of fields.
pub trait PlanExt {
    /// Compiles an [`EvalPlan`] for degree-`degree` fields over `mesh` at
    /// `grid`'s points, mirroring the kernel/smoothness/parallelism choices
    /// this processor's `run` would make.
    fn compile_plan(&self, mesh: &TriMesh, degree: usize, grid: &ComputationGrid) -> EvalPlan;

    /// A lazily-compiled, self-invalidating plan front end bound to this
    /// processor's settings.
    fn plan(&self) -> CachedPlan;
}

impl PlanExt for PostProcessor {
    fn compile_plan(&self, mesh: &TriMesh, degree: usize, grid: &ComputationGrid) -> EvalPlan {
        EvalPlan::compile(
            mesh,
            grid,
            degree,
            &CompileOptions::from_settings(&self.settings()),
        )
    }

    fn plan(&self) -> CachedPlan {
        CachedPlan::new(self.settings())
    }
}

/// A cached-plan runner: the drop-in "many timesteps" counterpart of
/// [`PostProcessor::run`](ustencil_core::PostProcessor::run). The first
/// [`run`](CachedPlan::run) compiles a plan; subsequent runs against the
/// same mesh/grid/degree reuse it and pay only the SpMV.
///
/// Invalidation is by shape: the plan is recompiled when the element count,
/// field degree, or grid size changes. Callers that mutate mesh geometry
/// in place (same triangle count, moved vertices) must call
/// [`invalidate`](CachedPlan::invalidate) themselves.
#[derive(Debug, Clone)]
pub struct CachedPlan {
    compile: CompileOptions,
    apply: ApplyOptions,
    plan: Option<EvalPlan>,
    rebuilds: usize,
}

impl CachedPlan {
    /// A cache adopting a processor's settings for both compile and apply.
    pub fn new(settings: ProcessorSettings) -> Self {
        Self {
            compile: CompileOptions::from_settings(&settings),
            apply: ApplyOptions {
                n_blocks: settings.n_blocks,
                parallel: settings.parallel,
                instrument: settings.instrument,
            },
            plan: None,
            rebuilds: 0,
        }
    }

    /// Whether the cached plan (if any) matches the given problem shape.
    fn matches(&self, mesh: &TriMesh, field: &DgField, grid: &ComputationGrid) -> bool {
        self.plan.as_ref().is_some_and(|p| {
            p.n_elements() == mesh.n_triangles()
                && p.degree() == field.degree()
                && p.rows() == grid.len()
        })
    }

    /// Applies the cached plan to `field`, compiling it first if the cache
    /// is empty or the problem shape changed.
    pub fn run(&mut self, mesh: &TriMesh, field: &DgField, grid: &ComputationGrid) -> PlanSolution {
        if !self.matches(mesh, field, grid) {
            self.plan = Some(EvalPlan::compile(mesh, grid, field.degree(), &self.compile));
            self.rebuilds += 1;
        }
        self.plan
            .as_ref()
            .expect("plan compiled above")
            .apply_with(field, &self.apply)
    }

    /// The cached plan, when one has been compiled.
    pub fn get(&self) -> Option<&EvalPlan> {
        self.plan.as_ref()
    }

    /// How many times [`run`](Self::run) had to (re)compile.
    pub fn rebuilds(&self) -> usize {
        self.rebuilds
    }

    /// Drops the cached plan, forcing the next run to recompile (use after
    /// in-place mesh mutation that shape checks cannot see).
    pub fn invalidate(&mut self) {
        self.plan = None;
    }

    /// Seeds the cache with an externally built (e.g. deserialized) plan.
    pub fn set(&mut self, plan: EvalPlan) {
        self.plan = Some(plan);
    }
}
