//! Front ends that tie plans to the engine's `PostProcessor`: compile from
//! a processor's settings, or cache a plan and recompile only on change.

use crate::apply::{ApplyOptions, PlanSolution};
use crate::compile::CompileOptions;
use crate::delta::DirtySet;
use crate::key::PlanKey;
use crate::plan::EvalPlan;
use ustencil_core::{ComputationGrid, DeltaStats, PostProcessor, ProcessorSettings};
use ustencil_dg::DgField;
use ustencil_mesh::TriMesh;

/// Plan-mode extension of [`PostProcessor`]: compile the geometry once
/// under the processor's exact kernel/quadrature settings, then apply the
/// result to any number of fields.
pub trait PlanExt {
    /// Compiles an [`EvalPlan`] for degree-`degree` fields over `mesh` at
    /// `grid`'s points, mirroring the kernel/smoothness/parallelism choices
    /// this processor's `run` would make.
    fn compile_plan(&self, mesh: &TriMesh, degree: usize, grid: &ComputationGrid) -> EvalPlan;

    /// A lazily-compiled, self-invalidating plan front end bound to this
    /// processor's settings.
    fn plan(&self) -> CachedPlan;
}

impl PlanExt for PostProcessor {
    fn compile_plan(&self, mesh: &TriMesh, degree: usize, grid: &ComputationGrid) -> EvalPlan {
        EvalPlan::compile(
            mesh,
            grid,
            degree,
            &CompileOptions::from_settings(&self.settings()),
        )
    }

    fn plan(&self) -> CachedPlan {
        CachedPlan::new(self.settings())
    }
}

/// A cached-plan runner: the drop-in "many timesteps" counterpart of
/// [`PostProcessor::run`](ustencil_core::PostProcessor::run). The first
/// [`run`](CachedPlan::run) compiles a plan; subsequent runs against the
/// same problem reuse it and pay only the SpMV.
///
/// Invalidation is by *content*, through [`PlanKey`]: each run hashes the
/// mesh and grid buffers and compares the full key (content digests,
/// degree, kernel, layout) against the cached plan's. A same-shape mesh
/// with moved vertices therefore recompiles instead of silently reusing
/// the stale operator — the hazard the former shape-only check
/// (element count, degree, row count) could not see. In-place mutation is
/// caught the same way, so [`invalidate`](CachedPlan::invalidate) is now
/// only an optimization hint, not a correctness requirement.
///
/// When the key mismatch is a *mesh edit* — only the content hashes differ,
/// the kernel/degree/layout half of the key is unchanged — the cache does
/// not throw the plan away: it diffs the old and new problem
/// ([`DirtySet::diff`]) and patches the plan ([`EvalPlan::patched`]),
/// recompiling only the dirty footprint closure. Patches that cannot apply
/// (e.g. the longest edge, and with it `h`, changed) fall back to a full
/// compile. [`patches`](Self::patches) and [`last_delta`](Self::last_delta)
/// expose what happened.
#[derive(Debug, Clone)]
pub struct CachedPlan {
    compile: CompileOptions,
    apply: ApplyOptions,
    plan: Option<EvalPlan>,
    /// Key of the cached plan. `None` while `plan` is `Some` marks an
    /// externally seeded plan ([`set`](Self::set)) whose key is adopted on
    /// its first shape-matching run.
    key: Option<PlanKey>,
    /// The problem the cached plan was built for, retained so a later mesh
    /// edit can be diffed against it. `None` for seeded plans until a run
    /// binds them.
    problem: Option<(TriMesh, ComputationGrid)>,
    rebuilds: usize,
    patches: usize,
    last_delta: Option<DeltaStats>,
}

impl CachedPlan {
    /// A cache adopting a processor's settings for both compile and apply.
    pub fn new(settings: ProcessorSettings) -> Self {
        Self {
            compile: CompileOptions::from_settings(&settings),
            apply: ApplyOptions {
                n_blocks: settings.n_blocks,
                parallel: settings.parallel,
                instrument: settings.instrument,
                simd: settings.simd,
            },
            plan: None,
            key: None,
            problem: None,
            rebuilds: 0,
            patches: 0,
            last_delta: None,
        }
    }

    /// Whether the cached plan (if any) matches the given problem. Plans
    /// this cache compiled match by full content key; an externally
    /// [`set`](Self::set) plan (no key yet) matches by shape once, then
    /// adopts the key it was accepted under.
    fn matches(
        &self,
        key: &PlanKey,
        mesh: &TriMesh,
        field: &DgField,
        grid: &ComputationGrid,
    ) -> bool {
        match (&self.plan, &self.key) {
            (Some(_), Some(cached)) => cached == key,
            (Some(p), None) => {
                p.n_elements() == mesh.n_triangles()
                    && p.degree() == field.degree()
                    && p.rows() == grid.len()
            }
            (None, _) => false,
        }
    }

    /// Whether `key` differs from the cached key *only* in the mesh/grid
    /// content hashes — the signature of a mesh edit, where an incremental
    /// patch can stand in for the recompile.
    fn is_content_only_change(&self, key: &PlanKey) -> bool {
        self.key.as_ref().is_some_and(|cached| {
            cached.degree == key.degree
                && cached.smoothness == key.smoothness
                && cached.h_factor_bits == key.h_factor_bits
                && cached.layout == key.layout
                && cached.simd == key.simd
        })
    }

    /// Applies the cached plan to `field`, compiling it first if the cache
    /// is empty or the problem content changed. Mesh edits (content-only
    /// key changes) take the incremental patch path when possible.
    pub fn run(&mut self, mesh: &TriMesh, field: &DgField, grid: &ComputationGrid) -> PlanSolution {
        let key = PlanKey::new(mesh, grid, field.degree(), &self.compile);
        if !self.matches(&key, mesh, field, grid) {
            self.last_delta = None;
            let patched = if self.is_content_only_change(&key) {
                self.try_patch(mesh, grid)
            } else {
                false
            };
            if !patched {
                self.plan = Some(EvalPlan::compile(mesh, grid, field.degree(), &self.compile));
                self.problem = Some((mesh.clone(), grid.clone()));
                self.rebuilds += 1;
            }
        } else if self.problem.is_none() {
            // Seeded plan accepted by shape: retain its problem so later
            // edits can be diffed.
            self.problem = Some((mesh.clone(), grid.clone()));
        }
        // Compiled or patched above, or a seeded plan accepted for this
        // problem: in all cases the plan now answers exactly to `key`.
        self.key = Some(key);
        self.plan
            .as_ref()
            .expect("plan compiled above")
            .apply_with(field, &self.apply)
    }

    /// Attempts the delta path against the retained problem; on success the
    /// cached plan and problem are replaced. `false` means the caller must
    /// full-compile (no retained problem, or the edit changed the kernel).
    fn try_patch(&mut self, mesh: &TriMesh, grid: &ComputationGrid) -> bool {
        let (Some(plan), Some((old_mesh, old_grid))) = (&self.plan, &self.problem) else {
            return false;
        };
        let dirty = DirtySet::diff(old_mesh, old_grid, mesh, grid);
        match plan.patched(mesh, grid, &dirty, &self.compile) {
            Ok((patched, delta)) => {
                self.plan = Some(patched);
                self.problem = Some((mesh.clone(), grid.clone()));
                self.patches += 1;
                self.last_delta = Some(delta);
                true
            }
            Err(_) => false,
        }
    }

    /// The cached plan, when one has been compiled.
    pub fn get(&self) -> Option<&EvalPlan> {
        self.plan.as_ref()
    }

    /// The cached plan's content key, once a [`run`](Self::run) has bound
    /// one ([`set`](Self::set) plans have no key until their first run).
    pub fn key(&self) -> Option<&PlanKey> {
        self.key.as_ref()
    }

    /// How many times [`run`](Self::run) had to full-compile (patched runs
    /// are counted by [`patches`](Self::patches), not here).
    pub fn rebuilds(&self) -> usize {
        self.rebuilds
    }

    /// How many times [`run`](Self::run) revalidated the plan by
    /// incremental patch instead of recompiling.
    pub fn patches(&self) -> usize {
        self.patches
    }

    /// The delta stats of the most recent run, when that run went through
    /// the patch path (`None` after a full compile or a plain hit).
    pub fn last_delta(&self) -> Option<&DeltaStats> {
        self.last_delta.as_ref()
    }

    /// Drops the cached plan, forcing the next run to recompile. With
    /// content keys this is never needed for correctness; it remains for
    /// callers that want to release the plan's memory eagerly.
    pub fn invalidate(&mut self) {
        self.plan = None;
        self.key = None;
        self.problem = None;
        self.last_delta = None;
    }

    /// Seeds the cache with an externally built (e.g. deserialized) plan.
    /// The caller asserts the plan is right for the problem it will be run
    /// against: the first shape-matching run adopts it and binds its
    /// content key.
    pub fn set(&mut self, plan: EvalPlan) {
        self.plan = Some(plan);
        self.key = None;
        self.problem = None;
        self.last_delta = None;
    }
}
