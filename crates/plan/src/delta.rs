//! Incremental plan recompilation: patch a compiled [`EvalPlan`] after a
//! mesh change instead of recompiling from scratch.
//!
//! A mesh edit (refinement, coarsening, vertex displacement) invalidates
//! only the rows whose stencil support touches the edited region: row `r`
//! at point `x_r` integrates over the `(3k+1)h` support square centered at
//! `x_r`, so an element that kept its exact geometry contributes the exact
//! same weights as before. The patch path exploits that in three steps:
//!
//! 1. **Diff** ([`DirtySet::diff`]): match elements and grid points of the
//!    old and new problem by coordinate *bit patterns* (the same currency
//!    as [`PlanKey`](crate::PlanKey)). Unmatched old elements leave stale
//!    AABBs behind; unmatched new elements are the changed set.
//! 2. **Closure** ([`EvalPlan::patch`]): inflate every dirty box by the
//!    kernel support — the catch box of dirty box `B` is
//!    `[B.min - hi·h, B.max - lo·h]`, where `(lo, hi)` is the 1D kernel
//!    support in units of `h` — under all periodic shifts (the same
//!    shift-enumeration geometry `ShardPlan::split_interior` uses for halo
//!    rings), and collect the grid points inside any catch box. Those rows,
//!    plus rows of grid points that did not exist before, are recompiled
//!    through the very [`compile_block`] the full compile runs.
//! 3. **Splice** ([`PlanDelta::splice`]): rebuild the CSR by copying kept
//!    rows (with columns renumbered old → new element ids) and inserting
//!    the recompiled fragments; for reordered layouts the row/column
//!    permutations are repaired by compaction (vanished slots removed, new
//!    elements appended) and blocked layouts re-derive their row tiles.
//!
//! **Bitwise guarantee.** A patched plan is bit-identical to a fresh
//! compile of the new problem (same options, natural layout) row for row:
//! kept rows because every element with positive-area overlap against
//! their support is matched with identical bits, the candidate order of the
//! new [`TriangleGrid`] preserves the relative order of matched elements
//! (monotone matching + identical cell geometry, since the grid's cell
//! size derives from the unchanged longest edge), and non-contributing
//! candidates emit nothing; recompiled rows because they replay the exact
//! fresh-compile call sequence. The property suite
//! (`tests/plan_patch_prop.rs`) asserts this equality directly.
//!
//! The patch refuses (with [`PatchError`]) when the change alters the
//! kernel itself — `h = h_factor · max_edge` must keep its bit pattern —
//! or the options disagree with the plan; callers fall back to a full
//! compile.

use crate::compile::{compile_block, CompileOptions};
use crate::key::Fnv1a;
use crate::plan::EvalPlan;
use rayon::prelude::*;
use std::collections::HashMap;
use std::time::Instant;
use ustencil_core::integrate::IntegrationCtx;
use ustencil_core::{ComputationGrid, DeltaStats, Metrics, Probe};
use ustencil_dg::DubinerBasis;
use ustencil_geometry::{Aabb, Point2};
use ustencil_mesh::{TriMesh, PERIODIC_SHIFTS};
use ustencil_quadrature::TriangleRule;
use ustencil_siac::Stencil2d;
use ustencil_spatial::{Boundary, TriangleGrid};
use ustencil_trace::{SpanRecord, Tracer};

/// The `"scheme"` string carried by runs whose plan came from the patch
/// path rather than a fresh compile (see [`SCHEME_LABEL`](crate::SCHEME_LABEL)).
pub const PATCH_SCHEME_LABEL: &str = "plan+patch";

/// Sentinel for "no counterpart" in the diff maps.
const NONE: u32 = u32::MAX;

/// Why a plan could not be patched for a given `(mesh, grid, options)`;
/// callers should fall back to [`EvalPlan::compile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatchError {
    /// The realized kernel scale `h = h_factor · max_edge` changed its bit
    /// pattern, so *every* stored weight is stale, not just the dirty
    /// region's.
    KernelChanged,
    /// The compile options (degree-independent ones: smoothness, layout)
    /// disagree with what the plan was compiled with.
    OptionsMismatch,
    /// The dirty set was diffed against a different problem than the one
    /// being patched (element/row counts disagree).
    ShapeMismatch,
}

impl std::fmt::Display for PatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PatchError::KernelChanged => {
                write!(f, "kernel scale h changed; all weights are stale")
            }
            PatchError::OptionsMismatch => {
                write!(f, "compile options disagree with the plan's")
            }
            PatchError::ShapeMismatch => {
                write!(f, "dirty set does not describe this plan's problem")
            }
        }
    }
}

impl std::error::Error for PatchError {}

/// The diff between an old `(mesh, grid)` and a new one: which elements and
/// grid points survived bit-identically, which are new, and the stale boxes
/// vanished elements left behind. Built once per mesh edit with
/// [`DirtySet::diff`] and consumed by [`EvalPlan::patch`].
#[derive(Debug, Clone)]
pub struct DirtySet {
    /// Element count of the old mesh.
    old_elements: usize,
    /// Element count of the new mesh.
    new_elements: usize,
    /// Old element → bit-identical new element, or [`NONE`]. Matched
    /// entries are strictly increasing, so renumbering preserves the
    /// relative order of surviving elements.
    elem_map: Vec<u32>,
    /// New element ids with no bit-identical old counterpart, ascending.
    changed: Vec<u32>,
    /// AABBs of old elements that vanished or changed — the stale region a
    /// kept row must not overlap.
    stale_boxes: Vec<Aabb>,
    /// Old grid row → bit-identical new grid row, or [`NONE`].
    row_map: Vec<u32>,
    /// New grid row → bit-identical old grid row, or [`NONE`].
    row_source: Vec<u32>,
}

impl DirtySet {
    /// Diffs two problems by content: elements (and grid points, paired
    /// through their owner elements) match iff their coordinate bit
    /// patterns are identical and the matching preserves storage order.
    /// One hashing pass over each side, `O(n)` in elements + points.
    ///
    /// The matching is deliberately monotone — an old element only matches
    /// a new element *after* the previous match — because the splice's
    /// bitwise claim needs surviving elements to keep their relative order
    /// in the new mesh's spatial-grid cells. Renumberings that reorder
    /// surviving elements are therefore treated as changes (conservative:
    /// a bigger dirty set, never a wrong one).
    pub fn diff(
        old_mesh: &TriMesh,
        old_grid: &ComputationGrid,
        new_mesh: &TriMesh,
        new_grid: &ComputationGrid,
    ) -> DirtySet {
        let old_n = old_mesh.n_triangles();
        let new_n = new_mesh.n_triangles();

        // Bucket new elements by coordinate hash; cursors enforce the
        // monotone greedy matching.
        let mut buckets: HashMap<u64, Vec<u32>> = HashMap::new();
        for e in 0..new_n {
            buckets
                .entry(elem_hash(&elem_bits(new_mesh, e)))
                .or_default()
                .push(e as u32);
        }
        let mut cursors: HashMap<u64, usize> = HashMap::new();
        let mut elem_map = vec![NONE; old_n];
        let mut matched_new = vec![false; new_n];
        let mut last: i64 = -1;
        for (e, slot) in elem_map.iter_mut().enumerate() {
            let bits = elem_bits(old_mesh, e);
            let h = elem_hash(&bits);
            let Some(cands) = buckets.get(&h) else {
                continue;
            };
            let cur = cursors.entry(h).or_insert(0);
            while *cur < cands.len() && (cands[*cur] as i64) <= last {
                *cur += 1;
            }
            // Scan forward for the first order-respecting bit-equal twin;
            // hash collisions make this loop run more than once, which is
            // vanishingly rare.
            let mut j = *cur;
            while j < cands.len() {
                let c = cands[j] as usize;
                if !matched_new[c] && elem_bits(new_mesh, c) == bits {
                    *slot = c as u32;
                    matched_new[c] = true;
                    last = c as i64;
                    *cur = j + 1;
                    break;
                }
                j += 1;
            }
        }
        let changed: Vec<u32> = (0..new_n as u32)
            .filter(|&e| !matched_new[e as usize])
            .collect();
        let stale_boxes: Vec<Aabb> = (0..old_n)
            .filter(|&e| elem_map[e] == NONE)
            .map(|e| elem_aabb(old_mesh, e))
            .collect();

        // Pair grid points through matched owner elements, k-th with k-th,
        // still requiring exact coordinate bits.
        let old_by_owner = points_by_owner(old_grid, old_n);
        let new_by_owner = points_by_owner(new_grid, new_n);
        let mut row_map = vec![NONE; old_grid.len()];
        let mut row_source = vec![NONE; new_grid.len()];
        for (e, &ne) in elem_map.iter().enumerate() {
            if ne == NONE {
                continue;
            }
            let po = old_by_owner.items(e);
            let pn = new_by_owner.items(ne as usize);
            for (&o, &n) in po.iter().zip(pn.iter()) {
                let a = old_grid.points()[o as usize];
                let b = new_grid.points()[n as usize];
                if a.x.to_bits() == b.x.to_bits() && a.y.to_bits() == b.y.to_bits() {
                    row_map[o as usize] = n;
                    row_source[n as usize] = o;
                }
            }
        }

        DirtySet {
            old_elements: old_n,
            new_elements: new_n,
            elem_map,
            changed,
            stale_boxes,
            row_map,
            row_source,
        }
    }

    /// New element ids with no bit-identical old counterpart, ascending.
    pub fn changed(&self) -> &[u32] {
        &self.changed
    }

    /// Elements in the dirty set: changed new elements plus vanished old
    /// ones (an in-place edit counts twice — its old and new incarnation).
    pub fn dirty_elements(&self) -> u64 {
        (self.changed.len() + self.stale_boxes.len()) as u64
    }

    /// True when nothing changed: every element and grid point of the new
    /// problem has a bit-identical counterpart and vice versa. Patching a
    /// clean set reproduces the base plan bit for bit without touching the
    /// traversal machinery.
    pub fn is_clean(&self) -> bool {
        self.changed.is_empty()
            && self.stale_boxes.is_empty()
            && self.row_source.iter().all(|&s| s != NONE)
            && self.row_map.iter().all(|&m| m != NONE)
    }
}

/// Per-element coordinate bit patterns (three vertices × two coordinates),
/// the diff's equality currency.
#[inline]
fn elem_bits(mesh: &TriMesh, e: usize) -> [u64; 6] {
    let idx = mesh.triangle_indices()[e];
    let vs = mesh.vertices();
    let mut out = [0u64; 6];
    for (k, &vi) in idx.iter().enumerate() {
        let p = vs[vi as usize];
        out[2 * k] = p.x.to_bits();
        out[2 * k + 1] = p.y.to_bits();
    }
    out
}

fn elem_hash(bits: &[u64; 6]) -> u64 {
    let mut h = Fnv1a::new();
    for &b in bits {
        h.write_u64(b);
    }
    h.finish()
}

fn elem_aabb(mesh: &TriMesh, e: usize) -> Aabb {
    let idx = mesh.triangle_indices()[e];
    Aabb::from_points(idx.iter().map(|&vi| mesh.vertices()[vi as usize]))
}

/// Grid point ids grouped by owner element, CSR-style (counting sort, so
/// each element's points keep their storage order).
struct PointsByOwner {
    offsets: Vec<u32>,
    items: Vec<u32>,
}

impl PointsByOwner {
    fn items(&self, e: usize) -> &[u32] {
        &self.items[self.offsets[e] as usize..self.offsets[e + 1] as usize]
    }
}

fn points_by_owner(grid: &ComputationGrid, n_elements: usize) -> PointsByOwner {
    let mut counts = vec![0u32; n_elements];
    for &o in grid.owners() {
        counts[o as usize] += 1;
    }
    let mut offsets = vec![0u32; n_elements + 1];
    for e in 0..n_elements {
        offsets[e + 1] = offsets[e] + counts[e];
    }
    let mut cursor = offsets[..n_elements].to_vec();
    let mut items = vec![0u32; grid.len()];
    for (p, &o) in grid.owners().iter().enumerate() {
        items[cursor[o as usize] as usize] = p as u32;
        cursor[o as usize] += 1;
    }
    PointsByOwner { offsets, items }
}

/// A uniform bin grid over the shifted catch boxes, so the closure test is
/// a cell lookup instead of a scan over every dirty box.
struct CatchGrid {
    n: usize,
    boxes: Vec<Aabb>,
    cells: Vec<Vec<u32>>,
}

impl CatchGrid {
    fn build(catch_boxes: Vec<Aabb>, stencil_width: f64) -> CatchGrid {
        let n = ((1.0 / stencil_width.max(1e-9)).floor() as usize).clamp(1, 128);
        let mut cells = vec![Vec::new(); n * n];
        let span = |lo: f64, hi: f64| -> Option<(usize, usize)> {
            if hi < 0.0 || lo > 1.0 {
                return None;
            }
            let i0 = ((lo.max(0.0) * n as f64) as usize).min(n - 1);
            let i1 = ((hi.min(1.0) * n as f64) as usize).min(n - 1);
            Some((i0, i1))
        };
        for (id, b) in catch_boxes.iter().enumerate() {
            let (Some((x0, x1)), Some((y0, y1))) = (span(b.min.x, b.max.x), span(b.min.y, b.max.y))
            else {
                continue;
            };
            for iy in y0..=y1 {
                for ix in x0..=x1 {
                    cells[iy * n + ix].push(id as u32);
                }
            }
        }
        CatchGrid {
            n,
            boxes: catch_boxes,
            cells,
        }
    }

    fn hits(&self, p: Point2) -> bool {
        let ix = ((p.x.clamp(0.0, 1.0) * self.n as f64) as usize).min(self.n - 1);
        let iy = ((p.y.clamp(0.0, 1.0) * self.n as f64) as usize).min(self.n - 1);
        self.cells[iy * self.n + ix]
            .iter()
            .any(|&id| self.boxes[id as usize].contains(p))
    }
}

/// The computed patch: recompiled CSR fragments for the dirty closure plus
/// the renumbering maps, ready to be spliced into the base plan. Produced
/// by [`EvalPlan::patch`]; independent of the base plan's storage, so one
/// delta can be spliced into any clone of the base.
#[derive(Debug, Clone)]
pub struct PlanDelta {
    new_rows: usize,
    new_elements: usize,
    /// Natural new grid point ids whose rows were recompiled, ascending.
    frag_rows: Vec<u32>,
    frag_row_ptr: Vec<u64>,
    /// Natural new element ids (renumbered to slots at splice time).
    frag_cols: Vec<u32>,
    frag_weights: Vec<f64>,
    row_source: Vec<u32>,
    row_map: Vec<u32>,
    elem_map: Vec<u32>,
    changed: Vec<u32>,
    dirty_elements: u64,
    discover_ms: f64,
    metrics: Metrics,
    spans: Vec<SpanRecord>,
}

impl PlanDelta {
    /// Rows the patch recompiled (the footprint closure of the dirty set
    /// plus rows of newly created grid points).
    pub fn respliced_rows(&self) -> usize {
        self.frag_rows.len()
    }

    /// CSR entries in the recompiled rows.
    pub fn respliced_nnz(&self) -> usize {
        self.frag_cols.len()
    }

    /// Elements in the dirty set the patch was computed for.
    pub fn dirty_elements(&self) -> u64 {
        self.dirty_elements
    }

    /// Work counters of the recompilation pass (closure rows only).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Stats in the report's shape; `patch_ms` covers the closure and row
    /// recompute ([`EvalPlan::patched`] re-times it to include the splice).
    pub fn stats(&self, base: &EvalPlan) -> DeltaStats {
        DeltaStats {
            dirty_elements: self.dirty_elements,
            respliced_rows: self.respliced_rows() as u64,
            respliced_nnz: self.respliced_nnz() as u64,
            patch_ms: self.discover_ms,
            full_build_ms: base.build_wall().as_secs_f64() * 1e3,
        }
    }

    /// Splices the delta into `base`, producing the patched plan: kept rows
    /// are copied with columns renumbered, recompiled fragments replace the
    /// dirty rows, vanished rows/columns are compacted out and new ones
    /// appended. Reordered layouts keep their (repaired) permutations;
    /// blocked layouts re-derive row tiles under the cache budget.
    ///
    /// # Panics
    /// Panics when a kept row references a vanished element — that would
    /// mean the footprint closure missed a dependency, which the property
    /// suite asserts never happens.
    pub fn splice(&self, base: &EvalPlan) -> EvalPlan {
        let nm = base.n_modes;
        // Fragment lookup by natural new point id.
        let mut frag_of = vec![NONE; self.new_rows];
        for (i, &p) in self.frag_rows.iter().enumerate() {
            frag_of[p as usize] = i as u32;
        }

        // Column renumbering and the repaired permutations.
        let (col_perm, slot_of_elem, slot_map) = if base.layout.reorders() {
            // Compact surviving slots in order, then append changed
            // elements as fresh trailing slots.
            let mut slot_map = vec![NONE; base.col_perm.len()];
            let mut col_perm = Vec::with_capacity(self.new_elements);
            for (c, &old_e) in base.col_perm.iter().enumerate() {
                let ne = self.elem_map[old_e as usize];
                if ne != NONE {
                    slot_map[c] = col_perm.len() as u32;
                    col_perm.push(ne);
                }
            }
            col_perm.extend_from_slice(&self.changed);
            let mut slot_of_elem = vec![NONE; self.new_elements];
            for (s, &e) in col_perm.iter().enumerate() {
                slot_of_elem[e as usize] = s as u32;
            }
            (col_perm, slot_of_elem, slot_map)
        } else {
            (Vec::new(), Vec::new(), Vec::new())
        };

        let nnz_guess = base.cols.len() + self.frag_cols.len();
        let mut row_ptr: Vec<u64> = Vec::with_capacity(self.new_rows + 1);
        let mut cols: Vec<u32> = Vec::with_capacity(nnz_guess);
        let mut weights: Vec<f64> = Vec::with_capacity(nnz_guess * nm);
        row_ptr.push(0);

        let push_fragment = |f: usize, cols: &mut Vec<u32>, weights: &mut Vec<f64>| {
            let (lo, hi) = (
                self.frag_row_ptr[f] as usize,
                self.frag_row_ptr[f + 1] as usize,
            );
            if base.layout.reorders() {
                cols.extend(
                    self.frag_cols[lo..hi]
                        .iter()
                        .map(|&e| slot_of_elem[e as usize]),
                );
            } else {
                cols.extend_from_slice(&self.frag_cols[lo..hi]);
            }
            weights.extend_from_slice(&self.frag_weights[lo * nm..hi * nm]);
        };
        let push_kept = |old_row: usize, cols: &mut Vec<u32>, weights: &mut Vec<f64>| {
            let (lo, hi) = base.row_range(old_row);
            for &c in &base.cols[lo..hi] {
                let nc = if base.layout.reorders() {
                    slot_map[c as usize]
                } else {
                    self.elem_map[c as usize]
                };
                assert!(
                    nc != NONE,
                    "kept row {old_row} references a vanished element: \
                     the dirty closure missed a dependency"
                );
                cols.push(nc);
            }
            weights.extend_from_slice(&base.weights[lo * nm..hi * nm]);
        };

        let row_perm: Vec<u32> = if base.layout.reorders() {
            // Keep the base's row order (in-place replacement preserves the
            // Hilbert locality the layout paid for), dropping vanished rows
            // and appending rows of brand-new points at the tail.
            let mut row_perm = Vec::with_capacity(self.new_rows);
            for (r, &old_pt) in base.row_perm.iter().enumerate() {
                let new_pt = self.row_map[old_pt as usize];
                if new_pt == NONE {
                    continue;
                }
                let f = frag_of[new_pt as usize];
                if f != NONE {
                    push_fragment(f as usize, &mut cols, &mut weights);
                } else {
                    let src = self.row_source[new_pt as usize];
                    debug_assert_eq!(src, old_pt);
                    push_kept(r, &mut cols, &mut weights);
                }
                row_ptr.push(cols.len() as u64);
                row_perm.push(new_pt);
            }
            for &p in &self.frag_rows {
                if self.row_source[p as usize] == NONE {
                    push_fragment(frag_of[p as usize] as usize, &mut cols, &mut weights);
                    row_ptr.push(cols.len() as u64);
                    row_perm.push(p);
                }
            }
            row_perm
        } else {
            // Natural layout: row r is grid point r.
            for (r, &f) in frag_of.iter().enumerate().take(self.new_rows) {
                if f != NONE {
                    push_fragment(f as usize, &mut cols, &mut weights);
                } else {
                    let src = self.row_source[r];
                    debug_assert!(src != NONE, "unsourced row {r} missing from fragments");
                    push_kept(src as usize, &mut cols, &mut weights);
                }
                row_ptr.push(cols.len() as u64);
            }
            Vec::new()
        };

        let mut plan = EvalPlan {
            degree: base.degree,
            smoothness: base.smoothness,
            n_modes: nm,
            n_elements: self.new_elements,
            h: base.h,
            row_ptr,
            cols,
            weights,
            build_wall: base.build_wall,
            build_spans: self.spans.clone(),
            build_metrics: base.build_metrics,
            layout: base.layout,
            row_perm,
            col_perm,
            tiles: Vec::new(),
        };
        if base.layout.blocked() {
            plan.tiles = plan.build_tiles();
        }
        plan
    }
}

impl EvalPlan {
    /// Computes the patch for a mesh edit: the footprint closure of the
    /// dirty set and the recompiled rows inside it. Pure discovery — splice
    /// the result with [`PlanDelta::splice`], or use [`EvalPlan::patched`]
    /// for the one-call version.
    ///
    /// `options` must describe the same kernel/layout the plan was compiled
    /// with; `mesh`/`grid` are the *new* problem, `dirty` the diff from the
    /// plan's problem to the new one.
    pub fn patch(
        &self,
        mesh: &TriMesh,
        grid: &ComputationGrid,
        dirty: &DirtySet,
        options: &CompileOptions,
    ) -> Result<PlanDelta, PatchError> {
        let started = Instant::now();
        if options.smoothness.unwrap_or(self.degree) != self.smoothness
            || options.layout != self.layout
        {
            return Err(PatchError::OptionsMismatch);
        }
        if dirty.old_elements != self.n_elements
            || dirty.row_map.len() != self.rows()
            || dirty.new_elements != mesh.n_triangles()
            || dirty.row_source.len() != grid.len()
        {
            return Err(PatchError::ShapeMismatch);
        }
        let h = options.h_factor * mesh.max_edge_length();
        if h.to_bits() != self.h.to_bits() {
            return Err(PatchError::KernelChanged);
        }

        let tracer = Tracer::new(options.instrument);
        let n = grid.len();

        // Closure: rows whose support rect intersects a dirty box under
        // any periodic shift, plus rows of points with no old counterpart.
        let mut recompute = vec![false; n];
        let mut any = false;
        for (r, &src) in dirty.row_source.iter().enumerate() {
            if src == NONE {
                recompute[r] = true;
                any = true;
            }
        }
        if !dirty.changed.is_empty() || !dirty.stale_boxes.is_empty() {
            let _span = tracer.span("patch.closure");
            let stencil = Stencil2d::symmetric(self.smoothness, h);
            let (lo, hi) = stencil.kernel().support();
            let (lo_h, hi_h) = (lo * h, hi * h);
            let dirty_boxes = dirty
                .stale_boxes
                .iter()
                .copied()
                .chain(dirty.changed.iter().map(|&e| elem_aabb(mesh, e as usize)));
            let mut catch_boxes = Vec::new();
            for b in dirty_boxes {
                let catch = Aabb::new(
                    Point2::new(b.min.x - hi_h, b.min.y - hi_h),
                    Point2::new(b.max.x - lo_h, b.max.y - lo_h),
                );
                for &s in PERIODIC_SHIFTS.iter() {
                    catch_boxes.push(catch.translate(s));
                }
            }
            let catch = CatchGrid::build(catch_boxes, stencil.width());
            for (r, p) in grid.points().iter().enumerate() {
                if !recompute[r] && catch.hits(*p) {
                    recompute[r] = true;
                    any = true;
                }
            }
        }

        let frag_rows: Vec<u32> = if any {
            (0..n as u32).filter(|&r| recompute[r as usize]).collect()
        } else {
            Vec::new()
        };

        // Recompile the closure through the full compile's row machinery
        // (same basis/stencil/rule/grid construction, same per-row calls).
        let (frag_row_ptr, frag_cols, frag_weights, metrics) = if frag_rows.is_empty() {
            (vec![0u64], Vec::new(), Vec::new(), Metrics::default())
        } else {
            let _span = tracer.span("patch.recompute");
            let basis = DubinerBasis::new(self.degree);
            let stencil = Stencil2d::symmetric(self.smoothness, h);
            let rule = TriangleRule::with_strength(IntegrationCtx::required_strength(
                self.smoothness,
                self.degree,
            ));
            let tri_grid = TriangleGrid::build(mesh, Boundary::Periodic);
            // Patched rows must be bit-identical to a fresh compile under
            // the same options, so the patch resolves the same SIMD policy.
            let simd_isa = options.simd.resolve();
            let n_blocks = options.n_blocks.clamp(1, frag_rows.len());
            let bounds: Vec<(usize, usize)> = (0..n_blocks)
                .map(|b| {
                    (
                        b * frag_rows.len() / n_blocks,
                        (b + 1) * frag_rows.len() / n_blocks,
                    )
                })
                .collect();
            let block = |s: usize, e: usize| {
                let mut probe = Probe::new(false);
                compile_block(
                    mesh,
                    grid,
                    &basis,
                    &stencil,
                    &rule,
                    &tri_grid,
                    &frag_rows[s..e],
                    simd_isa,
                    &mut probe,
                )
            };
            let blocks: Vec<_> = if options.parallel {
                bounds.par_iter().map(|&(s, e)| block(s, e)).collect()
            } else {
                bounds.iter().map(|&(s, e)| block(s, e)).collect()
            };
            let mut row_ptr = vec![0u64];
            let mut cols = Vec::new();
            let mut weights = Vec::new();
            let mut acc = 0u64;
            for b in &blocks {
                for &c in &b.row_counts {
                    acc += c as u64;
                    row_ptr.push(acc);
                }
                cols.extend_from_slice(&b.cols);
                weights.extend_from_slice(&b.weights);
            }
            let metrics = Metrics::sum(blocks.iter().map(|b| &b.stats.metrics));
            (row_ptr, cols, weights, metrics)
        };

        Ok(PlanDelta {
            new_rows: n,
            new_elements: mesh.n_triangles(),
            frag_rows,
            frag_row_ptr,
            frag_cols,
            frag_weights,
            row_source: dirty.row_source.clone(),
            row_map: dirty.row_map.clone(),
            elem_map: dirty.elem_map.clone(),
            changed: dirty.changed.clone(),
            dirty_elements: dirty.dirty_elements(),
            discover_ms: started.elapsed().as_secs_f64() * 1e3,
            metrics,
            spans: tracer.into_records(),
        })
    }

    /// Patches the plan in one call: [`EvalPlan::patch`] followed by
    /// [`PlanDelta::splice`], returning the patched plan and the measured
    /// delta stats (`patch_ms` covers closure, recompute, and splice; the
    /// `full_build_ms` reference is the base plan's compile wall, carried
    /// across chained patches so amortization stays honest).
    pub fn patched(
        &self,
        mesh: &TriMesh,
        grid: &ComputationGrid,
        dirty: &DirtySet,
        options: &CompileOptions,
    ) -> Result<(EvalPlan, DeltaStats), PatchError> {
        let started = Instant::now();
        let delta = self.patch(mesh, grid, dirty, options)?;
        let splice_started = Instant::now();
        let mut plan = delta.splice(self);
        if options.instrument {
            let start_ns = plan
                .build_spans
                .iter()
                .map(|s| s.start_ns + s.duration_ns)
                .max()
                .unwrap_or(0);
            plan.build_spans.push(SpanRecord {
                name: "patch.splice".to_string(),
                depth: 0,
                start_ns,
                duration_ns: splice_started.elapsed().as_nanos() as u64,
            });
        }
        let mut stats = delta.stats(self);
        stats.patch_ms = started.elapsed().as_secs_f64() * 1e3;
        Ok((plan, stats))
    }
}
