//! Plan serialization: build offline, load at serve time.
//!
//! The on-disk form is JSON via `ustencil-trace`'s dependency-free writer.
//! Integer arrays (`row_ptr`, `cols`) serialize as plain JSON numbers
//! (exact below 2^53); every floating-point value — `h` and the packed
//! `weights` — is hex-encoded as its IEEE-754 bit pattern (16 lowercase hex
//! digits per `f64`), because a decimal round trip through the JSON number
//! writer is not bit-faithful (e.g. `-0.0` loses its sign bit on the
//! integer fast path). A serialized-then-loaded plan is therefore
//! byte-identical in its weights, which the equivalence property test
//! asserts.

use crate::plan::EvalPlan;
use std::fmt::Write as _;
use std::time::Duration;
use ustencil_core::Metrics;
use ustencil_trace::Json;

/// Format tag of the serialized plan schema.
pub const FORMAT_TAG: &str = "ustencil-plan/v1";

fn f64_from_hex(s: &str) -> Result<f64, String> {
    if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(format!("invalid f64 hex '{s}'"));
    }
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|e| e.to_string())
}

fn get<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, String> {
    doc.get(key).ok_or_else(|| format!("missing key '{key}'"))
}

fn get_usize(doc: &Json, key: &str) -> Result<usize, String> {
    get(doc, key)?
        .as_u64()
        .map(|x| x as usize)
        .ok_or_else(|| format!("'{key}' is not a non-negative integer"))
}

fn get_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, String> {
    get(doc, key)?
        .as_str()
        .ok_or_else(|| format!("'{key}' is not a string"))
}

impl EvalPlan {
    /// Serializes the plan to a JSON document (format
    /// [`FORMAT_TAG`]). Build-time observability (wall, spans, metrics) is
    /// deliberately not serialized: a loaded plan reports a zero build
    /// cost, because its build was paid offline.
    pub fn to_json(&self) -> Json {
        let mut weights_hex = String::with_capacity(self.weights.len() * 16);
        for w in &self.weights {
            let _ = write!(weights_hex, "{:016x}", w.to_bits());
        }
        Json::object()
            .set("format", FORMAT_TAG)
            .set("degree", self.degree)
            .set("smoothness", self.smoothness)
            .set("n_modes", self.n_modes)
            .set("n_elements", self.n_elements)
            .set("h", format!("{:016x}", self.h.to_bits()))
            .set(
                "row_ptr",
                self.row_ptr
                    .iter()
                    .map(|&x| Json::Num(x as f64))
                    .collect::<Vec<_>>(),
            )
            .set(
                "cols",
                self.cols
                    .iter()
                    .map(|&x| Json::Num(x as f64))
                    .collect::<Vec<_>>(),
            )
            .set("weights", weights_hex)
    }

    /// Serializes to pretty-printed JSON text.
    pub fn to_pretty_string(&self) -> String {
        self.to_json().to_pretty_string()
    }

    /// Loads a plan from JSON text, validating the format tag and every
    /// structural invariant (row-pointer monotonicity, array lengths,
    /// column bounds, mode count).
    pub fn from_json(text: &str) -> Result<EvalPlan, String> {
        let doc = Json::parse(text)?;
        let format = get_str(&doc, "format")?;
        if format != FORMAT_TAG {
            return Err(format!(
                "unsupported plan format '{format}' (expected '{FORMAT_TAG}')"
            ));
        }
        let degree = get_usize(&doc, "degree")?;
        let smoothness = get_usize(&doc, "smoothness")?;
        let n_modes = get_usize(&doc, "n_modes")?;
        let n_elements = get_usize(&doc, "n_elements")?;
        if n_modes != (degree + 1) * (degree + 2) / 2 {
            return Err(format!(
                "n_modes {n_modes} inconsistent with degree {degree}"
            ));
        }
        let h = f64_from_hex(get_str(&doc, "h")?)?;
        if !(h.is_finite() && h > 0.0) {
            return Err(format!("non-positive kernel scale h = {h}"));
        }

        let row_ptr = get(&doc, "row_ptr")?
            .as_array()
            .ok_or("'row_ptr' is not an array")?
            .iter()
            .map(|v| v.as_u64().ok_or("non-integer row_ptr entry"))
            .collect::<Result<Vec<u64>, _>>()?;
        if row_ptr.first() != Some(&0) {
            return Err("row_ptr must start at 0".to_string());
        }
        if row_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err("row_ptr must be non-decreasing".to_string());
        }

        let cols = get(&doc, "cols")?
            .as_array()
            .ok_or("'cols' is not an array")?
            .iter()
            .map(|v| {
                v.as_u64()
                    .filter(|&c| c < n_elements as u64)
                    .map(|c| c as u32)
                    .ok_or("out-of-range cols entry")
            })
            .collect::<Result<Vec<u32>, _>>()?;
        if row_ptr.last().copied() != Some(cols.len() as u64) {
            return Err(format!(
                "row_ptr end {:?} does not match {} entries",
                row_ptr.last(),
                cols.len()
            ));
        }

        let weights_hex = get_str(&doc, "weights")?;
        if weights_hex.len() != cols.len() * n_modes * 16 {
            return Err(format!(
                "weights blob has {} hex digits, expected {}",
                weights_hex.len(),
                cols.len() * n_modes * 16
            ));
        }
        let weights = weights_hex
            .as_bytes()
            .chunks(16)
            .map(|chunk| f64_from_hex(std::str::from_utf8(chunk).map_err(|e| e.to_string())?))
            .collect::<Result<Vec<f64>, _>>()?;

        Ok(EvalPlan {
            degree,
            smoothness,
            n_modes,
            n_elements,
            h,
            row_ptr,
            cols,
            weights,
            build_wall: Duration::ZERO,
            build_spans: Vec::new(),
            build_metrics: Metrics::default(),
        })
    }
}
