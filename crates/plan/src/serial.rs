//! Plan serialization: build offline, load at serve time.
//!
//! The on-disk form is JSON via `ustencil-trace`'s dependency-free writer.
//! Integer arrays (`row_ptr`, `cols`) serialize as plain JSON numbers
//! (exact below 2^53); every floating-point value — `h` and the packed
//! `weights` — is hex-encoded as its IEEE-754 bit pattern (16 lowercase hex
//! digits per `f64`), because a decimal round trip through the JSON number
//! writer is not bit-faithful (e.g. `-0.0` loses its sign bit on the
//! integer fast path). A serialized-then-loaded plan is therefore
//! byte-identical in its weights, which the equivalence property test
//! asserts.

use crate::plan::EvalPlan;
use std::fmt::Write as _;
use std::time::Duration;
use ustencil_core::{Layout, Metrics};
use ustencil_trace::Json;

/// Format tag of the serialized plan schema. `v2` added the layout fields
/// (`layout`, `row_perm`, `col_perm`, `tiles`); `v1` documents are no
/// longer accepted, since plans are cheap to regenerate and none are
/// stored long-term in this repository.
pub const FORMAT_TAG: &str = "ustencil-plan/v2";

fn f64_from_hex(s: &str) -> Result<f64, String> {
    if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(format!("invalid f64 hex '{s}'"));
    }
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|e| e.to_string())
}

fn get<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, String> {
    doc.get(key).ok_or_else(|| format!("missing key '{key}'"))
}

fn get_usize(doc: &Json, key: &str) -> Result<usize, String> {
    get(doc, key)?
        .as_u64()
        .map(|x| x as usize)
        .ok_or_else(|| format!("'{key}' is not a non-negative integer"))
}

fn get_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, String> {
    get(doc, key)?
        .as_str()
        .ok_or_else(|| format!("'{key}' is not a string"))
}

fn u32s_to_json(v: &[u32]) -> Vec<Json> {
    v.iter().map(|&x| Json::Num(x as f64)).collect()
}

fn u32s_from_json(doc: &Json, key: &str) -> Result<Vec<u32>, String> {
    get(doc, key)?
        .as_array()
        .ok_or_else(|| format!("'{key}' is not an array"))?
        .iter()
        .map(|v| {
            v.as_u64()
                .filter(|&x| x <= u32::MAX as u64)
                .map(|x| x as u32)
                .ok_or_else(|| format!("out-of-range '{key}' entry"))
        })
        .collect()
}

/// Checks that `perm` is a permutation of `0..len`.
fn check_perm(perm: &[u32], len: usize, what: &str) -> Result<(), String> {
    if perm.len() != len {
        return Err(format!("{what} has {} entries, expected {len}", perm.len()));
    }
    let mut seen = vec![false; len];
    for &p in perm {
        let slot = seen
            .get_mut(p as usize)
            .ok_or_else(|| format!("{what} entry {p} out of range"))?;
        if std::mem::replace(slot, true) {
            return Err(format!("{what} repeats index {p}"));
        }
    }
    Ok(())
}

impl EvalPlan {
    /// Serializes the plan to a JSON document (format tag
    /// `ustencil-plan/v2`). Build-time observability (wall, spans, metrics) is
    /// deliberately not serialized: a loaded plan reports a zero build
    /// cost, because its build was paid offline.
    pub fn to_json(&self) -> Json {
        let mut weights_hex = String::with_capacity(self.weights.len() * 16);
        for w in &self.weights {
            let _ = write!(weights_hex, "{:016x}", w.to_bits());
        }
        Json::object()
            .set("format", FORMAT_TAG)
            .set("degree", self.degree)
            .set("smoothness", self.smoothness)
            .set("n_modes", self.n_modes)
            .set("n_elements", self.n_elements)
            .set("h", format!("{:016x}", self.h.to_bits()))
            .set(
                "row_ptr",
                self.row_ptr
                    .iter()
                    .map(|&x| Json::Num(x as f64))
                    .collect::<Vec<_>>(),
            )
            .set(
                "cols",
                self.cols
                    .iter()
                    .map(|&x| Json::Num(x as f64))
                    .collect::<Vec<_>>(),
            )
            .set("weights", weights_hex)
            .set("layout", self.layout.label())
            .set("row_perm", u32s_to_json(&self.row_perm))
            .set("col_perm", u32s_to_json(&self.col_perm))
            .set("tiles", u32s_to_json(&self.tiles))
    }

    /// Serializes to pretty-printed JSON text.
    pub fn to_pretty_string(&self) -> String {
        self.to_json().to_pretty_string()
    }

    /// Loads a plan from JSON text, validating the format tag and every
    /// structural invariant (row-pointer monotonicity, array lengths,
    /// column bounds, mode count).
    pub fn from_json(text: &str) -> Result<EvalPlan, String> {
        let doc = Json::parse(text)?;
        let format = get_str(&doc, "format")?;
        if format != FORMAT_TAG {
            return Err(format!(
                "unsupported plan format '{format}' (expected '{FORMAT_TAG}')"
            ));
        }
        let degree = get_usize(&doc, "degree")?;
        let smoothness = get_usize(&doc, "smoothness")?;
        let n_modes = get_usize(&doc, "n_modes")?;
        let n_elements = get_usize(&doc, "n_elements")?;
        if n_modes != (degree + 1) * (degree + 2) / 2 {
            return Err(format!(
                "n_modes {n_modes} inconsistent with degree {degree}"
            ));
        }
        let h = f64_from_hex(get_str(&doc, "h")?)?;
        if !(h.is_finite() && h > 0.0) {
            return Err(format!("non-positive kernel scale h = {h}"));
        }

        let row_ptr = get(&doc, "row_ptr")?
            .as_array()
            .ok_or("'row_ptr' is not an array")?
            .iter()
            .map(|v| v.as_u64().ok_or("non-integer row_ptr entry"))
            .collect::<Result<Vec<u64>, _>>()?;
        if row_ptr.first() != Some(&0) {
            return Err("row_ptr must start at 0".to_string());
        }
        if row_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err("row_ptr must be non-decreasing".to_string());
        }

        let cols = get(&doc, "cols")?
            .as_array()
            .ok_or("'cols' is not an array")?
            .iter()
            .map(|v| {
                v.as_u64()
                    .filter(|&c| c < n_elements as u64)
                    .map(|c| c as u32)
                    .ok_or("out-of-range cols entry")
            })
            .collect::<Result<Vec<u32>, _>>()?;
        if row_ptr.last().copied() != Some(cols.len() as u64) {
            return Err(format!(
                "row_ptr end {:?} does not match {} entries",
                row_ptr.last(),
                cols.len()
            ));
        }

        let weights_hex = get_str(&doc, "weights")?;
        if weights_hex.len() != cols.len() * n_modes * 16 {
            return Err(format!(
                "weights blob has {} hex digits, expected {}",
                weights_hex.len(),
                cols.len() * n_modes * 16
            ));
        }
        let weights = weights_hex
            .as_bytes()
            .chunks(16)
            .map(|chunk| f64_from_hex(std::str::from_utf8(chunk).map_err(|e| e.to_string())?))
            .collect::<Result<Vec<f64>, _>>()?;

        let layout_label = get_str(&doc, "layout")?;
        let layout = Layout::from_label(layout_label)
            .ok_or_else(|| format!("unknown layout '{layout_label}'"))?;
        let row_perm = u32s_from_json(&doc, "row_perm")?;
        let col_perm = u32s_from_json(&doc, "col_perm")?;
        let tiles = u32s_from_json(&doc, "tiles")?;
        let rows = row_ptr.len() - 1;
        if layout.reorders() {
            check_perm(&row_perm, rows, "row_perm")?;
            check_perm(&col_perm, n_elements, "col_perm")?;
        } else if !row_perm.is_empty() || !col_perm.is_empty() {
            return Err("natural layout must not carry permutations".to_string());
        }
        if layout.blocked() {
            if rows > 0
                && (tiles.len() < 2
                    || tiles.first() != Some(&0)
                    || tiles.last().copied() != Some(rows as u32)
                    || tiles.windows(2).any(|w| w[0] >= w[1]))
            {
                return Err("tiles must be a strictly increasing cover of the rows".to_string());
            }
        } else if !tiles.is_empty() {
            return Err(format!("layout '{layout_label}' must not carry tiles"));
        }

        Ok(EvalPlan {
            degree,
            smoothness,
            n_modes,
            n_elements,
            h,
            row_ptr,
            cols,
            weights,
            build_wall: Duration::ZERO,
            build_spans: Vec::new(),
            build_metrics: Metrics::default(),
            layout,
            row_perm,
            col_perm,
            tiles,
        })
    }
}
