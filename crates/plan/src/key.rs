//! The canonical plan-cache key: everything a compiled plan depends on,
//! hashed by *content*.
//!
//! A plan's CSR structure and weights are fully determined by the mesh
//! geometry, the evaluation grid, the field degree, the kernel
//! (smoothness `k` and width factor), and the storage layout. [`PlanKey`]
//! captures exactly that tuple, with the mesh and grid reduced to 64-bit
//! FNV-1a digests over their raw buffers. Two problems with equal keys
//! compile to bit-identical plans; two problems with different content —
//! even at the *same shape* — get different keys.
//!
//! That content sensitivity is the point: the historical
//! [`CachedPlan`](crate::CachedPlan) invalidation checked only element
//! count, degree, and row count, so feeding it a same-shape mesh with
//! moved vertices silently reused the stale operator. Keys close that
//! hazard, and they are what the concurrent cache in `ustencil-serve`
//! shards and single-flights on.

use crate::compile::CompileOptions;
use ustencil_core::{ComputationGrid, Layout, SimdIsa};
use ustencil_mesh::TriMesh;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A streaming 64-bit FNV-1a hasher over little-endian words. FNV is not
/// cryptographic — it only needs to make distinct meshes collide with
/// probability ~2^-64 and to be cheap enough to run per cache lookup.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv1a(u64);

impl Fnv1a {
    pub(crate) fn new() -> Self {
        Self(FNV_OFFSET)
    }

    #[inline]
    pub(crate) fn write_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    #[inline]
    pub(crate) fn write_f64(&mut self, v: f64) {
        // Bit pattern, not value: -0.0 and 0.0 produce different meshes as
        // far as bit-exact plan reuse is concerned, so hash them apart.
        self.write_u64(v.to_bits());
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

/// Content digest of a mesh: vertex coordinates (bit patterns) and
/// triangle connectivity, in storage order.
pub fn mesh_content_hash(mesh: &TriMesh) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(mesh.n_vertices() as u64);
    h.write_u64(mesh.n_triangles() as u64);
    for v in mesh.vertices() {
        h.write_f64(v.x);
        h.write_f64(v.y);
    }
    for t in mesh.triangle_indices() {
        for &i in t {
            h.write_u64(i as u64);
        }
    }
    h.finish()
}

/// Content digest of an evaluation grid: point coordinates (bit patterns)
/// and owning elements, in storage order.
pub fn grid_content_hash(grid: &ComputationGrid) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(grid.len() as u64);
    for p in grid.points() {
        h.write_f64(p.x);
        h.write_f64(p.y);
    }
    for &o in grid.owners() {
        h.write_u64(o as u64);
    }
    h.finish()
}

/// The identity of a compiled plan: mesh content, grid content, field
/// degree, kernel parameters, and storage layout. `Eq + Hash`, so it is
/// directly usable as a map key; equality of keys implies bit-identical
/// compiled plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// [`mesh_content_hash`] of the mesh.
    pub mesh_hash: u64,
    /// [`grid_content_hash`] of the evaluation grid.
    pub grid_hash: u64,
    /// Field polynomial degree `p`.
    pub degree: usize,
    /// Resolved kernel smoothness `k` (the explicit override, or `p`).
    pub smoothness: usize,
    /// IEEE-754 bit pattern of the kernel width factor `h_factor` (the
    /// realized `h` is `h_factor * max_edge`, already pinned by the mesh
    /// hash).
    pub h_factor_bits: u64,
    /// Storage order of the compiled CSR.
    pub layout: Layout,
    /// The *resolved* SIMD ISA of the compile-time quadrature reduction
    /// (not the requested policy: `Auto` and a `Forced` width that resolve
    /// to the same ISA compile bit-identical weights, so they must share a
    /// key — while `Scalar` vs a vector ISA differ at the FMA level and
    /// must not).
    pub simd: SimdIsa,
}

impl PlanKey {
    /// Builds the key for compiling `degree`-field plans over `mesh` at
    /// `grid`'s points under `options`. Costs one streaming pass over the
    /// mesh and grid buffers (microseconds at the sizes this repo runs).
    pub fn new(
        mesh: &TriMesh,
        grid: &ComputationGrid,
        degree: usize,
        options: &CompileOptions,
    ) -> Self {
        Self {
            mesh_hash: mesh_content_hash(mesh),
            grid_hash: grid_content_hash(grid),
            degree,
            smoothness: options.smoothness.unwrap_or(degree),
            h_factor_bits: options.h_factor.to_bits(),
            layout: options.layout,
            simd: options.simd.resolve(),
        }
    }

    /// A stable 64-bit digest of the whole key — the shard selector and
    /// on-disk file name of the serve-layer cache.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(self.mesh_hash);
        h.write_u64(self.grid_hash);
        h.write_u64(self.degree as u64);
        h.write_u64(self.smoothness as u64);
        h.write_u64(self.h_factor_bits);
        h.write_u64(self.layout as u64);
        h.write_u64(self.simd as u64);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ustencil_core::ComputationGrid;
    use ustencil_mesh::{generate_mesh, MeshClass};

    fn key_for(seed: u64) -> PlanKey {
        let mesh = generate_mesh(MeshClass::LowVariance, 120, seed);
        let grid = ComputationGrid::quadrature_points(&mesh, 1);
        PlanKey::new(&mesh, &grid, 1, &CompileOptions::default())
    }

    #[test]
    fn equal_content_means_equal_key() {
        assert_eq!(key_for(7), key_for(7));
        assert_eq!(key_for(7).digest(), key_for(7).digest());
    }

    #[test]
    fn same_shape_different_content_means_different_key() {
        // Same triangle count and grid size, different vertex positions:
        // the exact aliasing the old shape check could not see.
        let a = generate_mesh(MeshClass::LowVariance, 120, 1);
        let b = generate_mesh(MeshClass::LowVariance, 120, 2);
        assert_eq!(a.n_triangles(), b.n_triangles());
        let ga = ComputationGrid::quadrature_points(&a, 1);
        let gb = ComputationGrid::quadrature_points(&b, 1);
        let ka = PlanKey::new(&a, &ga, 1, &CompileOptions::default());
        let kb = PlanKey::new(&b, &gb, 1, &CompileOptions::default());
        assert_ne!(ka, kb);
        assert_ne!(ka.digest(), kb.digest());
    }

    #[test]
    fn kernel_and_layout_changes_change_the_key() {
        let mesh = generate_mesh(MeshClass::LowVariance, 120, 3);
        let grid = ComputationGrid::quadrature_points(&mesh, 1);
        let base = PlanKey::new(&mesh, &grid, 1, &CompileOptions::default());
        let smoother = PlanKey::new(
            &mesh,
            &grid,
            1,
            &CompileOptions {
                smoothness: Some(2),
                ..CompileOptions::default()
            },
        );
        assert_ne!(base, smoother);
        let narrower = PlanKey::new(
            &mesh,
            &grid,
            1,
            &CompileOptions {
                h_factor: 0.5,
                ..CompileOptions::default()
            },
        );
        assert_ne!(base, narrower);
        let reordered = PlanKey::new(
            &mesh,
            &grid,
            1,
            &CompileOptions {
                layout: Layout::Hilbert,
                ..CompileOptions::default()
            },
        );
        assert_ne!(base, reordered);
        // Parallelism and instrumentation do not change the compiled
        // weights, so they must not change the key.
        let parallel = PlanKey::new(
            &mesh,
            &grid,
            1,
            &CompileOptions {
                parallel: false,
                n_blocks: 3,
                instrument: true,
                ..CompileOptions::default()
            },
        );
        assert_eq!(base, parallel);
    }

    #[test]
    fn simd_key_tracks_resolved_isa_not_policy() {
        use ustencil_core::SimdPolicy;
        let mesh = generate_mesh(MeshClass::LowVariance, 120, 3);
        let grid = ComputationGrid::quadrature_points(&mesh, 1);
        let auto = PlanKey::new(&mesh, &grid, 1, &CompileOptions::default());
        let scalar = PlanKey::new(
            &mesh,
            &grid,
            1,
            &CompileOptions {
                simd: SimdPolicy::Scalar,
                ..CompileOptions::default()
            },
        );
        // A forced width that resolves to the same ISA as Auto compiles
        // bit-identical weights, so the keys must collapse.
        let auto_isa = SimdPolicy::Auto.resolve();
        for policy in SimdPolicy::ALL {
            let key = PlanKey::new(
                &mesh,
                &grid,
                1,
                &CompileOptions {
                    simd: policy,
                    ..CompileOptions::default()
                },
            );
            assert_eq!(key.simd, policy.resolve());
            if policy.resolve() == auto_isa {
                assert_eq!(key, auto, "{policy:?}");
            }
        }
        // On hosts where Auto picks a vector ISA, Scalar must get its own
        // key (different compiled weights at the FMA level).
        if auto_isa != ustencil_core::SimdIsa::Scalar {
            assert_ne!(auto, scalar);
            assert_ne!(auto.digest(), scalar.digest());
        } else {
            assert_eq!(auto, scalar);
        }
    }
}
