//! Plan compilation: run the per-point discovery machinery once, folding
//! quadrature × kernel × basis into per-mode weights.
//!
//! The weight of entry `(point r, element e)` for mode `m` is (Eq. 2)
//!
//! ```text
//! w[r][e][m] = Σ_cells Σ_subtris |J| Σ_q ω_q · K_h(p_q - x_r) · φ_m(p_q)
//! ```
//!
//! where the cells are the stencil lattice squares clipped against (a
//! periodic image of) element `e`, the sub-triangles come from fan
//! triangulation of each clip polygon, and `φ_m` is evaluated through the
//! same monomial path the direct engine uses: accumulate monomial-power
//! sums `Σ ω_q K u^a v^b` first, then transform monomial → modal with the
//! basis change matrix once per entry. This mirrors `ElementData::eval`
//! term for term, so plan applies agree with direct evaluation to rounding.

use crate::plan::EvalPlan;
use rayon::prelude::*;
use std::time::Instant;
use ustencil_core::integrate::{
    flops_per_clip, flops_per_quad_eval, needed_shifts, IntegrationCtx, MAX_MODES,
};
use ustencil_core::{BlockStats, ComputationGrid, Metrics, Probe};
use ustencil_dg::DubinerBasis;
use ustencil_geometry::{clip_triangle_rect, fan_triangulate, Aabb, Point2, Triangle, GEOM_EPS};
use ustencil_mesh::TriMesh;
use ustencil_quadrature::TriangleRule;
use ustencil_siac::Stencil2d;
use ustencil_spatial::{Boundary, TriangleGrid};
use ustencil_trace::Tracer;

/// Configuration of a plan compilation. Mirrors the relevant subset of
/// [`PostProcessor`](ustencil_core::PostProcessor) settings so a plan can
/// reproduce exactly the kernel/quadrature setup a direct run would use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompileOptions {
    /// Explicit kernel smoothness `k` (default: the field degree `p`).
    pub smoothness: Option<usize>,
    /// Kernel width factor, `h = h_factor * max_edge` (default 1.0).
    pub h_factor: f64,
    /// Concurrent point blocks during compilation (default 16).
    pub n_blocks: usize,
    /// Whether to compile blocks on worker threads (default true).
    pub parallel: bool,
    /// Whether to record phase spans and distribution probes (default
    /// false).
    pub instrument: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        Self {
            smoothness: None,
            h_factor: 1.0,
            n_blocks: 16,
            parallel: true,
            instrument: false,
        }
    }
}

impl CompileOptions {
    /// Adopts the kernel/parallelism choices of a processor snapshot
    /// ([`PostProcessor::settings`](ustencil_core::PostProcessor::settings)).
    pub fn from_settings(s: &ustencil_core::ProcessorSettings) -> Self {
        Self {
            smoothness: s.smoothness,
            h_factor: s.h_factor,
            n_blocks: s.n_blocks,
            parallel: s.parallel,
            instrument: s.instrument,
        }
    }
}

/// One block's share of the CSR arrays, concatenated after the join.
struct BlockOut {
    /// Entries per row, for the row-pointer prefix sum.
    row_counts: Vec<u32>,
    cols: Vec<u32>,
    weights: Vec<f64>,
    stats: BlockStats,
}

/// Element geometry the weight accumulation needs: the same inverse affine
/// map `(u, v) = M (p - origin)` the engine's `ElementData` caches.
struct ElemGeom {
    tri: Triangle,
    bbox: Aabb,
    inv: [f64; 4],
    origin: Point2,
}

impl ElemGeom {
    fn gather(mesh: &TriMesh, e: usize) -> Self {
        let tri = mesh.triangle(e);
        let e1 = tri.b - tri.a;
        let e2 = tri.c - tri.a;
        let det = e1.cross(e2);
        Self {
            tri,
            bbox: tri.aabb(),
            inv: [e2.y / det, -e2.x / det, -e1.y / det, e1.x / det],
            origin: tri.a,
        }
    }
}

impl EvalPlan {
    /// Compiles a plan for degree-`degree` fields over `mesh`, evaluated at
    /// `grid`'s points.
    ///
    /// # Panics
    /// Panics when the stencil is wider than the periodic unit domain (the
    /// `(3k + 1) h <= 1` requirement, as in `PostProcessor::run`) or the
    /// degree exceeds the engine's mode budget.
    pub fn compile(
        mesh: &TriMesh,
        grid: &ComputationGrid,
        degree: usize,
        options: &CompileOptions,
    ) -> EvalPlan {
        let start = Instant::now();
        let tracer = Tracer::new(options.instrument);
        let k = options.smoothness.unwrap_or(degree);
        let h = options.h_factor * mesh.max_edge_length();
        let basis = DubinerBasis::new(degree);
        let n_modes = basis.n_modes();
        assert!(n_modes <= MAX_MODES, "degree {degree} exceeds mode budget");

        let (stencil, rule) = {
            let _span = tracer.span("setup.kernel");
            let stencil = Stencil2d::symmetric(k, h);
            assert!(
                stencil.width() <= 1.0 + 1e-12,
                "stencil width {} exceeds the periodic unit domain; \
                 use a larger mesh or a smaller h_factor",
                stencil.width()
            );
            let rule = TriangleRule::with_strength(IntegrationCtx::required_strength(k, degree));
            (stencil, rule)
        };
        let tri_grid = {
            let _span = tracer.span("build.tri_grid");
            TriangleGrid::build(mesh, Boundary::Periodic)
        };

        let n = grid.len();
        let n_blocks = options.n_blocks.clamp(1, n.max(1));
        let bounds: Vec<(usize, usize)> = (0..n_blocks)
            .map(|b| (b * n / n_blocks, (b + 1) * n / n_blocks))
            .collect();

        let block = |s: usize, e: usize| -> BlockOut {
            let block_start = Instant::now();
            let mut probe = Probe::new(options.instrument);
            let mut out = compile_block(
                mesh, grid, &basis, &stencil, &rule, &tri_grid, s, e, &mut probe,
            );
            out.stats.wall_ns = block_start.elapsed().as_nanos() as u64;
            out.stats.points = (e - s) as u64;
            out.stats.probe = probe;
            out
        };

        let blocks: Vec<BlockOut> = {
            let _span = tracer.span("compile.rows");
            if options.parallel {
                bounds.par_iter().map(|&(s, e)| block(s, e)).collect()
            } else {
                bounds.iter().map(|&(s, e)| block(s, e)).collect()
            }
        };

        let _span = tracer.span("assemble.csr");
        let nnz: usize = blocks.iter().map(|b| b.cols.len()).sum();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut cols = Vec::with_capacity(nnz);
        let mut weights = Vec::with_capacity(nnz * n_modes);
        row_ptr.push(0u64);
        let mut acc = 0u64;
        for b in &blocks {
            for &c in &b.row_counts {
                acc += c as u64;
                row_ptr.push(acc);
            }
            cols.extend_from_slice(&b.cols);
            weights.extend_from_slice(&b.weights);
        }
        drop(_span);
        let build_metrics = Metrics::sum(blocks.iter().map(|b| &b.stats.metrics));

        EvalPlan {
            degree,
            smoothness: k,
            n_modes,
            n_elements: mesh.n_triangles(),
            h,
            row_ptr,
            cols,
            weights,
            build_wall: start.elapsed(),
            build_spans: tracer.into_records(),
            build_metrics,
        }
    }
}

/// Compiles rows `[start, end)`, returning the block's CSR slices.
#[allow(clippy::too_many_arguments)]
fn compile_block(
    mesh: &TriMesh,
    grid: &ComputationGrid,
    basis: &DubinerBasis,
    stencil: &Stencil2d,
    rule: &TriangleRule,
    tri_grid: &TriangleGrid,
    start: usize,
    end: usize,
    probe: &mut Probe,
) -> BlockOut {
    let mut metrics = Metrics::default();
    let n_modes = basis.n_modes();
    let half_width = stencil.width() / 2.0;
    let exps = basis.monomial_exponents();
    let mut row_counts = Vec::with_capacity(end - start);
    let mut cols = Vec::new();
    let mut weights = Vec::new();
    let mut candidates: Vec<u32> = Vec::with_capacity(64);

    for i in start..end {
        let center = grid.points()[i];
        let support = stencil.support_rect(center);

        metrics.cells_visited += tri_grid.candidate_cells(center, half_width) as u64;
        candidates.clear();
        tri_grid.for_each_candidate(center, half_width, |id| candidates.push(id));
        probe.record_candidates(candidates.len() as u64);

        let mut row_entries = 0u32;
        for &id in &candidates {
            metrics.intersection_tests += 1;
            let geom = ElemGeom::gather(mesh, id as usize);
            let mut mono_w = [0.0f64; MAX_MODES];
            let mut hit = false;
            let subregions_before = metrics.subregions;
            for shift in needed_shifts(&support) {
                let bb = Aabb::new(geom.bbox.min + shift, geom.bbox.max + shift);
                if support.intersects_aabb(&bb) {
                    let quads_before = metrics.quad_evals;
                    hit |= accumulate_element(
                        stencil,
                        rule,
                        exps,
                        n_modes,
                        center,
                        &geom,
                        shift,
                        &mut mono_w,
                        &mut metrics,
                    );
                    probe.record_quad_points(metrics.quad_evals - quads_before);
                }
            }
            probe.record_subregions(metrics.subregions - subregions_before);
            metrics.true_intersections += hit as u64;
            if hit {
                // Monomial → modal: the transpose of the basis change
                // `ElementData::gather` applies to coefficients.
                cols.push(id);
                for m in 0..n_modes {
                    let mc = basis.monomial_coefficients(m);
                    let mut w = 0.0;
                    for (slot, &c) in mc.iter().enumerate().take(n_modes) {
                        w += c * mono_w[slot];
                    }
                    weights.push(w);
                }
                row_entries += 1;
            }
        }
        row_counts.push(row_entries);
        metrics.solution_writes += 1;
    }
    metrics.partial_slots += (end - start) as u64;

    BlockOut {
        row_counts,
        cols,
        weights,
        stats: BlockStats::bare(metrics),
    }
}

/// Accumulates one periodic image's monomial-power weights, mirroring
/// `integrate_element_stencil` cell by cell: clip each overlapped lattice
/// square, fan-triangulate, and add `|J| Σ_q ω_q K_h u^a v^b` per slot.
/// Returns whether any square truly intersected the image.
#[allow(clippy::too_many_arguments)]
fn accumulate_element(
    stencil: &Stencil2d,
    rule: &TriangleRule,
    exps: &[(usize, usize)],
    n_modes: usize,
    center: Point2,
    geom: &ElemGeom,
    shift: ustencil_geometry::Vec2,
    mono_w: &mut [f64; MAX_MODES],
    metrics: &mut Metrics,
) -> bool {
    let h = stencil.h();
    let n_cells = stencil.cells_per_side();
    let (lo, _) = stencil.kernel().support();
    let shifted = geom.tri.translate(shift);
    let bbox = Aabb::new(geom.bbox.min + shift, geom.bbox.max + shift);

    // Lattice cell range overlapped by the shifted element's bbox (same
    // arithmetic as the direct integration kernel).
    let x_base = center.x + lo * h;
    let y_base = center.y + lo * h;
    let i0 = (((bbox.min.x - x_base) / h).floor().max(0.0)) as usize;
    let j0 = (((bbox.min.y - y_base) / h).floor().max(0.0)) as usize;
    if i0 >= n_cells || j0 >= n_cells {
        return false;
    }
    if bbox.max.x < x_base || bbox.max.y < y_base {
        return false;
    }
    let i1 = ((((bbox.max.x - x_base) / h).floor()) as usize).min(n_cells - 1);
    let j1 = ((((bbox.max.y - y_base) / h).floor()) as usize).min(n_cells - 1);

    let k = stencil.kernel().smoothness();
    let eval_flops = flops_per_quad_eval(k, n_modes);
    let nq = rule.len() as u64;
    let points = rule.points();
    let q_weights = rule.weights();

    let mut any = false;
    for j in j0..=j1 {
        for i in i0..=i1 {
            let cell = stencil.cell_rect(center, i, j);
            metrics.cell_clips += 1;
            metrics.flops += flops_per_clip();
            let poly = clip_triangle_rect(&shifted, &cell);
            if poly.is_degenerate(GEOM_EPS) {
                continue;
            }
            any = true;
            for sub in fan_triangulate(&poly) {
                metrics.subregions += 1;
                metrics.quad_evals += nq;
                metrics.flops += nq * eval_flops;
                let jac = sub.jacobian().abs();
                if jac == 0.0 {
                    continue;
                }
                // Per-sub-triangle accumulator scaled by |J| afterwards,
                // matching `integrate_physical`'s summation order.
                let mut local = [0.0f64; MAX_MODES];
                for (&(u, v), &w) in points.iter().zip(q_weights) {
                    let p = sub.map_from_unit(u, v);
                    let wk = w * stencil.eval(center, p);
                    let d = (p - shift) - geom.origin;
                    let uu = geom.inv[0] * d.x + geom.inv[1] * d.y;
                    let vv = geom.inv[2] * d.x + geom.inv[3] * d.y;
                    let up = [1.0, uu, uu * uu, uu * uu * uu];
                    let vp = [1.0, vv, vv * vv, vv * vv * vv];
                    for (slot, &(a, b)) in exps.iter().enumerate().take(n_modes) {
                        local[slot] += wk * up[a] * vp[b];
                    }
                }
                for (slot, &l) in local.iter().enumerate().take(n_modes) {
                    mono_w[slot] += jac * l;
                }
            }
        }
    }
    any
}
