//! Plan compilation: run the per-point discovery machinery once, folding
//! quadrature × kernel × basis into per-mode weights.
//!
//! The weight of entry `(point r, element e)` for mode `m` is (Eq. 2)
//!
//! ```text
//! w[r][e][m] = Σ_cells Σ_subtris |J| Σ_q ω_q · K_h(p_q - x_r) · φ_m(p_q)
//! ```
//!
//! where the cells are the stencil lattice squares clipped against (a
//! periodic image of) element `e`, the sub-triangles come from fan
//! triangulation of each clip polygon, and `φ_m` is evaluated through the
//! same monomial path the direct engine uses: accumulate monomial-power
//! sums `Σ ω_q K u^a v^b` first, then transform monomial → modal with the
//! basis change matrix once per entry. This mirrors `ElementData::eval`
//! term for term, so plan applies agree with direct evaluation to rounding.

use crate::plan::EvalPlan;
use rayon::prelude::*;
use std::time::Instant;
use ustencil_core::integrate::{ElementData, IntegrationCtx, MAX_MODES};
use ustencil_core::kernel::{AccumulateWeights, Scratch, StencilTraversal};
use ustencil_core::{BlockStats, ComputationGrid, Layout, Metrics, Probe, SimdIsa, SimdPolicy};
use ustencil_dg::DubinerBasis;
use ustencil_mesh::TriMesh;
use ustencil_quadrature::TriangleRule;
use ustencil_siac::Stencil2d;
use ustencil_spatial::{
    hilbert_order_elements, hilbert_order_points, Boundary, Permutation, TriangleGrid,
};
use ustencil_trace::Tracer;

/// Configuration of a plan compilation. Mirrors the relevant subset of
/// [`PostProcessor`](ustencil_core::PostProcessor) settings so a plan can
/// reproduce exactly the kernel/quadrature setup a direct run would use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompileOptions {
    /// Explicit kernel smoothness `k` (default: the field degree `p`).
    pub smoothness: Option<usize>,
    /// Kernel width factor, `h = h_factor * max_edge` (default 1.0).
    pub h_factor: f64,
    /// Concurrent point blocks during compilation (default 16).
    pub n_blocks: usize,
    /// Whether to compile blocks on worker threads (default true).
    pub parallel: bool,
    /// Whether to record phase spans and distribution probes (default
    /// false).
    pub instrument: bool,
    /// Storage order of the compiled CSR (default [`Layout::Natural`]).
    /// Hilbert layouts emit rows in Hilbert point order with columns
    /// compacted to the element permutation; row *contents* are
    /// bit-identical to the natural plan's corresponding rows, so a
    /// reordered apply is bitwise equal to a natural apply after the
    /// inverse permutation.
    pub layout: Layout,
    /// SIMD policy of the quadrature reduction during compilation (default
    /// [`SimdPolicy::Auto`]). The resolved ISA perturbs the compiled
    /// weights at the FMA-contraction level (`≤ 1e-12` relative), so it is
    /// part of the plan's content identity ([`PlanKey`](crate::PlanKey));
    /// [`SimdPolicy::Scalar`] reproduces pre-SIMD weights bitwise.
    pub simd: SimdPolicy,
}

impl Default for CompileOptions {
    fn default() -> Self {
        Self {
            smoothness: None,
            h_factor: 1.0,
            n_blocks: 16,
            parallel: true,
            instrument: false,
            layout: Layout::Natural,
            simd: SimdPolicy::Auto,
        }
    }
}

impl CompileOptions {
    /// Adopts the kernel/parallelism choices of a processor snapshot
    /// ([`PostProcessor::settings`](ustencil_core::PostProcessor::settings)).
    pub fn from_settings(s: &ustencil_core::ProcessorSettings) -> Self {
        Self {
            smoothness: s.smoothness,
            h_factor: s.h_factor,
            n_blocks: s.n_blocks,
            parallel: s.parallel,
            instrument: s.instrument,
            layout: s.layout,
            simd: s.simd,
        }
    }
}

/// One block's share of the CSR arrays, concatenated after the join. Also
/// the unit of row recompilation in the incremental patch path
/// (`crate::delta`), which compiles explicit point lists through the same
/// [`compile_block`] the full compile uses — identical per-row call
/// sequence, hence bit-identical rows.
pub(crate) struct BlockOut {
    /// Entries per row, for the row-pointer prefix sum.
    pub(crate) row_counts: Vec<u32>,
    pub(crate) cols: Vec<u32>,
    pub(crate) weights: Vec<f64>,
    pub(crate) stats: BlockStats,
}

impl EvalPlan {
    /// Compiles a plan for degree-`degree` fields over `mesh`, evaluated at
    /// `grid`'s points.
    ///
    /// # Panics
    /// Panics when the stencil is wider than the periodic unit domain (the
    /// `(3k + 1) h <= 1` requirement, as in `PostProcessor::run`) or the
    /// degree exceeds the engine's mode budget.
    pub fn compile(
        mesh: &TriMesh,
        grid: &ComputationGrid,
        degree: usize,
        options: &CompileOptions,
    ) -> EvalPlan {
        let start = Instant::now();
        let tracer = Tracer::new(options.instrument);
        let k = options.smoothness.unwrap_or(degree);
        let h = options.h_factor * mesh.max_edge_length();
        let basis = DubinerBasis::new(degree);
        let n_modes = basis.n_modes();
        assert!(n_modes <= MAX_MODES, "degree {degree} exceeds mode budget");
        // Resolve the SIMD policy once so every block — and every patch
        // recompile under the same options — runs the same reduction ISA.
        let simd_isa = options.simd.resolve();

        let (stencil, rule) = {
            let _span = tracer.span("setup.kernel");
            let stencil = Stencil2d::symmetric(k, h);
            assert!(
                stencil.width() <= 1.0 + 1e-12,
                "stencil width {} exceeds the periodic unit domain; \
                 use a larger mesh or a smaller h_factor",
                stencil.width()
            );
            let rule = TriangleRule::with_strength(IntegrationCtx::required_strength(k, degree));
            (stencil, rule)
        };
        let tri_grid = {
            let _span = tracer.span("build.tri_grid");
            TriangleGrid::build(mesh, Boundary::Periodic)
        };

        // Hilbert layouts: rows are compiled in Hilbert point order and
        // columns renumbered to Hilbert element slots. The traversal itself
        // still runs over the original mesh through the same tri_grid, so
        // each row's weights (and their within-row entry order) are
        // bit-identical to the natural plan's row for the same point.
        let perms: Option<(Permutation, Permutation)> = if options.layout.reorders() {
            let _span = tracer.span("build.hilbert_order");
            Some((
                hilbert_order_points(grid.points()),
                hilbert_order_elements(mesh),
            ))
        } else {
            None
        };

        let n = grid.len();
        let n_blocks = options.n_blocks.clamp(1, n.max(1));
        let bounds: Vec<(usize, usize)> = (0..n_blocks)
            .map(|b| (b * n / n_blocks, (b + 1) * n / n_blocks))
            .collect();

        // Row emission order as explicit grid point ids: natural order, or
        // the Hilbert point permutation for reordered layouts.
        let order: Vec<u32> = match perms.as_ref() {
            Some((pp, _)) => pp.forward().to_vec(),
            None => (0..n as u32).collect(),
        };
        let block = |s: usize, e: usize| -> BlockOut {
            let block_start = Instant::now();
            let mut probe = Probe::new(options.instrument);
            let mut out = compile_block(
                mesh,
                grid,
                &basis,
                &stencil,
                &rule,
                &tri_grid,
                &order[s..e],
                simd_isa,
                &mut probe,
            );
            if let Some((_, ep)) = &perms {
                // Renumber columns to permuted element slots (values only;
                // entry order and weights are untouched).
                for c in &mut out.cols {
                    *c = ep.inverse()[*c as usize];
                }
            }
            out.stats.wall_ns = block_start.elapsed().as_nanos() as u64;
            out.stats.points = (e - s) as u64;
            out.stats.probe = probe;
            out
        };

        let blocks: Vec<BlockOut> = {
            let _span = tracer.span("compile.rows");
            if options.parallel {
                bounds.par_iter().map(|&(s, e)| block(s, e)).collect()
            } else {
                bounds.iter().map(|&(s, e)| block(s, e)).collect()
            }
        };

        let _span = tracer.span("assemble.csr");
        let nnz: usize = blocks.iter().map(|b| b.cols.len()).sum();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut cols = Vec::with_capacity(nnz);
        let mut weights = Vec::with_capacity(nnz * n_modes);
        row_ptr.push(0u64);
        let mut acc = 0u64;
        for b in &blocks {
            for &c in &b.row_counts {
                acc += c as u64;
                row_ptr.push(acc);
            }
            cols.extend_from_slice(&b.cols);
            weights.extend_from_slice(&b.weights);
        }
        drop(_span);
        let build_metrics = Metrics::sum(blocks.iter().map(|b| &b.stats.metrics));

        let (row_perm, col_perm) = match perms {
            None => (Vec::new(), Vec::new()),
            Some((pp, ep)) => (pp.forward().to_vec(), ep.forward().to_vec()),
        };
        let mut plan = EvalPlan {
            degree,
            smoothness: k,
            n_modes,
            n_elements: mesh.n_triangles(),
            h,
            row_ptr,
            cols,
            weights,
            build_wall: start.elapsed(),
            build_spans: Vec::new(),
            build_metrics,
            layout: options.layout,
            row_perm,
            col_perm,
            tiles: Vec::new(),
        };
        if options.layout.blocked() {
            let _span = tracer.span("build.tiles");
            plan.tiles = plan.build_tiles();
        }
        plan.build_wall = start.elapsed();
        plan.build_spans = tracer.into_records();
        plan
    }
}

/// Compiles one CSR row per entry of `points` (grid point ids, in row
/// emission order), returning the block's CSR slices. Both the full compile
/// and the incremental patch path (`crate::delta`) funnel through this
/// function, so a recompiled row replays exactly the call sequence of its
/// fresh-compile counterpart — the basis of the patch path's bitwise
/// guarantee.
#[allow(clippy::too_many_arguments)]
pub(crate) fn compile_block(
    mesh: &TriMesh,
    grid: &ComputationGrid,
    basis: &DubinerBasis,
    stencil: &Stencil2d,
    rule: &TriangleRule,
    tri_grid: &TriangleGrid,
    points: &[u32],
    simd: SimdIsa,
    probe: &mut Probe,
) -> BlockOut {
    let mut metrics = Metrics::default();
    let n_modes = basis.n_modes();
    let trav =
        StencilTraversal::new(stencil, rule, basis.monomial_exponents(), n_modes).with_simd(simd);
    let mut row_counts = Vec::with_capacity(points.len());
    let mut scratch = Scratch::new();
    let mut sink = AccumulateWeights::new(basis);

    for &point in points {
        let center = grid.points()[point as usize];
        sink.begin_row();
        // Same traversal as a direct per-point query, but the weights sink
        // keeps the quadrature symbolic; no element coefficients are read
        // (`elem_load_values = 0`), only geometry is gathered.
        trav.point_query(
            center,
            tri_grid,
            |e| ElementData::gather_geometry(mesh, e, n_modes),
            0,
            &mut scratch,
            &mut sink,
            &mut metrics,
            probe,
        );
        row_counts.push(sink.row_entries());
        metrics.solution_writes += 1;
    }
    metrics.partial_slots += points.len() as u64;

    let (cols, weights) = sink.into_csr();
    BlockOut {
        row_counts,
        cols,
        weights,
        stats: BlockStats::bare(metrics),
    }
}
