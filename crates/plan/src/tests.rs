//! Unit tests for plan compilation, application, caching, and
//! serialization (cross-scheme equivalence properties live in the
//! workspace-level `tests/plan_equivalence_prop.rs`).

use crate::{
    ApplyOptions, CachedPlan, CompileOptions, DirtySet, EvalPlan, PatchError, PlanExt, SCHEME_LABEL,
};
use ustencil_core::{ComputationGrid, Layout, PostProcessor, Scheme, SimdPolicy};
use ustencil_dg::project_l2;
use ustencil_mesh::{generate_mesh, MeshClass, TriMesh};

fn setup(n_tri: usize, p: usize, seed: u64) -> (TriMesh, ustencil_dg::DgField, ComputationGrid) {
    let mesh = generate_mesh(MeshClass::LowVariance, n_tri, seed);
    let field = project_l2(&mesh, p, |x, y| 0.2 + x - 0.5 * y + x * y, 2);
    let grid = ComputationGrid::quadrature_points(&mesh, p);
    (mesh, field, grid)
}

fn small_options() -> CompileOptions {
    CompileOptions {
        h_factor: 0.5,
        parallel: false,
        ..CompileOptions::default()
    }
}

#[test]
fn constant_field_is_preserved() {
    let (mesh, _, grid) = setup(150, 1, 7);
    let field = project_l2(&mesh, 1, |_, _| 1.75, 0);
    let plan = EvalPlan::compile(&mesh, &grid, 1, &small_options());
    let sol = plan.apply(&field);
    for (i, v) in sol.values.iter().enumerate() {
        assert!((v - 1.75).abs() < 1e-9, "point {i}: {v}");
    }
}

#[test]
fn plan_matches_direct_run() {
    let (mesh, field, grid) = setup(200, 2, 11);
    let processor = PostProcessor::new(Scheme::PerPoint)
        .h_factor(0.5)
        .parallel(false);
    let direct = processor.run(&mesh, &field, &grid);
    let plan = processor.compile_plan(&mesh, field.degree(), &grid);
    let sol = plan.apply_with(&field, &ApplyOptions::default());
    let diff = sol.max_abs_diff(&direct.values);
    assert!(diff <= 1e-12, "plan vs direct differ by {diff}");
    assert_eq!(plan.rows(), grid.len());
    assert!(plan.nnz() > 0);
    assert_eq!(plan.stencil_width(), direct.stencil_width);
}

#[test]
fn plan_shape_and_stats_are_consistent() {
    let (mesh, field, grid) = setup(120, 1, 3);
    let plan = EvalPlan::compile(&mesh, &grid, 1, &small_options());
    assert_eq!(plan.degree(), 1);
    assert_eq!(plan.smoothness(), 1);
    assert_eq!(plan.n_modes(), 3);
    assert_eq!(plan.n_elements(), mesh.n_triangles());
    let stats = plan.stats();
    assert_eq!(stats.rows, grid.len() as u64);
    assert_eq!(stats.nnz, plan.nnz() as u64);
    assert_eq!(
        stats.bytes,
        (8 * (plan.rows() + 1) + 4 * plan.nnz() + 8 * plan.nnz() * plan.n_modes()) as u64
    );
    assert!(stats.build_ms > 0.0);
    // The compile pass counted real geometric work.
    let bm = plan.build_metrics();
    assert!(bm.cell_clips > 0);
    assert!(bm.quad_evals > 0);
    assert!(bm.true_intersections >= plan.nnz() as u64);
    // Every stored column is a valid element.
    let sol = plan.apply(&field);
    assert_eq!(sol.values.len(), grid.len());
}

#[test]
fn parallel_and_sequential_compile_agree_exactly() {
    let (mesh, _, grid) = setup(150, 1, 9);
    let seq = EvalPlan::compile(&mesh, &grid, 1, &small_options());
    let par = EvalPlan::compile(
        &mesh,
        &grid,
        1,
        &CompileOptions {
            parallel: true,
            n_blocks: 7,
            ..small_options()
        },
    );
    // Blocking only changes who computes each row, not what is computed:
    // the CSR arrays must be bit-identical.
    assert_eq!(seq.row_ptr, par.row_ptr);
    assert_eq!(seq.cols, par.cols);
    assert_eq!(
        seq.weights.iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
        par.weights.iter().map(|w| w.to_bits()).collect::<Vec<_>>()
    );
}

#[test]
fn apply_variants_agree() {
    let (mesh, field, grid) = setup(150, 1, 5);
    let plan = EvalPlan::compile(&mesh, &grid, 1, &small_options());
    let a = plan.apply(&field);
    let b = plan.apply_with(
        &field,
        &ApplyOptions {
            n_blocks: 3,
            parallel: false,
            instrument: true,
            ..ApplyOptions::default()
        },
    );
    let mut c = vec![0.0; plan.rows()];
    plan.apply_into(&field, &mut c);
    for ((av, bv), cv) in a.values.iter().zip(&b.values).zip(&c) {
        assert_eq!(av.to_bits(), bv.to_bits());
        assert_eq!(av.to_bits(), cv.to_bits());
    }
    // Batched applies are per-field applies.
    let fields = vec![field.clone(), field];
    let many = plan.apply_many(&fields, &ApplyOptions::default());
    assert_eq!(many.len(), 2);
    assert_eq!(many[0].values, a.values);
    assert_eq!(many[1].values, a.values);
}

#[test]
fn row_partition_apply_is_bitwise_the_full_apply() {
    let (mesh, field, grid) = setup(150, 2, 17);
    let plan = EvalPlan::compile(&mesh, &grid, 2, &small_options());
    let full = plan.apply_with(
        &field,
        &ApplyOptions {
            n_blocks: 4,
            parallel: false,
            instrument: false,
            ..ApplyOptions::default()
        },
    );
    // An arbitrary partition of the rows (the dist runtime's interior /
    // frontier split is one instance): applying the two halves into one
    // buffer must reproduce the full apply bit for bit, because each row
    // is an independent dot product written exactly once.
    let (evens, odds): (Vec<u32>, Vec<u32>) = (0..plan.rows() as u32).partition(|r| r % 2 == 0);
    let mut out = vec![0.0; plan.rows()];
    let stats_a = plan.apply_rows_into(&evens, &field, &mut out, 3, SimdPolicy::Auto);
    let stats_b = plan.apply_rows_into(&odds, &field, &mut out, 3, SimdPolicy::Auto);
    for (a, b) in full.values.iter().zip(&out) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    // Work counters partition too: the two subsets together count exactly
    // the full apply's writes, loads, and flops.
    let sum = |stats: &[ustencil_core::BlockStats], f: fn(&ustencil_core::BlockStats) -> u64| {
        stats.iter().map(f).sum::<u64>()
    };
    let writes =
        sum(&stats_a, |b| b.metrics.solution_writes) + sum(&stats_b, |b| b.metrics.solution_writes);
    let loads =
        sum(&stats_a, |b| b.metrics.elem_data_loads) + sum(&stats_b, |b| b.metrics.elem_data_loads);
    let flops = sum(&stats_a, |b| b.metrics.flops) + sum(&stats_b, |b| b.metrics.flops);
    assert_eq!(writes, full.metrics.solution_writes);
    assert_eq!(loads, full.metrics.elem_data_loads);
    assert_eq!(flops, full.metrics.flops);
    // Empty subset: no blocks, no work.
    assert!(plan
        .apply_rows_into(&[], &field, &mut out, 3, SimdPolicy::Auto)
        .is_empty());
}

#[test]
fn simd_policies_agree_on_plan_compile_and_apply() {
    // Scalar-compiled + scalar-applied is the pre-SIMD reference; every
    // policy (compile and apply both dispatched through it) must agree to
    // 1e-12 while reporting identical modeled work counters.
    for (n_tri, p, seed) in [(150, 1, 47), (180, 2, 53)] {
        let (mesh, field, grid) = setup(n_tri, p, seed);
        let scalar_plan = EvalPlan::compile(
            &mesh,
            &grid,
            p,
            &CompileOptions {
                simd: SimdPolicy::Scalar,
                ..small_options()
            },
        );
        let scalar = scalar_plan.apply_with(
            &field,
            &ApplyOptions {
                simd: SimdPolicy::Scalar,
                ..ApplyOptions::default()
            },
        );
        assert_eq!(scalar.simd.isa, "scalar");
        assert_eq!(scalar.simd.lanes, 1);
        for policy in SimdPolicy::ALL {
            let plan = EvalPlan::compile(
                &mesh,
                &grid,
                p,
                &CompileOptions {
                    simd: policy,
                    ..small_options()
                },
            );
            // The ISA perturbs weights at rounding level only — never the
            // CSR structure (clipping is pure geometry).
            assert_eq!(plan.row_ptr, scalar_plan.row_ptr);
            assert_eq!(plan.cols, scalar_plan.cols);
            let sol = plan.apply_with(
                &field,
                &ApplyOptions {
                    simd: policy,
                    ..ApplyOptions::default()
                },
            );
            let diff = sol.max_abs_diff(&scalar.values);
            assert!(diff <= 1e-12, "{policy:?} differs from scalar by {diff}");
            assert_eq!(
                sol.metrics, scalar.metrics,
                "{policy:?} counters must be ISA-independent"
            );
            assert_eq!(sol.simd.policy, policy.label());
            assert_eq!(sol.simd.lanes, policy.resolve().lanes() as u64);
            assert!(sol.simd.gflops >= 0.0);
        }
    }
}

#[test]
fn instrumented_apply_populates_stats() {
    let (mesh, field, grid) = setup(120, 1, 2);
    let plan = EvalPlan::compile(
        &mesh,
        &grid,
        1,
        &CompileOptions {
            instrument: true,
            ..small_options()
        },
    );
    assert!(plan
        .build_spans()
        .iter()
        .any(|s| s.name == "compile.rows" && s.duration_ns > 0));
    let sol = plan.apply_with(
        &field,
        &ApplyOptions {
            n_blocks: 4,
            parallel: false,
            instrument: true,
            ..ApplyOptions::default()
        },
    );
    assert!(sol.spans.iter().any(|s| s.name == "apply.spmv"));
    assert_eq!(sol.block_stats.len(), 4);
    let probe = ustencil_core::BlockStats::merged_probe(&sol.block_stats);
    // One row-entry-count sample per grid point, summing to the nnz.
    assert_eq!(probe.candidates_per_query().count(), grid.len() as u64);
    assert_eq!(probe.candidates_per_query().sum(), plan.nnz() as u64);
    assert_eq!(sol.metrics.solution_writes, grid.len() as u64);
    assert_eq!(
        sol.metrics.flops,
        2 * plan.nnz() as u64 * plan.n_modes() as u64
    );
    // Uninstrumented applies keep the probes empty.
    let bare = plan.apply(&field);
    assert!(ustencil_core::BlockStats::merged_probe(&bare.block_stats)
        .candidates_per_query()
        .is_empty());
}

#[test]
fn run_record_carries_plan_stats() {
    let (mesh, field, grid) = setup(120, 1, 4);
    let plan = EvalPlan::compile(&mesh, &grid, 1, &small_options());
    let sol = plan.apply_with(
        &field,
        &ApplyOptions {
            instrument: true,
            ..ApplyOptions::default()
        },
    );
    let record = plan.to_run_record("test/plan", mesh.n_triangles(), &sol);
    assert_eq!(record.scheme, SCHEME_LABEL);
    assert_eq!(record.n_points, grid.len() as u64);
    let stats = record.plan.as_ref().expect("plan stats present");
    assert_eq!(stats.nnz, plan.nnz() as u64);
    assert!(stats.build_ms > 0.0);
    assert!(stats.apply_ms > 0.0);
    let hist = record.histogram("candidates_per_query").unwrap();
    assert_eq!(hist.count(), grid.len() as u64);
    // The record survives the report JSON round trip.
    let mut report = ustencil_core::RunReport::new("plan-test", 4);
    report.runs.push(record);
    let parsed = ustencil_core::RunReport::from_json(&report.to_pretty_string()).unwrap();
    assert_eq!(parsed, report);
}

#[test]
fn cached_plan_recompiles_only_on_shape_change() {
    let (mesh, field, grid) = setup(150, 1, 8);
    let processor = PostProcessor::new(Scheme::PerElement)
        .h_factor(0.5)
        .parallel(false);
    let mut cached = processor.plan();
    assert!(cached.get().is_none());
    let first = cached.run(&mesh, &field, &grid);
    assert_eq!(cached.rebuilds(), 1);
    let second = cached.run(&mesh, &field, &grid);
    assert_eq!(cached.rebuilds(), 1, "same shape must reuse the plan");
    assert_eq!(first.values, second.values);
    // A different degree forces a rebuild.
    let field2 = project_l2(&mesh, 2, |x, y| x + y, 0);
    let grid2 = ComputationGrid::quadrature_points(&mesh, 2);
    let _ = cached.run(&mesh, &field2, &grid2);
    assert_eq!(cached.rebuilds(), 2);
    // Explicit invalidation also forces one.
    cached.invalidate();
    let _ = cached.run(&mesh, &field2, &grid2);
    assert_eq!(cached.rebuilds(), 3);
    // The cached plan agrees with the direct run it replaces.
    let direct = processor.run(&mesh, &field2, &grid2);
    let again = cached.run(&mesh, &field2, &grid2);
    assert!(again.max_abs_diff(&direct.values) <= 1e-12);
}

#[test]
fn cached_plan_detects_same_shape_content_change() {
    // Regression: the old shape-only check (element count, degree, rows)
    // reused the stale operator when the mesh changed content at equal
    // shape. Content keys must force the recompile.
    let processor = PostProcessor::new(Scheme::PerPoint)
        .h_factor(0.5)
        .parallel(false);
    let mesh_a = generate_mesh(MeshClass::LowVariance, 150, 1);
    let mesh_b = generate_mesh(MeshClass::LowVariance, 150, 2);
    assert_eq!(mesh_a.n_triangles(), mesh_b.n_triangles());
    let field_a = project_l2(&mesh_a, 1, |x, y| x + 2.0 * y, 2);
    let field_b = project_l2(&mesh_b, 1, |x, y| x + 2.0 * y, 2);
    let grid_a = ComputationGrid::quadrature_points(&mesh_a, 1);
    let grid_b = ComputationGrid::quadrature_points(&mesh_b, 1);
    assert_eq!(grid_a.len(), grid_b.len());
    let mut cached = processor.plan();
    let _ = cached.run(&mesh_a, &field_a, &grid_a);
    assert_eq!(cached.rebuilds(), 1);
    let on_b = cached.run(&mesh_b, &field_b, &grid_b);
    assert_eq!(
        cached.rebuilds(),
        2,
        "same-shape different-content mesh must recompile"
    );
    // And the recompiled answer is the right one for mesh B.
    let direct_b = processor.run(&mesh_b, &field_b, &grid_b);
    assert!(on_b.max_abs_diff(&direct_b.values) <= 1e-12);
    // Switching back is a content change again, not a cache hit.
    let _ = cached.run(&mesh_a, &field_a, &grid_a);
    assert_eq!(cached.rebuilds(), 3);
    assert_eq!(
        cached.key().copied(),
        Some(crate::PlanKey::new(
            &mesh_a,
            &grid_a,
            1,
            &CompileOptions::from_settings(&processor.settings()),
        ))
    );
}

#[test]
fn serialization_round_trip_is_bit_exact() {
    let (mesh, field, grid) = setup(120, 2, 6);
    let plan = EvalPlan::compile(&mesh, &grid, 2, &small_options());
    let text = plan.to_pretty_string();
    let loaded = EvalPlan::from_json(&text).expect("serialized plan parses");
    assert_eq!(loaded.degree(), plan.degree());
    assert_eq!(loaded.smoothness(), plan.smoothness());
    assert_eq!(loaded.n_elements(), plan.n_elements());
    assert_eq!(loaded.h().to_bits(), plan.h().to_bits());
    assert_eq!(loaded.row_ptr, plan.row_ptr);
    assert_eq!(loaded.cols, plan.cols);
    assert_eq!(
        loaded
            .weights
            .iter()
            .map(|w| w.to_bits())
            .collect::<Vec<_>>(),
        plan.weights.iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
        "weights must survive serialization byte-identically"
    );
    // Loaded plans report a zero (offline) build but apply identically.
    assert_eq!(loaded.build_wall().as_nanos(), 0);
    let a = plan.apply(&field);
    let b = loaded.apply(&field);
    assert_eq!(a.values, b.values);
    // A seeded cache uses the loaded plan without recompiling.
    let mut cached = CachedPlan::new(
        PostProcessor::new(Scheme::PerPoint)
            .h_factor(0.5)
            .settings(),
    );
    cached.set(loaded);
    let c = cached.run(&mesh, &field, &grid);
    assert_eq!(cached.rebuilds(), 0);
    assert_eq!(c.values, a.values);
}

#[test]
fn malformed_plans_are_rejected() {
    let (mesh, _, grid) = setup(100, 1, 1);
    let plan = EvalPlan::compile(&mesh, &grid, 1, &small_options());
    let text = plan.to_pretty_string();
    assert!(EvalPlan::from_json("{}").is_err());
    assert!(EvalPlan::from_json("not json").is_err());
    // Wrong format tag.
    let bad = text.replace("ustencil-plan/v2", "ustencil-plan/v999");
    assert!(EvalPlan::from_json(&bad).is_err());
    // Old format tag (v1 documents are no longer accepted).
    let bad = text.replace("ustencil-plan/v2", "ustencil-plan/v1");
    assert!(EvalPlan::from_json(&bad).is_err());
    // Unknown layout label.
    let bad = text.replace("\"layout\": \"natural\"", "\"layout\": \"zigzag\"");
    assert!(EvalPlan::from_json(&bad).is_err());
    // Natural layouts must not carry permutations.
    let bad = text.replace("\"row_perm\": []", "\"row_perm\": [0]");
    assert!(EvalPlan::from_json(&bad).is_err());
    // Non-blocked layouts must not carry tiles.
    let bad = text.replace("\"tiles\": []", "\"tiles\": [0, 1]");
    assert!(EvalPlan::from_json(&bad).is_err());
    // Truncated weight blob (drop one f64 = 16 hex digits).
    let start = text.find("\"weights\": \"").unwrap() + "\"weights\": \"".len();
    let mut bad = text.clone();
    bad.replace_range(start..start + 16, "");
    assert!(EvalPlan::from_json(&bad).is_err());
    // Corrupted hex.
    let mut bad = text.clone();
    bad.replace_range(start..start + 1, "z");
    assert!(EvalPlan::from_json(&bad).is_err());
    // Inconsistent mode count.
    let bad = text.replace("\"n_modes\": 3", "\"n_modes\": 6");
    assert!(EvalPlan::from_json(&bad).is_err());
}

#[test]
#[should_panic(expected = "degree does not match")]
fn mismatched_field_degree_is_rejected() {
    let (mesh, _, grid) = setup(100, 1, 1);
    let plan = EvalPlan::compile(&mesh, &grid, 1, &small_options());
    let field = project_l2(&mesh, 2, |x, _| x, 0);
    let _ = plan.apply(&field);
}

#[test]
#[should_panic(expected = "element count does not match")]
fn mismatched_element_count_is_rejected() {
    let (mesh, _, grid) = setup(100, 1, 1);
    let plan = EvalPlan::compile(&mesh, &grid, 1, &small_options());
    let other = generate_mesh(MeshClass::LowVariance, 200, 1);
    let field = project_l2(&other, 1, |x, _| x, 0);
    let _ = plan.apply(&field);
}

#[test]
#[should_panic(expected = "stencil width")]
fn oversized_stencil_is_rejected() {
    let mesh = generate_mesh(MeshClass::StructuredPattern, 8, 0);
    let grid = ComputationGrid::quadrature_points(&mesh, 3);
    let _ = EvalPlan::compile(&mesh, &grid, 3, &CompileOptions::default());
}

#[test]
fn hilbert_layout_is_bitwise_equal_after_unpermutation() {
    let (mesh, field, grid) = setup(200, 2, 13);
    let natural = EvalPlan::compile(&mesh, &grid, 2, &small_options());
    for layout in [Layout::Hilbert, Layout::HilbertBlocked] {
        let opts = CompileOptions {
            layout,
            ..small_options()
        };
        let plan = EvalPlan::compile(&mesh, &grid, 2, &opts);
        assert_eq!(plan.layout(), layout);
        assert_eq!(plan.nnz(), natural.nnz());
        // Each reordered row is the natural plan's row for the same point:
        // identical entry order, bit-identical weights, columns mapped
        // through the element permutation.
        let inv_col: Vec<u32> = {
            let mut inv = vec![0u32; plan.col_perm().len()];
            for (slot, &old) in plan.col_perm().iter().enumerate() {
                inv[old as usize] = slot as u32;
            }
            inv
        };
        for (r, &point) in plan.row_perm().iter().enumerate() {
            let (lo, hi) = plan.row_range(r);
            let (nlo, nhi) = natural.row_range(point as usize);
            assert_eq!(hi - lo, nhi - nlo, "row {r} width");
            for (e, ne) in (lo..hi).zip(nlo..nhi) {
                assert_eq!(plan.cols()[e], inv_col[natural.cols()[ne] as usize]);
                let nm = plan.n_modes();
                let w = &plan.weights[e * nm..(e + 1) * nm];
                let nw = &natural.weights[ne * nm..(ne + 1) * nm];
                assert!(
                    w.iter().zip(nw).all(|(a, b)| a.to_bits() == b.to_bits()),
                    "row {r} weights not bit-identical"
                );
            }
        }
        // Apply is bitwise equal to the natural apply after the scatter.
        let nat_sol = natural.apply_with(&field, &ApplyOptions::default());
        let sol = plan.apply_with(&field, &ApplyOptions::default());
        assert!(sol
            .values
            .iter()
            .zip(&nat_sol.values)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
        // Aggregate counters are reorder-invariant.
        assert_eq!(sol.metrics, nat_sol.metrics);
        // apply_into matches too.
        let mut out = vec![0.0; plan.rows()];
        plan.apply_into(&field, &mut out);
        assert!(out
            .iter()
            .zip(&nat_sol.values)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }
}

#[test]
fn blocked_layout_builds_valid_tiles() {
    let (mesh, field, grid) = setup(250, 1, 21);
    let opts = CompileOptions {
        layout: Layout::HilbertBlocked,
        ..small_options()
    };
    let plan = EvalPlan::compile(&mesh, &grid, 1, &opts);
    let tiles = plan.tiles();
    assert!(tiles.len() >= 2);
    assert_eq!(tiles.first(), Some(&0));
    assert_eq!(*tiles.last().unwrap() as usize, plan.rows());
    assert!(tiles.windows(2).all(|w| w[0] < w[1]));
    // Tiles only change the parallel split, never the per-row arithmetic.
    let hilbert = EvalPlan::compile(
        &mesh,
        &grid,
        1,
        &CompileOptions {
            layout: Layout::Hilbert,
            ..small_options()
        },
    );
    let a = plan.apply_with(&field, &ApplyOptions::default());
    let b = hilbert.apply_with(&field, &ApplyOptions::default());
    assert!(a
        .values
        .iter()
        .zip(&b.values)
        .all(|(x, y)| x.to_bits() == y.to_bits()));
}

#[test]
fn reordered_serialization_round_trip_is_bit_exact() {
    let (mesh, field, grid) = setup(150, 1, 17);
    let opts = CompileOptions {
        layout: Layout::HilbertBlocked,
        ..small_options()
    };
    let plan = EvalPlan::compile(&mesh, &grid, 1, &opts);
    let text = plan.to_pretty_string();
    let loaded = EvalPlan::from_json(&text).expect("round trip");
    assert_eq!(loaded.layout(), Layout::HilbertBlocked);
    assert_eq!(loaded.row_perm(), plan.row_perm());
    assert_eq!(loaded.col_perm(), plan.col_perm());
    assert_eq!(loaded.tiles(), plan.tiles());
    let a = plan.apply(&field);
    let b = loaded.apply(&field);
    assert!(a
        .values
        .iter()
        .zip(&b.values)
        .all(|(x, y)| x.to_bits() == y.to_bits()));
}

#[test]
fn clean_diff_patches_to_the_identical_plan() {
    let (mesh, _, grid) = setup(150, 1, 23);
    let plan = EvalPlan::compile(&mesh, &grid, 1, &small_options());
    let dirty = DirtySet::diff(&mesh, &grid, &mesh, &grid);
    assert!(dirty.is_clean());
    assert_eq!(dirty.dirty_elements(), 0);
    let (patched, delta) = plan
        .patched(&mesh, &grid, &dirty, &small_options())
        .expect("clean patch applies");
    assert_eq!(delta.respliced_rows, 0);
    assert_eq!(delta.respliced_nnz, 0);
    assert_eq!(patched.row_ptr, plan.row_ptr);
    assert_eq!(patched.cols, plan.cols);
    assert!(patched
        .weights
        .iter()
        .zip(&plan.weights)
        .all(|(a, b)| a.to_bits() == b.to_bits()));
}

#[test]
fn patched_plan_matches_fresh_compile_after_displacement() {
    let (mesh, _, grid) = setup(300, 2, 29);
    let plan = EvalPlan::compile(&mesh, &grid, 2, &small_options());
    // Keep the band narrow: its `(3k+1)h` closure must stay a strict
    // subset of the rows for the subset assertion below to be meaningful.
    let moved = ustencil_mesh::displace_band(&mesh, 0.48, 0.52, 0.2, 5);
    assert_eq!(
        moved.max_edge_length().to_bits(),
        mesh.max_edge_length().to_bits()
    );
    let moved_grid = ComputationGrid::quadrature_points(&moved, 2);
    let dirty = DirtySet::diff(&mesh, &grid, &moved, &moved_grid);
    assert!(!dirty.is_clean());
    assert!(dirty.dirty_elements() > 0);
    let (patched, delta) = plan
        .patched(&moved, &moved_grid, &dirty, &small_options())
        .expect("displacement patch applies");
    // A band edit re-splices a strict subset of the rows…
    assert!(delta.respliced_rows > 0);
    assert!((delta.respliced_rows as usize) < plan.rows());
    // …and the result is bit-for-bit the fresh compile: kept rows reuse
    // identical CSR content, recomputed rows replay the same block kernel.
    let fresh = EvalPlan::compile(&moved, &moved_grid, 2, &small_options());
    assert_eq!(patched.row_ptr, fresh.row_ptr);
    assert_eq!(patched.cols, fresh.cols);
    assert!(patched
        .weights
        .iter()
        .zip(&fresh.weights)
        .all(|(a, b)| a.to_bits() == b.to_bits()));
}

#[test]
fn patched_plan_matches_fresh_compile_after_refinement() {
    let (mesh, _, grid) = setup(180, 1, 31);
    let plan = EvalPlan::compile(&mesh, &grid, 1, &small_options());
    // Refine a band of elements, keeping the longest edge (and with it h)
    // intact.
    let on_longest = ustencil_mesh::elements_on_longest_edge(&mesh);
    let targets: Vec<u32> = (0..mesh.n_triangles() as u32)
        .filter(|&e| {
            let c = mesh.centroid(e as usize);
            !on_longest[e as usize] && c.x > 0.4 && c.x < 0.6
        })
        .collect();
    assert!(!targets.is_empty());
    let refined = ustencil_mesh::refine_elements(&mesh, &targets);
    assert_eq!(
        refined.max_edge_length().to_bits(),
        mesh.max_edge_length().to_bits()
    );
    let refined_grid = ComputationGrid::quadrature_points(&refined, 1);
    let dirty = DirtySet::diff(&mesh, &grid, &refined, &refined_grid);
    let (patched, delta) = plan
        .patched(&refined, &refined_grid, &dirty, &small_options())
        .expect("refinement patch applies");
    assert!(delta.dirty_elements >= targets.len() as u64);
    let fresh = EvalPlan::compile(&refined, &refined_grid, 1, &small_options());
    assert_eq!(patched.rows(), fresh.rows());
    assert_eq!(patched.n_elements(), refined.n_triangles());
    assert_eq!(patched.row_ptr, fresh.row_ptr);
    assert_eq!(patched.cols, fresh.cols);
    assert!(patched
        .weights
        .iter()
        .zip(&fresh.weights)
        .all(|(a, b)| a.to_bits() == b.to_bits()));
}

#[test]
fn patched_v2_layouts_stay_valid_and_agree() {
    let (mesh, _, grid) = setup(220, 1, 37);
    let moved = ustencil_mesh::displace_band(&mesh, 0.3, 0.7, 0.2, 9);
    let moved_grid = ComputationGrid::quadrature_points(&moved, 1);
    let fresh_nat = EvalPlan::compile(&moved, &moved_grid, 1, &small_options());
    let field = project_l2(&moved, 1, |x, y| 0.3 + x * y - y, 2);
    let reference = fresh_nat.apply(&field);
    for layout in [Layout::Hilbert, Layout::HilbertBlocked] {
        let opts = CompileOptions {
            layout,
            ..small_options()
        };
        let plan = EvalPlan::compile(&mesh, &grid, 1, &opts);
        let dirty = DirtySet::diff(&mesh, &grid, &moved, &moved_grid);
        let (patched, _) = plan
            .patched(&moved, &moved_grid, &dirty, &opts)
            .expect("v2 patch applies");
        // The spliced permutations are real permutations of the new
        // problem's rows and elements.
        let mut seen_rows = vec![false; patched.rows()];
        for &p in patched.row_perm() {
            assert!(!seen_rows[p as usize], "row_perm repeats {p}");
            seen_rows[p as usize] = true;
        }
        assert!(seen_rows.iter().all(|&s| s));
        let mut seen_cols = vec![false; moved.n_triangles()];
        for &e in patched.col_perm() {
            assert!(!seen_cols[e as usize], "col_perm repeats {e}");
            seen_cols[e as usize] = true;
        }
        assert!(seen_cols.iter().all(|&s| s));
        if layout.blocked() {
            let tiles = patched.tiles();
            assert_eq!(tiles.first(), Some(&0));
            assert_eq!(*tiles.last().unwrap() as usize, patched.rows());
            assert!(tiles.windows(2).all(|w| w[0] < w[1]));
        }
        // Row content is bitwise the fresh natural row for the same point,
        // so the apply scatters to bit-identical values.
        let sol = patched.apply(&field);
        assert!(sol
            .values
            .iter()
            .zip(&reference.values)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }
}

#[test]
fn cached_plan_patches_on_mesh_edit() {
    let processor = PostProcessor::new(Scheme::PerPoint)
        .h_factor(0.5)
        .parallel(false);
    let (mesh, field, grid) = setup(200, 1, 41);
    let mut cached = processor.plan();
    let _ = cached.run(&mesh, &field, &grid);
    assert_eq!((cached.rebuilds(), cached.patches()), (1, 0));
    assert!(cached.last_delta().is_none());
    // A mesh edit at unchanged kernel/degree/layout takes the patch path.
    let moved = ustencil_mesh::displace_band(&mesh, 0.2, 0.8, 0.15, 13);
    let moved_field = project_l2(&moved, 1, |x, y| 0.2 + x - 0.5 * y + x * y, 2);
    let moved_grid = ComputationGrid::quadrature_points(&moved, 1);
    let sol = cached.run(&moved, &moved_field, &moved_grid);
    assert_eq!((cached.rebuilds(), cached.patches()), (1, 1));
    let delta = cached.last_delta().expect("patched run records a delta");
    assert!(delta.respliced_rows > 0);
    let direct = processor.run(&moved, &moved_field, &moved_grid);
    assert!(sol.max_abs_diff(&direct.values) <= 1e-12);
    // A plain re-run is a hit: no rebuild, no patch, delta cleared.
    let _ = cached.run(&moved, &moved_field, &moved_grid);
    assert_eq!((cached.rebuilds(), cached.patches()), (1, 1));
    // A degree change is not content-only: full recompile.
    let field2 = project_l2(&moved, 2, |x, y| x + y, 0);
    let grid2 = ComputationGrid::quadrature_points(&moved, 2);
    let _ = cached.run(&moved, &field2, &grid2);
    assert_eq!((cached.rebuilds(), cached.patches()), (2, 1));
    assert!(cached.last_delta().is_none());
}

#[test]
fn patch_rejects_kernel_and_shape_mismatches() {
    let (mesh, _, grid) = setup(150, 1, 43);
    let plan = EvalPlan::compile(&mesh, &grid, 1, &small_options());
    let moved = ustencil_mesh::displace_band(&mesh, 0.3, 0.7, 0.2, 3);
    let moved_grid = ComputationGrid::quadrature_points(&moved, 1);
    let dirty = DirtySet::diff(&mesh, &grid, &moved, &moved_grid);
    // A different h_factor means every weight changes: KernelChanged.
    let err = plan
        .patch(
            &moved,
            &moved_grid,
            &dirty,
            &CompileOptions {
                h_factor: 0.45,
                ..small_options()
            },
        )
        .unwrap_err();
    assert_eq!(err, PatchError::KernelChanged);
    // A different layout cannot be spliced into this plan.
    let err = plan
        .patch(
            &moved,
            &moved_grid,
            &dirty,
            &CompileOptions {
                layout: Layout::Hilbert,
                ..small_options()
            },
        )
        .unwrap_err();
    assert_eq!(err, PatchError::OptionsMismatch);
    // A dirty set diffed against a different problem is rejected.
    let (other, _, other_grid) = setup(100, 1, 44);
    let stale = DirtySet::diff(&other, &other_grid, &moved, &moved_grid);
    let err = plan
        .patch(&moved, &moved_grid, &stale, &small_options())
        .unwrap_err();
    assert_eq!(err, PatchError::ShapeMismatch);
}

#[test]
fn locality_stats_are_populated() {
    let (mesh, _, grid) = setup(200, 1, 19);
    for layout in Layout::ALL {
        let opts = CompileOptions {
            layout,
            ..small_options()
        };
        let plan = EvalPlan::compile(&mesh, &grid, 1, &opts);
        let stats = plan.locality_stats();
        assert_eq!(stats.layout, layout.label());
        assert_eq!(stats.rows, plan.rows() as u64);
        assert_eq!(stats.nnz, plan.nnz() as u64);
        assert!(stats.mean_span_lines >= 1.0);
        assert!(stats.p95_span_lines >= stats.mean_span_lines * 0.5);
        assert!(stats.est_reuse_lines >= 0.0);
        if layout.blocked() {
            assert!(stats.n_tiles >= 1);
            assert!(stats.mean_rows_per_tile >= 1.0);
            assert!(stats.tile_fill > 0.0 && stats.tile_fill <= 1.0);
        } else {
            assert_eq!(stats.n_tiles, 0);
        }
    }
}
