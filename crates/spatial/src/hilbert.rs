//! Hilbert space-filling-curve ordering for evaluation points and mesh
//! elements.
//!
//! The evaluation schemes decide *which* (element, point) pairs interact,
//! but nothing upstream controls *in what order* those pairs are visited.
//! A Hilbert curve maps the unit square onto a 1-D index such that points
//! close on the curve are close in the plane (and, unlike a Z-order curve,
//! without long diagonal jumps), so sorting points or element centroids by
//! their Hilbert index turns spatial locality into *memory* locality: CSR
//! rows of a compiled plan read nearby coefficient columns, and the direct
//! schemes revisit recently-touched elements while they are still cached.
//!
//! The module provides the curve itself ([`hilbert_d`]), a reusable
//! [`Permutation`] two-way index map, and the two orderings the engines
//! consume: [`hilbert_order_points`] for evaluation points and
//! [`hilbert_order_elements`] for mesh triangles (keyed by centroid).

use ustencil_geometry::{Aabb, Point2};
use ustencil_mesh::TriMesh;

/// Resolution of the discrete Hilbert curve used for ordering: the unit
/// square is quantized to a `2^ORDER × 2^ORDER` lattice. 16 bits per axis
/// puts distinct f64 coordinates in distinct cells for any mesh size this
/// library targets (a 1024k-element mesh has mean spacing ≈ 1e-3, versus a
/// cell size of 2^-16 ≈ 1.5e-5); ties that do collide are broken by index.
pub const HILBERT_ORDER: u32 = 16;

/// Distance along the Hilbert curve of order `order` for the lattice cell
/// `(x, y)`, with `x, y < 2^order`.
///
/// Standard bit-twiddling formulation (Lam & Shapiro): walk from the most
/// significant bit down, rotating/reflecting the quadrant frame as the
/// curve recurses.
pub fn hilbert_d(order: u32, mut x: u32, mut y: u32) -> u64 {
    debug_assert!(order <= 31);
    let mut d: u64 = 0;
    let mut s = 1u32 << (order - 1);
    while s > 0 {
        let rx = u32::from(x & s > 0);
        let ry = u32::from(y & s > 0);
        d += u64::from(s) * u64::from(s) * u64::from((3 * rx) ^ ry);
        // Rotate the quadrant so the sub-curve enters/exits correctly.
        if ry == 0 {
            if rx == 1 {
                x = s.wrapping_sub(1).wrapping_sub(x) & (s.wrapping_mul(2) - 1);
                y = s.wrapping_sub(1).wrapping_sub(y) & (s.wrapping_mul(2) - 1);
            }
            std::mem::swap(&mut x, &mut y);
        }
        s >>= 1;
    }
    d
}

/// Hilbert key of a point inside `bounds`, quantized to [`HILBERT_ORDER`]
/// bits per axis. Points outside the box are clamped to its edge.
pub fn hilbert_key(p: Point2, bounds: &Aabb) -> u64 {
    let side = 1u32 << HILBERT_ORDER;
    let fx = (p.x - bounds.min.x) / (bounds.max.x - bounds.min.x).max(f64::MIN_POSITIVE);
    let fy = (p.y - bounds.min.y) / (bounds.max.y - bounds.min.y).max(f64::MIN_POSITIVE);
    let q = |f: f64| -> u32 {
        let c = (f * f64::from(side)) as i64;
        c.clamp(0, i64::from(side) - 1) as u32
    };
    hilbert_d(HILBERT_ORDER, q(fx), q(fy))
}

/// A two-way index permutation between a *new* (reordered) numbering and
/// the *old* (original) numbering.
///
/// `forward[new] = old` and `inverse[old] = new`; both directions are
/// materialized because producers iterate in new order (forward lookup)
/// while consumers scatter results back to original indices (inverse
/// lookup). Indices are `u32` to match the mesh and CSR column width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    forward: Vec<u32>,
    inverse: Vec<u32>,
}

impl Permutation {
    /// Builds a permutation from its forward (new → old) map.
    ///
    /// # Panics
    /// In debug builds, if `forward` is not a permutation of `0..len`.
    pub fn from_forward(forward: Vec<u32>) -> Self {
        let mut inverse = vec![u32::MAX; forward.len()];
        for (new, &old) in forward.iter().enumerate() {
            debug_assert!(
                inverse[old as usize] == u32::MAX,
                "duplicate index {old} in permutation"
            );
            inverse[old as usize] = new as u32;
        }
        debug_assert!(inverse.iter().all(|&v| v != u32::MAX));
        Self { forward, inverse }
    }

    /// The identity permutation on `n` indices.
    pub fn identity(n: usize) -> Self {
        Self::from_forward((0..n as u32).collect())
    }

    /// Number of indices.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// Whether the permutation is empty.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// The original index stored at reordered position `new`.
    #[inline]
    pub fn old_of(&self, new: usize) -> usize {
        self.forward[new] as usize
    }

    /// The reordered position of original index `old`.
    #[inline]
    pub fn new_of(&self, old: usize) -> usize {
        self.inverse[old] as usize
    }

    /// Forward map (`forward[new] = old`).
    pub fn forward(&self) -> &[u32] {
        &self.forward
    }

    /// Inverse map (`inverse[old] = new`).
    pub fn inverse(&self) -> &[u32] {
        &self.inverse
    }

    /// Gathers `src` (indexed by old numbering) into new order:
    /// `out[new] = src[forward[new]]`.
    pub fn gather<T: Copy>(&self, src: &[T]) -> Vec<T> {
        assert_eq!(src.len(), self.forward.len());
        self.forward.iter().map(|&old| src[old as usize]).collect()
    }

    /// Scatters `src` (indexed by new numbering) back to old order:
    /// `out[forward[new]] = src[new]`.
    pub fn scatter<T: Copy + Default>(&self, src: &[T]) -> Vec<T> {
        assert_eq!(src.len(), self.forward.len());
        let mut out = vec![T::default(); src.len()];
        for (new, &old) in self.forward.iter().enumerate() {
            out[old as usize] = src[new];
        }
        out
    }
}

/// Sorts indices `0..keys.len()` by `(key, index)` and returns the
/// resulting new → old permutation. The index tie-break makes the order
/// total (and thus deterministic) even when Hilbert cells collide.
fn order_by_keys(keys: &[u64]) -> Permutation {
    let mut forward: Vec<u32> = (0..keys.len() as u32).collect();
    forward.sort_by_key(|&i| (keys[i as usize], i));
    Permutation::from_forward(forward)
}

/// Orders a point set along the Hilbert curve of its bounding box.
pub fn hilbert_order_points(points: &[Point2]) -> Permutation {
    let bounds = bounds_of(points.iter().copied());
    let keys: Vec<u64> = points.iter().map(|&p| hilbert_key(p, &bounds)).collect();
    order_by_keys(&keys)
}

/// Orders the triangles of a mesh along the Hilbert curve of the centroid
/// bounding box.
pub fn hilbert_order_elements(mesh: &TriMesh) -> Permutation {
    let centroids: Vec<Point2> = (0..mesh.n_triangles()).map(|i| mesh.centroid(i)).collect();
    hilbert_order_points(&centroids)
}

/// Sorts `ids` (a subset of element indices into `mesh`) in place by the
/// Hilbert key of each element's centroid, tie-broken by id. Used by the
/// distributed runtime to order per-patch traversal without disturbing the
/// sorted shard membership lists.
pub fn hilbert_sort_elements(mesh: &TriMesh, ids: &mut [u32]) {
    let bounds = bounds_of(ids.iter().map(|&id| mesh.centroid(id as usize)));
    ids.sort_by_key(|&id| (hilbert_key(mesh.centroid(id as usize), &bounds), id));
}

fn bounds_of(points: impl Iterator<Item = Point2>) -> Aabb {
    let bounds = Aabb::from_points(points);
    if bounds.is_empty() {
        // Empty input: any valid box works; keys are never computed.
        Aabb::new(Point2::ORIGIN, Point2::new(1.0, 1.0))
    } else {
        bounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hilbert_d_visits_every_cell_once() {
        for order in 1..=4u32 {
            let side = 1u32 << order;
            let mut seen = vec![false; (side * side) as usize];
            for x in 0..side {
                for y in 0..side {
                    let d = hilbert_d(order, x, y) as usize;
                    assert!(d < seen.len());
                    assert!(!seen[d], "cell ({x},{y}) repeats index {d}");
                    seen[d] = true;
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn hilbert_d_consecutive_indices_are_adjacent_cells() {
        // The defining property of the curve: stepping d -> d+1 moves to a
        // 4-neighbour cell (no diagonal jumps).
        let order = 5u32;
        let side = 1u32 << order;
        let mut cell_of = vec![(0u32, 0u32); (side * side) as usize];
        for x in 0..side {
            for y in 0..side {
                cell_of[hilbert_d(order, x, y) as usize] = (x, y);
            }
        }
        for w in cell_of.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            let dist = x0.abs_diff(x1) + y0.abs_diff(y1);
            assert_eq!(dist, 1, "jump between {:?} and {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn permutation_round_trip() {
        let p = Permutation::from_forward(vec![2, 0, 3, 1]);
        for old in 0..4 {
            assert_eq!(p.old_of(p.new_of(old)), old);
        }
        let data = [10.0, 11.0, 12.0, 13.0];
        let gathered = p.gather(&data);
        assert_eq!(gathered, vec![12.0, 10.0, 13.0, 11.0]);
        assert_eq!(p.scatter(&gathered), data.to_vec());
    }

    #[test]
    fn identity_is_identity() {
        let p = Permutation::identity(5);
        let data = [1, 2, 3, 4, 5];
        assert_eq!(p.gather(&data), data.to_vec());
        assert_eq!(p.scatter(&data), data.to_vec());
    }

    #[test]
    fn point_order_is_deterministic_and_complete() {
        let pts: Vec<Point2> = (0..100)
            .map(|i| {
                let t = i as f64 * 0.61803398875;
                Point2::new(t.fract(), (t * 1.32471795724).fract())
            })
            .collect();
        let a = hilbert_order_points(&pts);
        let b = hilbert_order_points(&pts);
        assert_eq!(a, b);
        let mut seen = a.forward().to_vec();
        seen.sort_unstable();
        assert_eq!(seen, (0..100u32).collect::<Vec<_>>());
    }

    #[test]
    fn hilbert_order_improves_neighbour_distance_over_shuffled() {
        // Mean distance between consecutive points in the ordering should
        // be much smaller after Hilbert sorting than in a scrambled order.
        let pts: Vec<Point2> = (0..400)
            .map(|i| {
                let t = i as f64 * 0.61803398875;
                Point2::new(t.fract(), (t * 1.32471795724).fract())
            })
            .collect();
        let mean_step = |order: &[u32]| -> f64 {
            order
                .windows(2)
                .map(|w| pts[w[0] as usize].distance(pts[w[1] as usize]))
                .sum::<f64>()
                / (order.len() - 1) as f64
        };
        let natural: Vec<u32> = (0..400).collect();
        let hilbert = hilbert_order_points(&pts);
        assert!(
            mean_step(hilbert.forward()) < 0.5 * mean_step(&natural),
            "hilbert {} vs natural {}",
            mean_step(hilbert.forward()),
            mean_step(&natural)
        );
    }
}
